#!/usr/bin/env sh
# Deterministic scenario sweep (ISSUE 6): runs the full named-scenario
# catalogue through examples/scenario_runner and enforces the engine's two
# external contracts from the outside of the process:
#
#  * every named scenario passes its per-tick + teardown invariants
#    (the runner exits non-zero and prints the violation otherwise);
#  * the SAME seed replayed in a fresh process produces byte-identical
#    tick logs for every scenario, and a DIFFERENT seed diverges on at
#    least one -- i.e. determinism comes from the seed, not from luck.
#
# Tick logs from the first pass land in <out-dir>/run_a/<name>.ticklog and
# are the committed artefact shape documented in EXPERIMENTS.md. The second
# same-seed pass (run_b) and the divergence pass (run_c) are scratch.
#
# Wired as the ctest target `scenario.sweep` so `ctest` exercises the whole
# catalogue end-to-end on every run (the sweep finishes in ~2 s).
#
# Usage: tools/run_scenarios.sh [build-dir] [out-dir] [seed]
#        (defaults: build, bench_out/scenarios, 1234)
set -eu

build_dir="${1:-build}"
out_dir="${2:-bench_out/scenarios}"
seed="${3:-1234}"

runner="$build_dir/examples/scenario_runner"
if [ ! -x "$runner" ]; then
  jobs="$(nproc 2>/dev/null || echo 2)"
  echo "== build scenario_runner =="
  cmake --build "$build_dir" -j"$jobs" --target scenario_runner
fi

rm -rf "$out_dir/run_a" "$out_dir/run_b" "$out_dir/run_c"
mkdir -p "$out_dir/run_a" "$out_dir/run_b" "$out_dir/run_c"

echo "== scenario sweep, seed $seed (run A) =="
"$runner" --seed "$seed" --out "$out_dir/run_a" --all

echo "== scenario sweep, seed $seed again (run B: replay) =="
"$runner" --seed "$seed" --out "$out_dir/run_b" --all

echo "== same-seed tick logs must be byte-identical =="
for log_a in "$out_dir"/run_a/*.ticklog; do
  name="$(basename "$log_a")"
  if ! cmp -s "$log_a" "$out_dir/run_b/$name"; then
    echo "FAIL: $name differs between two runs with seed $seed" >&2
    diff "$log_a" "$out_dir/run_b/$name" | head -10 >&2 || true
    exit 1
  fi
done
echo "identical: $(ls "$out_dir"/run_a/*.ticklog | wc -l) tick logs"

alt_seed=$((seed + 1))
echo "== scenario sweep, seed $alt_seed (run C: divergence) =="
"$runner" --seed "$alt_seed" --out "$out_dir/run_c" --all

diverged=0
for log_a in "$out_dir"/run_a/*.ticklog; do
  name="$(basename "$log_a")"
  if ! cmp -s "$log_a" "$out_dir/run_c/$name"; then
    diverged=$((diverged + 1))
  fi
done
if [ "$diverged" -eq 0 ]; then
  echo "FAIL: seed $alt_seed reproduced seed $seed's tick logs exactly" >&2
  exit 1
fi
echo "diverged under seed $alt_seed: $diverged tick logs"

echo "Scenario sweep OK (logs: $out_dir/run_a/)."

#!/usr/bin/env sh
# Documentation hygiene gate, run as a ctest case (docs.check).
#
# Two mechanical checks keep the docs honest:
#  1. Every public header in src/core, src/proto and src/obs must open with
#     a file-level doc comment (a '//' line before any code), so a reader
#     landing on any header learns its contract before its includes.
#  2. Every metric name constant defined in src/obs/names.h must appear in
#     DESIGN.md -- the §5 "Metric reference" table is required to cover the
#     full registry namespace, and this is what enforces it.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"
fail=0

echo "== file-level doc comments (src/core, src/proto, src/obs) =="
for h in src/core/*.h src/proto/*.h src/obs/*.h; do
  # The first non-blank line must start a comment; '#pragma once' or an
  # #include first means the header has no file-level documentation.
  first="$(sed -n '/[^[:space:]]/{p;q;}' "$h")"
  case "$first" in
    //*) ;;
    *)
      echo "FAIL: $h has no file-level doc comment (starts: $first)"
      fail=1
      ;;
  esac
done

echo "== DESIGN.md covers every metric name in src/obs/names.h =="
# Pull the string literal out of every name constant. Suffix constants for
# the dynamic per-shard family ("routed"/"drained") are matched as part of
# the documented core.sharded.shard<i>.* pattern rows.
names="$(sed -n 's/.*constexpr char k[A-Za-z]*\[\] *= *"\([^"]*\)".*/\1/p' \
  src/obs/names.h)"
[ -n "$names" ] || { echo "FAIL: no metric names found in src/obs/names.h"; exit 1; }
for n in $names; do
  if ! grep -qF "$n" DESIGN.md; then
    echo "FAIL: metric name '$n' (src/obs/names.h) is not documented in DESIGN.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"

#!/usr/bin/env sh
# Documentation hygiene gate, run as a ctest case (docs.check).
#
# Three mechanical checks keep the docs honest:
#  1. Every public header in src/core, src/proto, src/obs and src/net must
#     open with a file-level doc comment (a '//' line before any code), so a
#     reader landing on any header learns its contract before its includes.
#  2. Every metric name constant defined in src/obs/names.h must appear in
#     docs/RUNBOOK.md -- its metric reference table is required to cover the
#     full registry namespace, and this is what enforces it.
#  3. Every err_code enumerator in src/proto/messages.h must have a table
#     row in docs/WIRE_PROTOCOL.md -- error codes are wire surface, and a
#     code a client can receive but cannot look up is a spec hole.
#  4. Every binary v3 opcode enumerator in src/proto/wire_v3.h must have a
#     table row in docs/WIRE_PROTOCOL.md section 8 -- opcode values are
#     append-only wire surface with the same lookup obligation.
#
# Usage: tools/check_docs.sh [repo-root]   (default: script's parent dir)
set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"
fail=0

echo "== file-level doc comments (src/core, src/proto, src/obs, src/net) =="
for h in src/core/*.h src/proto/*.h src/obs/*.h src/net/*.h; do
  # The first non-blank line must start a comment; '#pragma once' or an
  # #include first means the header has no file-level documentation.
  first="$(sed -n '/[^[:space:]]/{p;q;}' "$h")"
  case "$first" in
    //*) ;;
    *)
      echo "FAIL: $h has no file-level doc comment (starts: $first)"
      fail=1
      ;;
  esac
done

echo "== docs/RUNBOOK.md covers every metric name in src/obs/names.h =="
# Pull the string literal out of every name constant. Suffix constants for
# the dynamic per-shard family ("routed"/"drained") are matched as part of
# the documented core.sharded.shard<i>.* pattern rows.
names="$(sed -n 's/.*constexpr char k[A-Za-z]*\[\] *= *"\([^"]*\)".*/\1/p' \
  src/obs/names.h)"
[ -n "$names" ] || { echo "FAIL: no metric names found in src/obs/names.h"; exit 1; }
for n in $names; do
  if ! grep -qF "$n" docs/RUNBOOK.md; then
    echo "FAIL: metric name '$n' (src/obs/names.h) is not documented in docs/RUNBOOK.md"
    fail=1
  fi
done

echo "== docs/WIRE_PROTOCOL.md documents every err_code enumerator =="
# Enumerator identifiers double as the wire tokens (pinned by a round-trip
# static_assert in messages.cpp), so the doc gate checks the identifiers.
codes="$(sed -n '/enum class err_code {/,/^};/p' src/proto/messages.h |
  sed -n 's/^ *\([a-z_][a-z_]*\),.*/\1/p')"
[ -n "$codes" ] || { echo "FAIL: no err_code enumerators found in src/proto/messages.h"; exit 1; }
for c in $codes; do
  if ! grep -qF "| \`$c\` |" docs/WIRE_PROTOCOL.md; then
    echo "FAIL: err_code '$c' (src/proto/messages.h) has no table row in docs/WIRE_PROTOCOL.md"
    fail=1
  fi
done

echo "== docs/WIRE_PROTOCOL.md documents every v3 opcode enumerator =="
ops="$(sed -n '/enum class opcode/,/^};/p' src/proto/wire_v3.h |
  sed -n 's/^ *\([a-z_][a-z_]*\) = [0-9]*,.*/\1/p')"
[ -n "$ops" ] || { echo "FAIL: no opcode enumerators found in src/proto/wire_v3.h"; exit 1; }
for o in $ops; do
  if ! grep -qF "| \`$o\` |" docs/WIRE_PROTOCOL.md; then
    echo "FAIL: v3 opcode '$o' (src/proto/wire_v3.h) has no table row in docs/WIRE_PROTOCOL.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"

#!/usr/bin/env sh
# Collects bench outputs into the repository's result logs.
#
# Usage: tools/collect_results.sh <bench-output-dir>
#   <bench-output-dir> holds the bench_*.txt files produced by running the
#   bench binaries (and their wiscape_bench_cache_*.csv campaign caches).
#
# Writes:
#   bench_output.txt  - full concatenated bench output
#   and prints the paper-vs-measured summary lines to stdout.
set -eu

dir="${1:-bench_out}"
out="bench_output.txt"

: > "$out"
for f in "$dir"/bench_*.txt; do
  cat "$f" >> "$out"
  printf '\n' >> "$out"
done

echo "wrote $out ($(wc -l < "$out") lines)"
echo
echo "== paper vs measured =="
grep -h "paper:" "$dir"/bench_*.txt | grep "measured:" || true

#!/usr/bin/env sh
# ThreadSanitizer run for the concurrent ingestion pipeline.
#
# Configures a dedicated build tree with -DWISCAPE_SANITIZE=thread, builds
# the test suite, and runs it under TSan -- the whole suite first (the
# sequential paths must stay clean too), then the dedicated multi-producer
# stress test on its own so its verdict is visible at the end of the log.
# Complements the ASan bench run recorded in bench_out/asan_fig02.txt.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -eu

build_dir="${1:-build-tsan}"
jobs="$(nproc 2>/dev/null || echo 2)"

echo "== configure ($build_dir, WISCAPE_SANITIZE=thread) =="
cmake -B "$build_dir" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWISCAPE_SANITIZE=thread

echo "== build wiscape_tests =="
cmake --build "$build_dir" -j"$jobs" --target wiscape_tests

# second_deadlock_stack aids debugging lock-order reports;
# halt_on_error makes any race fail the script immediately.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
export TSAN_OPTIONS

echo "== full test suite under TSan =="
"$build_dir"/tests/wiscape_tests

echo "== concurrency stress under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='ShardedCoordinatorStress.*:ReportQueue.*:ShardedCoordinator.*'

# The dense estimate store is single-writer-per-shard by design; this rerun
# pins that the interned apply path stays clean when driven through the
# sharded pipeline's threads.
echo "== apply path / estimate store under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='ApplyPath*.*:NetworkInterner.*:ZoneTableStore.*'

# The read-side serving layer: seqlock'd estimate mirrors read from
# query threads while the 4-shard pipeline ingests (randomized QUERY
# storm + concurrent ALERTS cursor drain). The seqlock recipe is exactly
# the code TSan exists to vet -- any reordering of the publish protocol
# shows up here as a data race.
echo "== query path / estimate view under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='EstimateView.*:EstimateMirror.*:AlertRing.*:ProtoServerV2.*'

# The scenario engine drives the whole stack (wire frames -> sharded
# drain workers -> alert ring -> query path) under fault injection and
# restart; rerunning it on its own keeps any race it provokes at the end
# of the log next to the scenario name that triggered it.
echo "== scenario engine under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='Scenario.*:Invariants.*:Injector.*'

# The TCP front end: epoll event-loop threads accepting/pumping real
# sockets while client threads connect, disconnect mid-frame, overflow
# buffers and trip the shed policy. The loops are shared-nothing by
# design; any cross-loop sharing that sneaks in races here. The filter
# includes the writev-coalescing paths (per-wake reply batching and the
# REPORT micro-batch) exercised by the pipelined-session tests.
echo "== net front end under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='ByteRing.*:NetSession.*:TcpServer.*'

# Rerun the concurrent coalescing stress on its own: 64 sessions across
# client threads pipelining REPORT bursts into two event loops, so the
# batched flush path (take_queued_replies -> one writev per wake) gets a
# dedicated verdict at the end of the log.
echo "== writev coalescing under concurrency (TSan) =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='TcpServer.ConcurrentPipelinedSessionsCoalesce:TcpServer.ManyConcurrentSessions'

# Binary v3 framing (WIRE_PROTOCOL.md section 8): the codec and server
# dispatch, the session's dual text/binary pump, and the mixed-framing
# pipelined session whose replies coalesce binary frames and text lines
# into the same writev batches.
echo "== binary v3 framing under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='WireV3Codec.*:WireV3Server.*:NetSession.Binary*:NetSession.PartialBinary*:NetSession.NegotiatedV*:TcpServer.MixedTextAndBinary*:TcpServer.BinaryRequestFrame*'

# Replication (DESIGN.md section 7): leader + two followers, puller
# threads pulling/catching up against the 4-shard ingest storm, and a
# wire PROMOTE mid-storm while the second puller is still in flight --
# the epoch tap, the sequenced log, and the apply/promote mutex are the
# cross-thread seams this vets. The leader_kill scenario rerun drives
# the same failover through the scenario engine's full stack.
echo "== replication under TSan =="
"$build_dir"/tests/wiscape_tests \
  --gtest_filter='ReplStress.PromotionMidStorm:Replication.*:EpochLog.*:ZoneTableMerge.*:TcpServer.FollowerCatchUp*:Scenario.LeaderKill*'

echo "TSan run clean."

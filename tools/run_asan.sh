#!/usr/bin/env sh
# AddressSanitizer + UndefinedBehaviorSanitizer run for the wire parsers.
#
# The zero-allocation decode fast path works on raw std::string_view spans
# with std::from_chars -- exactly the kind of code where an off-by-one reads
# past a buffer without crashing in a normal build. This script configures
# two dedicated build trees (-DWISCAPE_SANITIZE=address and =undefined),
# builds the test suite in each, and runs it twice per tree: the whole
# suite first (parsers are exercised from many layers), then the dedicated
# parser/codec suites on their own so their verdict is visible at the end
# of the log. Complements tools/run_tsan.sh (ingestion concurrency).
#
# Usage: tools/run_asan.sh [asan-build-dir] [ubsan-build-dir]
#        (defaults: build-asan, build-ubsan)
set -eu

asan_dir="${1:-build-asan}"
ubsan_dir="${2:-build-ubsan}"
jobs="$(nproc 2>/dev/null || echo 2)"

parser_filter='WireParse*.*:ProtoCodec*.*:ProtoServer*.*:Fuzz/*.*:Csv.*'
# The binary v3 codec reads length-prefixed fields straight out of raw
# byte spans (memcpy'd fixed-width ints, u16-prefixed strings) -- the
# truncation/patched-length corpus walks every cut point, so any decoder
# overread surfaces here. The session tests cover the dual-framing pump
# and the mixed text/binary pipelined reply path.
wire_v3_filter='WireV3Codec.*:WireV3Server.*:NetSession.Binary*:NetSession.PartialBinary*:NetSession.NegotiatedV*:NetSession.OversizedBinary*:NetSession.UndefinedBinary*:TcpServer.MixedTextAndBinary*:TcpServer.BinaryRequestFrame*'
# The dense estimate store hands out spans over its own vectors
# (history_view) and runs an open-addressing probe over raw slots --
# exactly where an off-by-one would hide in a normal build.
store_filter='ApplyPath*.*:NetworkInterner.*:ZoneTableStore.*'
# The read-side serving layer: mirror directory growth, the bounded alert
# ring's wraparound arithmetic, and the QUERY/QUERYB/ALERTS codecs under
# query stress.
query_filter='EstimateView.*:EstimateMirror.*:AlertRing.*:EstimateKnowledge.*'

run_tree() {
  dir="$1"
  kind="$2"

  echo "== configure ($dir, WISCAPE_SANITIZE=$kind) =="
  cmake -B "$dir" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DWISCAPE_SANITIZE="$kind"

  echo "== build wiscape_tests =="
  cmake --build "$dir" -j"$jobs" --target wiscape_tests

  echo "== full test suite under $kind sanitizer =="
  "$dir"/tests/wiscape_tests

  echo "== parser/codec suites under $kind sanitizer =="
  "$dir"/tests/wiscape_tests --gtest_filter="$parser_filter"

  echo "== binary v3 framing suites under $kind sanitizer =="
  "$dir"/tests/wiscape_tests --gtest_filter="$wire_v3_filter"

  echo "== apply path / estimate store suites under $kind sanitizer =="
  "$dir"/tests/wiscape_tests --gtest_filter="$store_filter"

  echo "== query path / estimate view suites under $kind sanitizer =="
  "$dir"/tests/wiscape_tests --gtest_filter="$query_filter"
}

# halt_on_error fails the script on the first finding in both modes;
# detect_leaks catches cold-path error strings that never get freed.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1 detect_leaks=1}"
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1 print_stacktrace=1}"
export ASAN_OPTIONS UBSAN_OPTIONS

run_tree "$asan_dir" address
run_tree "$ubsan_dir" undefined

echo "ASan + UBSan runs clean."

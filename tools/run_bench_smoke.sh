#!/usr/bin/env sh
# Smoke run of the ingestion-path benches (apply path + sharded scaling).
#
# Builds the two benches in a Release tree and runs each at a reduced
# report count -- enough to exercise every measured code path (stream
# creation, steady-state applies, the allocation audit, the gap micro, the
# shard fan-out) in seconds, not minutes. The point is regression smoke:
# the benches still build, run to completion, emit their JSON lines, and
# bench_apply_path's own exit code still enforces the zero-allocation
# steady state. Throughput numbers from a smoke run are NOT the committed
# results -- regenerate bench_out/*.txt with the default sizes for those.
#
# Output: <out-dir>/bench_apply_path_smoke.txt and
#         <out-dir>/bench_ingest_scaling_smoke.txt (stdout capture; the
#         benches also drop their .jsonl files in <out-dir>). The default
#         out-dir is bench_out/smoke, NOT bench_out/ -- smoke-size .jsonl
#         must never overwrite the committed full-size results.
#
# Wired as the ctest "bench" configuration (ctest -C bench) so the default
# test run never pays for it.
#
# Usage: tools/run_bench_smoke.sh [build-dir] [out-dir]
#        (defaults: build, bench_out/smoke)
set -eu

build_dir="${1:-build}"
out_dir="${2:-bench_out/smoke}"
jobs="$(nproc 2>/dev/null || echo 2)"

# Small enough to finish in seconds, large enough that streams roll over
# and the apply-path audit replays a populated table.
apply_reports=40000
ingest_reports=30000
ingest_wire_us=20

echo "== configure ($build_dir, Release) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build bench_apply_path + bench_ingest_scaling =="
cmake --build "$build_dir" -j"$jobs" \
  --target bench_apply_path bench_ingest_scaling

bench_bin="$(cd "$build_dir"/bench && pwd)"
mkdir -p "$out_dir"
# The benches write their .jsonl into the cwd, matching the committed
# bench_out/ layout.
cd "$out_dir"

echo "== bench_apply_path smoke ($apply_reports reports) =="
"$bench_bin"/bench_apply_path "$apply_reports" \
  | tee bench_apply_path_smoke.txt

echo "== bench_ingest_scaling smoke ($ingest_reports reports) =="
"$bench_bin"/bench_ingest_scaling "$ingest_reports" "$ingest_wire_us" \
  | tee bench_ingest_scaling_smoke.txt

# Append this run's measurements to the perf trajectory: one stamped header
# line, then the jsonl both benches just wrote. Successive smoke runs
# accumulate, so regressions show up as a time series, not a diff.
trajectory="bench_smoke_trajectory.jsonl"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
printf '{"bench":"smoke_run","utc":"%s"}\n' "$stamp" >> "$trajectory"
cat bench_apply_path.jsonl bench_ingest_scaling.jsonl >> "$trajectory"

echo "Bench smoke OK (trajectory: $out_dir/$trajectory)."

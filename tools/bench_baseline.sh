#!/usr/bin/env sh
# Regression guard for the TCP front end's headline rates.
#
# Builds bench_net_server in a Release tree, runs it several times at a
# guard size (full report stream, modest session count -- the C10k leg is
# priced separately by the full bench), takes the per-mode MEDIAN of
#   * query_wire_single     -- single QUERY round trips/s over TCP
#   * ingest_wire           -- REPORTB records/s over TCP, streamed x16
#   * query_wire_single_v3  -- the same round trips, binary v3 frames
#   * ingest_wire_v3        -- the same streamed ingest, binary v3 frames
# across the runs, and compares them against the committed BENCH_net.json
# at the repo root. Either median falling more than 10% below its
# committed value fails the script (exit 1). Medians, not best-of: a
# single lucky scheduler run must not mask a real regression, and a
# single noisy run must not fail a healthy tree.
#
# --update rewrites BENCH_net.json with this run's medians (commit the
# diff alongside the change that justified it). Wired as the ctest
# "bench" configuration (ctest -C bench) so the default test run never
# pays for it.
#
# Usage: tools/bench_baseline.sh [--update] [build-dir] [out-dir]
#        (defaults: build, bench_out/baseline)
set -eu

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
  shift
fi
build_dir="${1:-build}"
out_dir="${2:-bench_out/baseline}"
jobs="$(nproc 2>/dev/null || echo 2)"
repo_root="$(pwd)"
baseline="$repo_root/BENCH_net.json"

runs=3
reports=200000
sessions=256

echo "== configure ($build_dir, Release) =="
cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release

echo "== build bench_net_server =="
cmake --build "$build_dir" -j"$jobs" --target bench_net_server

bench_bin="$(cd "$build_dir"/bench && pwd)"
mkdir -p "$out_dir"
cd "$out_dir"

: > runs.jsonl
i=1
while [ "$i" -le "$runs" ]; do
  echo "== bench_net_server run $i/$runs ($reports reports, $sessions sessions) =="
  # The bench's own acceptance gate can trip under a loaded machine; the
  # guard's verdict is the median comparison below, so record the exit
  # code but keep collecting samples.
  rc=0
  "$bench_bin"/bench_net_server "$reports" "$sessions" \
    > "run_$i.txt" 2>&1 || rc=$?
  [ "$rc" -eq 0 ] || echo "   (run $i exit=$rc -- see $out_dir/run_$i.txt)"
  cat bench_net_server.jsonl >> runs.jsonl
  i=$((i + 1))
done

# Median of "ops_per_s" across runs for one jsonl mode.
median_of() {
  grep "\"mode\":\"$1\"" runs.jsonl \
    | sed 's/.*"ops_per_s"://; s/[,}].*//' \
    | sort -g \
    | awk '{a[NR] = $1}
           END {
             if (NR == 0) { print 0; exit }
             if (NR % 2) print a[(NR + 1) / 2];
             else printf "%.0f\n", (a[NR / 2] + a[NR / 2 + 1]) / 2;
           }'
}

query_median="$(median_of query_wire_single)"
ingest_median="$(median_of ingest_wire)"
query_v3_median="$(median_of query_wire_single_v3)"
ingest_v3_median="$(median_of ingest_wire_v3)"
echo "medians over $runs runs: query_wire_single=$query_median/s, ingest_wire=$ingest_median rec/s"
echo "                         query_wire_single_v3=$query_v3_median/s, ingest_wire_v3=$ingest_v3_median rec/s"

stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
if [ "$update" -eq 1 ] || [ ! -f "$baseline" ]; then
  printf '{"bench":"net_baseline","query_wire_single":%s,"ingest_wire":%s,"query_wire_single_v3":%s,"ingest_wire_v3":%s,"reports":%s,"sessions":%s,"runs":%s,"utc":"%s"}\n' \
    "$query_median" "$ingest_median" "$query_v3_median" "$ingest_v3_median" \
    "$reports" "$sessions" "$runs" "$stamp" \
    > "$baseline"
  echo "baseline written: $baseline"
  exit 0
fi

base_query="$(sed 's/.*"query_wire_single"://; s/[,}].*//' "$baseline")"
base_ingest="$(sed 's/.*"ingest_wire"://; s/[,}].*//' "$baseline")"
# v3 columns arrived with wire protocol v3; a pre-v3 baseline file guards
# only the text rates until --update rebaselines it.
base_query_v3="$(grep -o '"query_wire_single_v3":[0-9]*' "$baseline" | sed 's/.*://')"
base_ingest_v3="$(grep -o '"ingest_wire_v3":[0-9]*' "$baseline" | sed 's/.*://')"

fail=0
pairs="query_wire_single:$query_median:$base_query \
       ingest_wire:$ingest_median:$base_ingest"
if [ -n "$base_query_v3" ]; then
  pairs="$pairs query_wire_single_v3:$query_v3_median:$base_query_v3"
fi
if [ -n "$base_ingest_v3" ]; then
  pairs="$pairs ingest_wire_v3:$ingest_v3_median:$base_ingest_v3"
fi
for pair in $pairs; do
  mode="${pair%%:*}"
  rest="${pair#*:}"
  got="${rest%%:*}"
  want="${rest#*:}"
  verdict="$(awk -v g="$got" -v w="$want" \
    'BEGIN { printf "%.3f %s", g / w, (g >= 0.9 * w) ? "ok" : "REGRESSION" }')"
  echo "  $mode: $got vs baseline $want -> $verdict (floor 0.90x)"
  case "$verdict" in *REGRESSION*) fail=1 ;; esac
done

if [ "$fail" -ne 0 ]; then
  echo "Bench baseline REGRESSED (>10% below $baseline). If the change is"
  echo "intentional, rerun with --update and commit the new BENCH_net.json."
  exit 1
fi
echo "Bench baseline OK."

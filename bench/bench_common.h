// Shared plumbing for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper. They
// share standard dataset recipes (sized so a full bench run finishes in
// minutes) and a CSV cache so the expensive city-wide campaigns are built
// once per build directory and reused by later benches.
#pragma once

#include <string>
#include <vector>

#include "cellnet/presets.h"
#include "probe/collect.h"
#include "trace/dataset.h"

namespace wiscape::bench {

/// Master seed for every bench (reproducible across runs and binaries).
inline constexpr std::uint64_t bench_seed = 20111102;  // IMC'11 day one

/// Standard Standalone campaign (Madison, NetB, TCP + pings). Heavier than
/// any other recipe; cached as CSV in the working directory.
trace::dataset standalone_dataset();

/// Standard WiRover campaign on the corridor preset (NetB+NetC pings).
trace::dataset wirover_dataset();

/// Spot + Proximate campaigns for one region; locations are the region's
/// default spot picks.
struct region_data {
  cellnet::region_preset preset;
  std::vector<std::string> networks;
  trace::dataset spot;
  trace::dataset proximate;
  geo::lat_lon location;  ///< the representative zone center
};
region_data spot_region(cellnet::region_preset preset);

/// Standard Short-segment campaign (three operators).
trace::dataset segment_dataset();

// ---------------------------------------------------------------- output ----

/// Prints the bench banner: which figure/table, what the paper reports.
void banner(const std::string& experiment, const std::string& paper_claim);

/// Prints one paper-vs-measured row.
void report(const std::string& what, const std::string& paper,
            const std::string& measured);

/// Formats helpers.
std::string fmt(double v, int decimals = 2);
std::string fmt_kbps(double bps);
std::string fmt_ms(double seconds);
std::string fmt_pct(double fraction, int decimals = 1);

/// Prints an x/y series as aligned columns (a printable "figure").
void print_series(const std::string& x_label, const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int max_rows = 24);

}  // namespace wiscape::bench

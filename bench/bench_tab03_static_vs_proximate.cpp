// Table 3: Static (ground truth) vs Proximate (client-sourced, driving
// within the zone) mean and stddev per network-location.
// Paper: client-sourced means land within ~1-6% of the static means, e.g.
// NetB-WI UDP 867 (67) static vs 855 (89) proximate.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

using namespace wiscape;

namespace {

void row(const std::string& label, const std::vector<double>& s,
         const std::vector<double>& p, bool ms) {
  if (s.empty() || p.empty()) return;
  const double sm = stats::mean(s);
  const double pm = stats::mean(p);
  auto v = [&](double x) {
    return ms ? bench::fmt(x * 1e3, 1) : bench::fmt(x / 1e3, 0);
  };
  std::printf("  %-18s static %8s (%s)  proximate %8s (%s)  err %5.1f%%\n",
              label.c_str(), v(sm).c_str(), v(stats::stddev(s)).c_str(),
              v(pm).c_str(), v(stats::stddev(p)).c_str(),
              sm != 0.0 ? std::abs(pm - sm) / sm * 100.0 : 0.0);
}

void region_rows(const bench::region_data& region, const char* suffix) {
  for (const auto& net : region.networks) {
    row(net + "-" + suffix + " TCP (Kbps)",
        region.spot.metric_values(trace::metric::tcp_throughput_bps, net),
        region.proximate.metric_values(trace::metric::tcp_throughput_bps, net),
        false);
    row(net + "-" + suffix + " UDP (Kbps)",
        region.spot.metric_values(trace::metric::udp_throughput_bps, net),
        region.proximate.metric_values(trace::metric::udp_throughput_bps, net),
        false);
    row(net + "-" + suffix + " Jitter (ms)",
        region.spot.metric_values(trace::metric::jitter_s, net),
        region.proximate.metric_values(trace::metric::jitter_s, net), true);
  }
}

}  // namespace

int main() {
  bench::banner(
      "Table 3 - Static vs Proximate closeness per network-location",
      "client-sourced (Proximate) means within a few percent of ground "
      "truth (Static); e.g. NetB-WI UDP 867 vs 855 Kbps (<1% error)");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  std::printf("\n");
  region_rows(wi, "WI");
  region_rows(nj, "NJ");

  // Headline: every throughput pair within 10%.
  double worst = 0.0;
  for (const auto* region : {&wi, &nj}) {
    for (const auto& net : region->networks) {
      for (auto m : {trace::metric::tcp_throughput_bps,
                     trace::metric::udp_throughput_bps}) {
        const auto s = region->spot.metric_values(m, net);
        const auto p = region->proximate.metric_values(m, net);
        if (s.empty() || p.empty()) continue;
        worst = std::max(worst, std::abs(stats::mean(p) - stats::mean(s)) /
                                    stats::mean(s));
      }
    }
  }
  std::printf("\n");
  bench::report("worst static-vs-proximate throughput gap", "a few %",
                bench::fmt_pct(worst));
  return 0;
}

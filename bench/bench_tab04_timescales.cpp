// Table 4: standard deviation of long-term (30 min) vs short-term (10 s)
// bins of the Spot series.
// Paper: short-term stddev is several times the long-term stddev for every
// network and location (e.g. NetA-WI TCP 211 vs 377 Kbps) -- which is what
// rules out tiny, infrequent measurements.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

using namespace wiscape;

namespace {

void region_rows(const bench::region_data& region, const char* suffix,
                 double& min_ratio) {
  for (const auto& net : region.networks) {
    for (auto [metric, label] :
         {std::pair{trace::metric::tcp_throughput_bps, "TCP"},
          std::pair{trace::metric::udp_throughput_bps, "UDP"},
          std::pair{trace::metric::jitter_s, "Jitter"}}) {
      const auto series = region.spot.metric_series(metric, net);
      if (series.size() < 100) continue;
      const double long_sd = stats::stddev(series.bin_means(1800.0));
      const double short_sd = stats::stddev(series.bin_means(10.0));
      const bool ms = metric == trace::metric::jitter_s;
      const double scale = ms ? 1e3 : 1e-3;
      std::printf("  %-22s long(30m) %8.1f   short(10s) %8.1f   ratio %.2fx\n",
                  (net + "-" + suffix + " " + label).c_str(), long_sd * scale,
                  short_sd * scale, long_sd > 0 ? short_sd / long_sd : 0.0);
      if (metric != trace::metric::jitter_s && long_sd > 0.0) {
        min_ratio = std::min(min_ratio, short_sd / long_sd);
      }
    }
  }
}

}  // namespace

int main() {
  bench::banner(
      "Table 4 - stddev of 30-min vs 10-s bins (Spot)",
      "short-term stddev significantly higher than long-term for every "
      "network (1.5-4x in the paper's table)");

  double min_ratio = 1e9;
  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  std::printf("\n  (throughput in Kbps, jitter in ms)\n");
  region_rows(wi, "WI", min_ratio);
  region_rows(nj, "NJ", min_ratio);

  std::printf("\n");
  bench::report("min short/long throughput stddev ratio", "> 1 everywhere",
                bench::fmt(min_ratio, 2) + "x");
  return 0;
}

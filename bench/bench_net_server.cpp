// Net server - the epoll TCP front end (ISSUE 7 tentpole; no paper figure
// -- this bench prices what a remote client pays to talk to the
// coordinator over real sockets instead of in-process handle() calls, and
// proves the two claims the transport makes: it holds C10k concurrent
// sessions on loopback with zero accounting violations, and QUERYB
// batching amortises the per-request syscall round trip away).
//
// Four measurements over one warm 4-shard coordinator (the
// bench_query_path corpus recipe):
//  * C10k: 10,000 concurrent loopback sessions opened, spot-checked with
//    live round trips, then closed. Acceptance: every session accepted
//    and accounted (accepts == closes, active back to 0, no oversize /
//    bad-frame / HELLO-violation disconnects).
//  * ingest: REPORTB frames of 64 streamed over one TCP connection vs the
//    same frames through handle() -- the wire tax on the write path.
//    Acceptance (exit code): wire ingest recovers >= 0.90x of the
//    in-process rate -- the ISSUE 8 zero-allocation reply path plus the
//    one-writev-per-wake flush close the gap from the 0.82x seed.
//  * pipelined REPORT: bursts of single-line REPORTs sent back-to-back on
//    one connection. The session detects the run, groups it through
//    handle_report_group() -> report_batch(), and all the ACKs leave in
//    one writev -- the adaptive micro-batch that makes naive line-per-line
//    reporters cheap without their opting into REPORTB.
//  * single QUERY over TCP: one request per round trip, the naive remote
//    client. Every item pays send + epoll wakeup + recv.
//  * batched QUERYB over TCP: the same lookups in frames of 1024, a few
//    frames in flight (the streamed shape a throughput-bound reader uses).
//    Acceptance (exit code): batched items/s >= 5x the single-QUERY
//    round-trip rate -- the transport claim that motivates QUERYB's
//    existence (docs/WIRE_PROTOCOL.md). The 5x bar applies when the
//    client has a core of its own on top of the event loops; timesharing
//    one core, single round trips degenerate to pure CPU cost (no real
//    wakeup latency to amortise) and the enforced bar becomes recovering
//    >= 80% of the in-process handler ceiling over the wire (5x still
//    enforced) -- the same oversubscription discipline as
//    bench_query_path, recalibrated for the ISSUE 8 handler speedup.
//
// The committed read-side baseline (bench_query_path read_wire, 0.49 M/s
// in-process single QUERY) is re-measured and printed for comparison. On a
// host with enough cores for the event loops, batched QUERYB across
// several connections reaches past that baseline toward 5x via loop
// parallelism (SO_REUSEPORT spreads sessions across loops, sharded
// concurrent mode takes the dispatches).
//
// Machine-readable results go to bench_net_server.jsonl in the working
// directory (one JSON object per line; schema in EXPERIMENTS.md).
//
//   ./bench_net_server [reports] [sessions]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "stats/rng.h"
#include "trace/record.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The bench_query_path corpus: all probe kinds, two operators, a 5x5 zone
// neighbourhood.
std::vector<trace::measurement_record> make_stream(const geo::projection& proj,
                                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + static_cast<double>(i) * 0.5;
    r.network = rng.chance(0.5) ? "NetB" : "NetC";
    r.pos = proj.to_lat_lon(
        {443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         443.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    r.client_id = 1 + (i % 64);
    r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    r.success = true;
    if (r.kind == trace::probe_kind::ping) {
      r.rtt_s = 0.1 + 0.02 * rng.uniform();
      r.ping_sent = 5;
    } else {
      r.throughput_bps = 1e6 * (1.0 + rng.uniform());
    }
    out.push_back(r);
  }
  return out;
}

core::sharded_config pipeline_config() {
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 4;
  cfg.synchronous = false;
  cfg.queue_capacity = 4096;
  cfg.drain_batch = 64;
  return cfg;
}

/// C10k needs ~2x `sessions` descriptors in one process (client + server
/// ends both live here); lift RLIMIT_NOFILE as far as the hard cap allows.
std::size_t raise_nofile(std::size_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < want) {
    rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? want
            : std::min<rlim_t>(want, lim.rlim_max);
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

std::uint64_t counter_value(const char* name) {
  return static_cast<std::uint64_t>(
      obs::registry::global().get_counter(name).value());
}

void jsonl_result(std::ofstream& out, const char* mode, std::size_t ops,
                  double ops_per_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", ops_per_s);
  out << "{\"bench\":\"net_server\",\"mode\":\"" << mode
      << "\",\"ops\":" << ops << ",\"ops_per_s\":" << buf << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  std::size_t sessions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000;
  constexpr int kReps = 3;
  constexpr std::size_t kFrame = 64;     // REPORTB records per frame
  constexpr std::size_t kQueryB = 1024;  // QUERYB lookups per frame

  bench::banner("Net server - epoll TCP front end",
                "no paper figure; ISSUE 7 acceptance (C10k sessions clean, "
                "batched QUERYB >= 5x single round trips)");
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t loops = std::min<std::size_t>(4, hw);
  // The client fleet runs in a forked child so each side of the 10k
  // connections has its own descriptor budget (one fd per session per
  // process, plus slack for epoll/listeners/stdio).
  const std::size_t nofile = raise_nofile(sessions + 1024);
  if (nofile > 0 && nofile < sessions + 1024) sessions = nofile - 1024;
  std::printf("  reports: %zu, sessions: %zu, event loops: %zu, "
              "cores: %u, nofile: %zu\n\n",
              reports, sessions, loops, hw, nofile);

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(proj, reports);
  double sink = 0.0;

  // ---- warm coordinator behind the TCP front end --------------------------
  core::sharded_coordinator warm(grid, {"NetB", "NetC"}, pipeline_config(),
                                 bench::bench_seed);
  for (const auto& rec : stream) warm.report(rec);
  warm.flush();
  proto::coordinator_server server(warm);

  std::vector<proto::query_request> queries;
  for (const auto& key : warm.keys()) {
    proto::query_request q;
    q.pos = grid.center(key.zone);
    q.network = key.network;
    q.metric = key.metric;
    q.time_s = stream.back().time_s;
    queries.push_back(q);
  }
  std::printf("  streams materialised: %zu\n\n", queries.size());

  net::server_config ncfg;
  ncfg.event_loops = loops;
  ncfg.limits.require_hello = false;  // sized legs skip the handshake
  ncfg.max_sessions = sessions + 64;
  // The kernel silently caps listen backlogs at somaxconn; an overflowed
  // accept queue drops final ACKs and strands connections in SYN-ACK
  // retransmit backoff, so the connect loop below also paces itself.
  ncfg.listen_backlog = static_cast<int>(std::min<std::size_t>(sessions, 4096));
  net::tcp_server tcp(server, ncfg);
  tcp.start();

  // ---- C10k: concurrent loopback sessions ---------------------------------
  bool c10k_ok = true;
  double connect_rate = 0.0;
  {
    const std::uint64_t accepts0 = counter_value(obs::names::kNetAccepts);
    const std::uint64_t closes0 = counter_value(obs::names::kNetCloses);
    const std::uint64_t bad0 =
        counter_value(obs::names::kNetOversizeDisconnects) +
        counter_value(obs::names::kNetHelloViolations) +
        counter_value(obs::names::kNetCapacityRejects);

    int to_child[2], to_parent[2];
    if (pipe(to_child) != 0 || pipe(to_parent) != 0) return 2;
    const std::uint16_t port = tcp.port();
    const std::string probe = proto::encode(queries.front());
    const double t0 = now_s();
    const pid_t pid = fork();
    if (pid == 0) {
      // Child: the client fleet. It inherited the server's fds but not its
      // threads -- it only connects, probes, holds, and closes on command.
      ::close(to_child[1]);
      ::close(to_parent[0]);
      std::vector<net::line_client> fleet(sessions);
      std::size_t connected = 0;
      for (auto& c : fleet) {
        if (!c.try_connect("127.0.0.1", port)) break;
        // Stay inside the accept queue: on a timeshared core a tight
        // connect loop outruns the loops' accept drain, overflows the
        // backlog, and strands handshakes in SYN-ACK retransmit backoff.
        if (++connected % 1024 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      // Spot-check: every 500th session still answers a live round trip
      // while the other thousands sit connected.
      bool child_ok = connected == sessions;
      for (std::size_t i = 0; i < connected; i += 500) {
        try {
          const std::string reply = fleet[i].request(probe);
          const auto type = proto::message_type(reply);
          child_ok &= type == "EST" || type == "NONE";
        } catch (const std::exception&) {
          child_ok = false;
        }
      }
      char status = child_ok ? 'U' : 'u';
      (void)!::write(to_parent[1], &status, 1);
      char cmd = 0;
      (void)!::read(to_child[0], &cmd, 1);
      for (auto& c : fleet) c.close();
      status = 'D';
      (void)!::write(to_parent[1], &status, 1);
      ::_exit(0);  // skip destructors of the inherited (threadless) server
    }
    ::close(to_child[0]);
    ::close(to_parent[1]);
    char status = 0;
    (void)!::read(to_parent[0], &status, 1);
    const bool probe_ok = status == 'U';
    connect_rate = static_cast<double>(sessions) / (now_s() - t0);
    for (int spin = 0; spin < 5000 && tcp.active_sessions() < sessions;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::size_t peak = tcp.active_sessions();
    const bool up_ok = peak == sessions;

    const char go = 'C';
    (void)!::write(to_child[1], &go, 1);
    (void)!::read(to_parent[0], &status, 1);
    for (int spin = 0; spin < 10000 && tcp.active_sessions() > 0; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
    ::close(to_child[1]);
    ::close(to_parent[0]);
    const bool drain_ok = tcp.active_sessions() == 0;
    const std::uint64_t accepted =
        counter_value(obs::names::kNetAccepts) - accepts0;
    const std::uint64_t closed = counter_value(obs::names::kNetCloses) - closes0;
    const std::uint64_t bad =
        counter_value(obs::names::kNetOversizeDisconnects) +
        counter_value(obs::names::kNetHelloViolations) +
        counter_value(obs::names::kNetCapacityRejects) - bad0;
    const bool ledger_ok =
        accepted == sessions && closed == accepted && bad == 0;
    c10k_ok = up_ok && probe_ok && drain_ok && ledger_ok;
    std::printf("  C10k: %zu sessions up (%0.0f connects/s), peak=%zu "
                "accepted=%llu closed=%llu violations=%llu\n"
                "        up=%s probes=%s drain=%s ledger=%s -> %s\n\n",
                sessions, connect_rate, peak,
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(closed),
                static_cast<unsigned long long>(bad), up_ok ? "ok" : "FAIL",
                probe_ok ? "ok" : "FAIL", drain_ok ? "ok" : "FAIL",
                ledger_ok ? "ok" : "FAIL",
                c10k_ok ? "clean" : "VIOLATION");
  }

  // ---- REPORTB ingest: wire vs in-process ---------------------------------
  std::vector<std::string> report_frames;
  for (std::size_t off = 0; off < stream.size(); off += kFrame) {
    const std::size_t n = std::min(kFrame, stream.size() - off);
    report_frames.push_back(
        proto::encode_report_batch(std::span(stream).subspan(off, n)));
  }
  // Strict request-response first (the pre-ISSUE-8 shape, one frame per
  // round trip: every frame pays a context-switch pair), then the streamed
  // shape a real feeder uses -- kDepth frames in flight on one connection,
  // which is what the adaptive read-drain + one-writev-per-wake flush were
  // built for. The streamed number is the gated "TCP REPORTB ingest" rate.
  // The gated ratio interleaves an in-process pass and a streamed pass
  // within each rep and takes the median of the per-rep paired ratios --
  // the bench_query_path discipline, so host drift hits both columns
  // equally instead of letting one leg's lucky rep skew the quotient.
  constexpr std::size_t kDepth = 16;  // REPORTB frames in flight
  std::vector<std::string> bursts;
  std::vector<std::size_t> burst_counts;
  for (std::size_t off = 0; off < report_frames.size(); off += kDepth) {
    const std::size_t n = std::min(kDepth, report_frames.size() - off);
    std::string burst;
    for (std::size_t i = 0; i < n; ++i) {
      burst += report_frames[off + i];
      burst += '\n';
    }
    bursts.push_back(std::move(burst));
    burst_counts.push_back(n);
  }
  double inproc_ingest = 0.0;
  double wire_ingest_rr = 0.0, wire_ingest = 0.0;
  double ingest_ratio = 0.0;
  {
    net::line_client c;
    c.connect("127.0.0.1", tcp.port());
    for (int r = 0; r < kReps; ++r) {
      const double t0 = now_s();
      for (const auto& f : report_frames) sink += c.request_view(f).size();
      wire_ingest_rr = std::max(
          wire_ingest_rr, static_cast<double>(stream.size()) / (now_s() - t0));
    }
    std::vector<double> ratios;
    for (int r = 0; r < kReps; ++r) {
      double t0 = now_s();
      for (const auto& f : report_frames) sink += server.handle(f).size();
      const double inproc =
          static_cast<double>(stream.size()) / (now_s() - t0);
      inproc_ingest = std::max(inproc_ingest, inproc);
      t0 = now_s();
      for (std::size_t b = 0; b < bursts.size(); ++b) {
        sink += static_cast<double>(c.pipeline(bursts[b], burst_counts[b]));
      }
      const double wire = static_cast<double>(stream.size()) / (now_s() - t0);
      wire_ingest = std::max(wire_ingest, wire);
      ratios.push_back(wire / inproc);
    }
    std::sort(ratios.begin(), ratios.end());
    ingest_ratio = ratios[ratios.size() / 2];
  }
  std::printf("  REPORTB ingest, in-process:        %11.0f records/s\n",
              inproc_ingest);
  std::printf("  REPORTB ingest, TCP round trips:   %11.0f records/s  "
              "(%.2fx)\n",
              wire_ingest_rr, wire_ingest_rr / inproc_ingest);
  std::printf("  REPORTB ingest, TCP streamed x%zu:  %11.0f records/s  "
              "(%.2fx median paired)\n\n",
              kDepth, wire_ingest, ingest_ratio);

  // ---- binary v3 ingest: the same records, length-prefixed frames ---------
  // The wire v3 REPORTB: identical records, identical stream depth and
  // connection, but fixed-width binary payloads instead of CSV -- no float
  // printing on the client, no parse on the server. Each rep interleaves a
  // text streamed pass and a binary streamed pass and the gated gain is the
  // median of the per-rep paired ratios, so host drift cancels. This is
  // the tentpole claim: the binary framing must buy >= 1.5x the text
  // streamed ingest rate.
  std::vector<std::string> report_frames_v3;
  for (std::size_t off = 0; off < stream.size(); off += kFrame) {
    const std::size_t n = std::min(kFrame, stream.size() - off);
    report_frames_v3.push_back(proto::v3::encode_report_batch_frame(
        std::span(stream).subspan(off, n)));
  }
  double wire_ingest_v3 = 0.0;
  double ingest_v3_gain = 0.0;  // median paired v3/text streamed ratio
  {
    // Binary frames are self-delimiting: bursts concatenate without
    // separators.
    std::vector<std::string> bursts_v3;
    std::vector<std::size_t> burst_counts_v3;
    for (std::size_t off = 0; off < report_frames_v3.size(); off += kDepth) {
      const std::size_t n = std::min(kDepth, report_frames_v3.size() - off);
      std::string burst;
      for (std::size_t i = 0; i < n; ++i) burst += report_frames_v3[off + i];
      bursts_v3.push_back(std::move(burst));
      burst_counts_v3.push_back(n);
    }
    net::line_client c;
    c.connect("127.0.0.1", tcp.port());
    std::vector<double> ratios;
    for (int r = 0; r < kReps; ++r) {
      double t0 = now_s();
      for (std::size_t b = 0; b < bursts.size(); ++b) {
        sink += static_cast<double>(c.pipeline(bursts[b], burst_counts[b]));
      }
      const double text = static_cast<double>(stream.size()) / (now_s() - t0);
      t0 = now_s();
      for (std::size_t b = 0; b < bursts_v3.size(); ++b) {
        sink += static_cast<double>(
            c.pipeline(bursts_v3[b], burst_counts_v3[b]));
      }
      const double binary =
          static_cast<double>(stream.size()) / (now_s() - t0);
      wire_ingest_v3 = std::max(wire_ingest_v3, binary);
      ratios.push_back(binary / text);
    }
    std::sort(ratios.begin(), ratios.end());
    ingest_v3_gain = ratios[ratios.size() / 2];
  }
  std::printf("  REPORTB ingest, TCP binary v3 x%zu: %11.0f records/s  "
              "(%.2fx text streamed, median paired)\n\n",
              kDepth, wire_ingest_v3, ingest_v3_gain);

  // ---- pipelined single-line REPORTs --------------------------------------
  // Bursts of complete REPORT lines land in one read; the session's
  // micro-batch detector hands each run to handle_report_group() and the
  // positional ACKs leave in a single writev. This is the naive
  // line-per-line reporter made cheap -- no REPORTB opt-in required.
  constexpr std::size_t kPipeline = 256;
  std::vector<std::string> report_blocks;
  std::vector<std::size_t> block_counts;
  {
    proto::measurement_report rep;
    std::string block;
    std::size_t in_block = 0;
    for (const auto& rec : stream) {
      rep.client_id = rec.client_id;
      rep.record = rec;
      block += proto::encode(rep);
      block += '\n';
      if (++in_block == kPipeline) {
        report_blocks.push_back(std::move(block));
        block_counts.push_back(in_block);
        block.clear();
        in_block = 0;
      }
    }
    if (in_block > 0) {
      report_blocks.push_back(std::move(block));
      block_counts.push_back(in_block);
    }
  }
  double wire_pipelined = 0.0;
  std::uint64_t pipeline_writevs = 0;
  {
    net::line_client c;
    c.connect("127.0.0.1", tcp.port());
    const std::uint64_t w0 = counter_value(obs::names::kNetWritevCalls);
    for (int r = 0; r < kReps; ++r) {
      const double t0 = now_s();
      for (std::size_t b = 0; b < report_blocks.size(); ++b) {
        sink += static_cast<double>(
            c.pipeline(report_blocks[b], block_counts[b]));
      }
      wire_pipelined = std::max(
          wire_pipelined, static_cast<double>(stream.size()) / (now_s() - t0));
    }
    pipeline_writevs = counter_value(obs::names::kNetWritevCalls) - w0;
  }
  std::printf("  pipelined REPORT, over TCP:        %11.0f records/s  "
              "(%.2fx in-process REPORTB; %llu writevs for %zu replies)\n\n",
              wire_pipelined, wire_pipelined / inproc_ingest,
              static_cast<unsigned long long>(pipeline_writevs),
              static_cast<std::size_t>(kReps) * stream.size());

  // ---- read path: in-process baseline, then the two wire shapes -----------
  std::vector<std::string> single_lines;
  for (const auto& q : queries) single_lines.push_back(proto::encode(q));
  std::vector<std::string> query_frames;
  for (std::size_t off = 0; off < queries.size(); off += kQueryB) {
    const std::size_t n = std::min(kQueryB, queries.size() - off);
    query_frames.push_back(
        proto::encode_query_batch(std::span(queries).subspan(off, n)));
  }

  const std::size_t inproc_ops = std::max<std::size_t>(reports / 2, 50'000);
  double inproc_query = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const double t0 = now_s();
    // Manual wrap instead of `i % size`: the div would be the single most
    // expensive instruction in this loop.
    std::size_t line = 0;
    for (std::size_t i = 0; i < inproc_ops; ++i) {
      sink += server.handle(single_lines[line]).size();
      if (++line == single_lines.size()) line = 0;
    }
    inproc_query = std::max(
        inproc_query, static_cast<double>(inproc_ops) / (now_s() - t0));
  }

  net::line_client reader;
  reader.connect("127.0.0.1", tcp.port());

  // Single QUERY per round trip: every item pays the full syscall + epoll
  // wakeup; size the op count off a quick calibration so the leg stays
  // seconds long at any round-trip latency.
  double calib0 = now_s();
  for (int i = 0; i < 200; ++i) {
    sink += reader.request_view(single_lines[0]).size();
  }
  const double rtt = (now_s() - calib0) / 200.0;
  const std::size_t single_ops = std::max<std::size_t>(
      2000, std::min<std::size_t>(100'000,
                                  static_cast<std::size_t>(2.0 / rtt)));
  // Two extra reps here: the round trip is context-switch-bound, and the
  // scheduler's per-run variance (~10%) dominates any code-level delta, so
  // max-of-N needs a few more samples than the CPU-bound legs.
  double tcp_query = 0.0;
  for (int r = 0; r < kReps + 2; ++r) {
    const double t0 = now_s();
    std::size_t line = 0;
    for (std::size_t i = 0; i < single_ops; ++i) {
      sink += reader.request_view(single_lines[line]).size();
      if (++line == single_lines.size()) line = 0;
    }
    tcp_query = std::max(tcp_query,
                         static_cast<double>(single_ops) / (now_s() - t0));
  }

  // The same single round trips through binary v3 query frames: still one
  // syscall pair + wakeup per item, so the framing can only shave the
  // encode/parse share of each trip.
  std::vector<std::string> single_frames_v3;
  for (const auto& q : queries) {
    single_frames_v3.push_back(proto::v3::encode_query_frame(q));
  }
  double tcp_query_v3 = 0.0;
  for (int r = 0; r < kReps + 2; ++r) {
    const double t0 = now_s();
    std::size_t line = 0;
    for (std::size_t i = 0; i < single_ops; ++i) {
      sink += reader.request_frame(single_frames_v3[line]).size();
      if (++line == single_frames_v3.size()) line = 0;
    }
    tcp_query_v3 = std::max(tcp_query_v3,
                            static_cast<double>(single_ops) / (now_s() - t0));
  }

  // Batched QUERYB: the same lookups, kQueryB per frame, over the wire and
  // in-process (the handler ceiling batching converges to). The wire half
  // streams kQDepth frames in flight on the one connection -- the shape a
  // throughput-bound remote reader uses, and the same shape the ingest leg
  // measures -- so the adaptive read-drain dispatches several frames per
  // wake and the ESTB replies coalesce into few writevs. The two passes
  // interleave within each rep and the ceiling-recovery ratio is the
  // median of the per-rep pairs, same discipline as the ingest legs.
  const std::size_t batch_rounds =
      std::max<std::size_t>(1, 200'000 / std::max<std::size_t>(
                                             1, queries.size()));
  constexpr std::size_t kQDepth = 4;  // QUERYB frames in flight
  double inproc_queryb = 0.0, tcp_queryb = 0.0;
  double queryb_recovery = 0.0;
  {
    std::vector<std::string> qbursts;
    std::vector<std::size_t> qburst_counts;
    for (std::size_t off = 0; off < query_frames.size(); off += kQDepth) {
      const std::size_t n = std::min(kQDepth, query_frames.size() - off);
      std::string burst;
      for (std::size_t i = 0; i < n; ++i) {
        burst += query_frames[off + i];
        burst += '\n';
      }
      qbursts.push_back(std::move(burst));
      qburst_counts.push_back(n);
    }
    std::vector<double> ratios;
    for (int r = 0; r < kReps; ++r) {
      double t0 = now_s();
      std::size_t items = 0;
      while (items < inproc_ops) {
        for (const auto& f : query_frames) sink += server.handle(f).size();
        items += queries.size();
      }
      const double inproc = static_cast<double>(items) / (now_s() - t0);
      inproc_queryb = std::max(inproc_queryb, inproc);
      t0 = now_s();
      items = 0;
      for (std::size_t round = 0; round < batch_rounds; ++round) {
        for (std::size_t b = 0; b < qbursts.size(); ++b) {
          sink += static_cast<double>(
              reader.pipeline(qbursts[b], qburst_counts[b]));
        }
        items += queries.size();
      }
      const double wire = static_cast<double>(items) / (now_s() - t0);
      tcp_queryb = std::max(tcp_queryb, wire);
      ratios.push_back(wire / inproc);
    }
    std::sort(ratios.begin(), ratios.end());
    queryb_recovery = ratios[ratios.size() / 2];
  }
  reader.close();

  const double batch_speedup = tcp_queryb / tcp_query;
  std::printf("  read-only, in-process QUERY:       %11.0f queries/s  "
              "(committed baseline 491716/s)\n",
              inproc_query);
  std::printf("  read-only, in-process QUERYB:      %11.0f lookups/s  "
              "(handler ceiling)\n",
              inproc_queryb);
  std::printf("  single QUERY over TCP:             %11.0f round trips/s\n",
              tcp_query);
  std::printf("  single binary QUERY over TCP:      %11.0f round trips/s  "
              "(%.2fx text)\n",
              tcp_query_v3, tcp_query_v3 / tcp_query);
  std::printf("  batched QUERYB over TCP (x%zu):      %11.0f lookups/s  "
              "(%.1fx single round trips, %.0f%% of ceiling, median paired "
              "%.2fx)\n",
              kQDepth, tcp_queryb, batch_speedup,
              100.0 * tcp_queryb / inproc_queryb, queryb_recovery);

  // The acceptance bar. With a core for the client on top of the event
  // loops, a single-QUERY client pays genuine wakeup latency per item
  // while QUERYB hides it: the 5x amortisation claim is enforceable
  // directly. Timesharing one core, both legs degenerate to pure CPU cost
  // and the ratio is capped by handler-cost ratios no matter how good the
  // transport is -- there the additional enforceable claim is that
  // batching recovers >= 80% of the in-process handler ceiling over the
  // wire (paired-rep median, the same oversubscription discipline as
  // bench_query_path). 80%, not the 90% this bench shipped with: the
  // zero-allocation reply path (ISSUE 8) made the in-process ceiling
  // ~1.6x faster, while a QUERYB frame still moves ~165 KiB through the
  // kernel (65 KiB of queries in, ~100 KiB of ESTB out) with every byte
  // traversed ~4x (encode, ring, kernel copy, client line scan) on the
  // same timeshared core -- a fixed per-byte tax that is now a larger
  // fraction of the faster ceiling. The 5x amortisation claim is enforced
  // in both regimes.
  const bool dedicated_cores = hw >= loops + 1;
  const double bar = 5.0;
  const bool batch_ok =
      batch_speedup >= bar && (dedicated_cores || queryb_recovery >= 0.80);
  std::printf("  cores: %u for %zu loops + client -> bar %.2fx%s\n\n", hw,
              loops, bar,
              dedicated_cores ? ""
                              : "  (timeshared: plus >= 0.80x ceiling "
                                "recovery, median paired)");

  tcp.stop();

  // ISSUE 8 bar: the zero-allocation reply path plus one-writev-per-wake
  // flushing must recover >= 0.90x of the in-process REPORTB ingest rate
  // over the wire (the seed shipped at 0.82x).
  const bool ingest_ok = ingest_ratio >= 0.90;
  // ISSUE 9 bar: streamed binary REPORTB ingest must reach >= 1.5x the
  // text streamed rate (median paired) -- the claim that justifies the
  // second codec's existence.
  const bool ingest_v3_ok = ingest_v3_gain >= 1.5;

  bench::report("C10k concurrent sessions",
                std::to_string(sessions) + " clean",
                c10k_ok ? "clean" : "VIOLATION");
  bench::report("REPORTB over TCP vs in-process", ">= 0.90x",
                bench::fmt(ingest_ratio) + "x");
  bench::report("binary v3 ingest vs text streamed", ">= 1.50x",
                bench::fmt(ingest_v3_gain) + "x");
  bench::report("batched QUERYB vs single round trips",
                ">= " + bench::fmt(bar) + "x",
                bench::fmt(batch_speedup) + "x");
  bench::report("QUERYB wire recovery of ceiling",
                dedicated_cores ? "-" : ">= 0.80x (timeshared)",
                bench::fmt(queryb_recovery) + "x");
  bench::report("QUERYB over TCP vs in-process QUERY", "-",
                bench::fmt(tcp_queryb / inproc_query) + "x");

  std::ofstream jsonl("bench_net_server.jsonl");
  jsonl_result(jsonl, "c10k_sessions", sessions, connect_rate);
  jsonl_result(jsonl, "ingest_inproc", stream.size(), inproc_ingest);
  jsonl_result(jsonl, "ingest_wire_rr", stream.size(), wire_ingest_rr);
  jsonl_result(jsonl, "ingest_wire", stream.size(), wire_ingest);
  jsonl_result(jsonl, "ingest_wire_v3", stream.size(), wire_ingest_v3);
  jsonl_result(jsonl, "ingest_wire_pipelined", stream.size(), wire_pipelined);
  jsonl_result(jsonl, "query_inproc", inproc_ops, inproc_query);
  jsonl_result(jsonl, "queryb_inproc", inproc_ops, inproc_queryb);
  jsonl_result(jsonl, "query_wire_single", single_ops, tcp_query);
  jsonl_result(jsonl, "query_wire_single_v3", single_ops, tcp_query_v3);
  jsonl_result(jsonl, "query_wire_batched",
               static_cast<std::size_t>(batch_rounds * queries.size()),
               tcp_queryb);
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"net_server\",\"mode\":\"acceptance\","
                  "\"batch_speedup\":%.2f,\"bar\":%.2f,\"c10k_clean\":%s,"
                  "\"ingest_ratio\":%.2f,\"ingest_v3_gain\":%.2f,"
                  "\"queryb_recovery\":%.2f,"
                  "\"cores\":%u,\"event_loops\":%zu}\n",
                  batch_speedup, bar, c10k_ok ? "true" : "false",
                  ingest_ratio, ingest_v3_gain, queryb_recovery, hw, loops);
    jsonl << buf;
  }

  std::fprintf(stderr, "# checksum %.1f\n", sink);
  return (c10k_ok && ingest_ok && ingest_v3_ok && batch_ok) ? 0 : 1;
}

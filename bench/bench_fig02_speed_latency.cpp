// Figure 2: vehicle speed vs network latency (WiRover dataset).
// Paper: (a) latencies cluster ~120 ms with no speed trend 0-120 km/h;
// (b) CDF of per-zone correlation coefficients: 95% of zones below 0.16.
#include <cstdio>
#include <unordered_map>

#include "bench_common.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 2 - latency vs vehicle speed (WiRover, NetB & NetC)",
      "(a) no latency trend with speed, values ~120 ms; (b) 95% of zones "
      "have |correlation| <= 0.16");

  const auto ds = bench::wirover_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::corridor,
                                            bench::bench_seed);
  const geo::zone_grid grid(dep.proj(), 250.0);

  for (const auto& net : dep.names()) {
    // (a) Global scatter summary: mean latency by speed band.
    struct band {
      stats::running_stats rtt;
    };
    std::vector<band> bands(7);  // 0-20, 20-40, ... 120+ km/h
    std::unordered_map<geo::zone_id, std::pair<std::vector<double>,
                                               std::vector<double>>,
                       geo::zone_id_hash>
        per_zone;  // (speeds, rtts)
    for (const auto& r : ds.records()) {
      if (!r.success || r.network != net ||
          r.kind != trace::probe_kind::ping) {
        continue;
      }
      const double kmh = r.speed_mps * 3.6;
      auto idx = static_cast<std::size_t>(kmh / 20.0);
      idx = std::min<std::size_t>(idx, bands.size() - 1);
      bands[idx].rtt.add(r.rtt_s);
      auto& [speeds, rtts] = per_zone[grid.zone_of(r.pos)];
      speeds.push_back(kmh);
      rtts.push_back(r.rtt_s * 1e3);
    }

    std::printf("\n  [%s] mean latency by speed band:\n", net.c_str());
    for (std::size_t i = 0; i < bands.size(); ++i) {
      if (bands[i].rtt.empty()) continue;
      std::printf("    %3zu-%3zu km/h: %s  (n=%zu)\n", i * 20, i * 20 + 20,
                  bench::fmt_ms(bands[i].rtt.mean()).c_str(),
                  bands[i].rtt.count());
    }

    // (b) Per-zone correlation coefficients.
    std::vector<double> ccs;
    for (const auto& [zone, sr] : per_zone) {
      const auto& [speeds, rtts] = sr;
      // Small per-zone samples inflate |corr| spuriously (sigma ~ 1/sqrt(n));
      // the paper's year of data gives each zone hundreds of trains.
      if (speeds.size() < 80) continue;
      // Zones where the bus never changes speed have no measurable trend.
      if (stats::stddev(speeds) < 1.0) continue;
      ccs.push_back(stats::pearson_correlation(speeds, rtts));
    }
    if (ccs.empty()) continue;
    std::vector<double> abs_ccs;
    for (double c : ccs) abs_ccs.push_back(std::abs(c));
    bench::report(net + ": zones with correlation data", "-",
                  std::to_string(ccs.size()));
    bench::report(net + ": 95th pct |corr coeff|", "<= 0.16",
                  bench::fmt(stats::percentile(abs_ccs, 95.0), 3));
    bench::report(net + ": median corr coeff", "~0",
                  bench::fmt(stats::percentile(ccs, 50.0), 3));
  }
  return 0;
}

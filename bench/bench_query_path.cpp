// Query path - the read-side serving layer (ISSUE 5 tentpole; no paper
// figure -- this bench prices what an application pays to *consume*
// WiScape's estimates, and proves the central concurrency claim of the
// estimate_view design: reads never take a shard lock, so a query storm
// does not slow ingestion).
//
// Four measurements over one synthetic city (5x5 zones, two operators,
// all probe kinds -- the tests/sharded_coordinator_test.cpp recipe):
//  * read-only, view:  estimate_view::lookup() on a warm 4-shard
//    coordinator (the in-process application path, e.g. multihoming).
//  * read-only, wire:  the same lookups as full "QUERY ..." -> "EST ..."
//    round trips through coordinator_server::handle() (decode + lookup +
//    encode; what a remote console pays).
//  * write-only: one producer streaming the corpus into a fresh 4-shard
//    pipeline (first push to flush) -- the baseline ingestion rate.
//  * mixed 90/10: the same write workload with 3 reader threads pacing
//    themselves to 9 lookups per ingested report (90% reads / 10% writes
//    by op count). Acceptance: the paired-median mixed write rate stays
//    within 10% of write-only -- reads ride the seqlock'd mirrors and
//    leave the shard locks alone. On a host with fewer cores than
//    threads the readers necessarily eat CPU the writer and drain
//    workers needed, lock-free or not, so there the bar is 10% of the
//    CPU-timeshare prediction (write_cost / (write_cost + 9 read_cost)):
//    reads may cost their fair CPU share, but nothing beyond it --
//    which is exactly the no-lock-contention claim.
//
// Machine-readable results go to bench_query_path.jsonl in the working
// directory (one JSON object per line; schema in EXPERIMENTS.md).
//
//   ./bench_query_path [reports]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/estimate_view.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "proto/server.h"
#include "stats/rng.h"
#include "trace/record.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic fleet stream: all probe kinds, two operators, a 5x5 zone
// neighbourhood (same recipe as bench_ingest_scaling).
std::vector<trace::measurement_record> make_stream(const geo::projection& proj,
                                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + static_cast<double>(i) * 0.5;
    r.network = rng.chance(0.5) ? "NetB" : "NetC";
    r.pos = proj.to_lat_lon(
        {443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         443.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    r.client_id = 1 + (i % 64);
    r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    r.success = true;
    if (r.kind == trace::probe_kind::ping) {
      r.rtt_s = 0.1 + 0.02 * rng.uniform();
      r.ping_sent = 5;
    } else {
      r.throughput_bps = 1e6 * (1.0 + rng.uniform());
    }
    out.push_back(r);
  }
  return out;
}

core::sharded_config pipeline_config() {
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 4;
  cfg.synchronous = false;
  cfg.queue_capacity = 4096;
  cfg.drain_batch = 64;
  return cfg;
}

/// One pre-resolved lookup: everything estimate_view::lookup(id) needs,
/// resolved outside the timed region.
struct probe_query {
  geo::zone_id zone;
  std::uint16_t network_id;
  trace::metric metric;
};

void jsonl_result(std::ofstream& out, const char* mode, std::size_t ops,
                  double ops_per_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", ops_per_s);
  out << "{\"bench\":\"query_path\",\"mode\":\"" << mode << "\",\"ops\":" << ops
      << ",\"ops_per_s\":" << buf << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;
  constexpr int kReps = 5;
  constexpr std::size_t kReaders = 3;
  constexpr std::size_t kReadsPerWrite = 3;  // per reader: 3 readers x 3 = 9

  bench::banner("Query path - read-side serving layer",
                "no paper figure; ISSUE 5 acceptance (mixed 90/10 write "
                "rate within 10% of write-only)");
  std::printf("  reports: %zu, shards: 4, readers: %zu, best of %d runs\n\n",
              reports, kReaders, kReps);

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(proj, reports);
  double sink = 0.0;

  // ---- warm coordinator for the read-only legs ----------------------------
  core::sharded_coordinator warm(grid, {"NetB", "NetC"}, pipeline_config(),
                                 bench::bench_seed);
  for (const auto& rec : stream) warm.report(rec);
  warm.flush();
  const core::estimate_view view(warm);

  // Every materialised stream, pre-resolved to the id-keyed hot path; the
  // wire leg queries the same streams by zone-center position.
  std::vector<probe_query> queries;
  std::vector<std::string> wire_lines;
  for (const auto& key : warm.keys()) {
    queries.push_back({key.zone, view.network_id_of(key.network), key.metric});
    proto::query_request q;
    q.pos = grid.center(key.zone);
    q.network = key.network;
    q.metric = key.metric;
    q.time_s = stream.back().time_s;
    wire_lines.push_back(proto::encode(q));
  }
  std::printf("  streams materialised: %zu\n\n", queries.size());

  // ---- read-only: the in-process view -------------------------------------
  const std::size_t view_ops = reports * 4;
  double view_qps = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < view_ops; ++i) {
      const probe_query& q = queries[i % queries.size()];
      if (const auto est = view.lookup(q.zone, q.network_id, q.metric)) {
        sink += est->mean;
      }
    }
    view_qps = std::max(view_qps,
                        static_cast<double>(view_ops) / (now_s() - t0));
  }
  std::printf("  read-only, estimate_view::lookup:  %11.0f lookups/s\n",
              view_qps);

  // ---- read-only: the wire round trip -------------------------------------
  proto::coordinator_server server(warm);
  const std::size_t wire_ops = reports / 2;
  double wire_qps = 0.0;
  for (int r = 0; r < kReps; ++r) {
    const double t0 = now_s();
    for (std::size_t i = 0; i < wire_ops; ++i) {
      sink += static_cast<double>(
          server.handle(wire_lines[i % wire_lines.size()]).size());
    }
    wire_qps = std::max(wire_qps,
                        static_cast<double>(wire_ops) / (now_s() - t0));
  }
  std::printf("  read-only, wire QUERY round trip:  %11.0f queries/s\n",
              wire_qps);

  // ---- read-only: the zero-allocation wire round trip ---------------------
  // Same decode + lookup + encode, but through handle_into() with a reused
  // reply_buffer -- the shape net::session runs per request (ISSUE 8).
  // The delta against handle() above is the price of one std::string
  // construction per reply.
  double wire_into_qps = 0.0;
  {
    proto::reply_buffer out;
    for (int r = 0; r < kReps; ++r) {
      const double t0 = now_s();
      for (std::size_t i = 0; i < wire_ops; ++i) {
        out.clear();
        server.handle_into(wire_lines[i % wire_lines.size()], out);
        sink += static_cast<double>(out.view().size());
      }
      wire_into_qps = std::max(wire_into_qps,
                               static_cast<double>(wire_ops) / (now_s() - t0));
    }
  }
  std::printf("  read-only, wire QUERY handle_into: %11.0f queries/s  "
              "(%.2fx handle)\n\n",
              wire_into_qps, wire_into_qps / wire_qps);

  // ---- write-only vs mixed 90/10 ------------------------------------------
  // One producer streams the corpus into a fresh pipeline; the mixed leg
  // adds reader threads pacing themselves off the producer's progress
  // counter (kReadsPerWrite lookups each per ingested report). Interleaved
  // within each rep, paired-median ratio -- the bench_apply_path
  // discipline, so host drift hits both columns equally.
  const auto ingest_pass = [&](bool with_readers, double* read_qps_out) {
    core::sharded_coordinator sc(grid, {"NetB", "NetC"}, pipeline_config(),
                                 bench::bench_seed);
    const core::estimate_view live(sc);
    std::atomic<std::size_t> written{0};
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> reads{0};
    std::vector<std::thread> readers;
    if (with_readers) {
      for (std::size_t t = 0; t < kReaders; ++t) {
        readers.emplace_back([&, t] {
          stats::rng_stream rng(bench::bench_seed + 100 + t);
          double local = 0.0;
          std::uint64_t my_reads = 0;
          while (!done.load(std::memory_order_acquire)) {
            const std::size_t target =
                kReadsPerWrite * written.load(std::memory_order_relaxed);
            if (my_reads >= target) {
              std::this_thread::yield();
              continue;
            }
            const probe_query& q =
                queries[rng.uniform_int(
                    0, static_cast<int>(queries.size()) - 1)];
            if (const auto est = live.lookup(q.zone, q.network_id, q.metric)) {
              local += est->mean;
            }
            ++my_reads;
          }
          reads.fetch_add(my_reads);
          if (local < 0.0) std::abort();  // keep `local` live
        });
      }
    }
    const double t0 = now_s();
    for (const auto& rec : stream) {
      sc.report(rec);
      written.fetch_add(1, std::memory_order_relaxed);
    }
    sc.flush();
    const double dt = now_s() - t0;
    done.store(true, std::memory_order_release);
    for (auto& th : readers) th.join();
    if (read_qps_out != nullptr) {
      *read_qps_out = static_cast<double>(reads.load()) / dt;
    }
    sink += static_cast<double>(sc.reports_ingested());
    return static_cast<double>(stream.size()) / dt;
  };

  ingest_pass(false, nullptr);  // warm-up (untimed)
  double write_rps = 0.0, mixed_rps = 0.0, mixed_read_qps = 0.0;
  std::vector<double> ratios;
  for (int r = 0; r < kReps; ++r) {
    const double w = ingest_pass(false, nullptr);
    double rq = 0.0;
    const double m = ingest_pass(true, &rq);
    write_rps = std::max(write_rps, w);
    if (m > mixed_rps) {
      mixed_rps = m;
      mixed_read_qps = rq;
    }
    ratios.push_back(m / w);
  }
  std::sort(ratios.begin(), ratios.end());
  const double ratio = ratios[ratios.size() / 2];
  const double read_share =
      mixed_read_qps / (mixed_read_qps + mixed_rps) * 100.0;

  // The acceptance bar. With enough cores for every thread (1 producer +
  // 4 drain workers + kReaders), concurrent reads should cost the writer
  // nothing: bar = 0.9x write-only. Oversubscribed, the readers' op mix
  // costs CPU the write path needed no matter how lock-free the reads
  // are; the fair bar is 90% of the timeshare prediction, which charges
  // the reads their serialized CPU cost and nothing else.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool dedicated_cores = hw >= 1 + 4 + kReaders;
  const double write_cost = 1.0 / write_rps;
  const double read_cost = 1.0 / view_qps;
  const double timeshare_ratio =
      write_cost /
      (write_cost +
       static_cast<double>(kReaders * kReadsPerWrite) * read_cost);
  const double bar = dedicated_cores ? 0.9 : 0.9 * timeshare_ratio;

  std::printf("  write-only ingest:                 %11.0f reports/s\n",
              write_rps);
  std::printf("  mixed 90/10 ingest:                %11.0f reports/s  "
              "(%.2fx paired median)\n",
              mixed_rps, ratio);
  std::printf("  mixed 90/10 concurrent reads:      %11.0f lookups/s  "
              "(%.0f%% of ops were reads)\n",
              mixed_read_qps, read_share);
  std::printf("  cores: %u for %zu threads -> bar %.2fx%s\n\n", hw,
              static_cast<std::size_t>(1 + 4 + kReaders), bar,
              dedicated_cores ? ""
                              : "  (oversubscribed: 0.9x the CPU-timeshare "
                                "prediction)");

  bench::report("mixed 90/10 write rate vs write-only",
                ">= " + bench::fmt(bar) + "x", bench::fmt(ratio) + "x");
  bench::report("read-only view lookups", "-",
                bench::fmt(view_qps / 1e6) + " M/s");
  bench::report("read-only wire QUERY round trips", "-",
                bench::fmt(wire_qps / 1e6) + " M/s");

  std::ofstream jsonl("bench_query_path.jsonl");
  jsonl_result(jsonl, "read_view", view_ops, view_qps);
  jsonl_result(jsonl, "read_wire", wire_ops, wire_qps);
  jsonl_result(jsonl, "read_wire_into", wire_ops, wire_into_qps);
  jsonl_result(jsonl, "write_only", stream.size(), write_rps);
  jsonl_result(jsonl, "mixed_write", stream.size(), mixed_rps);
  jsonl_result(jsonl, "mixed_read",
               static_cast<std::size_t>(mixed_read_qps), mixed_read_qps);
  {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"query_path\",\"mode\":\"mixed_ratio\","
                  "\"write_only_rps\":%.0f,\"mixed_write_rps\":%.0f,"
                  "\"ratio\":%.3f,\"bar\":%.3f,\"cores\":%u,"
                  "\"read_share_pct\":%.1f}\n",
                  write_rps, mixed_rps, ratio, bar, hw, read_share);
    jsonl << buf;
  }

  // The checksum keeps the compiler honest; print it so it is truly live.
  std::fprintf(stderr, "# checksum %.1f\n", sink);
  return ratio >= bar ? 0 : 1;
}

// Figure 6: Allan deviation of UDP throughput vs averaging time at one zone
// per region (Proximate data, NetB).
// Paper: the curve dips to a minimum at ~75 minutes for the Madison zone
// and ~15 minutes for the New Brunswick zone; WiScape adopts the minimum as
// the zone's epoch.
#include <cstdio>

#include "bench_common.h"
#include "core/epoch_estimator.h"

using namespace wiscape;

namespace {

void region_curve(const bench::region_data& region, const char* label,
                  const char* paper_min) {
  const auto series =
      region.proximate.metric_series(trace::metric::udp_throughput_bps, "NetB");
  std::printf("\n  --- %s (%zu samples) ---\n", label, series.size());

  core::epoch_config cfg;
  cfg.scan_lo_s = 120.0;
  cfg.scan_hi_s = 12.0 * 3600;
  cfg.scan_points = 22;
  const core::epoch_estimator est(cfg);

  std::vector<std::pair<double, double>> pts;
  for (const auto& p : est.curve_for(series)) {
    pts.push_back({p.tau_s / 60.0, p.deviation});
  }
  bench::print_series("tau (min)", "Allan dev", pts, 22);

  const double epoch = est.epoch_for(series);
  bench::report(std::string(label) + ": Allan-minimum epoch", paper_min,
                bench::fmt(epoch / 60.0, 0) + " min");
}

}  // namespace

int main() {
  bench::banner(
      "Figure 6 - Allan deviation vs averaging time (Proximate, NetB)",
      "minimum at ~75 min (Madison) and ~15 min (New Brunswick); the "
      "minimum becomes the zone's epoch");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  region_curve(wi, "Madison, WI", "~75 min");
  region_curve(nj, "New Brunswick, NJ", "~15 min");
  return 0;
}

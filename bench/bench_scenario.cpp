// Scenario-engine throughput (ISSUE 6; no paper figure -- this bench
// prices the deterministic fleet simulation that every scenario regression
// replays, so a slowdown in the ingest/serving stack shows up as a drop in
// scenario ticks per second before it shows up as a ctest timeout).
//
// Two measurements over the flash_crowd scenario (the densest traffic
// shape: a third of the fleet converging on one hotspot, both operators
// boosted), at a fleet size scaled well past the regression default:
//
//  * end-to-end ticks/s: full engine run -- wire encode, REPORTB frames
//    through proto::coordinator_server::handle(), sharded drain, per-tick
//    invariant evaluation, tick-log formatting.
//  * determinism replay check: the same (config, seed) rerun must produce
//    a byte-identical tick log; the bench exits non-zero otherwise, so a
//    perf tree that breaks determinism fails here too, not only in ctest.
//
// Machine-readable results go to bench_scenario.jsonl in the working
// directory (one JSON object per line; schema in EXPERIMENTS.md).
//
//   ./bench_scenario [ticks] [clients]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_common.h"
#include "scenario/engine.h"
#include "scenario/scenarios.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t ticks =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const std::size_t clients =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;

  bench::banner("Scenario engine - deterministic fleet simulation",
                "no paper figure; ISSUE 6 (scenario regression throughput)");

  scenario::scenario_config cfg = scenario::make_scenario("flash_crowd");
  cfg.ticks = ticks;
  cfg.clients = clients;
  // Keep the flash window proportional to the stretched run so the dense
  // crowd phase covers the same fraction of ticks as the regression shape.
  cfg.stress.flash_end_s = cfg.tick_s * static_cast<double>(ticks) * 0.625;

  std::printf("  flash_crowd: %llu ticks x %zu clients, %zu shards\n\n",
              static_cast<unsigned long long>(cfg.ticks), cfg.clients,
              cfg.shards);

  const double t0 = now_s();
  const scenario::scenario_result first =
      scenario::run_scenario(cfg, bench::bench_seed);
  const double elapsed = now_s() - t0;
  if (!first.passed) {
    std::fprintf(stderr, "FAIL: flash_crowd violated an invariant\n");
    for (const auto& v : first.violations) {
      std::fprintf(stderr, "  %s\n", scenario::to_string(v).c_str());
    }
    return 1;
  }

  const double t1 = now_s();
  const scenario::scenario_result replay =
      scenario::run_scenario(cfg, bench::bench_seed);
  const double replay_elapsed = now_s() - t1;
  if (replay.tick_log != first.tick_log) {
    std::fprintf(stderr, "FAIL: same-seed replay diverged from first run\n");
    return 1;
  }

  const double ticks_per_s =
      elapsed > 0.0 ? static_cast<double>(cfg.ticks) / elapsed : 0.0;
  // Every client files ~2 records per tick; this is the wall-clock cost of
  // one simulated fleet-minute of wire traffic plus invariant checking.
  const double sim_speedup =
      elapsed > 0.0 ? cfg.tick_s * static_cast<double>(cfg.ticks) / elapsed
                    : 0.0;

  bench::report("scenario ticks per second", "-", bench::fmt(ticks_per_s, 1));
  bench::report("simulated vs wall-clock time", ">> 1x",
                bench::fmt(sim_speedup, 0) + "x");
  bench::report("same-seed replay byte-identical", "required", "yes");

  std::ofstream jsonl("bench_scenario.jsonl");
  jsonl << "{\"bench\":\"scenario\",\"scenario\":\"flash_crowd\",\"ticks\":"
        << cfg.ticks << ",\"clients\":" << cfg.clients
        << ",\"elapsed_s\":" << bench::fmt(elapsed, 4)
        << ",\"replay_elapsed_s\":" << bench::fmt(replay_elapsed, 4)
        << ",\"ticks_per_s\":" << bench::fmt(ticks_per_s, 2)
        << ",\"sim_speedup\":" << bench::fmt(sim_speedup, 1)
        << ",\"deterministic\":true}\n";
  return 0;
}

// Ablation: why WiScape targets *cellular* networks (paper Sec 3.1).
//
// "Prior work reports high and sudden variations in achievable throughputs
// in WiFi networks ... epochs in WiFi systems are likely more difficult to
// define than compared to these cellular systems." We run the same spot
// sampling against a cellular operator and a WiFi-mesh stand-in over the
// same city and compare (a) short-vs-long timescale stability and (b) the
// Allan-deviation curve: the cellular curve has a deep, usable minimum;
// the WiFi curve stays high everywhere.
#include <cstdio>

#include "bench_common.h"
#include "core/epoch_estimator.h"
#include "probe/collect.h"
#include "stats/allan.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Ablation - cellular vs WiFi-mesh measurement stability (Sec 3.1)",
      "cellular: stable 30-min stats, clean Allan minimum; WiFi: high churn "
      "at every timescale, no usable epoch");

  auto dep = cellnet::make_wifi_comparison_deployment(bench::bench_seed);
  probe::probe_engine engine(dep, bench::bench_seed + 13);

  // One good spot, one day of 20-second UDP sampling on both networks.
  const auto locs = probe::default_spot_locations(dep, 1, bench::bench_seed);
  const geo::lat_lon loc = locs.empty()
                               ? dep.proj().to_lat_lon({400.0, 400.0})
                               : locs.front();
  probe::spot_params params;
  params.days = 1;
  params.udp_interval_s = 20.0;
  params.tcp_interval_s = 600.0;
  params.udp_packets = 50;
  params.tcp_bytes = 120'000;
  const auto ds = probe::collect_spot(engine, {loc}, params);

  core::epoch_config cfg;
  cfg.scan_lo_s = 60.0;
  cfg.scan_hi_s = 6.0 * 3600;
  cfg.scan_points = 16;
  const core::epoch_estimator est(cfg);

  for (const auto& net : dep.names()) {
    const auto series =
        ds.metric_series(trace::metric::udp_throughput_bps, net);
    if (series.size() < 200) {
      std::printf("  %s: only %zu samples\n", net.c_str(), series.size());
      continue;
    }
    const auto s10 = series.bin_means(10.0);
    const auto s30m = series.bin_means(1800.0);
    std::printf("\n  --- %s (%zu samples) ---\n", net.c_str(), series.size());
    std::printf("  rel-stddev: raw %5.1f%%   10s bins %5.1f%%   30min bins %5.1f%%\n",
                stats::relative_stddev(series.values()) * 100.0,
                stats::relative_stddev(s10) * 100.0,
                stats::relative_stddev(s30m) * 100.0);
    std::vector<std::pair<double, double>> pts;
    for (const auto& p : est.curve_for(series)) {
      pts.push_back({p.tau_s / 60.0, p.deviation});
    }
    bench::print_series("tau (min)", "Allan dev", pts, 14);
    double min_dev = 1e9;
    for (const auto& [_, d] : pts) min_dev = std::min(min_dev, d);
    bench::report(net + ": minimum relative Allan deviation",
                  net == "WiFiMesh" ? "stays high" : "drops low",
                  bench::fmt(min_dev, 3));
  }

  std::printf("\n");
  bench::report("cellular 30-min stats stable enough for WiScape", "yes",
                "see table");
  bench::report("WiFi-mesh epochs well-defined", "no", "see table");
  return 0;
}

// Figure 4: CDF of per-zone relative standard deviation of TCP throughput
// as a function of zone radius (Standalone dataset, NetB).
// Paper: curves for radii 50..750 m shift only slightly; at 250 m, 80% of
// zones are below ~4% and 97% below ~8%; <2% of zones above 15%.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 4 - rel. stddev of TCP throughput vs zone radius (Standalone)",
      "80% of 250 m zones <= ~4%, 97% <= ~8%; growing radius shifts the CDF "
      "only slightly");

  const auto ds = bench::standalone_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                            bench::bench_seed);

  std::printf("\n  %8s %8s %12s %12s %12s %12s\n", "radius", "zones",
              "p50 relsd", "p80 relsd", "p97 relsd", ">15% zones");
  for (double radius = 50.0; radius <= 750.0; radius += 100.0) {
    const geo::zone_grid grid(dep.proj(), radius);
    // The paper keeps zones with >= 200 samples/week; our compressed
    // campaign scales that to >= 60.
    const auto zones = ds.zone_metric_values(
        grid, trace::metric::tcp_throughput_bps, "NetB", 60);
    std::vector<double> rels;
    for (const auto& [_, samples] : zones) {
      rels.push_back(stats::relative_stddev(samples));
    }
    if (rels.size() < 3) {
      std::printf("  %7.0fm %8zu  (too few zones)\n", radius, rels.size());
      continue;
    }
    const double above15 =
        1.0 - stats::fraction_at_most(rels, 0.15);
    std::printf("  %7.0fm %8zu %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", radius,
                rels.size(), stats::percentile(rels, 50.0) * 100.0,
                stats::percentile(rels, 80.0) * 100.0,
                stats::percentile(rels, 97.0) * 100.0, above15 * 100.0);
  }

  // Headline row at the paper's chosen 250 m radius.
  const geo::zone_grid grid(dep.proj(), 250.0);
  const auto zones =
      ds.zone_metric_values(grid, trace::metric::tcp_throughput_bps, "NetB", 60);
  std::vector<double> rels;
  for (const auto& [_, samples] : zones) {
    rels.push_back(stats::relative_stddev(samples));
  }
  std::printf("\n");
  if (!rels.empty()) {
    bench::report("250 m: 80th pct rel-stddev", "~4%",
                  bench::fmt_pct(stats::percentile(rels, 80.0)));
    bench::report("250 m: 97th pct rel-stddev", "~8%",
                  bench::fmt_pct(stats::percentile(rels, 97.0)));
    bench::report("250 m: zones above 15%", "< 2%",
                  bench::fmt_pct(1.0 - stats::fraction_at_most(rels, 0.15)));
  }
  return 0;
}

// Ingestion scaling - reports/sec through the sharded coordinator pipeline
// at 1/2/4/8 threads (ISSUE 1 tentpole; no paper figure -- this bench sizes
// the ROADMAP's "serving heavy traffic from millions of users" claim).
//
// Two measurements over the same synthetic fleet replay:
//  * raw drain: producers enqueue pre-built reports as fast as possible and
//    the per-shard workers apply them. CPU-bound; scales with physical
//    cores (flat on a single-core host).
//  * fleet replay: each producer thread emulates one client transport whose
//    REPORT lines arrive with a per-line service latency (parse + a modelled
//    wire delay), the way a real coordinator receives traffic. Extra
//    threads overlap that latency, so throughput scales with thread count
//    even on one core -- the reason monitoring backends thread their
//    ingestion front-end.
//
//   ./bench_ingest_scaling [reports] [wire_us]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "proto/server.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic fleet stream: all probe kinds, two operators, a 5x5 zone
// neighbourhood (same recipe as tests/sharded_coordinator_test.cpp).
std::vector<trace::measurement_record> make_stream(const geo::projection& proj,
                                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + static_cast<double>(i) * 0.5;
    r.network = rng.chance(0.5) ? "NetB" : "NetC";
    r.pos = proj.to_lat_lon(
        {443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         443.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    r.client_id = 1 + (i % 64);
    r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    r.success = true;
    if (r.kind == trace::probe_kind::ping) {
      r.rtt_s = 0.1 + 0.02 * rng.uniform();
      r.ping_sent = 5;
    } else {
      r.throughput_bps = 1e6 * (1.0 + rng.uniform());
    }
    out.push_back(r);
  }
  return out;
}

core::sharded_config pipeline_config(std::size_t threads) {
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = threads;
  cfg.synchronous = false;
  cfg.queue_capacity = 4096;
  cfg.drain_batch = 64;
  return cfg;
}

/// Raw drain: `threads` producers enqueue slices of the stream into a
/// `threads`-shard pipeline; returns reports/sec from first push to flush.
double run_raw(const geo::zone_grid& grid,
               const std::vector<trace::measurement_record>& stream,
               std::size_t threads) {
  core::sharded_coordinator sc(grid, {"NetB", "NetC"},
                               pipeline_config(threads), bench::bench_seed);
  const double t0 = now_s();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < stream.size(); i += threads) {
        sc.report(stream[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();
  const double dt = now_s() - t0;
  return static_cast<double>(stream.size()) / dt;
}

/// Fleet replay: each producer is one client transport delivering encoded
/// REPORT lines to the concurrent server, `wire_us` of modelled wire/service
/// latency apart. Returns reports/sec.
double run_replay(const geo::zone_grid& grid,
                  const std::vector<trace::measurement_record>& stream,
                  std::size_t threads, unsigned wire_us) {
  core::sharded_coordinator sc(grid, {"NetB", "NetC"},
                               pipeline_config(threads), bench::bench_seed);
  proto::coordinator_server server(sc);

  // Encode outside the timed region: the client paid that cost.
  std::vector<std::string> lines;
  lines.reserve(stream.size());
  for (const auto& rec : stream) {
    proto::measurement_report rep;
    rep.client_id = rec.client_id;
    rep.record = rec;
    lines.push_back(proto::encode(rep));
  }

  const double t0 = now_s();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < lines.size(); i += threads) {
        std::this_thread::sleep_for(std::chrono::microseconds(wire_us));
        server.handle(lines[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();
  const double dt = now_s() - t0;
  if (server.reports_received() != stream.size()) {
    std::fprintf(stderr, "LOST REPORTS: %llu of %zu\n",
                 static_cast<unsigned long long>(server.reports_received()),
                 stream.size());
    std::exit(1);
  }
  return static_cast<double>(stream.size()) / dt;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 60'000;
  const unsigned wire_us =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 100;

  bench::banner("Ingestion scaling - sharded coordinator pipeline",
                "no paper figure; ROADMAP north star (production-scale "
                "ingestion)");
  std::printf("  host cores: %u, reports: %zu, modelled wire latency: %u us\n\n",
              std::thread::hardware_concurrency(), reports, wire_us);

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(proj, reports);

  // Sequential reference: the pre-sharding code path.
  {
    core::coordinator seq(grid, {"NetB", "NetC"}, {}, bench::bench_seed);
    const double t0 = now_s();
    for (const auto& rec : stream) seq.report(rec);
    const double rps = static_cast<double>(stream.size()) / (now_s() - t0);
    std::printf("  sequential coordinator (reference): %11.0f reports/s\n\n",
                rps);
  }

  std::printf("  raw drain (CPU-bound; scales with cores):\n");
  double raw1 = 0.0, raw4 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps = run_raw(grid, stream, threads);
    if (threads == 1) raw1 = rps;
    if (threads == 4) raw4 = rps;
    std::printf("    %zu thread(s): %11.0f reports/s  (%.2fx vs 1 thread)\n",
                threads, rps, raw1 > 0 ? rps / raw1 : 1.0);
  }

  // Replay uses a lighter stream: each line also pays the wire latency.
  const std::size_t replay_n = std::min<std::size_t>(reports / 4, 16'000);
  const std::vector<trace::measurement_record> replay_stream(
      stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(replay_n));
  std::printf("\n  fleet replay (latency-bound; scales with threads):\n");
  double rep1 = 0.0, rep4 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps = run_replay(grid, replay_stream, threads, wire_us);
    if (threads == 1) rep1 = rps;
    if (threads == 4) rep4 = rps;
    std::printf("    %zu thread(s): %11.0f reports/s  (%.2fx vs 1 thread)\n",
                threads, rps, rep1 > 0 ? rps / rep1 : 1.0);
  }

  std::printf("\n");
  bench::report("fleet replay speedup, 4 threads vs 1", "> 1x",
                bench::fmt(rep1 > 0 ? rep4 / rep1 : 0.0) + "x");
  bench::report("raw drain speedup, 4 threads vs 1 (1 core => ~1x)", "-",
                bench::fmt(raw1 > 0 ? raw4 / raw1 : 0.0) + "x");
  return 0;
}

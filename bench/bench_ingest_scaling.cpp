// Ingestion scaling - reports/sec through the sharded coordinator pipeline
// at 1/2/4/8 threads (ISSUE 1 tentpole; no paper figure -- this bench sizes
// the ROADMAP's "serving heavy traffic from millions of users" claim).
//
// Two measurements over the same synthetic fleet replay:
//  * raw drain: producers enqueue pre-built reports as fast as possible and
//    the per-shard workers apply them. CPU-bound; scales with physical
//    cores (flat on a single-core host).
//  * fleet replay: each producer thread emulates one client transport whose
//    REPORT lines arrive with a per-line service latency (parse + a modelled
//    wire delay), the way a real coordinator receives traffic. Extra
//    threads overlap that latency, so throughput scales with thread count
//    even on one core -- the reason monitoring backends thread their
//    ingestion front-end.
//
// A third measurement prices the observability layer (ISSUE 2): every raw
// drain is run twice, with obs:: instrumentation enabled and disabled, and
// the regression is reported (acceptance: <= 5%). Machine-readable results
// go to bench_ingest_scaling.jsonl in the working directory (one JSON object
// per line; schema in EXPERIMENTS.md), followed by a full obs metrics
// snapshot line for the instrumented runs.
//
//   ./bench_ingest_scaling [reports] [wire_us]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "obs/registry.h"
#include "obs/snapshot_writer.h"
#include "proto/messages.h"
#include "proto/server.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Synthetic fleet stream: all probe kinds, two operators, a 5x5 zone
// neighbourhood (same recipe as tests/sharded_coordinator_test.cpp).
std::vector<trace::measurement_record> make_stream(const geo::projection& proj,
                                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + static_cast<double>(i) * 0.5;
    r.network = rng.chance(0.5) ? "NetB" : "NetC";
    r.pos = proj.to_lat_lon(
        {443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         443.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    r.client_id = 1 + (i % 64);
    r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    r.success = true;
    if (r.kind == trace::probe_kind::ping) {
      r.rtt_s = 0.1 + 0.02 * rng.uniform();
      r.ping_sent = 5;
    } else {
      r.throughput_bps = 1e6 * (1.0 + rng.uniform());
    }
    out.push_back(r);
  }
  return out;
}

core::sharded_config pipeline_config(std::size_t threads) {
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = threads;
  cfg.synchronous = false;
  cfg.queue_capacity = 4096;
  cfg.drain_batch = 64;
  return cfg;
}

/// Raw drain: `threads` producers enqueue slices of the stream into a
/// `threads`-shard pipeline; returns reports/sec from first push to flush.
double run_raw(const geo::zone_grid& grid,
               const std::vector<trace::measurement_record>& stream,
               std::size_t threads) {
  core::sharded_coordinator sc(grid, {"NetB", "NetC"},
                               pipeline_config(threads), bench::bench_seed);
  const double t0 = now_s();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < stream.size(); i += threads) {
        sc.report(stream[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();
  const double dt = now_s() - t0;
  return static_cast<double>(stream.size()) / dt;
}

/// Fleet replay: each producer is one client transport delivering encoded
/// REPORT lines to the concurrent server, `wire_us` of modelled wire/service
/// latency apart. Returns reports/sec.
double run_replay(const geo::zone_grid& grid,
                  const std::vector<trace::measurement_record>& stream,
                  std::size_t threads, unsigned wire_us) {
  core::sharded_coordinator sc(grid, {"NetB", "NetC"},
                               pipeline_config(threads), bench::bench_seed);
  proto::coordinator_server server(sc);

  // Encode outside the timed region: the client paid that cost.
  std::vector<std::string> lines;
  lines.reserve(stream.size());
  for (const auto& rec : stream) {
    proto::measurement_report rep;
    rep.client_id = rec.client_id;
    rep.record = rec;
    lines.push_back(proto::encode(rep));
  }

  const double t0 = now_s();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < lines.size(); i += threads) {
        std::this_thread::sleep_for(std::chrono::microseconds(wire_us));
        server.handle(lines[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();
  const double dt = now_s() - t0;
  if (server.reports_received() != stream.size()) {
    std::fprintf(stderr, "LOST REPORTS: %llu of %zu\n",
                 static_cast<unsigned long long>(server.reports_received()),
                 stream.size());
    std::exit(1);
  }
  return static_cast<double>(stream.size()) / dt;
}

/// Batched fleet replay: like run_replay, but each producer packs
/// `batch` records into one REPORTB frame and pays the modelled wire
/// latency once per frame instead of once per record -- the client-side
/// batching the wire fast path exists to exploit. Returns reports/sec.
double run_replay_batched(const geo::zone_grid& grid,
                          const std::vector<trace::measurement_record>& stream,
                          std::size_t threads, unsigned wire_us,
                          std::size_t batch) {
  core::sharded_coordinator sc(grid, {"NetB", "NetC"},
                               pipeline_config(threads), bench::bench_seed);
  proto::coordinator_server server(sc);

  // Frame outside the timed region: the client paid that cost. Frames are
  // dealt round-robin so every producer thread carries an equal share.
  std::vector<std::string> frames;
  for (std::size_t i = 0; i < stream.size(); i += batch) {
    const std::size_t n = std::min(batch, stream.size() - i);
    frames.push_back(proto::encode_report_batch(
        std::span<const trace::measurement_record>(stream.data() + i, n)));
  }

  const double t0 = now_s();
  std::vector<std::thread> producers;
  producers.reserve(threads);
  for (std::size_t p = 0; p < threads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = p; i < frames.size(); i += threads) {
        std::this_thread::sleep_for(std::chrono::microseconds(wire_us));
        server.handle(frames[i]);
      }
    });
  }
  for (auto& th : producers) th.join();
  sc.flush();
  const double dt = now_s() - t0;
  if (server.reports_received() != stream.size()) {
    std::fprintf(stderr, "LOST REPORTS: %llu of %zu\n",
                 static_cast<unsigned long long>(server.reports_received()),
                 stream.size());
    std::exit(1);
  }
  return static_cast<double>(stream.size()) / dt;
}

/// Paired best-of-`reps` raw-drain throughput with obs instrumentation on
/// and off. The two variants are interleaved within each rep (after one
/// untimed warm-up) so scheduler drift on a shared host hits both columns
/// equally, and best-of damps one-off noise -- we are measuring the code,
/// not the machine's worst moment.
struct raw_pair {
  double on = 0.0;        ///< best instrumented reports/s
  double off = 0.0;       ///< best uninstrumented reports/s
  double overhead = 0.0;  ///< median of per-rep paired overhead, percent
};

raw_pair best_raw_pair(const geo::zone_grid& grid,
                       const std::vector<trace::measurement_record>& stream,
                       std::size_t threads, int reps) {
  raw_pair best;
  std::vector<double> overheads;
  (void)run_raw(grid, stream, threads);  // warm-up (page faults, allocator)
  for (int r = 0; r < reps; ++r) {
    const double on = run_raw(grid, stream, threads);
    obs::set_enabled(false);
    const double off = run_raw(grid, stream, threads);
    obs::set_enabled(true);
    best.on = std::max(best.on, on);
    best.off = std::max(best.off, off);
    // Each rep's on/off runs are back-to-back, so their ratio cancels the
    // slow scheduler/thermal drift a shared host superimposes on the raw
    // numbers; the median across reps discards one-off outliers.
    if (off > 0) overheads.push_back(100.0 * (off - on) / off);
  }
  std::sort(overheads.begin(), overheads.end());
  if (!overheads.empty()) best.overhead = overheads[overheads.size() / 2];
  return best;
}

/// One machine-readable result line (schema documented in EXPERIMENTS.md).
void jsonl_result(std::ofstream& out, const char* mode, std::size_t threads,
                  bool obs_enabled, std::size_t reports, double rps) {
  out << "{\"bench\":\"ingest_scaling\",\"mode\":\"" << mode
      << "\",\"threads\":" << threads
      << ",\"obs\":" << (obs_enabled ? "true" : "false")
      << ",\"reports\":" << reports << ",\"reports_per_s\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", rps);
  out << buf << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double t_start = now_s();
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150'000;
  const unsigned wire_us =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : 100;

  bench::banner("Ingestion scaling - sharded coordinator pipeline",
                "no paper figure; ROADMAP north star (production-scale "
                "ingestion)");
  std::printf("  host cores: %u, reports: %zu, modelled wire latency: %u us\n\n",
              std::thread::hardware_concurrency(), reports, wire_us);

  std::ofstream jsonl("bench_ingest_scaling.jsonl");

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(proj, reports);

  // Sequential reference: the pre-sharding code path.
  {
    core::coordinator seq(grid, {"NetB", "NetC"}, {}, bench::bench_seed);
    const double t0 = now_s();
    for (const auto& rec : stream) seq.report(rec);
    const double rps = static_cast<double>(stream.size()) / (now_s() - t0);
    std::printf("  sequential coordinator (reference): %11.0f reports/s\n\n",
                rps);
    jsonl_result(jsonl, "sequential", 1, true, stream.size(), rps);
  }

  // Raw drain, instrumented vs uninstrumented: the telemetry hot path is
  // one relaxed fetch-add per event, so the two columns should be within
  // noise of each other (acceptance: <= 5% regression).
  constexpr int kReps = 5;
  std::printf(
      "  raw drain (CPU-bound; scales with cores), interleaved best of %d "
      "runs:\n"
      "                   obs enabled   obs disabled   overhead\n",
      kReps);
  double raw1 = 0.0, raw4 = 0.0, raw4_off = 0.0, raw4_overhead = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const raw_pair pair = best_raw_pair(grid, stream, threads, kReps);
    const double rps = pair.on, rps_off = pair.off;
    if (threads == 1) raw1 = rps;
    if (threads == 4) {
      raw4 = rps;
      raw4_off = rps_off;
      raw4_overhead = pair.overhead;
    }
    std::printf(
        "    %zu thread(s): %11.0f %14.0f reports/s  %+5.1f%%  (%.2fx vs 1 "
        "thread)\n",
        threads, rps, rps_off, pair.overhead,
        raw1 > 0 ? rps / raw1 : 1.0);
    jsonl_result(jsonl, "raw", threads, true, stream.size(), rps);
    jsonl_result(jsonl, "raw", threads, false, stream.size(), rps_off);
  }

  // Replay uses a lighter stream: each line also pays the wire latency.
  const std::size_t replay_n = std::min<std::size_t>(reports / 4, 16'000);
  const std::vector<trace::measurement_record> replay_stream(
      stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(replay_n));
  std::printf("\n  fleet replay (latency-bound; scales with threads):\n");
  double rep1 = 0.0, rep4 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps = run_replay(grid, replay_stream, threads, wire_us);
    if (threads == 1) rep1 = rps;
    if (threads == 4) rep4 = rps;
    std::printf("    %zu thread(s): %11.0f reports/s  (%.2fx vs 1 thread)\n",
                threads, rps, rep1 > 0 ? rps / rep1 : 1.0);
    jsonl_result(jsonl, "replay", threads, true, replay_stream.size(), rps);
  }

  // Batched replay: same fleet, REPORTB frames of 32, one wire latency per
  // frame. The wire-cost amortisation should dwarf the thread scaling.
  constexpr std::size_t kFrame = 32;
  std::printf("\n  fleet replay, batched (REPORTB frames of %zu):\n", kFrame);
  double repb4 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const double rps =
        run_replay_batched(grid, replay_stream, threads, wire_us, kFrame);
    if (threads == 4) repb4 = rps;
    std::printf("    %zu thread(s): %11.0f reports/s\n", threads, rps);
    jsonl_result(jsonl, "replay_batched", threads, true, replay_stream.size(),
                 rps);
  }

  const double overhead_pct = raw4_overhead;
  std::printf("\n");
  bench::report("fleet replay speedup, 4 threads vs 1", "> 1x",
                bench::fmt(rep1 > 0 ? rep4 / rep1 : 0.0) + "x");
  bench::report("batched replay vs per-line replay, 4 threads", "> 1x",
                bench::fmt(rep4 > 0 ? repb4 / rep4 : 0.0) + "x");
  bench::report("raw drain speedup, 4 threads vs 1 (1 core => ~1x)", "-",
                bench::fmt(raw1 > 0 ? raw4 / raw1 : 0.0) + "x");
  bench::report("obs instrumentation overhead, raw drain 4 threads",
                "<= 5%", bench::fmt(overhead_pct, 1) + "%");

  // Machine-readable coda: the overhead pair and a full metrics snapshot of
  // everything this process counted (the ingest-scaling metrics columns).
  jsonl << "{\"bench\":\"ingest_scaling\",\"mode\":\"obs_overhead\","
           "\"threads\":4,\"obs_on_reports_per_s\":"
        << static_cast<long long>(raw4)
        << ",\"obs_off_reports_per_s\":" << static_cast<long long>(raw4_off)
        << ",\"overhead_pct\":" << bench::fmt(overhead_pct, 2) << "}\n";
  obs::write_snapshot_json(jsonl, obs::registry::global(), 0,
                           now_s() - t_start);
  return 0;
}

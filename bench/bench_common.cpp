#include "bench_common.h"

#include <cstdio>
#include <filesystem>
#include <functional>

#include "trace/csv.h"

namespace wiscape::bench {

namespace {

/// Build-or-load with a CSV cache keyed by a recipe tag.
trace::dataset cached(const std::string& tag,
                      const std::function<trace::dataset()>& build) {
  const std::string path = "wiscape_bench_cache_" + tag + ".csv";
  if (std::filesystem::exists(path)) {
    try {
      auto ds = trace::read_csv_file(path);
      std::printf("[cache] loaded %zu records from %s\n", ds.size(),
                  path.c_str());
      return ds;
    } catch (const std::exception& e) {
      std::printf("[cache] %s unreadable (%s); rebuilding\n", path.c_str(),
                  e.what());
    }
  }
  std::printf("[build] generating dataset '%s' (first bench run only)...\n",
              tag.c_str());
  std::fflush(stdout);
  auto ds = build();
  trace::write_csv_file(path, ds);
  std::printf("[build] %zu records cached to %s\n", ds.size(), path.c_str());
  return ds;
}

}  // namespace

trace::dataset standalone_dataset() {
  return cached("standalone", [] {
    auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                        bench_seed);
    // Trouble spots feed Fig 9's failed-ping triage: a handful of zones with
    // chronic outages and churn.
    auto& netb = dep.network("NetB");
    stats::rng_stream trouble(bench_seed ^ 0x7b0b13ULL);
    for (int i = 0; i < 8; ++i) {
      netb.add_trouble_spot({{trouble.uniform(-5000.0, 5000.0),
                              trouble.uniform(-5000.0, 5000.0)},
                             450.0,
                             0.25,
                             0.30});
    }
    probe::probe_engine engine(dep, bench_seed);
    probe::standalone_params params;
    params.days = 4;
    params.buses = 5;
    params.routes = 12;
    params.probe_interval_s = 75.0;
    params.tcp_bytes = 500'000;
    params.network_index = 1;  // NetB
    return probe::collect_standalone(engine, params);
  });
}

trace::dataset wirover_dataset() {
  return cached("wirover", [] {
    auto dep = cellnet::make_deployment(cellnet::region_preset::corridor,
                                        bench_seed);
    probe::probe_engine engine(dep, bench_seed + 1);
    probe::wirover_params params;
    params.days = 10;
    params.buses = 4;
    return probe::collect_wirover(engine, params);
  });
}

region_data spot_region(cellnet::region_preset preset) {
  const bool wi = preset == cellnet::region_preset::madison;
  const std::string tag = wi ? "wi" : "nj";

  region_data out;
  out.preset = preset;
  auto dep = cellnet::make_deployment(preset, bench_seed);
  out.networks = dep.names();
  const auto locs = probe::default_spot_locations(dep, 1, bench_seed + 7);
  out.location = locs.empty() ? dep.proj().to_lat_lon({500.0, 500.0})
                              : locs.front();

  out.spot = cached("spot_" + tag, [&] {
    probe::probe_engine engine(dep, bench_seed + 2);
    probe::spot_params params;
    params.days = 3;
    params.udp_interval_s = 20.0;
    params.tcp_interval_s = 120.0;
    params.udp_packets = 50;
    params.tcp_bytes = 250'000;
    return probe::collect_spot(engine, {out.location}, params);
  });
  out.proximate = cached("proximate_" + tag, [&] {
    probe::probe_engine engine(dep, bench_seed + 3);
    probe::proximate_params params;
    params.days = 3;
    params.probe_interval_s = 30.0;
    params.udp_packets = 100;
    params.tcp_bytes = 250'000;
    return probe::collect_proximate(engine, out.location, params);
  });
  return out;
}

trace::dataset segment_dataset() {
  return cached("segment", [] {
    auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                        bench_seed);
    probe::probe_engine engine(dep, bench_seed + 4);
    probe::segment_params params;
    params.days = 6;
    params.probe_interval_s = 40.0;
    params.tcp_bytes = 250'000;
    return probe::collect_segment(engine, params);
  });
}

void banner(const std::string& experiment, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

void report(const std::string& what, const std::string& paper,
            const std::string& measured) {
  std::printf("  %-44s paper: %-18s measured: %s\n", what.c_str(),
              paper.c_str(), measured.c_str());
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_kbps(double bps) { return fmt(bps / 1e3, 0) + " Kbps"; }

std::string fmt_ms(double seconds) { return fmt(seconds * 1e3, 1) + " ms"; }

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

void print_series(const std::string& x_label, const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points,
                  int max_rows) {
  std::printf("  %14s  %14s\n", x_label.c_str(), y_label.c_str());
  const std::size_t n = points.size();
  const std::size_t step =
      n > static_cast<std::size_t>(max_rows) ? n / max_rows : 1;
  for (std::size_t i = 0; i < n; i += step) {
    std::printf("  %14.3f  %14.4f\n", points[i].first, points[i].second);
  }
}

}  // namespace wiscape::bench

// Figure 7: NKLD between client-sourced sample subsets and the long-term
// distribution, vs number of samples; temporal (same spot, different times)
// and spatial (different spots in the zone, same period) variants for both
// regions.
// Paper: NKLD <= 0.1 by ~50-60 samples (WI temporal), ~80 (WI spatial),
// ~80-90 (NJ temporal), ~100 (NJ spatial); NJ needs more samples than WI.
#include <cstdio>

#include "bench_common.h"
#include "core/sample_planner.h"

using namespace wiscape;

namespace {

std::size_t curve(const std::vector<double>& population, const char* label,
                  const char* paper) {
  core::planner_config cfg;
  cfg.iterations = 60;
  cfg.step = 10;
  cfg.max_samples = 200;
  const core::sample_planner planner(cfg);
  stats::rng_stream rng(bench::bench_seed ^ stats::hash_label(label));

  std::printf("\n  --- %s (population %zu) ---\n", label, population.size());
  std::vector<std::pair<double, double>> pts;
  for (const auto& p : planner.convergence_curve(population, rng)) {
    pts.push_back({static_cast<double>(p.samples), p.mean_nkld});
  }
  bench::print_series("samples", "mean NKLD", pts, 20);
  const std::size_t needed = planner.samples_needed(population, rng);
  bench::report(std::string(label) + ": samples to NKLD<=0.1", paper,
                std::to_string(needed));
  return needed;
}

}  // namespace

int main() {
  bench::banner(
      "Figure 7 - NKLD vs number of client samples (UDP throughput, NetB)",
      "similar by ~50-90 samples in Madison, ~80-120 in New Brunswick; "
      "spatial spread needs slightly more than temporal");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);

  // Temporal: the static Spot series at one location over time.
  const auto wi_temporal =
      wi.spot.metric_values(trace::metric::udp_throughput_bps, "NetB");
  const auto nj_temporal =
      nj.spot.metric_values(trace::metric::udp_throughput_bps, "NetB");
  // Spatial: Proximate samples scattered across the zone.
  const auto wi_spatial =
      wi.proximate.metric_values(trace::metric::udp_throughput_bps, "NetB");
  const auto nj_spatial =
      nj.proximate.metric_values(trace::metric::udp_throughput_bps, "NetB");

  const auto wi_t = curve(wi_temporal, "(a) WI temporal", "~50-60");
  const auto wi_s = curve(wi_spatial, "(b) WI spatial", "~80");
  const auto nj_t = curve(nj_temporal, "(c) NJ temporal", "~80-90");
  const auto nj_s = curve(nj_spatial, "(d) NJ spatial", "~100");

  std::printf("\n");
  bench::report("NJ needs more samples than WI", "yes",
                (nj_t + nj_s >= wi_t + wi_s) ? "yes" : "no");
  return 0;
}

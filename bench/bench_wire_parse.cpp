// Wire-parse throughput - decoded reports/sec for the zero-allocation
// codec fast path vs the seed parser, single-line and batched (ISSUE 3
// tentpole; no paper figure -- this bench prices the coordinator's
// wire-facing decode layer, the hot path in front of the sharded pipeline).
//
// Four measurements over the same synthetic report stream:
//  * seed parser: the PR-2-era decoder (preserved below: substr copies, a
//    vector<string> per CSV split, locale-aware std::stod per field), one
//    REPORT line at a time.
//  * fast parser: the current std::string_view + std::from_chars decoder,
//    one REPORT line at a time. Acceptance: >= 5x the seed parser.
//  * batched parser: REPORTB frames of `batch` records decoded with
//    decode_report_batch.
//  * end-to-end: REPORT lines vs REPORTB frames through a 4-shard
//    coordinator_server, with the raw in-memory drain rate (no wire layer
//    at all) printed as the ceiling. Acceptance: batched frames beat
//    per-line ingestion (> 1x).
//
// Machine-readable results go to bench_wire_parse.jsonl in the working
// directory (one JSON object per line; schema in EXPERIMENTS.md).
//
//   ./bench_wire_parse [reports] [batch]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/sharded_coordinator.h"
#include "geo/projection.h"
#include "proto/messages.h"
#include "proto/server.h"

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- the seed decoder, frozen for comparison ------------------------------
namespace seed_parser {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double to_double(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  if (used != s.size()) throw std::invalid_argument(s);
  return v;
}

trace::measurement_record from_csv(const std::string& line) {
  const auto f = split(line, ',');
  if (f.size() != 16) throw std::invalid_argument("CSV needs 16 fields");
  trace::measurement_record r;
  r.time_s = to_double(f[0]);
  r.network = f[1];
  r.pos = {to_double(f[2]), to_double(f[3])};
  r.speed_mps = to_double(f[4]);
  r.kind = trace::probe_kind_from_string(f[5]);
  r.success = static_cast<int>(to_double(f[6])) != 0;
  r.throughput_bps = to_double(f[7]);
  r.loss_rate = to_double(f[8]);
  r.jitter_s = to_double(f[9]);
  r.rtt_s = to_double(f[10]);
  r.ping_sent = static_cast<int>(to_double(f[11]));
  r.ping_failures = static_cast<int>(to_double(f[12]));
  r.rssi_dbm = to_double(f[13]);
  r.device = f[14];
  r.client_id = static_cast<std::uint64_t>(to_double(f[15]));
  return r;
}

proto::measurement_report decode_report(const std::string& line) {
  const std::string prefix = "REPORT client=";
  if (line.rfind(prefix, 0) != 0) {
    throw std::invalid_argument("expected REPORT message");
  }
  const auto csv_pos = line.find(" csv=");
  if (csv_pos == std::string::npos) {
    throw std::invalid_argument("REPORT missing csv field");
  }
  proto::measurement_report m;
  m.client_id =
      std::stoull(line.substr(prefix.size(), csv_pos - prefix.size()));
  m.record = from_csv(line.substr(csv_pos + 5));
  return m;
}

}  // namespace seed_parser

// Same stream recipe as bench_ingest_scaling: all probe kinds, two
// operators, a 5x5 zone neighbourhood.
std::vector<trace::measurement_record> make_stream(const geo::projection& proj,
                                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<trace::measurement_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace::measurement_record r;
    r.time_s = 1000.0 + static_cast<double>(i) * 0.5;
    r.network = rng.chance(0.5) ? "NetB" : "NetC";
    r.pos = proj.to_lat_lon(
        {443.0 * static_cast<double>(rng.uniform_int(-2, 2)),
         443.0 * static_cast<double>(rng.uniform_int(-2, 2))});
    r.client_id = 1 + (i % 64);
    r.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    r.success = true;
    if (r.kind == trace::probe_kind::ping) {
      r.rtt_s = 0.1 + 0.02 * rng.uniform();
      r.ping_sent = 5;
    } else {
      r.throughput_bps = 1e6 * (1.0 + rng.uniform());
    }
    out.push_back(r);
  }
  return out;
}

/// Wall-clock throughput of one `fn` pass over `count` reports.
template <class Fn>
double one_rate(std::size_t count, Fn&& fn) {
  const double t0 = now_s();
  fn();
  return static_cast<double>(count) / (now_s() - t0);
}

/// Best-of-`reps` wall-clock throughput of `fn` over `count` reports.
template <class Fn>
double best_rate(std::size_t count, int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) best = std::max(best, one_rate(count, fn));
  return best;
}

core::sharded_config pipeline_config() {
  core::sharded_config cfg;
  cfg.coordinator.epochs.default_epoch_s = 120.0;
  cfg.num_shards = 4;
  cfg.synchronous = false;
  cfg.queue_capacity = 4096;
  cfg.drain_batch = 64;
  return cfg;
}

void jsonl_result(std::ofstream& out, const char* mode, std::size_t batch,
                  std::size_t reports, double rps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", rps);
  out << "{\"bench\":\"wire_parse\",\"mode\":\"" << mode
      << "\",\"batch\":" << batch << ",\"reports\":" << reports
      << ",\"reports_per_s\":" << buf << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const std::size_t batch =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  constexpr int kReps = 5;

  bench::banner("Wire parse - zero-allocation decode fast path + REPORTB",
                "no paper figure; ROADMAP north star (cheap per-sample "
                "ingestion at the coordinator)");
  std::printf("  reports: %zu, REPORTB batch: %zu, best of %d runs\n\n",
              reports, batch, kReps);

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(proj, reports);

  // Encode once, outside every timed region (the client pays that cost).
  std::vector<std::string> lines;
  lines.reserve(stream.size());
  for (const auto& rec : stream) {
    proto::measurement_report rep;
    rep.client_id = rec.client_id;
    rep.record = rec;
    lines.push_back(proto::encode(rep));
  }
  std::vector<std::string> frames;
  frames.reserve(stream.size() / batch + 1);
  for (std::size_t i = 0; i < stream.size(); i += batch) {
    const std::size_t n = std::min(batch, stream.size() - i);
    frames.push_back(proto::encode_report_batch(
        std::span<const trace::measurement_record>(stream.data() + i, n)));
  }

  // Checksum accumulator: keeps every decode loop observable.
  double sink = 0.0;

  const auto seed_pass = [&] {
    for (const auto& line : lines) {
      sink += seed_parser::decode_report(line).record.time_s;
    }
  };
  const auto fast_pass = [&] {
    for (const auto& line : lines) {
      sink += proto::decode_report(line).record.time_s;
    }
  };
  const auto batch_pass = [&] {
    for (const auto& frame : frames) {
      for (const auto& rec : proto::decode_report_batch(frame)) {
        sink += rec.time_s;
      }
    }
  };

  // The three parsers are interleaved within each rep (after an untimed
  // warm-up) so scheduler/frequency drift on a shared host hits every
  // column equally, and each speedup is the median of per-rep paired
  // ratios -- the same discipline bench_ingest_scaling applies to the obs
  // overhead measurement.
  seed_pass();
  fast_pass();
  double seed_rps = 0.0, fast_rps = 0.0, batch_rps = 0.0;
  std::vector<double> fast_ratios, batch_ratios;
  for (int r = 0; r < kReps; ++r) {
    const double seed_r = one_rate(stream.size(), seed_pass);
    const double fast_r = one_rate(stream.size(), fast_pass);
    const double batch_r = one_rate(stream.size(), batch_pass);
    seed_rps = std::max(seed_rps, seed_r);
    fast_rps = std::max(fast_rps, fast_r);
    batch_rps = std::max(batch_rps, batch_r);
    fast_ratios.push_back(fast_r / seed_r);
    batch_ratios.push_back(batch_r / seed_r);
  }
  std::sort(fast_ratios.begin(), fast_ratios.end());
  std::sort(batch_ratios.begin(), batch_ratios.end());
  const double fast_speedup = fast_ratios[fast_ratios.size() / 2];
  const double batch_speedup = batch_ratios[batch_ratios.size() / 2];

  std::printf("  seed parser (substr+split+stod):       %11.0f reports/s\n",
              seed_rps);
  std::printf("  fast parser (string_view+from_chars):  %11.0f reports/s  "
              "(%.2fx paired median)\n",
              fast_rps, fast_speedup);
  std::printf("  batched parser (REPORTB %zu):           %11.0f reports/s  "
              "(%.2fx paired median)\n\n",
              batch, batch_rps, batch_speedup);

  // End-to-end: the wire layer in front of the 4-shard pipeline, against
  // the raw in-memory drain rate as the ceiling.
  const auto e2e = [&](auto&& submit) {
    double best = 0.0;
    for (int r = 0; r < kReps; ++r) {
      core::sharded_coordinator sc(grid, {"NetB", "NetC"}, pipeline_config(),
                                   bench::bench_seed);
      proto::coordinator_server server(sc);
      const double t0 = now_s();
      submit(sc, server);
      sc.flush();
      const double dt = now_s() - t0;
      best = std::max(best, static_cast<double>(stream.size()) / dt);
      sc.stop();
    }
    return best;
  };

  const double raw_rps =
      e2e([&](core::sharded_coordinator& sc, proto::coordinator_server&) {
        for (const auto& rec : stream) sc.report(rec);
      });
  const double wire_single_rps =
      e2e([&](core::sharded_coordinator&, proto::coordinator_server& server) {
        for (const auto& line : lines) server.handle(line);
      });
  const double wire_batch_rps =
      e2e([&](core::sharded_coordinator&, proto::coordinator_server& server) {
        for (const auto& frame : frames) server.handle(frame);
      });

  std::printf("  end-to-end into the 4-shard pipeline (1 producer thread):\n");
  std::printf("    raw in-memory drain (no wire):       %11.0f reports/s\n",
              raw_rps);
  std::printf("    REPORT per line:                     %11.0f reports/s  "
              "(%.2fx of raw)\n",
              wire_single_rps, wire_single_rps / raw_rps);
  std::printf("    REPORTB batched:                     %11.0f reports/s  "
              "(%.2fx of raw)\n\n",
              wire_batch_rps, wire_batch_rps / raw_rps);

  bench::report("single-line decode speedup vs seed parser", ">= 5x",
                bench::fmt(fast_speedup) + "x");
  bench::report("batched REPORTB decode vs seed parser", "-",
                bench::fmt(batch_speedup) + "x");
  bench::report("e2e REPORTB frames vs per-line REPORT", "> 1x",
                bench::fmt(wire_batch_rps / wire_single_rps) + "x");

  std::ofstream jsonl("bench_wire_parse.jsonl");
  jsonl_result(jsonl, "seed_single", 1, stream.size(), seed_rps);
  jsonl_result(jsonl, "fast_single", 1, stream.size(), fast_rps);
  jsonl_result(jsonl, "fast_batched", batch, stream.size(), batch_rps);
  jsonl_result(jsonl, "e2e_raw_drain", 1, stream.size(), raw_rps);
  jsonl_result(jsonl, "e2e_report", 1, stream.size(), wire_single_rps);
  jsonl_result(jsonl, "e2e_reportb", batch, stream.size(), wire_batch_rps);

  // The checksum keeps the compiler honest; print it so it is truly live.
  std::fprintf(stderr, "# checksum %.1f\n", sink);
  return 0;
}

// Figure 14: per-website download delays for multi-sim and MAR.
// Paper: multi-sim with WiScape improves 13% (microsoft) to 32% (amazon)
// over the single networks; MAR with WiScape improves ~37% over naive
// round-robin across the well-known sites.
#include <cstdio>

#include "apps/multihoming.h"
#include "apps/zone_knowledge.h"
#include "apps/surge.h"
#include "bench_common.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 14 - per-website delays: multi-sim and MAR",
      "multi-sim WiScape beats every single net per site (13-32%); MAR "
      "WiScape ~37% over round-robin");

  const auto training = bench::segment_dataset();
  auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                      bench::bench_seed);
  probe::probe_engine engine(dep, bench::bench_seed + 12);
  const apps::zone_knowledge zk(training, geo::zone_grid(dep.proj(), 250.0),
                                dep.names());

  const double half_w = dep.area().width_m / 2.0;
  const auto route = geo::straight_route(
      dep.proj().to_lat_lon({-half_w * 0.9, 0.0}),
      dep.proj().to_lat_lon({half_w * 0.9, 0.0}), 24);
  apps::drive_config drive;
  drive.speed_mps = 15.3;

  const auto sites = apps::well_known_websites(bench::bench_seed);
  std::printf("\n  (a) Multi-sim per-site delay (s):\n");
  std::printf("  %-10s %9s %9s %9s %9s %8s\n", "site", "WiScape", "NetA",
              "NetB", "NetC", "gain");
  for (const auto& site : sites) {
    const auto ws =
        apps::run_multisim(engine, &zk, apps::multisim_policy::wiscape, 0,
                           site.object_bytes, route, drive, bench::bench_seed);
    double fixed[3] = {};
    double best = 1e18;
    for (std::size_t n = 0; n < dep.size(); ++n) {
      fixed[n] = apps::run_multisim(engine, nullptr,
                                    apps::multisim_policy::fixed, n,
                                    site.object_bytes, route, drive,
                                    bench::bench_seed)
                     .total_s;
      best = std::min(best, fixed[n]);
    }
    std::printf("  %-10s %9.1f %9.1f %9.1f %9.1f %7.1f%%\n",
                site.name.c_str(), ws.total_s, fixed[0], fixed[1], fixed[2],
                (1.0 - ws.total_s / best) * 100.0);
  }

  std::printf("\n  (b) MAR per-site delay (s):\n");
  std::printf("  %-10s %9s %9s %8s\n", "site", "WiScape", "RR", "gain");
  double gain_sum = 0.0;
  for (const auto& site : sites) {
    const auto ws = apps::run_mar(engine, &zk, apps::mar_policy::wiscape,
                                  site.object_bytes, route, drive,
                                  bench::bench_seed);
    const auto rr = apps::run_mar(engine, &zk, apps::mar_policy::round_robin,
                                  site.object_bytes, route, drive,
                                  bench::bench_seed);
    const double gain = 1.0 - ws.total_s / rr.total_s;
    gain_sum += gain;
    std::printf("  %-10s %9.1f %9.1f %7.1f%%\n", site.name.c_str(),
                ws.total_s, rr.total_s, gain * 100.0);
  }
  std::printf("\n");
  bench::report("mean MAR gain over round-robin", "~37%",
                bench::fmt_pct(gain_sum / static_cast<double>(sites.size())));
  return 0;
}

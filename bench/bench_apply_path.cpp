// Coordinator apply-path throughput - the dense interned estimate store vs
// the seed's string-keyed unordered_map (ISSUE 4 tentpole; no paper figure
// -- this bench prices the per-sample fold behind every REPORT/REPORTB).
//
// Four measurements over the same synthetic report stream:
//  * seed store: the PR-0-era zone_table (preserved below: estimate_key
//    string copy + string hash per sample, per-epoch boundary walk).
//    Acceptance: the dense store reaches >= 2x its paired-median rate.
//  * dense store: interned u16 network ids, one u64 packed key, open
//    addressing with a last-key memo.
//  * steady-state allocation audit: a global operator new/delete counting
//    hook proves the dense apply path performs ZERO heap allocations per
//    report once streams exist (the seed store hashes a string per sample
//    and copies the key into a temporary -- a heap allocation whenever the
//    operator name outgrows the small-string buffer).
//  * gap micro: one sample landing 10^6 (both stores) and 10^12 (dense
//    only; the seed loop would take hours) epochs late -- the O(1)
//    fast-forward vs the seed's per-epoch walk.
//
// Machine-readable results go to bench_apply_path.jsonl in the working
// directory (one JSON object per line; schema in EXPERIMENTS.md).
//
//   ./bench_apply_path [reports]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/zone_table.h"
#include "geo/projection.h"
#include "geo/zone_grid.h"
#include "stats/rng.h"
#include "trace/record.h"

// ---- allocation-counting hook ---------------------------------------------
// Counts every global operator new while `g_count_allocs` is set. Kept
// trivially cheap otherwise; the bench is single-threaded but the counters
// are atomic so the hook stays correct if a library thread allocates.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t) { return counted_alloc(n); }
void* operator new[](std::size_t n, std::align_val_t) {
  return counted_alloc(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

using namespace wiscape;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- the seed zone_table, frozen for comparison ---------------------------
namespace seed_store {

class zone_table {
 public:
  explicit zone_table(double change_sigma_factor = 2.0)
      : sigma_factor_(change_sigma_factor) {}

  void add_sample(const core::estimate_key& key, double time_s, double value,
                  double epoch_duration_s) {
    if (!(epoch_duration_s > 0.0)) {
      throw std::invalid_argument("epoch duration must be positive");
    }
    stream& s = streams_[key];
    if (s.open_start_s < 0.0) {
      s.open_start_s =
          std::floor(time_s / epoch_duration_s) * epoch_duration_s;
    }
    while (time_s >= s.open_start_s + epoch_duration_s) {
      rollover(key, s);
      s.open_start_s += epoch_duration_s;
    }
    s.open.add(value);
  }

  const std::vector<core::change_alert>& alerts() const noexcept {
    return alerts_;
  }
  std::size_t num_streams() const noexcept { return streams_.size(); }

 private:
  struct stream {
    stats::running_stats open;
    double open_start_s = -1.0;
    std::vector<core::epoch_estimate> frozen;
  };

  void rollover(const core::estimate_key& key, stream& s) {
    if (s.open.empty()) return;
    core::epoch_estimate e;
    e.epoch_start_s = s.open_start_s;
    e.mean = s.open.mean();
    e.stddev = s.open.stddev();
    e.samples = s.open.count();
    if (!s.frozen.empty()) {
      const core::epoch_estimate& prev = s.frozen.back();
      const double threshold = sigma_factor_ * prev.stddev;
      if (threshold > 0.0 && std::abs(e.mean - prev.mean) > threshold) {
        alerts_.push_back(
            {key, e.epoch_start_s, prev.mean, e.mean, prev.stddev});
      }
    }
    s.frozen.push_back(e);
    s.open.reset();
  }

  double sigma_factor_;
  std::unordered_map<core::estimate_key, stream, core::estimate_key_hash>
      streams_;
  std::vector<core::change_alert> alerts_;
};

}  // namespace seed_store

// One pre-routed fold item: what coordinator::report hands the store per
// record, with the zone and wire-cached network id resolved outside the
// timed region (both stores pay the same upstream costs).
struct fold_item {
  geo::zone_id zone;
  const char* network;          // interned-string lookup key (seed store)
  std::uint16_t network_id;     // pre-resolved id (dense store)
  trace::probe_kind kind;
  double time_s;
  double value;
};

std::vector<fold_item> make_stream(const geo::zone_grid& grid,
                                   std::size_t count) {
  stats::rng_stream rng(bench::bench_seed);
  std::vector<fold_item> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fold_item it;
    // ~500 reports/s city-wide: the corpus spans a handful of epochs, so a
    // stream collects several samples per epoch and rollovers are the rare
    // case -- the paper's regime (many samples aggregated per zone-epoch),
    // not a degenerate one-sample-per-epoch walk.
    it.time_s = 1000.0 + static_cast<double>(i) * 0.002;
    const bool b = rng.chance(0.5);
    it.network = b ? "NetB" : "NetC";
    it.network_id = b ? 0 : 1;
    // The paper's deployment footprint: WiScape's Madison measurements
    // cover a ~2 km x 7 km section of the city at r=250 m zones (Sec 3),
    // a few hundred live zones x two operators x the per-kind metrics.
    it.zone = grid.zone_of(grid.proj().to_lat_lon(
        {rng.uniform(-1000.0, 1000.0), rng.uniform(-3500.0, 3500.0)}));
    it.kind = static_cast<trace::probe_kind>(rng.uniform_int(0, 3));
    it.value = it.kind == trace::probe_kind::ping
                   ? 0.1 + 0.02 * rng.uniform()
                   : 1e6 * (1.0 + rng.uniform());
    out.push_back(it);
  }
  return out;
}

template <class Fn>
double one_rate(std::size_t count, Fn&& fn) {
  const double t0 = now_s();
  fn();
  return static_cast<double>(count) / (now_s() - t0);
}

void jsonl_result(std::ofstream& out, const char* mode, std::size_t reports,
                  double rps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", rps);
  out << "{\"bench\":\"apply_path\",\"mode\":\"" << mode
      << "\",\"reports\":" << reports << ",\"reports_per_s\":" << buf
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reports =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
  constexpr int kReps = 7;
  constexpr double kEpochS = 120.0;

  bench::banner("Apply path - dense interned estimate store",
                "no paper figure; ROADMAP north star (cheap per-sample "
                "ingestion at the coordinator)");
  std::printf("  reports: %zu, epoch %.0fs, best of %d runs\n\n", reports,
              kEpochS, kReps);

  const geo::projection proj(cellnet::anchors::madison);
  const geo::zone_grid grid(proj, 250.0);
  const auto stream = make_stream(grid, reports);
  const std::vector<std::string> networks = {"NetB", "NetC"};

  // One full fold pass per store flavour. Fresh tables per call so reps are
  // independent; stream-creation cost amortises to noise over the corpus.
  double sink = 0.0;
  const auto seed_pass = [&] {
    seed_store::zone_table t(2.0);
    for (const auto& it : stream) {
      for (const trace::metric m : trace::metrics_of(it.kind)) {
        t.add_sample({it.zone, it.network, m}, it.time_s, it.value, kEpochS);
      }
    }
    sink += static_cast<double>(t.num_streams() + t.alerts().size());
  };
  const auto dense_pass = [&] {
    core::zone_table t(2.0, networks);
    // The production batch loops (coordinator::report_batch, sharded
    // drain) pipeline an apply's two dependent misses across records --
    // directory slot two ahead, hot accumulator line one ahead; the fold
    // here mirrors them.
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const fold_item& it = stream[i];
      for (const trace::metric m : trace::metrics_of(it.kind)) {
        t.add_sample(it.zone, it.network_id, m, it.time_s, it.value, kEpochS);
      }
    }
    sink += static_cast<double>(t.keys().size() + t.alerts().size());
  };

  // Interleave the two stores within each rep (after an untimed warm-up)
  // and take the median of per-rep paired ratios, so host drift hits both
  // columns equally -- the bench_wire_parse discipline. Each rep's rate is
  // the best of two back-to-back passes: a scheduler/steal spike can only
  // ever slow a pass down, so best-of-2 rejects one-sided noise without
  // biasing the comparison (both stores get the same treatment).
  seed_pass();
  dense_pass();
  double seed_rps = 0.0, dense_rps = 0.0;
  std::vector<double> ratios;
  for (int r = 0; r < kReps; ++r) {
    const double s = std::max(one_rate(stream.size(), seed_pass),
                              one_rate(stream.size(), seed_pass));
    const double d = std::max(one_rate(stream.size(), dense_pass),
                              one_rate(stream.size(), dense_pass));
    seed_rps = std::max(seed_rps, s);
    dense_rps = std::max(dense_rps, d);
    ratios.push_back(d / s);
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios[ratios.size() / 2];

  std::printf("  seed store (string key + map):   %11.0f reports/s\n",
              seed_rps);
  std::printf("  dense store (interned + packed): %11.0f reports/s  "
              "(%.2fx paired median)\n\n",
              dense_rps, speedup);

  // ---- steady-state allocation audit --------------------------------------
  // Warm a dense table over the whole stream (creates every stream, settles
  // every capacity), then replay the stream pinned inside one epoch beyond
  // the warm-up times: every apply hits an existing stream's open epoch --
  // the happy path -- and must not allocate at all.
  std::uint64_t dense_allocs = 0, dense_bytes = 0, seed_allocs = 0;
  {
    core::zone_table t(2.0, networks);
    seed_store::zone_table st(2.0);
    const double last_t = stream.back().time_s;
    const double pinned =
        (std::floor(last_t / kEpochS) + 2.0) * kEpochS + 1.0;
    const auto replay_dense = [&] {
      for (const auto& it : stream) {
        for (const trace::metric m : trace::metrics_of(it.kind)) {
          t.add_sample(it.zone, it.network_id, m, pinned, it.value, kEpochS);
        }
      }
    };
    const auto replay_seed = [&] {
      for (const auto& it : stream) {
        for (const trace::metric m : trace::metrics_of(it.kind)) {
          st.add_sample({it.zone, it.network, m}, pinned, it.value, kEpochS);
        }
      }
    };
    replay_dense();  // absorb stream creation + the one rollover per stream
    replay_seed();
    g_allocs.store(0);
    g_alloc_bytes.store(0);
    g_count_allocs.store(true);
    replay_dense();
    g_count_allocs.store(false);
    dense_allocs = g_allocs.load();
    dense_bytes = g_alloc_bytes.load();
    g_allocs.store(0);
    g_count_allocs.store(true);
    replay_seed();
    g_count_allocs.store(false);
    seed_allocs = g_allocs.load();
  }
  const double seed_allocs_per_report =
      static_cast<double>(seed_allocs) / static_cast<double>(stream.size());
  std::printf("  steady-state heap allocations per report:\n");
  std::printf("    seed store:  %8.2f allocs/report\n", seed_allocs_per_report);
  std::printf("    dense store: %8llu allocs total (%llu bytes) over %zu "
              "reports\n\n",
              static_cast<unsigned long long>(dense_allocs),
              static_cast<unsigned long long>(dense_bytes), stream.size());

  // ---- gap micro ----------------------------------------------------------
  // A sample landing k empty epochs late: the seed walks k boundaries, the
  // dense store jumps them in O(1).
  const auto gap_seed_s = [&](double k) {
    seed_store::zone_table t(2.0);
    const core::estimate_key key{{0, 0}, "NetB",
                                 trace::metric::tcp_throughput_bps};
    t.add_sample(key, 30.0, 1.0, kEpochS);
    const double t0 = now_s();
    t.add_sample(key, 30.0 + k * kEpochS, 2.0, kEpochS);
    return now_s() - t0;
  };
  const auto gap_dense_s = [&](double k) {
    core::zone_table t(2.0, networks);
    t.add_sample({0, 0}, 0, trace::metric::tcp_throughput_bps, 30.0, 1.0,
                 kEpochS);
    const double t0 = now_s();
    t.add_sample({0, 0}, 0, trace::metric::tcp_throughput_bps,
                 30.0 + k * kEpochS, 2.0, kEpochS);
    const double dt = now_s() - t0;
    // The jump published exactly the one pre-gap epoch (read through the
    // non-copying view -- single-threaded, table stable).
    sink += static_cast<double>(
        t.history_view({0, 0}, 0, trace::metric::tcp_throughput_bps).size());
    return dt;
  };
  const double seed_1e6 = gap_seed_s(1e6);
  const double dense_1e6 = gap_dense_s(1e6);
  const double dense_1e12 = gap_dense_s(1e12);
  std::printf("  gap apply (one sample landing k epochs late):\n");
  std::printf("    k=10^6  seed walk:   %10.3f ms\n", seed_1e6 * 1e3);
  std::printf("    k=10^6  dense jump:  %10.3f ms\n", dense_1e6 * 1e3);
  std::printf("    k=10^12 dense jump:  %10.3f ms  (seed would take ~%.0f "
              "hours)\n\n",
              dense_1e12 * 1e3, seed_1e6 * 1e6 / 3600.0);

  bench::report("dense-store apply throughput vs seed store", ">= 2x",
                bench::fmt(speedup) + "x");
  bench::report("steady-state allocations per report (dense)", "0",
                bench::fmt(static_cast<double>(dense_allocs), 0));
  bench::report("10^12-epoch gap apply", "O(1), < 1 ms",
                bench::fmt(dense_1e12 * 1e3, 3) + " ms");

  std::ofstream jsonl("bench_apply_path.jsonl");
  jsonl_result(jsonl, "seed_store", stream.size(), seed_rps);
  jsonl_result(jsonl, "dense_store", stream.size(), dense_rps);
  {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"apply_path\",\"mode\":\"steady_alloc\","
                  "\"reports\":%zu,\"dense_allocs\":%llu,"
                  "\"seed_allocs_per_report\":%.2f}\n",
                  stream.size(),
                  static_cast<unsigned long long>(dense_allocs),
                  seed_allocs_per_report);
    jsonl << buf;
    std::snprintf(buf, sizeof buf,
                  "{\"bench\":\"apply_path\",\"mode\":\"gap\","
                  "\"seed_1e6_ms\":%.3f,\"dense_1e6_ms\":%.3f,"
                  "\"dense_1e12_ms\":%.3f}\n",
                  seed_1e6 * 1e3, dense_1e6 * 1e3, dense_1e12 * 1e3);
    jsonl << buf;
  }

  // The checksum keeps the compiler honest; print it so it is truly live.
  std::fprintf(stderr, "# checksum %.1f\n", sink);
  return dense_allocs == 0 ? 0 : 1;
}

// Figure 13: average TCP throughput per zone along the 20 km road stretch
// for all three networks.
// Paper: per-zone means differ persistently; e.g. the best network at zone
// 20 is ~42% above the next best, ~30% at zone 4; several zones have no
// clear winner.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/dominance.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 13 - per-zone TCP throughput along the Short segment",
      "persistent per-zone gaps; best network up to ~42% above next best");

  const auto ds = bench::segment_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                            bench::bench_seed);
  const auto networks = dep.names();
  const geo::zone_grid grid(dep.proj(), 250.0);

  core::dominance_config cfg;
  cfg.min_samples_per_network = 20;
  const auto summary = core::analyze_dominance(
      ds, grid, trace::metric::tcp_throughput_bps, networks, cfg);

  std::printf("\n  %6s %10s %10s %10s %10s\n", "zone", "NetA", "NetB", "NetC",
              "best gap");
  double max_gap = 0.0;
  int zone_no = 0;
  for (const auto& z : summary.zones) {
    ++zone_no;
    if (z.means.size() < 3) continue;
    std::vector<double> sorted = z.means;
    std::sort(sorted.rbegin(), sorted.rend());
    const double gap = sorted[1] > 0.0 ? sorted[0] / sorted[1] - 1.0 : 0.0;
    max_gap = std::max(max_gap, gap);
    std::printf("  %6d %10.0f %10.0f %10.0f %9.1f%%\n", zone_no,
                z.means[0] / 1e3, z.means[1] / 1e3, z.means[2] / 1e3,
                gap * 100.0);
  }

  std::printf("\n");
  bench::report("zones along segment", "~45", std::to_string(zone_no));
  bench::report("max best-vs-next throughput gap", "~42%",
                bench::fmt_pct(max_gap));
  bench::report("zones with a dominant network", "52%",
                bench::fmt_pct(summary.dominated_fraction));
  return 0;
}

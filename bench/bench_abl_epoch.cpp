// Ablation: why the Allan-minimum epoch (Sec 3.2.2) beats fixed choices.
//
// For a zone's metric series, an epoch must be (a) long enough that two
// consecutive epoch estimates agree when nothing happened -- otherwise the
// >2-sigma change detector cries wolf -- and (b) short enough to react to
// real shifts. We sweep fixed epochs against the Allan choice and report
// consecutive-epoch instability (false-alarm pressure) and epochs/day
// (responsiveness). The Allan epoch should sit near the instability knee.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/epoch_estimator.h"
#include "stats/summary.h"

using namespace wiscape;

namespace {

struct epoch_quality {
  double instability = 0.0;  ///< mean |m_{i+1}-m_i| / overall mean
  double epochs_per_day = 0.0;
  std::size_t epochs = 0;
};

epoch_quality evaluate(const stats::time_series& series, double epoch_s) {
  epoch_quality q;
  const auto means = series.bin_means(epoch_s);
  q.epochs = means.size();
  if (means.size() < 3) return q;
  const double overall = stats::mean(means);
  double diff = 0.0;
  for (std::size_t i = 1; i < means.size(); ++i) {
    diff += std::abs(means[i] - means[i - 1]);
  }
  q.instability = overall > 0.0
                      ? diff / static_cast<double>(means.size() - 1) / overall
                      : 0.0;
  q.epochs_per_day = 86400.0 / epoch_s;
  return q;
}

void region_sweep(const bench::region_data& region, const char* label) {
  const auto series =
      region.spot.metric_series(trace::metric::udp_throughput_bps, "NetB");
  if (series.size() < 500) {
    std::printf("  %s: series too short\n", label);
    return;
  }

  core::epoch_config cfg;
  cfg.scan_lo_s = 120.0;
  cfg.scan_hi_s = 12.0 * 3600;
  const core::epoch_estimator est(cfg);
  const double allan_epoch = est.epoch_for(series);

  std::printf("\n  --- %s ---\n", label);
  std::printf("  %14s %12s %14s %8s\n", "epoch", "instability",
              "epochs/day", "epochs");
  for (double epoch_s : {300.0, 900.0, 1800.0, 3600.0, 3.0 * 3600,
                         6.0 * 3600}) {
    const auto q = evaluate(series, epoch_s);
    std::printf("  %11.0f min %11.2f%% %14.1f %8zu\n", epoch_s / 60.0,
                q.instability * 100.0, q.epochs_per_day, q.epochs);
  }
  const auto qa = evaluate(series, allan_epoch);
  std::printf("  %8.0f (Allan) %11.2f%% %14.1f %8zu   <- chosen\n",
              allan_epoch / 60.0, qa.instability * 100.0, qa.epochs_per_day,
              qa.epochs);
}

}  // namespace

int main() {
  bench::banner(
      "Ablation - fixed epochs vs the Allan-minimum epoch",
      "short epochs churn (false >2-sigma alarms), long epochs react "
      "slowly; the Allan minimum balances both per zone");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  region_sweep(wi, "Madison, WI");
  region_sweep(nj, "New Brunswick, NJ");
  return 0;
}

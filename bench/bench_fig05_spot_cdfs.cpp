// Figure 5: CDFs of 30-minute average TCP/UDP throughput, jitter and loss
// at the Spot locations (Madison: NetA/B/C; New Brunswick: NetB/C).
// Paper: relative stddev of 30-min throughput <= 0.15 everywhere; NetA
// fastest in Madison (>50% benefit) with ~7 ms jitter vs ~3 ms for B/C;
// loss < 1% everywhere; NJ rates higher but more variable.
#include <cstdio>

#include "bench_common.h"
#include "stats/summary.h"

using namespace wiscape;

namespace {

void region_report(const bench::region_data& region, const char* label) {
  std::printf("\n  --- %s ---\n", label);
  for (const auto& net : region.networks) {
    const auto tcp =
        region.spot.metric_series(trace::metric::tcp_throughput_bps, net);
    const auto udp =
        region.spot.metric_series(trace::metric::udp_throughput_bps, net);
    const auto jit = region.spot.metric_values(trace::metric::jitter_s, net);
    const auto loss = region.spot.metric_values(trace::metric::loss_rate, net);
    if (tcp.empty() || udp.empty()) continue;

    const auto tcp30 = tcp.bin_means(1800.0);
    const auto udp30 = udp.bin_means(1800.0);
    std::printf(
        "  %s: tcp30 mean=%s relsd=%s | udp30 mean=%s relsd=%s | "
        "jitter=%s | loss=%s\n",
        net.c_str(), bench::fmt_kbps(stats::mean(tcp30)).c_str(),
        bench::fmt_pct(stats::relative_stddev(tcp30)).c_str(),
        bench::fmt_kbps(stats::mean(udp30)).c_str(),
        bench::fmt_pct(stats::relative_stddev(udp30)).c_str(),
        bench::fmt_ms(stats::mean(jit)).c_str(),
        bench::fmt_pct(stats::mean(loss), 2).c_str());

    // A compact CDF of the 30-min TCP means (the shape of Fig 5a/e).
    const auto cdf = stats::empirical_cdf(tcp30, 6);
    std::printf("      tcp30 CDF:");
    for (const auto& p : cdf) {
      std::printf(" (%.0fk, %.2f)", p.value / 1e3, p.fraction);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::banner(
      "Figure 5 - Spot-location CDFs of 30-min averages",
      "30-min rel-stddev <= 0.15; WI: NetA fastest, jitter ~7 ms vs ~3 ms; "
      "NJ: higher rates, higher variance; loss < 1% everywhere");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  region_report(wi, "Madison, WI (a-d)");
  region_report(nj, "New Brunswick, NJ (e-h)");

  // Headline checks.
  std::printf("\n");
  const auto wi_a = wi.spot.metric_series(trace::metric::tcp_throughput_bps,
                                          "NetA").bin_means(1800.0);
  const auto wi_b = wi.spot.metric_series(trace::metric::tcp_throughput_bps,
                                          "NetB").bin_means(1800.0);
  if (!wi_a.empty() && !wi_b.empty()) {
    bench::report("WI: NetA tcp advantage over worst", "> 50%",
                  bench::fmt_pct(stats::mean(wi_a) / stats::mean(wi_b) - 1.0));
  }
  const auto ja = wi.spot.metric_values(trace::metric::jitter_s, "NetA");
  const auto jb = wi.spot.metric_values(trace::metric::jitter_s, "NetB");
  if (!ja.empty() && !jb.empty()) {
    bench::report("WI: NetA jitter vs NetB jitter", "~7 ms vs ~3 ms",
                  bench::fmt_ms(stats::mean(ja)) + " vs " +
                      bench::fmt_ms(stats::mean(jb)));
  }
  return 0;
}

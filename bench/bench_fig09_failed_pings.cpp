// Figure 9: relative stddev of TCP throughput -- all zones vs zones with
// persistent ping failures (Standalone dataset; the deployment carries a
// handful of trouble spots).
// Paper: zones with >= 20 consecutive failed-ping days are far more
// variable (65% above 40% rel-stddev), and they capture 97% of the zones
// whose rel-stddev exceeds 20%.
#include <cstdio>

#include "bench_common.h"
#include "core/anomaly.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 9 - failed-ping zones vs overall variability (Standalone)",
      "failed-ping zones are the high-variability zones; they catch ~97% of "
      "zones above 20% rel-stddev");

  const auto ds = bench::standalone_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                            bench::bench_seed);
  const geo::zone_grid grid(dep.proj(), 250.0);

  core::failed_ping_config cfg;
  // The paper requires 20 consecutive days over a year-long campaign; our
  // 4-day campaign scales that to 2 consecutive days.
  cfg.min_consecutive_days = 2;
  cfg.min_tcp_samples = 80;
  cfg.high_variability = 0.20;
  const auto report = core::analyze_failed_pings(ds, grid, "NetB", cfg);

  auto cdf_row = [](const std::vector<double>& rels, const char* label) {
    if (rels.empty()) {
      std::printf("  %-24s (no zones)\n", label);
      return;
    }
    std::printf("  %-24s n=%4zu  p50=%5.1f%%  p80=%5.1f%%  p95=%5.1f%%\n",
                label, rels.size(), stats::percentile(rels, 50.0) * 100.0,
                stats::percentile(rels, 80.0) * 100.0,
                stats::percentile(rels, 95.0) * 100.0);
  };
  std::printf("\n");
  cdf_row(report.all_rel_stddev, "all zones");
  cdf_row(report.flagged_rel_stddev, "failed-ping zones");

  std::printf("\n");
  bench::report("zones analyzed / flagged", "-",
                std::to_string(report.zones_total) + " / " +
                    std::to_string(report.zones_flagged));
  if (!report.flagged_rel_stddev.empty() && !report.all_rel_stddev.empty()) {
    bench::report(
        "median rel-stddev: flagged vs all", "flagged >> all",
        bench::fmt_pct(stats::percentile(report.flagged_rel_stddev, 50.0)) +
            " vs " +
            bench::fmt_pct(stats::percentile(report.all_rel_stddev, 50.0)));
  }
  bench::report("high-variability zones caught by flag", "~97%",
                bench::fmt_pct(report.high_variability_caught));
  return 0;
}

// Figure 10: network latency near the football stadium on game day.
// Paper: during the ~3-hour game (80,000 fans), 10-minute average ping
// latency rises from ~113 ms to ~418 ms (~3.7x) on NetB; WiScape's
// infrequent monitoring still catches the surge.
#include <cstdio>

#include "bench_common.h"
#include "core/anomaly.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 10 - stadium game-day latency surge (Madison)",
      "10-min latency rises ~113 -> ~418 ms (~3.7x) for ~3 h during the "
      "game and is detected by coarse monitoring");

  auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                      bench::bench_seed);
  const geo::xy stadium =
      dep.proj().to_xy(cellnet::anchors::camp_randall);
  const double game_start = 13.0 * 3600, game_end = 16.0 * 3600;
  for (std::size_t n = 0; n < dep.size(); ++n) {
    dep.network(n).add_event({stadium, 700.0, game_start, game_end, 0.47});
  }

  probe::probe_engine engine(dep, bench::bench_seed + 10);
  const mobility::gps_fix at_stadium{cellnet::anchors::camp_randall, 0.0, 0.0};
  probe::ping_probe_params ping;
  ping.count = 12;
  ping.interval_s = 5.0;

  // One ping train every 5 minutes, 7am..8pm, for NetB and NetC.
  for (const auto& net : {std::string("NetB"), std::string("NetC")}) {
    const auto idx = static_cast<std::size_t>(dep.index_of(net));
    stats::time_series rtts;
    for (double t = 7.0 * 3600; t < 20.0 * 3600; t += 300.0) {
      mobility::gps_fix fix = at_stadium;
      fix.time_s = t;
      const auto rec = engine.ping_probe(idx, fix, ping);
      if (rec.success) rtts.add(t, rec.rtt_s);
    }

    // 10-minute bins around the game window, like the paper's plot.
    std::printf("\n  [%s] 10-min mean latency (ms) across the day:\n    ",
                net.c_str());
    const auto before = rtts.between(9.0 * 3600, game_start).values();
    const auto during = rtts.between(game_start, game_end).values();
    const auto after = rtts.between(game_end + 1800.0, 20.0 * 3600).values();
    int col = 0;
    for (const auto& bin : rtts.bin_means(600.0)) {
      std::printf("%5.0f", bin * 1e3);
      if (++col % 13 == 0) std::printf("\n    ");
    }
    std::printf("\n");
    if (before.empty() || during.empty() || after.empty()) continue;
    const double b = stats::mean(before);
    const double d = stats::mean(during);
    bench::report(net + ": baseline latency", "~113 ms", bench::fmt_ms(b));
    bench::report(net + ": game-time latency", "~418 ms", bench::fmt_ms(d));
    bench::report(net + ": surge factor", "~3.7x", bench::fmt(d / b, 2) + "x");
    bench::report(net + ": post-game recovery", "yes",
                  stats::mean(after) < 1.8 * b ? "yes" : "no");

    // Detection via the surge detector on the 10-min series.
    const auto surges = core::detect_surges(rtts, 600.0, 2.0, 1800.0);
    std::string detected = "none";
    for (const auto& s : surges) {
      detected = "surge " + bench::fmt(s.factor, 1) + "x from t=" +
                 bench::fmt(s.start_s / 3600.0, 1) + "h to " +
                 bench::fmt(s.end_s / 3600.0, 1) + "h";
    }
    bench::report(net + ": detected by monitor", "detected", detected);
  }
  return 0;
}

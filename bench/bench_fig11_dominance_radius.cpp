// Figure 11: fraction of zones with a persistently dominant network (by
// RTT latency, WiRover data) as a function of zone radius.
// Paper: ~85% of zones have one dominant network, and the fraction is
// roughly stable across radii 50-1000 m.
#include <cstdio>

#include "bench_common.h"
#include "core/dominance.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 11 - persistent latency dominance vs zone radius (WiRover)",
      "~85% of zones dominated by NetB or NetC regardless of radius");

  const auto ds = bench::wirover_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::corridor,
                                            bench::bench_seed);
  const auto networks = dep.names();

  std::printf("\n  %8s %8s %10s %10s %10s\n", "radius", "zones", "NetB-dom",
              "NetC-dom", "dominated");
  for (double radius : {50.0, 100.0, 200.0, 300.0, 500.0, 1000.0}) {
    const geo::zone_grid grid(dep.proj(), radius);
    core::dominance_config cfg;
    cfg.min_samples_per_network = 15;
    const auto summary = core::analyze_dominance(ds, grid,
                                                 trace::metric::rtt_s,
                                                 networks, cfg);
    if (summary.zones.empty()) {
      std::printf("  %7.0fm (no zones with enough samples)\n", radius);
      continue;
    }
    std::printf("  %7.0fm %8zu %9.1f%% %9.1f%% %9.1f%%\n", radius,
                summary.zones.size(),
                100.0 * static_cast<double>(summary.wins[0]) /
                    static_cast<double>(summary.zones.size()),
                100.0 * static_cast<double>(summary.wins[1]) /
                    static_cast<double>(summary.zones.size()),
                summary.dominated_fraction * 100.0);
  }

  const geo::zone_grid grid(dep.proj(), 250.0);
  core::dominance_config cfg;
  cfg.min_samples_per_network = 15;
  const auto summary =
      core::analyze_dominance(ds, grid, trace::metric::rtt_s, networks, cfg);
  std::printf("\n");
  bench::report("dominated fraction at 250 m", "~85%",
                bench::fmt_pct(summary.dominated_fraction));
  return 0;
}

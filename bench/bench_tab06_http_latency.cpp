// Table 6: total HTTP latency for 1000 SURGE pages downloaded while driving
// the Short segment.
// Paper: Multi-sim with WiScape 87.66 s vs single networks 124-159 s (~30%
// better than the best single net); MAR with WiScape 25.72 s vs
// throughput-weighted round-robin 36.8 s (~32% better). (Paper times are
// per-run averages of a much smaller batch; shapes, not absolutes, carry.)
#include <cstdio>

#include "apps/multihoming.h"
#include "apps/zone_knowledge.h"
#include "apps/surge.h"
#include "bench_common.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Table 6 - multi-sim and MAR HTTP latency on the Short segment",
      "Multisim-WiScape ~30% faster than best fixed net; MAR-WiScape ~32% "
      "faster than MAR round-robin");

  const auto training = bench::segment_dataset();
  auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                      bench::bench_seed);
  probe::probe_engine engine(dep, bench::bench_seed + 11);

  const apps::zone_knowledge zk(training, geo::zone_grid(dep.proj(), 250.0),
                                dep.names());

  apps::surge_config scfg;
  scfg.pages = 1000;
  const auto pages = apps::surge_pages(scfg, bench::bench_seed);

  const double half_w = dep.area().width_m / 2.0;
  const auto route = geo::straight_route(
      dep.proj().to_lat_lon({-half_w * 0.9, 0.0}),
      dep.proj().to_lat_lon({half_w * 0.9, 0.0}), 24);
  apps::drive_config drive;
  drive.speed_mps = 15.3;  // ~55 km/h, the paper's average

  // ---- Multi-sim ----
  std::printf("\n  Multi-sim (sequential, one interface at a time):\n");
  const auto ws = apps::run_multisim(engine, &zk, apps::multisim_policy::wiscape,
                                     0, pages, route, drive,
                                     bench::bench_seed);
  bench::report("Multisim-WiScape total", "87.66 s",
                bench::fmt(ws.total_s, 1) + " s");
  double best_fixed = 1e18;
  const char* paper_fixed[] = {"124.26 s", "158.55 s", "145.46 s"};
  for (std::size_t n = 0; n < dep.size(); ++n) {
    const auto fixed =
        apps::run_multisim(engine, nullptr, apps::multisim_policy::fixed, n,
                           pages, route, drive, bench::bench_seed);
    best_fixed = std::min(best_fixed, fixed.total_s);
    bench::report("Multisim fixed " + dep.names()[n], paper_fixed[n],
                  bench::fmt(fixed.total_s, 1) + " s");
  }
  bench::report("WiScape gain over best fixed", "~30%",
                bench::fmt_pct(1.0 - ws.total_s / best_fixed));

  // ---- MAR ----
  std::printf("\n  MAR (parallel striping across all interfaces):\n");
  const auto mar_ws = apps::run_mar(engine, &zk, apps::mar_policy::wiscape,
                                    pages, route, drive, bench::bench_seed);
  const auto mar_rr =
      apps::run_mar(engine, &zk, apps::mar_policy::weighted_round_robin, pages,
                    route, drive, bench::bench_seed);
  const auto mar_naive = apps::run_mar(engine, &zk, apps::mar_policy::round_robin,
                                       pages, route, drive, bench::bench_seed);
  bench::report("MAR-WiScape total", "25.72 s",
                bench::fmt(mar_ws.total_s, 1) + " s");
  bench::report("MAR-RR (weighted) total", "36.80 s",
                bench::fmt(mar_rr.total_s, 1) + " s");
  bench::report("MAR naive round-robin total", "(worse)",
                bench::fmt(mar_naive.total_s, 1) + " s");
  bench::report("WiScape gain over MAR-RR", "~32%",
                bench::fmt_pct(1.0 - mar_ws.total_s / mar_rr.total_s));
  return 0;
}

// Figure 1: city-wide snapshot of TCP throughput across Madison.
// Paper: each dot is a zone; sizes encode mean 1 MB-download throughput and
// shades the variance, over a 155 sq km area on NetB.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/mapping.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 1 - city-wide TCP throughput map (Standalone, NetB)",
      "zone dots over 155 sq km; typical zone means ~ 0.5-2 Mbps; most "
      "zones low-variance, a few high-variance outliers");

  const auto ds = bench::standalone_dataset();
  const auto dep =
      cellnet::make_deployment(cellnet::region_preset::madison, bench::bench_seed);
  const geo::zone_grid grid(dep.proj(), 250.0);

  const auto zones = ds.zone_metric_values(
      grid, trace::metric::tcp_throughput_bps, "NetB", 50);

  std::vector<std::pair<geo::zone_id, std::pair<double, double>>> rows;
  for (const auto& [zone, samples] : zones) {
    rows.push_back({zone,
                    {stats::mean(samples), stats::relative_stddev(samples)}});
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::printf("\n  %-12s %10s %12s %10s\n", "zone", "mean", "rel-stddev",
              "samples");
  const std::size_t step = std::max<std::size_t>(1, rows.size() / 30);
  for (std::size_t i = 0; i < rows.size(); i += step) {
    const auto& [zone, stats_pair] = rows[i];
    std::printf("  %-12s %10s %11.1f%% %10zu\n",
                geo::to_string(zone).c_str(),
                bench::fmt_kbps(stats_pair.first).c_str(),
                stats_pair.second * 100.0, zones.at(zone).size());
  }

  // The actual "figure": the interpolated throughput surface as an ASCII
  // heat map (dark = fast), the operator-facing product of Fig 1.
  core::mapping_config mcfg;
  mcfg.cell_m = 400.0;
  mcfg.min_zone_samples = 50;
  std::printf("\n  city map (ASCII; '@' = fastest zones):\n%s\n",
              core::ascii_map(ds, grid, trace::metric::tcp_throughput_bps,
                              "NetB", mcfg)
                  .c_str());

  stats::running_stats means, rels;
  for (const auto& [_, mr] : rows) {
    means.add(mr.first);
    rels.add(mr.second);
  }
  std::printf("\n");
  bench::report("zones mapped (>=50 samples)", "hundreds",
                std::to_string(rows.size()));
  bench::report("mean zone throughput", "~1080 Kbps (sample zone)",
                bench::fmt_kbps(means.mean()));
  bench::report("median zone rel-stddev", "mostly < 8%",
                bench::fmt_pct(rels.mean()));
  return 0;
}

// Ablation: sensitivity of the persistent-dominance rule (Sec 4.2.1) to its
// percentile thresholds.
//
// The paper defines dominance as "lower 5 percentile of the best network
// better than the upper 95 percentile of the others" -- a deliberately
// strict rule so that infrequent WiScape sampling can still trust the
// winner. Loosening the percentiles inflates the dominated share; the bench
// quantifies by how much on the Short-segment data.
#include <cstdio>

#include "bench_common.h"
#include "core/dominance.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Ablation - dominance percentile thresholds (Short segment, TCP)",
      "the 5/95 rule is conservative by design; looser tails declare more "
      "winners but with weaker persistence guarantees");

  const auto ds = bench::segment_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                            bench::bench_seed);
  const auto networks = dep.names();
  const geo::zone_grid grid(dep.proj(), 250.0);

  std::printf("\n  %12s %8s %10s %10s %10s %10s\n", "percentiles", "zones",
              "NetA", "NetB", "NetC", "dominated");
  for (auto [lo, hi] : {std::pair{5.0, 95.0},
                        std::pair{10.0, 90.0},
                        std::pair{25.0, 75.0},
                        std::pair{50.0, 50.0}}) {
    core::dominance_config cfg;
    cfg.low_pct = lo;
    cfg.high_pct = hi;
    cfg.min_samples_per_network = 20;
    const auto summary = core::analyze_dominance(
        ds, grid, trace::metric::tcp_throughput_bps, networks, cfg);
    if (summary.zones.empty()) continue;
    const auto total = static_cast<double>(summary.zones.size());
    std::printf("  %5.0f / %-5.0f %8zu %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", lo,
                hi, summary.zones.size(),
                100.0 * static_cast<double>(summary.wins[0]) / total,
                100.0 * static_cast<double>(summary.wins[1]) / total,
                100.0 * static_cast<double>(summary.wins[2]) / total,
                summary.dominated_fraction * 100.0);
  }

  std::printf("\n");
  bench::report("dominated share grows as tails loosen", "monotone",
                "see table");
  bench::report("50/50 (mean comparison) declares", "~all zones",
                "a winner nearly everywhere");
  return 0;
}

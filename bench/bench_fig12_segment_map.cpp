// Figure 12: dominance map of the 20 km Short segment by TCP throughput.
// Paper inset: NetA dominates 26% of zones, NetB 13%, NetC 13%, none 48% --
// i.e. about half the zones have a persistently best network.
#include <cstdio>

#include "bench_common.h"
#include "core/dominance.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 12 - Short-segment dominance map (TCP throughput)",
      "NetA 26%, NetB 13%, NetC 13%, none 48% of zones");

  const auto ds = bench::segment_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::segment,
                                            bench::bench_seed);
  const auto networks = dep.names();
  const geo::zone_grid grid(dep.proj(), 250.0);

  core::dominance_config cfg;
  cfg.min_samples_per_network = 20;
  const auto summary = core::analyze_dominance(
      ds, grid, trace::metric::tcp_throughput_bps, networks, cfg);
  if (summary.zones.empty()) {
    std::printf("  no zones with enough samples\n");
    return 1;
  }

  // The "map": zones in west-to-east order with their winner.
  std::printf("\n  west -> east: ");
  for (const auto& z : summary.zones) {
    std::printf("%c", z.winner < 0 ? '.' : 'A' + static_cast<char>(z.winner));
  }
  std::printf("   ('.' = no dominant network)\n\n");

  const auto total = static_cast<double>(summary.zones.size());
  const char* paper[] = {"26%", "13%", "13%"};
  for (std::size_t n = 0; n < networks.size(); ++n) {
    bench::report(networks[n] + " dominates", paper[n],
                  bench::fmt_pct(static_cast<double>(summary.wins[n]) / total));
  }
  bench::report("no dominant network", "48%",
                bench::fmt_pct(static_cast<double>(summary.none) / total));
  bench::report("some network dominates", "52%",
                bench::fmt_pct(summary.dominated_fraction));
  return 0;
}

// Table 5: number of back-to-back measurement packets needed to estimate
// TCP/UDP throughput within 97% of the expected value, per network and
// region. Also reproduces the Sec 3.3.1 tool comparison that motivates
// simple downloads: Pathload and WBest both underestimate.
// Paper: WI needs 40-90 packets, NJ 50-120; WBest underestimates by up to
// 70%, Pathload by up to 40%.
#include <cstdio>

#include "bench_common.h"
#include "bwest/ground_truth.h"
#include "bwest/pathload.h"
#include "bwest/wbest.h"
#include "core/sample_planner.h"

using namespace wiscape;

namespace {

void packet_rows(const bench::region_data& region, const char* suffix) {
  core::planner_config cfg;
  cfg.iterations = 60;
  cfg.target_accuracy = 0.97;
  cfg.step = 10;
  cfg.max_samples = 300;
  const core::sample_planner planner(cfg);

  for (const auto& net : region.networks) {
    stats::rng_stream rng(bench::bench_seed ^ stats::hash_label(net) ^
                          stats::hash_label(suffix));
    const auto udp =
        region.proximate.metric_values(trace::metric::udp_throughput_bps, net);
    const auto tcp =
        region.proximate.metric_values(trace::metric::tcp_throughput_bps, net);
    if (udp.size() < 100 || tcp.size() < 100) continue;
    std::printf("  %-10s UDP: %4zu packets   TCP: %4zu packets\n",
                (net + "-" + suffix).c_str(),
                planner.packets_for_accuracy(udp, rng),
                planner.packets_for_accuracy(tcp, rng));
  }
}

}  // namespace

int main() {
  bench::banner(
      "Table 5 - packets needed for 97% throughput accuracy (+ Sec 3.3.1)",
      "40-90 packets in Madison, 50-120 in New Brunswick; WBest "
      "underestimates up to 70%, Pathload up to 40%");

  const auto wi = bench::spot_region(cellnet::region_preset::madison);
  const auto nj = bench::spot_region(cellnet::region_preset::new_jersey);
  std::printf("\n");
  packet_rows(wi, "WI");
  packet_rows(nj, "NJ");

  // Sec 3.3.1: tool comparison at the WI spot.
  std::printf("\n  Sec 3.3.1 baseline comparison (WI spot, NetB):\n");
  auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                      bench::bench_seed);
  probe::probe_engine engine(dep, bench::bench_seed + 9);
  const mobility::gps_fix fix{wi.location, 0.0, 12.0 * 3600};
  const std::size_t net = 1;  // NetB

  bwest::ground_truth_config gt;
  gt.iterations = 5;
  gt.duration_s = 20.0;
  gt.offered_rate_bps = 8e6;
  const double truth = bwest::ground_truth_udp_bps(engine, net, fix, gt);

  double wbest_err = 0.0, pathload_err = 0.0, simple_err = 0.0;
  int n = 0;
  for (int i = 0; i < 8; ++i) {
    mobility::gps_fix f = fix;
    f.time_s += i * 120.0;
    const auto wb = bwest::wbest_estimate(engine, net, f);
    const auto pl = bwest::pathload_estimate(engine, net, f);
    const auto ud = engine.udp_probe(net, f);
    if (!wb.valid || !pl.valid || !ud.success) continue;
    wbest_err += bwest::relative_error(wb.available_bps, truth);
    pathload_err += bwest::relative_error(pl.estimate_bps, truth);
    simple_err += bwest::relative_error(ud.throughput_bps, truth);
    ++n;
  }
  if (n > 0) {
    bench::report("ground-truth UDP rate", "-", bench::fmt_kbps(truth));
    bench::report("WBest mean error", "up to -70%",
                  bench::fmt_pct(wbest_err / n));
    bench::report("Pathload mean error", "up to -40%",
                  bench::fmt_pct(pathload_err / n));
    bench::report("simple UDP download error", "small",
                  bench::fmt_pct(simple_err / n));
  }
  return 0;
}

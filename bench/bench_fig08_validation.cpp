// Figure 8: CDF of WiScape's zone-estimation error against ground truth
// (Standalone dataset split per zone into client-sourced and ground-truth
// halves; estimates use WiScape's ~100-sample budget).
// Paper: error <= 4% for more than 70% of zones; maximum error ~15%.
#include <cstdio>

#include "bench_common.h"
#include "core/validation.h"
#include "stats/summary.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Figure 8 - WiScape estimation error CDF (Standalone, NetB)",
      "<= 4% error for > 70% of zones; maximum error ~15%");

  const auto ds = bench::standalone_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                            bench::bench_seed);
  const geo::zone_grid grid(dep.proj(), 250.0);

  core::validation_config cfg;
  cfg.client_fraction = 0.5;
  // The paper's year-long campaign uses zones with >= 200 samples; our
  // compressed campaign scales the floor accordingly.
  cfg.min_zone_samples = 120;
  cfg.wiscape_samples = 100;
  const auto report = core::validate_estimation(
      ds, grid, trace::metric::tcp_throughput_bps, "NetB", cfg,
      bench::bench_seed);

  if (report.errors.empty()) {
    std::printf("  no zones with enough samples -- increase campaign size\n");
    return 1;
  }

  std::vector<std::pair<double, double>> pts;
  for (const auto& p : stats::empirical_cdf(report.errors, 20)) {
    pts.push_back({p.value * 100.0, p.fraction});
  }
  std::printf("\n");
  bench::print_series("error (%)", "CDF", pts, 20);

  std::printf("\n");
  bench::report("zones validated", "~400",
                std::to_string(report.errors.size()));
  bench::report("fraction of zones with error <= 4%", "> 70%",
                bench::fmt_pct(report.fraction_within(0.04)));
  bench::report("maximum error", "~15%", bench::fmt_pct(report.max_error()));
  return 0;
}

// Ablation: the accuracy / overhead trade-off of WiScape's sample budget
// (the "important trade off between the volume of measurements collected,
// the ensuing accuracy, and the energy and monetary costs" of Sec 3.4).
//
// Sweeps the per-zone-epoch sample budget and reports the Fig 8-style
// estimation error next to the per-client-day overhead: the paper's ~100
// samples sit at the knee.
#include <cstdio>

#include "bench_common.h"
#include "core/overhead.h"
#include "core/validation.h"

using namespace wiscape;

int main() {
  bench::banner(
      "Ablation - sample budget vs estimation accuracy vs client overhead",
      "Sec 3.4: ~100 samples/zone-epoch is enough for <=4% error on most "
      "zones; more samples buy little, fewer cost accuracy");

  const auto ds = bench::standalone_dataset();
  const auto dep = cellnet::make_deployment(cellnet::region_preset::madison,
                                            bench::bench_seed);
  const geo::zone_grid grid(dep.proj(), 250.0);

  // Overhead per probe is fixed; scale it by the budget share each client
  // carries (the paper's scenario: ~50 active clients share a zone-epoch).
  constexpr std::size_t tcp_bytes = 500'000;
  constexpr double clients_per_zone = 50.0;

  std::printf("\n  %8s %10s %12s %12s %16s\n", "budget", "zones",
              "err<=4%", "max err", "MB/client-day");
  for (std::size_t budget : {10u, 25u, 50u, 100u, 200u}) {
    core::validation_config cfg;
    cfg.min_zone_samples = 120;
    cfg.wiscape_samples = budget;
    const auto report = core::validate_estimation(
        ds, grid, trace::metric::tcp_throughput_bps, "NetB", cfg,
        bench::bench_seed + budget);
    if (report.errors.empty()) continue;

    // One zone-epoch costs budget probes; each client carries its share.
    // ~20 epochs/day at the default 75-minute epoch.
    const double probes_per_client_day =
        static_cast<double>(budget) / clients_per_zone * 20.0;
    trace::measurement_record proto;
    proto.kind = trace::probe_kind::tcp_download;
    proto.success = true;
    proto.throughput_bps = 1e6;
    const auto cost = core::cost_of(proto, tcp_bytes);
    const double mb_day =
        probes_per_client_day *
        static_cast<double>(cost.bytes_down + cost.bytes_up) / 1e6;

    std::printf("  %8zu %10zu %11.1f%% %11.1f%% %16.1f\n", budget,
                report.errors.size(), report.fraction_within(0.04) * 100.0,
                report.max_error() * 100.0, mb_day);
  }

  std::printf("\n");
  bench::report("knee of the curve", "~100 samples", "see table");
  bench::report("continuous monitoring for contrast",
                "-", bench::fmt(core::continuous_monitoring_mbytes_per_day(1e6),
                                0) + " MB/client-day");
  return 0;
}

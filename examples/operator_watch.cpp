// Operator workflow (Sec 4.1): use WiScape's coarse data as a network-
// operations watchdog.
//
// Two triage paths from the paper, on one synthetic city:
//   1. A stadium fills up for three hours -> sustained latency surge in one
//      zone -> surge detector + >2-sigma change alert.
//   2. A few zones have chronic backhaul trouble -> their pings fail day
//      after day -> failed-ping triage shortlists exactly the
//      high-variability zones worth a truck roll.
//
//   ./operator_watch [seed]
#include <cstdio>
#include <cstdlib>

#include "cellnet/presets.h"
#include "core/anomaly.h"
#include "core/coordinator.h"
#include "core/estimate_view.h"
#include "probe/engine.h"
#include "stats/summary.h"

using namespace wiscape;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  auto dep = cellnet::make_deployment(cellnet::region_preset::madison, seed);

  // --- Scenario 1: game day at Camp Randall. -----------------------------
  const geo::xy stadium = dep.proj().to_xy(cellnet::anchors::camp_randall);
  dep.network("NetB").add_event(
      {stadium, 700.0, 13.0 * 3600, 16.0 * 3600, 0.5});

  probe::probe_engine engine(dep, seed);
  const std::size_t netb = static_cast<std::size_t>(dep.index_of("NetB"));
  probe::ping_probe_params ping;
  ping.count = 12;
  ping.interval_s = 5.0;

  // The watchdog ingests through a coordinator and watches through
  // core::estimate_view -- the serving layer an operations console would
  // poll (same API the wire ALERTS/QUERY commands serve).
  stats::time_series rtts;
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config ccfg;
  ccfg.epochs.default_epoch_s = 1800.0;
  // Roll epochs on time, not sample count, matching the 30 min cadence the
  // surge detector below compares against.
  ccfg.default_samples_per_epoch = 100000;
  core::coordinator coordinator(grid, dep.names(), ccfg, seed);
  const core::estimate_view watch(coordinator);
  const geo::zone_id stadium_zone = grid.zone_of(cellnet::anchors::camp_randall);
  double last_t = 0.0;
  for (double t = 8.0 * 3600; t < 20.0 * 3600; t += 300.0) {
    const mobility::gps_fix fix{cellnet::anchors::camp_randall, 0.0, t};
    const auto rec = engine.ping_probe(netb, fix, ping);
    if (!rec.success) continue;
    rtts.add(t, rec.rtt_s);
    coordinator.report(rec);
    last_t = t;
  }

  std::printf("== scenario 1: stadium game day ==\n");
  for (const auto& s : core::detect_surges(rtts, 600.0, 2.0, 1800.0)) {
    std::printf(
        "  surge detected: %.1fx baseline (%.0f -> %.0f ms), from %.1fh to "
        "%.1fh\n",
        s.factor, s.baseline * 1e3, s.peak * 1e3, s.start_s / 3600.0,
        s.end_s / 3600.0);
  }
  // Cursor-drain the >2-sigma change alerts (a long-running watchdog would
  // remember next_seq and poll with it).
  for (const auto& a : watch.alerts_since(0, 1 << 20).alerts) {
    if (a.alert.key.metric != trace::metric::rtt_s) continue;
    std::printf(
        "  change alert #%llu: zone %s rtt %.0f -> %.0f ms (prev stddev %.1f "
        "ms) at %.1fh\n",
        static_cast<unsigned long long>(a.seq),
        geo::to_string(a.alert.key.zone).c_str(), a.alert.previous_mean * 1e3,
        a.alert.new_mean * 1e3, a.alert.previous_stddev * 1e3,
        a.alert.epoch_start_s / 3600.0);
  }
  if (const auto est = watch.lookup(stadium_zone, "NetB", trace::metric::rtt_s,
                                    last_t)) {
    std::printf(
        "  current stadium estimate: rtt %.0f ms +/- %.1f ms (n=%llu, "
        "conf=%.2f, age=%.0f min)\n",
        est->mean * 1e3, est->stddev * 1e3,
        static_cast<unsigned long long>(est->count), est->confidence,
        est->staleness_s / 60.0);
  }

  // --- Scenario 2: chronic trouble spots. ---------------------------------
  std::printf("\n== scenario 2: failed-ping triage ==\n");
  auto dep2 = cellnet::make_deployment(cellnet::region_preset::madison, seed);
  // Trouble spots sit on locations the survey below actually probes
  // (a triage can only catch what somebody measured).
  for (const geo::xy spot : {geo::xy{-1500.0, 0.0}, geo::xy{1500.0, 1500.0},
                             geo::xy{-3000.0, -3000.0}}) {
    dep2.network("NetB").add_trouble_spot({spot, 450.0, 0.45, 0.30});
  }
  probe::probe_engine engine2(dep2, seed + 2);

  // A little synthetic campaign: probe a grid of points daily for 4 days.
  trace::dataset ds;
  probe::tcp_probe_params tcp;
  tcp.bytes = 150'000;
  probe::ping_probe_params quick_ping;
  quick_ping.count = 4;
  quick_ping.interval_s = 1.0;
  for (int day = 0; day < 4; ++day) {
    for (int rep = 0; rep < 12; ++rep) {
      for (double x = -4500.0; x <= 4500.0; x += 1500.0) {
        for (double y = -4500.0; y <= 4500.0; y += 1500.0) {
          const mobility::gps_fix fix{
              dep2.proj().to_lat_lon({x, y}), 0.0,
              day * 86400.0 + 8.0 * 3600 + rep * 3000.0};
          ds.add(engine2.tcp_probe(netb, fix, tcp));
          ds.add(engine2.ping_probe(netb, fix, quick_ping));
        }
      }
    }
  }

  core::failed_ping_config cfg;
  cfg.min_consecutive_days = 2;
  cfg.min_tcp_samples = 30;
  const auto report =
      core::analyze_failed_pings(ds, geo::zone_grid(dep2.proj(), 250.0),
                                 "NetB", cfg);
  std::printf("  zones analyzed: %zu, flagged for truck rolls: %zu\n",
              report.zones_total, report.zones_flagged);
  if (!report.all_rel_stddev.empty()) {
    std::printf("  median rel-stddev all zones: %.1f%%\n",
                stats::percentile(report.all_rel_stddev, 50.0) * 100.0);
  }
  if (!report.flagged_rel_stddev.empty()) {
    std::printf("  median rel-stddev flagged zones: %.1f%%\n",
                stats::percentile(report.flagged_rel_stddev, 50.0) * 100.0);
  }
  std::printf("  high-variability zones caught by the flag: %.0f%%\n",
              report.high_variability_caught * 100.0);
  return 0;
}

// Multi-network clients (Sec 4.2): how applications spend WiScape's data.
//
// Trains zone knowledge from a short measurement campaign on the 20 km
// Short segment, then race four multi-sim policies and three MAR striping
// policies over the same page workload while driving the segment.
//
//   ./multihoming [pages] [seed]
#include <cstdio>
#include <cstdlib>

#include "apps/multihoming.h"
#include "apps/zone_knowledge.h"
#include "apps/surge.h"
#include "cellnet/presets.h"
#include "probe/collect.h"

using namespace wiscape;

int main(int argc, char** argv) {
  const std::size_t n_pages =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  auto dep = cellnet::make_deployment(cellnet::region_preset::segment, seed);
  probe::probe_engine engine(dep, seed);

  // Train zone knowledge with a compact segment campaign.
  std::printf("training zone knowledge from a segment campaign...\n");
  probe::segment_params campaign;
  campaign.days = 2;
  campaign.probe_interval_s = 120.0;
  campaign.tcp_bytes = 150'000;
  campaign.udp_packets = 30;
  const auto training = probe::collect_segment(engine, campaign);
  const apps::zone_knowledge zk(training, geo::zone_grid(dep.proj(), 250.0),
                                dep.names());
  std::printf("  %zu training records across the segment\n", training.size());
  for (std::size_t n = 0; n < dep.size(); ++n) {
    std::printf("  %s global mean: %.0f Kbps\n", dep.names()[n].c_str(),
                zk.global_mean_bps(n) / 1e3);
  }

  // Workload and route.
  apps::surge_config scfg;
  scfg.pages = n_pages;
  const auto pages = apps::surge_pages(scfg, seed);
  const double half_w = dep.area().width_m / 2.0;
  const auto route = geo::straight_route(
      dep.proj().to_lat_lon({-half_w * 0.9, 0.0}),
      dep.proj().to_lat_lon({half_w * 0.9, 0.0}), 24);
  apps::drive_config drive;
  drive.speed_mps = 15.3;

  std::printf("\n== multi-sim: %zu pages, sequential ==\n", pages.size());
  const auto ws = apps::run_multisim(engine, &zk,
                                     apps::multisim_policy::wiscape, 0, pages,
                                     route, drive, seed);
  std::printf("  %-22s %8.1f s (%zu failures)\n", "WiScape zone-aware",
              ws.total_s, ws.failures);
  for (std::size_t n = 0; n < dep.size(); ++n) {
    const auto fixed = apps::run_multisim(
        engine, nullptr, apps::multisim_policy::fixed, n, pages, route, drive,
        seed);
    std::printf("  %-22s %8.1f s (%zu failures)\n",
                ("fixed " + dep.names()[n]).c_str(), fixed.total_s,
                fixed.failures);
  }
  const auto rr = apps::run_multisim(engine, &zk,
                                     apps::multisim_policy::round_robin, 0,
                                     pages, route, drive, seed);
  std::printf("  %-22s %8.1f s (%zu failures)\n", "blind round-robin",
              rr.total_s, rr.failures);

  std::printf("\n== MAR gateway: same pages, striped in parallel ==\n");
  for (auto [policy, label] :
       {std::pair{apps::mar_policy::wiscape, "WiScape greedy"},
        std::pair{apps::mar_policy::weighted_round_robin, "weighted RR"},
        std::pair{apps::mar_policy::round_robin, "naive RR"}}) {
    const auto result =
        apps::run_mar(engine, &zk, policy, pages, route, drive, seed);
    std::printf("  %-22s %8.1f s  (per-interface busy:", label,
                result.total_s);
    for (double b : result.interface_busy_s) std::printf(" %.0fs", b);
    std::printf(")\n");
  }
  return 0;
}

// Scenario runner CLI: executes named scenarios from the catalogue
// (src/scenario/scenarios.h) and writes one tick log per scenario.
//
//   scenario_runner [--list] [--seed N] [--out DIR] [--ticks N]
//                   [--all | name...]
//
// Exits 0 only when every requested scenario passes its invariants; a red
// run prints each violation (with tick and seed, so it replays exactly).
// Tick logs land in <out>/<name>.ticklog -- byte-identical across runs of
// the same build, scenario and seed, which is what tools/run_scenarios.sh
// diffs.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/engine.h"
#include "scenario/scenarios.h"

int main(int argc, char** argv) {
  using namespace wiscape;

  std::uint64_t seed = 1234;
  std::uint64_t ticks = 0;  // 0 = catalogue default
  std::string out_dir;
  bool all = false;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--list") {
      for (const std::string& n : scenario::scenario_names()) {
        std::cout << n << "\n";
      }
      return 0;
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--ticks") {
      ticks = std::stoull(next());
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--all") {
      all = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else {
      names.push_back(arg);
    }
  }
  if (all) names = scenario::scenario_names();
  if (names.empty()) {
    std::cerr << "usage: scenario_runner [--list] [--seed N] [--out DIR] "
                 "[--ticks N] [--all | name...]\n";
    return 2;
  }

  bool ok = true;
  for (const std::string& name : names) {
    scenario::scenario_config cfg;
    try {
      cfg = scenario::make_scenario(name);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    if (ticks > 0) cfg.ticks = ticks;
    const scenario::scenario_result res = scenario::run_scenario(cfg, seed);
    std::cout << name << " seed=" << seed << " "
              << (res.passed ? "PASS" : "FAIL") << "\n";
    for (const scenario::violation& v : res.violations) {
      std::cout << "  " << scenario::to_string(v) << "\n";
      ok = false;
    }
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      std::ofstream f(out_dir + "/" + name + ".ticklog");
      f << res.tick_log;
    }
  }
  return ok ? 0 : 1;
}

// Quickstart: the WiScape loop in ~80 lines.
//
// Builds a small synthetic city with two cellular operators, puts one
// instrumented bus on the road, and runs the full client-assisted pipeline:
// clients check in with the coordinator, get measurement tasks, execute
// real packet-level probes, and report back; the coordinator aggregates
// per-zone per-epoch estimates you can query.
//
//   ./quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "cellnet/presets.h"
#include "core/client_agent.h"
#include "core/coordinator.h"
#include "core/estimate_view.h"
#include "mobility/fleet.h"
#include "mobility/route_gen.h"
#include "probe/engine.h"

using namespace wiscape;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. A world: the Madison preset (three operators over ~155 sq km).
  auto dep = cellnet::make_deployment(cellnet::region_preset::madison, seed);
  std::printf("deployment: %zu operators", dep.size());
  for (const auto& name : dep.names()) std::printf(" %s", name.c_str());
  std::printf("\n");

  // 2. A probe engine: every measurement below is a real packet-level
  //    simulation against this deployment.
  probe::probe_engine engine(dep, seed);

  // 3. The WiScape coordinator: 250 m zones, ~100 samples per zone-epoch.
  geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 20;  // small, for a quick demo
  cfg.epochs.default_epoch_s = 1800.0;
  core::coordinator coordinator(grid, dep.names(), cfg, seed);

  // 4. A bus with one client agent per operator interface.
  auto routes = mobility::make_city_routes(dep.proj(), 9000.0, 9000.0, 4,
                                           stats::rng_stream(seed));
  mobility::fleet fleet(std::move(routes), 1, mobility::transit_bus_params(),
                        stats::rng_stream(seed + 1));
  std::vector<core::client_agent> agents;
  for (std::size_t n = 0; n < dep.size(); ++n) {
    agents.emplace_back(coordinator, engine, n);
  }

  // 5. Drive the morning; agents opportunistically measure when tasked.
  int probes = 0;
  for (double t = 7.0 * 3600; t < 12.0 * 3600; t += 45.0) {
    const auto fix = fleet.fix_at(0, t);
    if (!fix) continue;
    for (auto& agent : agents) {
      if (const auto rec = agent.step(*fix, 3)) {
        ++probes;
        if (probes % 50 == 0) {
          std::printf("  [%5.1f h] %s %s probe at %s -> %s\n", t / 3600.0,
                      rec->network.c_str(), to_string(rec->kind).c_str(),
                      geo::to_string(grid.zone_of(rec->pos)).c_str(),
                      rec->success ? "ok" : "failed");
        }
      }
    }
  }
  std::printf("executed %d probes\n", probes);

  // 6. Query the product through the serving layer: core::estimate_view is
  //    the application read API (lookup adds staleness + confidence; the
  //    same facade backs the wire QUERY command).
  const core::estimate_view view(coordinator);
  const double now_s = 12.0 * 3600;
  std::printf("\npublished zone estimates (first 10):\n");
  int shown = 0;
  for (const auto& key : view.keys()) {
    const auto est = view.lookup(key.zone, key.network, key.metric, now_s);
    if (!est || shown >= 10) continue;
    ++shown;
    std::printf(
        "  zone %-8s %-5s %-16s mean=%10.1f stddev=%10.1f (n=%llu, "
        "conf=%.2f, age=%.0fs)\n",
        geo::to_string(key.zone).c_str(), key.network.c_str(),
        to_string(key.metric).c_str(), est->mean, est->stddev,
        static_cast<unsigned long long>(est->count), est->confidence,
        est->staleness_s);
  }
  const auto alerts = view.alerts_since(0, 1 << 20);
  std::printf("\nchange alerts raised: %zu\n",
              alerts.alerts.size() + static_cast<std::size_t>(alerts.dropped));
  return 0;
}

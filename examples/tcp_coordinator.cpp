// A real socket coordinator: the WiScape serving stack behind TCP.
//
// Boots a sharded coordinator pre-seeded with one simulated morning of
// probe traffic, then serves wire protocol v2 on a real port through the
// epoll front end (net::tcp_server). Talk to it with anything that speaks
// lines -- the session transcript in docs/WIRE_PROTOCOL.md was recorded
// against this binary over `nc`:
//
//   ./tcp_coordinator 4710          # serve on port 4710 until Ctrl-C/stdin EOF
//   nc 127.0.0.1 4710               # then: HELLO ver=2, QUERY ..., STATS
//
//   ./tcp_coordinator --selftest    # loopback demo: spin up on an ephemeral
//                                   # port, run a client session, exit 0
//
// Operational knobs (shed thresholds, buffer caps, idle timeout) and what
// the metrics mean: docs/RUNBOOK.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cellnet/presets.h"
#include "core/sharded_coordinator.h"
#include "geo/zone_grid.h"
#include "net/client.h"
#include "net/server.h"
#include "probe/engine.h"
#include "proto/server.h"

using namespace wiscape;

namespace {

/// One synthetic morning of probe records, generated through the real probe
/// engine so estimates have realistic spread.
std::vector<trace::measurement_record> make_morning(
    cellnet::deployment& dep, std::uint64_t seed, std::size_t count) {
  probe::probe_engine engine(dep, seed);
  const geo::zone_grid grid(dep.proj(), 250.0);
  std::vector<trace::measurement_record> recs;
  recs.reserve(count);
  const double x0 = 2000.0, y0 = 2000.0, step = 900.0;
  for (std::size_t i = 0; i < count; ++i) {
    mobility::gps_fix fix;
    fix.pos = dep.proj().to_lat_lon(
        {x0 + static_cast<double>(i % 7) * step,
         y0 + static_cast<double>((i / 7) % 7) * step});
    fix.time_s = 7 * 3600.0 + static_cast<double>(i) * 2.0;
    const std::uint32_t net = 1 + static_cast<std::uint32_t>(i % 2);
    trace::measurement_record rec;
    switch (i % 3) {
      case 0:
        rec = engine.tcp_probe(net, fix, {}, probe::laptop_device());
        break;
      case 1:
        rec = engine.udp_probe(net, fix, {}, probe::phone_device());
        break;
      default:
        rec = engine.ping_probe(net, fix, {}, probe::phone_device());
        break;
    }
    rec.client_id = 1000 + (i % 16);
    recs.push_back(rec);
  }
  return recs;
}

int selftest(proto::coordinator_server& server, const std::string& query) {
  net::server_config cfg;
  cfg.port = 0;  // ephemeral
  cfg.event_loops = 2;
  net::tcp_server tcp(server, cfg);
  tcp.start();
  std::printf("selftest: serving on 127.0.0.1:%u\n", tcp.port());

  net::line_client client;
  client.connect("127.0.0.1", tcp.port());
  const auto hello = client.hello();
  std::printf("wire> HELLO ver=2\nwire< HELLO ver=%u min=%u\n", hello.version,
              hello.min_version);
  for (const std::string& req : {query, std::string("ALERTS since=0 max=3")}) {
    const std::string reply = client.request(req);
    std::printf("wire> %s\nwire< %.120s\n", req.c_str(),
                reply.substr(0, reply.find('\n')).c_str());
  }
  const std::string stats = client.request("STATS");
  int shown = 0;
  std::printf("wire> STATS   (net.server.* excerpt)\n");
  for (std::size_t pos = 0; pos < stats.size() && shown < 8;) {
    std::size_t end = stats.find('\n', pos);
    if (end == std::string::npos) end = stats.size();
    const std::string line = stats.substr(pos, end - pos);
    if (line.rfind("net.server.", 0) == 0 &&
        line.find(".le_") == std::string::npos) {
      std::printf("  %s\n", line.c_str());
      ++shown;
    }
    pos = end + 1;
  }
  client.close();
  tcp.stop();
  std::printf("selftest: ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool self = argc > 1 && std::strcmp(argv[1], "--selftest") == 0;
  const std::uint16_t port =
      !self && argc > 1
          ? static_cast<std::uint16_t>(std::strtoul(argv[1], nullptr, 10))
          : 4710;
  const std::uint64_t seed = 11;

  auto dep = cellnet::make_deployment(cellnet::region_preset::madison, seed);
  const geo::zone_grid grid(dep.proj(), 250.0);
  core::sharded_config scfg;
  scfg.num_shards = 4;
  scfg.coordinator.default_samples_per_epoch = 12;
  scfg.coordinator.epochs.default_epoch_s = 600.0;
  core::sharded_coordinator coord(grid, dep.names(), scfg, seed);
  proto::coordinator_server server(coord);

  // Pre-seed estimates so QUERYs answer something out of the box.
  const auto morning = make_morning(dep, seed, 4096);
  std::size_t accepted = 0;
  for (const auto& rec : morning) {
    auto r = rec;
    r.network_id = coord.network_id_of(r.network);
    accepted += coord.report(r) ? 1 : 0;
  }
  coord.flush();
  coord.recompute_epochs();
  std::printf("seeded %zu reports into %zu estimate streams\n", accepted,
              coord.keys().size());

  if (self) {
    // Query a stream that has actually published an epoch estimate.
    std::string query = "STATS";
    for (const auto& key : coord.keys()) {
      if (!coord.latest(key)) continue;
      proto::query_request q;
      q.pos = grid.center(key.zone);
      q.network = key.network;
      q.metric = key.metric;
      query = proto::encode(q);
      break;
    }
    return selftest(server, query);
  }

  net::server_config cfg;
  cfg.port = port;
  cfg.event_loops = 2;
  cfg.ingest_saturation = [&coord] { return coord.ingest_saturation(); };
  net::tcp_server tcp(server, cfg);
  tcp.start();
  std::printf(
      "serving wire protocol v2 on 127.0.0.1:%u (2 event loops)\n"
      "try:  nc 127.0.0.1 %u   then type:  HELLO ver=2\n"
      "press Enter / Ctrl-D to stop\n",
      tcp.port(), tcp.port());
  std::getchar();
  tcp.stop();
  return 0;
}

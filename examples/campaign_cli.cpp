// campaign_cli: run a configurable synthetic measurement campaign from the
// command line, export the trace, and print the WiScape analysis stack
// (zones, epochs, sample plans, dominance) over it.
//
//   ./campaign_cli <region> [days] [out.csv] [seed]
//     region: madison | nj | corridor | segment
//
// Example:
//   ./campaign_cli segment 2 segment.csv 7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cellnet/presets.h"
#include "core/dominance.h"
#include "core/epoch_estimator.h"
#include "core/sample_planner.h"
#include "probe/collect.h"
#include "stats/summary.h"
#include "trace/csv.h"

using namespace wiscape;

namespace {

cellnet::region_preset parse_region(const std::string& s) {
  if (s == "madison") return cellnet::region_preset::madison;
  if (s == "nj") return cellnet::region_preset::new_jersey;
  if (s == "corridor") return cellnet::region_preset::corridor;
  if (s == "segment") return cellnet::region_preset::segment;
  std::fprintf(stderr, "unknown region '%s' (madison|nj|corridor|segment)\n",
               s.c_str());
  std::exit(2);
}

trace::dataset run_campaign(probe::probe_engine& engine,
                            cellnet::region_preset region, int days) {
  switch (region) {
    case cellnet::region_preset::madison: {
      probe::standalone_params p;
      p.days = days;
      p.probe_interval_s = 180.0;
      p.tcp_bytes = 250'000;
      return probe::collect_standalone(engine, p);
    }
    case cellnet::region_preset::new_jersey: {
      const auto locs =
          probe::default_spot_locations(engine.dep(), 2, 99);
      probe::spot_params p;
      p.days = days;
      p.udp_interval_s = 120.0;
      p.tcp_interval_s = 600.0;
      p.tcp_bytes = 250'000;
      return probe::collect_spot(engine, locs, p);
    }
    case cellnet::region_preset::corridor: {
      probe::wirover_params p;
      p.days = days;
      return probe::collect_wirover(engine, p);
    }
    case cellnet::region_preset::segment: {
      probe::segment_params p;
      p.days = days;
      p.probe_interval_s = 120.0;
      p.tcp_bytes = 250'000;
      return probe::collect_segment(engine, p);
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <madison|nj|corridor|segment> [days] [out.csv] "
                 "[seed]\n",
                 argv[0]);
    return 2;
  }
  const auto region = parse_region(argv[1]);
  const int days = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string out = argc > 3 ? argv[3] : "";
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 42;

  auto dep = cellnet::make_deployment(region, seed);
  probe::probe_engine engine(dep, seed);
  std::printf("region=%s operators=%zu days=%d seed=%llu\n", argv[1],
              dep.size(), days, static_cast<unsigned long long>(seed));

  const auto ds = run_campaign(engine, region, days);
  std::printf("collected %zu records (%llu probes)\n", ds.size(),
              static_cast<unsigned long long>(engine.probes_run()));
  if (!out.empty()) {
    trace::write_csv_file(out, ds);
    std::printf("wrote %s\n", out.c_str());
  }

  // Per-network metric summary.
  for (const auto& net : dep.names()) {
    for (auto m : {trace::metric::tcp_throughput_bps,
                   trace::metric::udp_throughput_bps, trace::metric::rtt_s}) {
      const auto values = ds.metric_values(m, net);
      if (values.size() < 5) continue;
      const bool rate = m != trace::metric::rtt_s;
      std::printf("  %-5s %-15s n=%6zu mean=%9.1f %s relsd=%5.1f%%\n",
                  net.c_str(), trace::to_string(m).c_str(), values.size(),
                  rate ? stats::mean(values) / 1e3 : stats::mean(values) * 1e3,
                  rate ? "Kbps" : "ms",
                  stats::relative_stddev(values) * 100.0);
    }
  }

  // Zone / epoch / plan analysis on the busiest zone.
  const geo::zone_grid grid(dep.proj(), 250.0);
  const auto zones = ds.group_by_zone(grid);
  std::printf("zones touched: %zu\n", zones.size());

  const trace::metric plan_metric =
      region == cellnet::region_preset::corridor
          ? trace::metric::rtt_s
          : trace::metric::udp_throughput_bps;
  std::size_t best_n = 0;
  geo::zone_id best_zone{};
  for (const auto& [zone, idx] : zones) {
    if (idx.size() > best_n) {
      best_n = idx.size();
      best_zone = zone;
    }
  }
  if (best_n > 200) {
    trace::dataset zone_ds;
    for (const auto& r : ds.records()) {
      if (grid.zone_of(r.pos) == best_zone) zone_ds.add(r);
    }
    const auto series = zone_ds.metric_series(plan_metric);
    if (series.size() > 100) {
      const core::epoch_estimator est;
      std::printf("busiest zone %s: %zu samples, Allan epoch = %.0f min\n",
                  geo::to_string(best_zone).c_str(), series.size(),
                  est.epoch_for(series) / 60.0);
      core::planner_config pcfg;
      pcfg.iterations = 40;
      const core::sample_planner planner(pcfg);
      stats::rng_stream rng(seed + 5);
      const auto values = series.values();
      std::printf("  samples for NKLD<=0.1: %zu; packets for 97%%: %zu\n",
                  planner.samples_needed(values, rng),
                  planner.packets_for_accuracy(values, rng));
    }
  }

  // Dominance, when more than one operator was measured.
  if (dep.size() > 1) {
    const auto metric = region == cellnet::region_preset::corridor
                            ? trace::metric::rtt_s
                            : trace::metric::tcp_throughput_bps;
    const auto summary =
        core::analyze_dominance(ds, grid, metric, dep.names());
    if (!summary.zones.empty()) {
      std::printf("dominance (%s): %zu zones, %.0f%% dominated\n",
                  trace::to_string(metric).c_str(), summary.zones.size(),
                  summary.dominated_fraction * 100.0);
    }
  }
  return 0;
}

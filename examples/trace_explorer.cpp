// Trace tooling: collect a campaign, export it as CRAWDAD-style CSV, load
// it back, and summarize it -- the workflow for anyone swapping our
// synthetic substrate for real field traces.
//
//   ./trace_explorer [out.csv] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "cellnet/presets.h"
#include "probe/collect.h"
#include "stats/summary.h"
#include "trace/csv.h"
#include "trace/hygiene.h"

using namespace wiscape;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "wiscape_trace_demo.csv";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 9;

  // Collect a small two-network campaign.
  auto dep = cellnet::make_deployment(cellnet::region_preset::new_jersey, seed);
  probe::probe_engine engine(dep, seed);
  const auto locs = probe::default_spot_locations(dep, 2, seed);
  probe::spot_params params;
  params.days = 1;
  params.udp_interval_s = 120.0;
  params.tcp_interval_s = 600.0;
  params.udp_packets = 30;
  params.tcp_bytes = 120'000;
  const auto ds = probe::collect_spot(engine, locs, params);
  std::printf("collected %zu records at %zu spot locations\n", ds.size(),
              locs.size());

  // Export, re-import.
  trace::write_csv_file(path, ds);
  std::printf("wrote %s\n", path.c_str());
  const auto reloaded = trace::read_csv_file(path);
  std::printf("re-loaded %zu records\n", reloaded.size());

  // Field pipelines scrub before analysis; synthetic data passes clean, but
  // the report shows what the rules would have caught.
  trace::dataset loaded;
  const auto scrub_report = trace::scrub(reloaded, {}, loaded);
  std::printf("hygiene: %s\n", scrub_report.summary().c_str());

  // Summarize: per (network, kind) counts and metric means.
  std::map<std::string, std::size_t> counts;
  for (const auto& r : loaded.records()) {
    counts[r.network + "/" + trace::to_string(r.kind) +
           (r.success ? "" : " (failed)")]++;
  }
  std::printf("\nrecord mix:\n");
  for (const auto& [k, n] : counts) {
    std::printf("  %-28s %6zu\n", k.c_str(), n);
  }

  std::printf("\nper-network summaries:\n");
  for (const auto& net : dep.names()) {
    const auto tcp = loaded.metric_values(trace::metric::tcp_throughput_bps, net);
    const auto udp = loaded.metric_values(trace::metric::udp_throughput_bps, net);
    const auto jit = loaded.metric_values(trace::metric::jitter_s, net);
    if (tcp.empty() || udp.empty()) continue;
    std::printf(
        "  %s: tcp %.0f Kbps (sd %.0f)  udp %.0f Kbps (sd %.0f)  jitter "
        "%.1f ms\n",
        net.c_str(), stats::mean(tcp) / 1e3, stats::stddev(tcp) / 1e3,
        stats::mean(udp) / 1e3, stats::stddev(udp) / 1e3,
        jit.empty() ? 0.0 : stats::mean(jit) * 1e3);
  }

  // Zone view: how records distribute over 250 m zones.
  const geo::zone_grid grid(dep.proj(), 250.0);
  const auto zones = loaded.group_by_zone(grid);
  std::printf("\nzones touched: %zu\n", zones.size());
  for (const auto& [zone, idxs] : zones) {
    std::printf("  zone %-8s %zu records\n", geo::to_string(zone).c_str(),
                idxs.size());
  }
  return 0;
}

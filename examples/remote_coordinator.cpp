// Remote coordination demo: the Sec 3.4 loop over a wire protocol.
//
// Spins up a coordinator behind the line-protocol server, then drives a
// mixed fleet of remote agents -- laptops and phones, each with a daily
// measurement budget -- through a simulated morning. Shows the message
// traffic, the per-client budget accounting, and the zone estimates the
// coordinator ends up with -- read back over the same wire via the
// protocol-v2 query side: HELLO version negotiation, batched QUERYB
// estimate lookups, and an ALERTS cursor drain. A second pass replays the
// morning's reports through the sharded concurrent pipeline (the
// production-scale ingestion path) and shows the per-shard counters plus
// that the published estimate count, re-queried over the wire, matches the
// sequential server's.
//
// The run doubles as the observability demo: an obs::snapshot_writer
// appends periodic JSON-lines metric snapshots to
// bench_out/remote_coordinator_obs.jsonl (created if needed) while the
// morning runs, and the demo closes with an excerpt of the wire-protocol
// STATS dump any operator could issue against a live coordinator.
//
//   ./remote_coordinator [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "cellnet/presets.h"
#include "core/sharded_coordinator.h"
#include "mobility/fleet.h"
#include "mobility/route_gen.h"
#include "obs/snapshot_writer.h"
#include "proto/server.h"

using namespace wiscape;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // Telemetry: snapshot every process-wide metric to a JSON-lines file
  // twice a second for the duration of the demo (final snapshot on exit).
  // The file lands under bench_out/ with the other generated artifacts,
  // not in the repo root.
  std::error_code obs_dir_ec;
  std::filesystem::create_directories("bench_out", obs_dir_ec);
  obs::snapshot_writer obs_writer("bench_out/remote_coordinator_obs.jsonl",
                                  std::chrono::milliseconds(500));

  auto dep = cellnet::make_deployment(cellnet::region_preset::madison, seed);
  probe::probe_engine engine(dep, seed);

  const geo::zone_grid grid(dep.proj(), 250.0);
  core::coordinator_config cfg;
  cfg.default_samples_per_epoch = 12;
  cfg.epochs.default_epoch_s = 600.0;
  cfg.client_daily_budget_mb = 6.0;  // each device donates at most 6 MB/day
  core::coordinator coordinator(grid, dep.names(), cfg, seed);
  proto::coordinator_server server(coordinator);

  // Transport: in this demo the "wire" is a function call, with a tap that
  // prints a few exchanges and keeps every REPORT line for the concurrent
  // replay below. Swap in a socket and nothing else changes.
  int shown = 0;
  std::vector<std::string> report_lines;
  auto transport = [&](const std::string& line) {
    std::string reply = server.handle(line);
    if (proto::message_type(line) == "REPORT") report_lines.push_back(line);
    if (shown < 6 && proto::message_type(reply) == "TASK") {
      ++shown;
      std::printf("  wire> %.60s...\n  wire< %s\n", line.c_str(),
                  reply.c_str());
    }
    return reply;
  };

  // A fleet of two buses; each carries a laptop (NetB) and a phone (NetC).
  auto routes = mobility::make_city_routes(dep.proj(), 9000.0, 9000.0, 3,
                                           stats::rng_stream(seed));
  mobility::fleet fleet(std::move(routes), 2, mobility::transit_bus_params(),
                        stats::rng_stream(seed + 1));
  std::vector<proto::remote_agent> agents;
  agents.emplace_back(engine, transport, 1001, probe::laptop_device());
  agents.emplace_back(engine, transport, 1002, probe::phone_device());
  agents.emplace_back(engine, transport, 2001, probe::laptop_device());
  agents.emplace_back(engine, transport, 2002, probe::phone_device());

  int probes = 0;
  double last_t = 0.0;
  for (double t = 7.0 * 3600; t < 13.0 * 3600; t += 60.0) {
    last_t = t;
    for (std::size_t bus = 0; bus < fleet.size(); ++bus) {
      const auto fix = fleet.fix_at(bus, t);
      if (!fix) continue;
      const std::size_t base = bus * 2;
      if (agents[base].step(*fix, 1, 2)) ++probes;      // laptop on NetB
      if (agents[base + 1].step(*fix, 2, 2)) ++probes;  // phone on NetC
    }
  }

  std::printf("\nmorning summary:\n");
  std::printf("  tasks issued: %llu, reports: %llu, probes run: %d\n",
              static_cast<unsigned long long>(server.tasks_issued()),
              static_cast<unsigned long long>(server.reports_received()),
              probes);
  for (std::uint64_t id : {1001ull, 1002ull, 2001ull, 2002ull}) {
    std::printf("  client %llu spent %.2f MB of %.1f MB budget\n",
                static_cast<unsigned long long>(id),
                coordinator.client_spend_mb(id, last_t),
                cfg.client_daily_budget_mb);
  }

  // Read the product back over the same wire: negotiate a protocol version,
  // then issue one QUERYB per 4096-query chunk -- one query per estimate
  // stream the coordinator materialised, positioned at the zone center.
  proto::remote_query_client query_client(transport);
  const auto hello = query_client.hello();
  std::printf("  negotiated wire protocol v%u (server minimum v%u)\n",
              hello.version, hello.min_version);

  std::vector<proto::query_request> queries;
  for (const auto& key : coordinator.keys()) {
    proto::query_request q;
    q.pos = grid.center(key.zone);
    q.network = key.network;
    q.metric = key.metric;
    q.time_s = last_t;
    queries.push_back(q);
  }
  const auto count_published = [&queries](proto::remote_query_client& client) {
    int published = 0;
    for (std::size_t i = 0; i < queries.size(); i += proto::max_query_batch) {
      const std::span<const proto::query_request> chunk(
          queries.data() + i,
          std::min(proto::max_query_batch, queries.size() - i));
      for (const auto& est : client.query_batch(chunk)) {
        published += est.has_value() ? 1 : 0;
      }
    }
    return published;
  };
  const int published = count_published(query_client);

  // Alerts ride the same cursor API remote watchdogs would poll with.
  const auto alerts = query_client.alerts(0);
  std::printf(
      "  zone estimates published: %d of %zu streams (change alerts served "
      "over the wire: %zu, cursor %llu)\n",
      published, queries.size(), alerts.alerts.size(),
      static_cast<unsigned long long>(alerts.next_seq));

  // Replay the morning's reports through the sharded concurrent pipeline:
  // same line protocol, same estimates, but ingestion spread over shard
  // worker threads (what a production deployment would run).
  core::sharded_config scfg;
  scfg.coordinator = cfg;
  scfg.num_shards = 4;
  core::sharded_coordinator sharded(grid, dep.names(), scfg, seed);
  proto::coordinator_server concurrent_server(sharded);
  for (const auto& line : report_lines) concurrent_server.handle(line);
  sharded.flush();

  // Same QUERYB sweep against the concurrent server: these lookups read the
  // shards' lock-free estimate mirrors, so they would not stall ingestion
  // even if the morning were still streaming in.
  proto::remote_query_client sharded_query(
      [&](const std::string& line) { return concurrent_server.handle(line); });
  const int sharded_published = count_published(sharded_query);
  std::printf("\nconcurrent replay (%zu shards):\n", sharded.num_shards());
  std::printf(
      "  reports ingested: %llu, estimates published: %d (sequential "
      "published: %d)\n",
      static_cast<unsigned long long>(sharded.reports_ingested()),
      sharded_published, published);
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    const auto stats = sharded.stats_of(s);
    std::printf(
        "  shard %zu: %llu reports in %llu drain batches (%.1f us/batch)\n",
        s, static_cast<unsigned long long>(stats.reports_ingested),
        static_cast<unsigned long long>(stats.drain_batches),
        stats.drain_batches > 0
            ? 1e6 * stats.drain_latency_s /
                  static_cast<double>(stats.drain_batches)
            : 0.0);
  }

  // The operator's view: the same numbers over the wire. Any client can send
  // a bare "STATS" line; here we show the ingest-path excerpt of the dump.
  std::printf("\nwire> STATS   (excerpt; full dump in "
              "bench_out/remote_coordinator_obs.jsonl)\n");
  std::istringstream stats_reply(concurrent_server.handle("STATS"));
  std::string stats_line;
  while (std::getline(stats_reply, stats_line)) {
    if (stats_line.rfind("core.coordinator.", 0) == 0 ||
        stats_line.rfind("core.sharded.reports", 0) == 0 ||
        stats_line.rfind("core.estimate_view.", 0) == 0 ||
        stats_line.rfind("proto.server.err", 0) == 0 ||
        stats_line.rfind("proto.server.queries", 0) == 0 ||
        stats_line.rfind("proto.server.reports", 0) == 0) {
      std::printf("  %s\n", stats_line.c_str());
    }
  }
  obs_writer.stop();
  return 0;
}

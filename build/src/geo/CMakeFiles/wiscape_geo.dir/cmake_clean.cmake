file(REMOVE_RECURSE
  "CMakeFiles/wiscape_geo.dir/lat_lon.cpp.o"
  "CMakeFiles/wiscape_geo.dir/lat_lon.cpp.o.d"
  "CMakeFiles/wiscape_geo.dir/polyline.cpp.o"
  "CMakeFiles/wiscape_geo.dir/polyline.cpp.o.d"
  "CMakeFiles/wiscape_geo.dir/projection.cpp.o"
  "CMakeFiles/wiscape_geo.dir/projection.cpp.o.d"
  "CMakeFiles/wiscape_geo.dir/zone_grid.cpp.o"
  "CMakeFiles/wiscape_geo.dir/zone_grid.cpp.o.d"
  "libwiscape_geo.a"
  "libwiscape_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

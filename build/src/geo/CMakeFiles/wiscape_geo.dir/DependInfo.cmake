
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/lat_lon.cpp" "src/geo/CMakeFiles/wiscape_geo.dir/lat_lon.cpp.o" "gcc" "src/geo/CMakeFiles/wiscape_geo.dir/lat_lon.cpp.o.d"
  "/root/repo/src/geo/polyline.cpp" "src/geo/CMakeFiles/wiscape_geo.dir/polyline.cpp.o" "gcc" "src/geo/CMakeFiles/wiscape_geo.dir/polyline.cpp.o.d"
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/wiscape_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/wiscape_geo.dir/projection.cpp.o.d"
  "/root/repo/src/geo/zone_grid.cpp" "src/geo/CMakeFiles/wiscape_geo.dir/zone_grid.cpp.o" "gcc" "src/geo/CMakeFiles/wiscape_geo.dir/zone_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for wiscape_geo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libwiscape_geo.a"
)

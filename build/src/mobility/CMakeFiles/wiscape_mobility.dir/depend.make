# Empty dependencies file for wiscape_mobility.
# This may be replaced when dependencies are built.

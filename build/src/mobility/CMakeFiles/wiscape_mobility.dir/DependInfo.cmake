
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/fleet.cpp" "src/mobility/CMakeFiles/wiscape_mobility.dir/fleet.cpp.o" "gcc" "src/mobility/CMakeFiles/wiscape_mobility.dir/fleet.cpp.o.d"
  "/root/repo/src/mobility/route_gen.cpp" "src/mobility/CMakeFiles/wiscape_mobility.dir/route_gen.cpp.o" "gcc" "src/mobility/CMakeFiles/wiscape_mobility.dir/route_gen.cpp.o.d"
  "/root/repo/src/mobility/schedule.cpp" "src/mobility/CMakeFiles/wiscape_mobility.dir/schedule.cpp.o" "gcc" "src/mobility/CMakeFiles/wiscape_mobility.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_mobility.dir/fleet.cpp.o"
  "CMakeFiles/wiscape_mobility.dir/fleet.cpp.o.d"
  "CMakeFiles/wiscape_mobility.dir/route_gen.cpp.o"
  "CMakeFiles/wiscape_mobility.dir/route_gen.cpp.o.d"
  "CMakeFiles/wiscape_mobility.dir/schedule.cpp.o"
  "CMakeFiles/wiscape_mobility.dir/schedule.cpp.o.d"
  "libwiscape_mobility.a"
  "libwiscape_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

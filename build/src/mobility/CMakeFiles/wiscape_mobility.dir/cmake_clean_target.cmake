file(REMOVE_RECURSE
  "libwiscape_mobility.a"
)

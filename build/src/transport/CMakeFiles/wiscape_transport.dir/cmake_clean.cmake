file(REMOVE_RECURSE
  "CMakeFiles/wiscape_transport.dir/ping.cpp.o"
  "CMakeFiles/wiscape_transport.dir/ping.cpp.o.d"
  "CMakeFiles/wiscape_transport.dir/tcp.cpp.o"
  "CMakeFiles/wiscape_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/wiscape_transport.dir/udp.cpp.o"
  "CMakeFiles/wiscape_transport.dir/udp.cpp.o.d"
  "libwiscape_transport.a"
  "libwiscape_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

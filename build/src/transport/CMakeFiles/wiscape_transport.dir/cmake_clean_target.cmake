file(REMOVE_RECURSE
  "libwiscape_transport.a"
)

# Empty compiler generated dependencies file for wiscape_transport.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/ping.cpp" "src/transport/CMakeFiles/wiscape_transport.dir/ping.cpp.o" "gcc" "src/transport/CMakeFiles/wiscape_transport.dir/ping.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/transport/CMakeFiles/wiscape_transport.dir/tcp.cpp.o" "gcc" "src/transport/CMakeFiles/wiscape_transport.dir/tcp.cpp.o.d"
  "/root/repo/src/transport/udp.cpp" "src/transport/CMakeFiles/wiscape_transport.dir/udp.cpp.o" "gcc" "src/transport/CMakeFiles/wiscape_transport.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netsim/CMakeFiles/wiscape_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_proto.dir/messages.cpp.o"
  "CMakeFiles/wiscape_proto.dir/messages.cpp.o.d"
  "CMakeFiles/wiscape_proto.dir/server.cpp.o"
  "CMakeFiles/wiscape_proto.dir/server.cpp.o.d"
  "libwiscape_proto.a"
  "libwiscape_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

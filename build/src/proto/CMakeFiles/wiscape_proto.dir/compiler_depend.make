# Empty compiler generated dependencies file for wiscape_proto.
# This may be replaced when dependencies are built.

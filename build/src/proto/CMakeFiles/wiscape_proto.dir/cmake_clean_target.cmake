file(REMOVE_RECURSE
  "libwiscape_proto.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/fading.cpp" "src/radio/CMakeFiles/wiscape_radio.dir/fading.cpp.o" "gcc" "src/radio/CMakeFiles/wiscape_radio.dir/fading.cpp.o.d"
  "/root/repo/src/radio/propagation.cpp" "src/radio/CMakeFiles/wiscape_radio.dir/propagation.cpp.o" "gcc" "src/radio/CMakeFiles/wiscape_radio.dir/propagation.cpp.o.d"
  "/root/repo/src/radio/technology.cpp" "src/radio/CMakeFiles/wiscape_radio.dir/technology.cpp.o" "gcc" "src/radio/CMakeFiles/wiscape_radio.dir/technology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

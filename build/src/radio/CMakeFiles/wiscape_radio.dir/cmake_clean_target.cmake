file(REMOVE_RECURSE
  "libwiscape_radio.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_radio.dir/fading.cpp.o"
  "CMakeFiles/wiscape_radio.dir/fading.cpp.o.d"
  "CMakeFiles/wiscape_radio.dir/propagation.cpp.o"
  "CMakeFiles/wiscape_radio.dir/propagation.cpp.o.d"
  "CMakeFiles/wiscape_radio.dir/technology.cpp.o"
  "CMakeFiles/wiscape_radio.dir/technology.cpp.o.d"
  "libwiscape_radio.a"
  "libwiscape_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

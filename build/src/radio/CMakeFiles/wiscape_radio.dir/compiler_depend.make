# Empty compiler generated dependencies file for wiscape_radio.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for wiscape_trace.
# This may be replaced when dependencies are built.

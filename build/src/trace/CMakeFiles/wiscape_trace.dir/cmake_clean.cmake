file(REMOVE_RECURSE
  "CMakeFiles/wiscape_trace.dir/csv.cpp.o"
  "CMakeFiles/wiscape_trace.dir/csv.cpp.o.d"
  "CMakeFiles/wiscape_trace.dir/dataset.cpp.o"
  "CMakeFiles/wiscape_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/wiscape_trace.dir/hygiene.cpp.o"
  "CMakeFiles/wiscape_trace.dir/hygiene.cpp.o.d"
  "CMakeFiles/wiscape_trace.dir/record.cpp.o"
  "CMakeFiles/wiscape_trace.dir/record.cpp.o.d"
  "libwiscape_trace.a"
  "libwiscape_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv.cpp" "src/trace/CMakeFiles/wiscape_trace.dir/csv.cpp.o" "gcc" "src/trace/CMakeFiles/wiscape_trace.dir/csv.cpp.o.d"
  "/root/repo/src/trace/dataset.cpp" "src/trace/CMakeFiles/wiscape_trace.dir/dataset.cpp.o" "gcc" "src/trace/CMakeFiles/wiscape_trace.dir/dataset.cpp.o.d"
  "/root/repo/src/trace/hygiene.cpp" "src/trace/CMakeFiles/wiscape_trace.dir/hygiene.cpp.o" "gcc" "src/trace/CMakeFiles/wiscape_trace.dir/hygiene.cpp.o.d"
  "/root/repo/src/trace/record.cpp" "src/trace/CMakeFiles/wiscape_trace.dir/record.cpp.o" "gcc" "src/trace/CMakeFiles/wiscape_trace.dir/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libwiscape_trace.a"
)

# Empty compiler generated dependencies file for wiscape_netsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_netsim.dir/link.cpp.o"
  "CMakeFiles/wiscape_netsim.dir/link.cpp.o.d"
  "CMakeFiles/wiscape_netsim.dir/simulation.cpp.o"
  "CMakeFiles/wiscape_netsim.dir/simulation.cpp.o.d"
  "libwiscape_netsim.a"
  "libwiscape_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

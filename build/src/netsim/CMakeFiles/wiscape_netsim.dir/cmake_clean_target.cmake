file(REMOVE_RECURSE
  "libwiscape_netsim.a"
)

# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geo")
subdirs("stats")
subdirs("radio")
subdirs("cellnet")
subdirs("netsim")
subdirs("transport")
subdirs("mobility")
subdirs("trace")
subdirs("probe")
subdirs("core")
subdirs("proto")
subdirs("bwest")
subdirs("apps")

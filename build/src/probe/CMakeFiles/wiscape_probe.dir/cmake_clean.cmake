file(REMOVE_RECURSE
  "CMakeFiles/wiscape_probe.dir/collect.cpp.o"
  "CMakeFiles/wiscape_probe.dir/collect.cpp.o.d"
  "CMakeFiles/wiscape_probe.dir/engine.cpp.o"
  "CMakeFiles/wiscape_probe.dir/engine.cpp.o.d"
  "libwiscape_probe.a"
  "libwiscape_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wiscape_probe.
# This may be replaced when dependencies are built.

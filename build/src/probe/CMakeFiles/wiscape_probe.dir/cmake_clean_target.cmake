file(REMOVE_RECURSE
  "libwiscape_probe.a"
)

# Empty compiler generated dependencies file for wiscape_cellnet.
# This may be replaced when dependencies are built.

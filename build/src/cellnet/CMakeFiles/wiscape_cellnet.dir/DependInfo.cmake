
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellnet/cellular_network.cpp" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/cellular_network.cpp.o" "gcc" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/cellular_network.cpp.o.d"
  "/root/repo/src/cellnet/deployment.cpp" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/deployment.cpp.o" "gcc" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/deployment.cpp.o.d"
  "/root/repo/src/cellnet/presets.cpp" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/presets.cpp.o" "gcc" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/presets.cpp.o.d"
  "/root/repo/src/cellnet/temporal_field.cpp" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/temporal_field.cpp.o" "gcc" "src/cellnet/CMakeFiles/wiscape_cellnet.dir/temporal_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/wiscape_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_cellnet.dir/cellular_network.cpp.o"
  "CMakeFiles/wiscape_cellnet.dir/cellular_network.cpp.o.d"
  "CMakeFiles/wiscape_cellnet.dir/deployment.cpp.o"
  "CMakeFiles/wiscape_cellnet.dir/deployment.cpp.o.d"
  "CMakeFiles/wiscape_cellnet.dir/presets.cpp.o"
  "CMakeFiles/wiscape_cellnet.dir/presets.cpp.o.d"
  "CMakeFiles/wiscape_cellnet.dir/temporal_field.cpp.o"
  "CMakeFiles/wiscape_cellnet.dir/temporal_field.cpp.o.d"
  "libwiscape_cellnet.a"
  "libwiscape_cellnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_cellnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

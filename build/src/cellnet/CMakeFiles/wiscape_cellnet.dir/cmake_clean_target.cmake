file(REMOVE_RECURSE
  "libwiscape_cellnet.a"
)

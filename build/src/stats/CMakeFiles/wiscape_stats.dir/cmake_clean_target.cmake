file(REMOVE_RECURSE
  "libwiscape_stats.a"
)

# Empty compiler generated dependencies file for wiscape_stats.
# This may be replaced when dependencies are built.

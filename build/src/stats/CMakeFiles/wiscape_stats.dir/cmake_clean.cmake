file(REMOVE_RECURSE
  "CMakeFiles/wiscape_stats.dir/allan.cpp.o"
  "CMakeFiles/wiscape_stats.dir/allan.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/wiscape_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/histogram.cpp.o"
  "CMakeFiles/wiscape_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/rng.cpp.o"
  "CMakeFiles/wiscape_stats.dir/rng.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/running_stats.cpp.o"
  "CMakeFiles/wiscape_stats.dir/running_stats.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/sampling.cpp.o"
  "CMakeFiles/wiscape_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/summary.cpp.o"
  "CMakeFiles/wiscape_stats.dir/summary.cpp.o.d"
  "CMakeFiles/wiscape_stats.dir/time_series.cpp.o"
  "CMakeFiles/wiscape_stats.dir/time_series.cpp.o.d"
  "libwiscape_stats.a"
  "libwiscape_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_bwest.dir/ground_truth.cpp.o"
  "CMakeFiles/wiscape_bwest.dir/ground_truth.cpp.o.d"
  "CMakeFiles/wiscape_bwest.dir/pathload.cpp.o"
  "CMakeFiles/wiscape_bwest.dir/pathload.cpp.o.d"
  "CMakeFiles/wiscape_bwest.dir/wbest.cpp.o"
  "CMakeFiles/wiscape_bwest.dir/wbest.cpp.o.d"
  "libwiscape_bwest.a"
  "libwiscape_bwest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_bwest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wiscape_bwest.
# This may be replaced when dependencies are built.

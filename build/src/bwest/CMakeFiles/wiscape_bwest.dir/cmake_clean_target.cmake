file(REMOVE_RECURSE
  "libwiscape_bwest.a"
)

# Empty dependencies file for wiscape_apps.
# This may be replaced when dependencies are built.

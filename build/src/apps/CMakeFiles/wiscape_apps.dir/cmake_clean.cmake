file(REMOVE_RECURSE
  "CMakeFiles/wiscape_apps.dir/multihoming.cpp.o"
  "CMakeFiles/wiscape_apps.dir/multihoming.cpp.o.d"
  "CMakeFiles/wiscape_apps.dir/surge.cpp.o"
  "CMakeFiles/wiscape_apps.dir/surge.cpp.o.d"
  "CMakeFiles/wiscape_apps.dir/zone_knowledge.cpp.o"
  "CMakeFiles/wiscape_apps.dir/zone_knowledge.cpp.o.d"
  "libwiscape_apps.a"
  "libwiscape_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

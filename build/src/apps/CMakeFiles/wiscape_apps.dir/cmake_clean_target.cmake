file(REMOVE_RECURSE
  "libwiscape_apps.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/wiscape_core.dir/anomaly.cpp.o"
  "CMakeFiles/wiscape_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/client_agent.cpp.o"
  "CMakeFiles/wiscape_core.dir/client_agent.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/coordinator.cpp.o"
  "CMakeFiles/wiscape_core.dir/coordinator.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/diurnal.cpp.o"
  "CMakeFiles/wiscape_core.dir/diurnal.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/dominance.cpp.o"
  "CMakeFiles/wiscape_core.dir/dominance.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/epoch_estimator.cpp.o"
  "CMakeFiles/wiscape_core.dir/epoch_estimator.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/mapping.cpp.o"
  "CMakeFiles/wiscape_core.dir/mapping.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/normalize.cpp.o"
  "CMakeFiles/wiscape_core.dir/normalize.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/overhead.cpp.o"
  "CMakeFiles/wiscape_core.dir/overhead.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/persist.cpp.o"
  "CMakeFiles/wiscape_core.dir/persist.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/report_queue.cpp.o"
  "CMakeFiles/wiscape_core.dir/report_queue.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/sample_planner.cpp.o"
  "CMakeFiles/wiscape_core.dir/sample_planner.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/sharded_coordinator.cpp.o"
  "CMakeFiles/wiscape_core.dir/sharded_coordinator.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/validation.cpp.o"
  "CMakeFiles/wiscape_core.dir/validation.cpp.o.d"
  "CMakeFiles/wiscape_core.dir/zone_table.cpp.o"
  "CMakeFiles/wiscape_core.dir/zone_table.cpp.o.d"
  "libwiscape_core.a"
  "libwiscape_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

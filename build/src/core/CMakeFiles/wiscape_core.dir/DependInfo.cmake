
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/wiscape_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/client_agent.cpp" "src/core/CMakeFiles/wiscape_core.dir/client_agent.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/client_agent.cpp.o.d"
  "/root/repo/src/core/coordinator.cpp" "src/core/CMakeFiles/wiscape_core.dir/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/coordinator.cpp.o.d"
  "/root/repo/src/core/diurnal.cpp" "src/core/CMakeFiles/wiscape_core.dir/diurnal.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/diurnal.cpp.o.d"
  "/root/repo/src/core/dominance.cpp" "src/core/CMakeFiles/wiscape_core.dir/dominance.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/dominance.cpp.o.d"
  "/root/repo/src/core/epoch_estimator.cpp" "src/core/CMakeFiles/wiscape_core.dir/epoch_estimator.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/epoch_estimator.cpp.o.d"
  "/root/repo/src/core/mapping.cpp" "src/core/CMakeFiles/wiscape_core.dir/mapping.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/mapping.cpp.o.d"
  "/root/repo/src/core/normalize.cpp" "src/core/CMakeFiles/wiscape_core.dir/normalize.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/normalize.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/core/CMakeFiles/wiscape_core.dir/overhead.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/overhead.cpp.o.d"
  "/root/repo/src/core/persist.cpp" "src/core/CMakeFiles/wiscape_core.dir/persist.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/persist.cpp.o.d"
  "/root/repo/src/core/report_queue.cpp" "src/core/CMakeFiles/wiscape_core.dir/report_queue.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/report_queue.cpp.o.d"
  "/root/repo/src/core/sample_planner.cpp" "src/core/CMakeFiles/wiscape_core.dir/sample_planner.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/sample_planner.cpp.o.d"
  "/root/repo/src/core/sharded_coordinator.cpp" "src/core/CMakeFiles/wiscape_core.dir/sharded_coordinator.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/sharded_coordinator.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/wiscape_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/validation.cpp.o.d"
  "/root/repo/src/core/zone_table.cpp" "src/core/CMakeFiles/wiscape_core.dir/zone_table.cpp.o" "gcc" "src/core/CMakeFiles/wiscape_core.dir/zone_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probe/CMakeFiles/wiscape_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wiscape_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/wiscape_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wiscape_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wiscape_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wiscape_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wiscape_mobility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

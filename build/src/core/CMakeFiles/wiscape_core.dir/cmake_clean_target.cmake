file(REMOVE_RECURSE
  "libwiscape_core.a"
)

# Empty compiler generated dependencies file for wiscape_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stadium.dir/bench_fig10_stadium.cpp.o"
  "CMakeFiles/bench_fig10_stadium.dir/bench_fig10_stadium.cpp.o.d"
  "bench_fig10_stadium"
  "bench_fig10_stadium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stadium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

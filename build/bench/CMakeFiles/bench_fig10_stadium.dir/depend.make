# Empty dependencies file for bench_fig10_stadium.
# This may be replaced when dependencies are built.

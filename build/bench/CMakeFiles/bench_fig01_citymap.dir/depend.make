# Empty dependencies file for bench_fig01_citymap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_citymap.dir/bench_fig01_citymap.cpp.o"
  "CMakeFiles/bench_fig01_citymap.dir/bench_fig01_citymap.cpp.o.d"
  "bench_fig01_citymap"
  "bench_fig01_citymap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_citymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_tab04_timescales.
# This may be replaced when dependencies are built.

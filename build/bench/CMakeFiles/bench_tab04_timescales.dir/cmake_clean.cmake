file(REMOVE_RECURSE
  "CMakeFiles/bench_tab04_timescales.dir/bench_tab04_timescales.cpp.o"
  "CMakeFiles/bench_tab04_timescales.dir/bench_tab04_timescales.cpp.o.d"
  "bench_tab04_timescales"
  "bench_tab04_timescales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab04_timescales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

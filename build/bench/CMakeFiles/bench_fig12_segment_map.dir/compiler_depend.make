# Empty compiler generated dependencies file for bench_fig12_segment_map.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ingest_scaling.dir/bench_ingest_scaling.cpp.o"
  "CMakeFiles/bench_ingest_scaling.dir/bench_ingest_scaling.cpp.o.d"
  "bench_ingest_scaling"
  "bench_ingest_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

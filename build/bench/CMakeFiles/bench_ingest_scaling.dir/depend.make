# Empty dependencies file for bench_ingest_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab05_packet_count.dir/bench_tab05_packet_count.cpp.o"
  "CMakeFiles/bench_tab05_packet_count.dir/bench_tab05_packet_count.cpp.o.d"
  "bench_tab05_packet_count"
  "bench_tab05_packet_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab05_packet_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

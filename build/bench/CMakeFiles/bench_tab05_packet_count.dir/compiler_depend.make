# Empty compiler generated dependencies file for bench_tab05_packet_count.
# This may be replaced when dependencies are built.

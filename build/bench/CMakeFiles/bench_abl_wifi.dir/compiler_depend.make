# Empty compiler generated dependencies file for bench_abl_wifi.
# This may be replaced when dependencies are built.

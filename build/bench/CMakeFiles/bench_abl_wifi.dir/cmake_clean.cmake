file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_wifi.dir/bench_abl_wifi.cpp.o"
  "CMakeFiles/bench_abl_wifi.dir/bench_abl_wifi.cpp.o.d"
  "bench_abl_wifi"
  "bench_abl_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

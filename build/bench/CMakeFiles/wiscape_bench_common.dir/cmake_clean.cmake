file(REMOVE_RECURSE
  "CMakeFiles/wiscape_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/wiscape_bench_common.dir/bench_common.cpp.o.d"
  "libwiscape_bench_common.a"
  "libwiscape_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiscape_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

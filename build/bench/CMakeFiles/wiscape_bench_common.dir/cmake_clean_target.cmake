file(REMOVE_RECURSE
  "libwiscape_bench_common.a"
)

# Empty compiler generated dependencies file for wiscape_bench_common.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig07_nkld_samples.
# This may be replaced when dependencies are built.

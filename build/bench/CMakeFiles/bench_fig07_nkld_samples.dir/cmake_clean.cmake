file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_nkld_samples.dir/bench_fig07_nkld_samples.cpp.o"
  "CMakeFiles/bench_fig07_nkld_samples.dir/bench_fig07_nkld_samples.cpp.o.d"
  "bench_fig07_nkld_samples"
  "bench_fig07_nkld_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_nkld_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig09_failed_pings.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_failed_pings.dir/bench_fig09_failed_pings.cpp.o"
  "CMakeFiles/bench_fig09_failed_pings.dir/bench_fig09_failed_pings.cpp.o.d"
  "bench_fig09_failed_pings"
  "bench_fig09_failed_pings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_failed_pings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dominance_radius.dir/bench_fig11_dominance_radius.cpp.o"
  "CMakeFiles/bench_fig11_dominance_radius.dir/bench_fig11_dominance_radius.cpp.o.d"
  "bench_fig11_dominance_radius"
  "bench_fig11_dominance_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dominance_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig11_dominance_radius.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_tab06_http_latency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig05_spot_cdfs.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig06_allan_epoch.
# This may be replaced when dependencies are built.

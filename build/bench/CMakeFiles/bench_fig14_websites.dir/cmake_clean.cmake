file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_websites.dir/bench_fig14_websites.cpp.o"
  "CMakeFiles/bench_fig14_websites.dir/bench_fig14_websites.cpp.o.d"
  "bench_fig14_websites"
  "bench_fig14_websites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_websites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

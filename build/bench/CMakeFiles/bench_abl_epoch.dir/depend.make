# Empty dependencies file for bench_abl_epoch.
# This may be replaced when dependencies are built.

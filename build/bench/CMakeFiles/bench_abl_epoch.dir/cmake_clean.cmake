file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_epoch.dir/bench_abl_epoch.cpp.o"
  "CMakeFiles/bench_abl_epoch.dir/bench_abl_epoch.cpp.o.d"
  "bench_abl_epoch"
  "bench_abl_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

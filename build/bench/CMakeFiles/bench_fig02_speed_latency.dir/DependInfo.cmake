
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig02_speed_latency.cpp" "bench/CMakeFiles/bench_fig02_speed_latency.dir/bench_fig02_speed_latency.cpp.o" "gcc" "bench/CMakeFiles/bench_fig02_speed_latency.dir/bench_fig02_speed_latency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wiscape_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/wiscape_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wiscape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/wiscape_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/bwest/CMakeFiles/wiscape_bwest.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/wiscape_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/wiscape_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wiscape_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wiscape_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wiscape_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wiscape_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wiscape_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_fig02_speed_latency.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_abl_dominance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dominance.dir/bench_abl_dominance.cpp.o"
  "CMakeFiles/bench_abl_dominance.dir/bench_abl_dominance.cpp.o.d"
  "bench_abl_dominance"
  "bench_abl_dominance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dominance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abl_budget.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_zone_radius.dir/bench_fig04_zone_radius.cpp.o"
  "CMakeFiles/bench_fig04_zone_radius.dir/bench_fig04_zone_radius.cpp.o.d"
  "bench_fig04_zone_radius"
  "bench_fig04_zone_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_zone_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

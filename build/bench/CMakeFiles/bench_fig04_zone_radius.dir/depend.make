# Empty dependencies file for bench_fig04_zone_radius.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_static_vs_proximate.dir/bench_tab03_static_vs_proximate.cpp.o"
  "CMakeFiles/bench_tab03_static_vs_proximate.dir/bench_tab03_static_vs_proximate.cpp.o.d"
  "bench_tab03_static_vs_proximate"
  "bench_tab03_static_vs_proximate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_static_vs_proximate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

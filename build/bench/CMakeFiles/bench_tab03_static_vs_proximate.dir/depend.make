# Empty dependencies file for bench_tab03_static_vs_proximate.
# This may be replaced when dependencies are built.

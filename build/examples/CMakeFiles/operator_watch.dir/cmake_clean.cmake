file(REMOVE_RECURSE
  "CMakeFiles/operator_watch.dir/operator_watch.cpp.o"
  "CMakeFiles/operator_watch.dir/operator_watch.cpp.o.d"
  "operator_watch"
  "operator_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

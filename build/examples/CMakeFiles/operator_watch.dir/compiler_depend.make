# Empty compiler generated dependencies file for operator_watch.
# This may be replaced when dependencies are built.

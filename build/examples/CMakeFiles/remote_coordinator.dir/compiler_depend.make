# Empty compiler generated dependencies file for remote_coordinator.
# This may be replaced when dependencies are built.

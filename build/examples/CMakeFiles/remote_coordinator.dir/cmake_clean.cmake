file(REMOVE_RECURSE
  "CMakeFiles/remote_coordinator.dir/remote_coordinator.cpp.o"
  "CMakeFiles/remote_coordinator.dir/remote_coordinator.cpp.o.d"
  "remote_coordinator"
  "remote_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/bootstrap_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/bootstrap_test.cpp.o.d"
  "/root/repo/tests/bwest_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/bwest_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/bwest_test.cpp.o.d"
  "/root/repo/tests/cellnet_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/cellnet_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/cellnet_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/diurnal_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/diurnal_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/diurnal_test.cpp.o.d"
  "/root/repo/tests/geo_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/geo_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/geo_test.cpp.o.d"
  "/root/repo/tests/hygiene_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/hygiene_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/hygiene_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mapping_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/mapping_test.cpp.o.d"
  "/root/repo/tests/mobility_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/mobility_test.cpp.o.d"
  "/root/repo/tests/netsim_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/netsim_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/netsim_test.cpp.o.d"
  "/root/repo/tests/normalize_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/normalize_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/normalize_test.cpp.o.d"
  "/root/repo/tests/overhead_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/overhead_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/overhead_test.cpp.o.d"
  "/root/repo/tests/persist_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/persist_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/persist_test.cpp.o.d"
  "/root/repo/tests/probe_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/probe_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/probe_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/proto_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/proto_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/proto_test.cpp.o.d"
  "/root/repo/tests/radio_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/radio_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/radio_test.cpp.o.d"
  "/root/repo/tests/report_queue_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/report_queue_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/report_queue_test.cpp.o.d"
  "/root/repo/tests/rssi_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/rssi_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/rssi_test.cpp.o.d"
  "/root/repo/tests/sharded_coordinator_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/sharded_coordinator_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/sharded_coordinator_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/transport_test.cpp" "tests/CMakeFiles/wiscape_tests.dir/transport_test.cpp.o" "gcc" "tests/CMakeFiles/wiscape_tests.dir/transport_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/wiscape_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wiscape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/wiscape_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/bwest/CMakeFiles/wiscape_bwest.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/wiscape_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/cellnet/CMakeFiles/wiscape_cellnet.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wiscape_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/wiscape_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/wiscape_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/wiscape_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/wiscape_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/wiscape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wiscape_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

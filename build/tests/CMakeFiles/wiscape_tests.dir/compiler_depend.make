# Empty compiler generated dependencies file for wiscape_tests.
# This may be replaced when dependencies are built.

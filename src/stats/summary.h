// Batch descriptive statistics over sample vectors: percentiles, empirical
// CDFs, Pearson correlation. These are the primitives behind every CDF plot
// and correlation figure in the paper.
#pragma once

#include <span>
#include <vector>

namespace wiscape::stats {

/// `p`-th percentile (p in [0,100]) by linear interpolation between order
/// statistics (the "linear" / R-7 method). Throws std::invalid_argument on
/// an empty span or p outside [0, 100].
double percentile(std::span<const double> xs, double p);

/// Arithmetic mean; throws std::invalid_argument on empty input.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// stddev / |mean|: the paper's relative standard deviation.
double relative_stddev(std::span<const double> xs);

/// One point of an empirical CDF.
struct cdf_point {
  double value = 0.0;
  double fraction = 0.0;  ///< P(X <= value)
};

/// Empirical CDF of `xs`, optionally downsampled to at most `max_points`
/// evenly spaced points (0 keeps every sample). Result is sorted by value.
std::vector<cdf_point> empirical_cdf(std::span<const double> xs,
                                     std::size_t max_points = 0);

/// Fraction of samples <= threshold (reads a CDF at a point).
double fraction_at_most(std::span<const double> xs, double threshold);

/// Pearson correlation coefficient of paired samples. Returns 0 when either
/// series is constant (no linear relationship measurable). Throws
/// std::invalid_argument when sizes differ or fewer than two pairs.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

}  // namespace wiscape::stats

#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/summary.h"

namespace wiscape::stats {

confidence_interval bootstrap_mean_ci(std::span<const double> xs,
                                      double level, rng_stream& rng,
                                      int resamples) {
  if (xs.empty()) throw std::invalid_argument("bootstrap: empty sample");
  if (!(level > 0.0 && level < 1.0)) {
    throw std::invalid_argument("bootstrap: level must be in (0, 1)");
  }
  if (resamples < 10) throw std::invalid_argument("bootstrap: resamples < 10");

  const auto n = static_cast<std::int64_t>(xs.size());
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += xs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }

  confidence_interval ci;
  ci.point = mean(xs);
  const double alpha = (1.0 - level) / 2.0;
  ci.low = percentile(means, alpha * 100.0);
  ci.high = percentile(means, (1.0 - alpha) * 100.0);
  return ci;
}

}  // namespace wiscape::stats

// Random subset selection utilities.
//
// WiScape's validation repeatedly draws random client subsets from a larger
// ground-truth pool (Fig 7's 100-iteration NKLD runs, Fig 8's client/ground
// split); these helpers centralize that, deterministically via rng_stream.
#pragma once

#include <span>
#include <vector>

#include "stats/rng.h"

namespace wiscape::stats {

/// Draws `k` values uniformly without replacement. Throws
/// std::invalid_argument when k > xs.size().
std::vector<double> sample_without_replacement(std::span<const double> xs,
                                               std::size_t k, rng_stream& rng);

/// Splits indices [0, n) into two disjoint random halves: the first
/// `first_fraction` share and the remainder. Useful for client-sourced vs
/// ground-truth partitions. Throws std::invalid_argument unless
/// first_fraction is in (0, 1) and n >= 2.
struct index_split {
  std::vector<std::size_t> first;
  std::vector<std::size_t> second;
};
index_split random_split(std::size_t n, double first_fraction, rng_stream& rng);

/// Fixed-size reservoir sample of a stream of doubles.
class reservoir {
 public:
  /// Throws std::invalid_argument when capacity == 0.
  reservoir(std::size_t capacity, rng_stream rng);

  void add(double x);
  std::size_t seen() const noexcept { return seen_; }
  const std::vector<double>& items() const noexcept { return items_; }

 private:
  std::size_t capacity_;
  std::size_t seen_ = 0;
  std::vector<double> items_;
  rng_stream rng_;
};

}  // namespace wiscape::stats

#include "stats/sampling.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace wiscape::stats {

std::vector<double> sample_without_replacement(std::span<const double> xs,
                                               std::size_t k,
                                               rng_stream& rng) {
  if (k > xs.size()) {
    throw std::invalid_argument("sample_without_replacement: k > population");
  }
  std::vector<std::size_t> idx(xs.size());
  std::iota(idx.begin(), idx.end(), 0);
  // Partial Fisher-Yates: only the first k positions need shuffling.
  std::vector<double> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(idx.size()) - 1));
    std::swap(idx[i], idx[j]);
    out.push_back(xs[idx[i]]);
  }
  return out;
}

index_split random_split(std::size_t n, double first_fraction,
                         rng_stream& rng) {
  if (!(first_fraction > 0.0 && first_fraction < 1.0) || n < 2) {
    throw std::invalid_argument(
        "random_split requires n >= 2 and fraction in (0, 1)");
  }
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  auto cut = static_cast<std::size_t>(
      static_cast<double>(n) * first_fraction);
  cut = std::clamp<std::size_t>(cut, 1, n - 1);
  index_split split;
  split.first.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(cut));
  split.second.assign(idx.begin() + static_cast<std::ptrdiff_t>(cut), idx.end());
  return split;
}

reservoir::reservoir(std::size_t capacity, rng_stream rng)
    : capacity_(capacity), rng_(rng) {
  if (capacity == 0) throw std::invalid_argument("reservoir capacity == 0");
  items_.reserve(capacity);
}

void reservoir::add(double x) {
  ++seen_;
  if (items_.size() < capacity_) {
    items_.push_back(x);
    return;
  }
  const auto j = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
  if (j < capacity_) items_[j] = x;
}

}  // namespace wiscape::stats

// Allan deviation (two-sample deviation) over averaged measurement windows.
//
// Section 3.2.2 of the paper picks each zone's *epoch* as the averaging time
// tau at which the Allan deviation of the zone's metric is minimized: below
// that tau successive windows still disagree (short-term churn), above it the
// slow diurnal drift re-enters. We implement the paper's estimator
//
//     sigma_y(tau) = sqrt( sum_i (T_{i+1} - T_i)^2 / (2 (N-1)) )
//
// where T_i are the means of consecutive tau-wide windows, plus a relative
// (mean-normalized) form matching the 0..1 scale of the paper's Fig 6.
#pragma once

#include <vector>

#include "stats/time_series.h"

namespace wiscape::stats {

/// Allan deviation of `series` averaged into windows of `tau_s` seconds.
/// Returns 0 when fewer than two windows are available.
/// Throws std::invalid_argument if tau_s <= 0.
double allan_deviation(const time_series& series, double tau_s);

/// Allan deviation normalized by the overall series mean (dimensionless,
/// comparable across zones with different absolute throughputs).
/// Returns 0 when the mean is 0 or fewer than two windows exist.
double relative_allan_deviation(const time_series& series, double tau_s);

/// One point of an Allan-deviation-vs-tau curve.
struct allan_point {
  double tau_s = 0.0;
  double deviation = 0.0;
};

/// Evaluates relative Allan deviation over a set of candidate taus (seconds).
/// Candidates yielding fewer than two windows are skipped.
std::vector<allan_point> allan_curve(const time_series& series,
                                     const std::vector<double>& taus_s);

/// Tau (seconds) minimizing the relative Allan deviation over `taus_s`.
/// Throws std::invalid_argument if no candidate yields at least two windows.
double allan_minimum_tau(const time_series& series,
                         const std::vector<double>& taus_s);

/// Log-spaced tau candidates from `lo_s` to `hi_s` (inclusive endpoints,
/// `count` >= 2 points). The paper scans minutes to ~1000 minutes.
std::vector<double> log_spaced_taus(double lo_s, double hi_s, int count);

}  // namespace wiscape::stats

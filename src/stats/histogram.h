// Fixed-bin histograms and discrete probability distributions.
//
// The NKLD composability test (Sec 3.3) compares *distributions* of client
// samples against ground truth; histogram turns raw sample vectors into
// comparable discrete pmfs over a common support.
#pragma once

#include <span>
#include <vector>

namespace wiscape::stats {

/// Equal-width histogram over [lo, hi) with `bins` buckets. Samples outside
/// the range are clamped into the first/last bucket so that two histograms
/// built over the same range always share support.
class histogram {
 public:
  /// Throws std::invalid_argument unless lo < hi and bins >= 1.
  histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t total() const noexcept { return total_; }
  const std::vector<std::size_t>& counts() const noexcept { return counts_; }

  /// Normalized probability mass function. `smoothing` (additive /
  /// Laplace) keeps every bin strictly positive so KL divergence is finite;
  /// 0 disables smoothing. Throws std::logic_error when the histogram is
  /// empty and smoothing is 0.
  std::vector<double> pmf(double smoothing = 1e-9) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Shannon entropy (nats) of a pmf. Zero-probability bins contribute 0.
double entropy(std::span<const double> pmf);

/// Kullback-Leibler divergence D(p || q) in the paper's form, which takes the
/// absolute value of each log-ratio term:
///     D(p||q) = sum_x p(x) |log(p(x)/q(x))|
/// Throws std::invalid_argument when sizes differ or q has a zero where p is
/// positive.
double kl_divergence_abs(std::span<const double> p, std::span<const double> q);

/// Symmetric Normalized KLD of the paper (Sec 3.3):
///     NKLD(p,q) = 1/2 * ( D(p||q)/H(p) + D(q||p)/H(q) )
/// Degenerate entropies (H == 0, i.e. a point-mass distribution) make the
/// ratio ill-defined; we treat such a pair as maximally dissimilar unless the
/// distributions are identical, returning 0 in that case.
double nkld(std::span<const double> p, std::span<const double> q);

/// Convenience: builds two histograms over the common range of both sample
/// sets and returns their NKLD. `bins` buckets, Laplace smoothing.
/// Throws std::invalid_argument when either sample set is empty.
double nkld_of_samples(std::span<const double> a, std::span<const double> b,
                       std::size_t bins = 20);

}  // namespace wiscape::stats

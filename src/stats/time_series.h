// Timestamped sample series and fixed-window binning.
//
// The paper constantly re-aggregates the same underlying samples at different
// time granularities (10 s vs 30 min bins in Table 4, variable tau for the
// Allan deviation in Fig 6); time_series provides that re-binning.
//
// Bounded-history callers (core::coordinator's per-zone epoch-estimation
// windows) trim with drop_oldest(), which advances an offset into the
// backing vector instead of copying the surviving half into a fresh
// allocation; the dead prefix is compacted in place (one element move, no
// allocation) only once it outgrows the live window, so steady-state
// add/trim cycles touch the allocator not at all.
#pragma once

#include <span>
#include <vector>

#include "stats/running_stats.h"

namespace wiscape::stats {

/// One timestamped scalar observation. Time is seconds since an arbitrary
/// epoch (the simulator's t=0).
struct sample {
  double time_s = 0.0;
  double value = 0.0;
};

/// An append-ordered series of samples (not required to be time-sorted on
/// input; binning sorts internally as needed).
class time_series {
 public:
  time_series() = default;
  explicit time_series(std::vector<sample> samples)
      : samples_(std::move(samples)) {}

  void add(double time_s, double value) { samples_.push_back({time_s, value}); }
  void add(const sample& s) { samples_.push_back(s); }

  /// The live samples, oldest first. The view is invalidated by the next
  /// add() or drop_oldest().
  std::span<const sample> samples() const noexcept {
    return {samples_.data() + begin_, samples_.size() - begin_};
  }
  std::size_t size() const noexcept { return samples_.size() - begin_; }
  bool empty() const noexcept { return size() == 0; }

  /// Drops the `n` oldest live samples (all of them when n >= size()).
  /// Amortized O(1): no allocation, and element moves only when the dead
  /// prefix has outgrown the live window.
  void drop_oldest(std::size_t n);

  /// All values, in insertion order.
  std::vector<double> values() const;

  /// Averages samples into consecutive windows of `bin_s` seconds starting at
  /// the earliest sample time. Windows with no samples are skipped (the field
  /// data also has coverage gaps). Returns per-bin means in time order.
  /// Throws std::invalid_argument if bin_s <= 0.
  std::vector<double> bin_means(double bin_s) const;

  /// Like bin_means but returns full per-bin summary stats.
  std::vector<running_stats> bin_stats(double bin_s) const;

  /// Restricts to samples with time in [t0, t1).
  time_series between(double t0, double t1) const;

 private:
  std::vector<sample> samples_;
  std::size_t begin_ = 0;  // offset of the live window into samples_
};

}  // namespace wiscape::stats

// Deterministic random-number plumbing.
//
// Everything stochastic in the simulator (shadowing fields, load processes,
// route assignment, probe scheduling) draws from an rng_stream fanned out of
// one master seed, so that a whole city-year of synthetic measurement is
// reproducible bit-for-bit from a single integer. Child streams are derived
// with a splitmix64 hash of (parent seed, label), which keeps streams
// statistically independent without coordination.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace wiscape::stats {

/// splitmix64 step; good avalanche, used for seed derivation only.
std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Stable 64-bit hash of a label (FNV-1a), for named substreams.
std::uint64_t hash_label(std::string_view label) noexcept;

/// A seeded random stream with named fan-out.
///
/// Wraps std::mt19937_64 and exposes just the draws the simulator needs.
class rng_stream {
 public:
  explicit rng_stream(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent child stream keyed by a label. Deterministic:
  /// the same (seed, label) always yields the same child.
  rng_stream fork(std::string_view label) const noexcept;

  /// Derives an independent child stream keyed by an index.
  rng_stream fork(std::uint64_t index) const noexcept;

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>()(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Exponential with the given rate (events per unit).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bounded Pareto sample (shape alpha, support [lo, hi]).
  double bounded_pareto(double alpha, double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Access the underlying engine for use with std distributions/shuffle.
  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace wiscape::stats

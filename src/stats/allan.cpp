#include "stats/allan.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/summary.h"

namespace wiscape::stats {

double allan_deviation(const time_series& series, double tau_s) {
  if (!(tau_s > 0.0)) throw std::invalid_argument("tau must be positive");
  const std::vector<double> windows = series.bin_means(tau_s);
  const std::size_t n = windows.size();
  if (n < 2) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double d = windows[i + 1] - windows[i];
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / (2.0 * static_cast<double>(n - 1)));
}

double relative_allan_deviation(const time_series& series, double tau_s) {
  if (series.empty()) return 0.0;
  const double m = mean(series.values());
  if (m == 0.0) return 0.0;
  return allan_deviation(series, tau_s) / std::abs(m);
}

std::vector<allan_point> allan_curve(const time_series& series,
                                     const std::vector<double>& taus_s) {
  std::vector<allan_point> out;
  for (double tau : taus_s) {
    if (series.bin_means(tau).size() < 2) continue;
    out.push_back({tau, relative_allan_deviation(series, tau)});
  }
  return out;
}

double allan_minimum_tau(const time_series& series,
                         const std::vector<double>& taus_s) {
  const auto curve = allan_curve(series, taus_s);
  if (curve.empty()) {
    throw std::invalid_argument(
        "allan_minimum_tau: no tau candidate yields two or more windows");
  }
  double best_tau = curve.front().tau_s;
  double best_dev = std::numeric_limits<double>::infinity();
  for (const auto& p : curve) {
    if (p.deviation < best_dev) {
      best_dev = p.deviation;
      best_tau = p.tau_s;
    }
  }
  return best_tau;
}

std::vector<double> log_spaced_taus(double lo_s, double hi_s, int count) {
  if (!(lo_s > 0.0) || !(hi_s > lo_s) || count < 2) {
    throw std::invalid_argument("log_spaced_taus requires 0<lo<hi, count>=2");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  const double ratio = std::log(hi_s / lo_s) / (count - 1);
  for (int i = 0; i < count; ++i) {
    out.push_back(lo_s * std::exp(ratio * i));
  }
  return out;
}

}  // namespace wiscape::stats

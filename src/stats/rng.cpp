#include "stats/rng.h"

#include <cmath>
#include <stdexcept>

namespace wiscape::stats {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

rng_stream rng_stream::fork(std::string_view label) const noexcept {
  return rng_stream(splitmix64(seed_ ^ hash_label(label)));
}

rng_stream rng_stream::fork(std::uint64_t index) const noexcept {
  return rng_stream(splitmix64(seed_ + 0x632be59bd9b4e019ULL * (index + 1)));
}

double rng_stream::bounded_pareto(double alpha, double lo, double hi) {
  if (!(alpha > 0.0) || !(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("bounded_pareto requires alpha>0, 0<lo<hi");
  }
  // Inverse-CDF of the bounded Pareto distribution.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace wiscape::stats

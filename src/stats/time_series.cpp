#include "stats/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wiscape::stats {

void time_series::drop_oldest(std::size_t n) {
  begin_ += std::min(n, size());
  if (begin_ >= samples_.size() - begin_) {
    // Dead prefix outgrew the live window: compact in place (keeps
    // capacity, so the steady-state add/trim cycle never reallocates).
    samples_.erase(samples_.begin(),
                   samples_.begin() + static_cast<std::ptrdiff_t>(begin_));
    begin_ = 0;
  }
}

std::vector<double> time_series::values() const {
  std::vector<double> out;
  out.reserve(size());
  for (const auto& s : samples()) out.push_back(s.value);
  return out;
}

std::vector<running_stats> time_series::bin_stats(double bin_s) const {
  if (!(bin_s > 0.0)) throw std::invalid_argument("bin width must be positive");
  if (empty()) return {};
  const auto live = samples();
  std::vector<sample> sorted(live.begin(), live.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const sample& a, const sample& b) { return a.time_s < b.time_s; });
  const double t0 = sorted.front().time_s;
  std::vector<running_stats> bins;
  std::size_t current_bin = 0;
  bins.emplace_back();
  for (const auto& s : sorted) {
    const auto idx =
        static_cast<std::size_t>(std::floor((s.time_s - t0) / bin_s));
    if (idx != current_bin) {
      if (!bins.back().empty()) bins.emplace_back();
      current_bin = idx;
    }
    bins.back().add(s.value);
  }
  if (bins.back().empty()) bins.pop_back();
  return bins;
}

std::vector<double> time_series::bin_means(double bin_s) const {
  std::vector<double> out;
  for (const auto& b : bin_stats(bin_s)) out.push_back(b.mean());
  return out;
}

time_series time_series::between(double t0, double t1) const {
  time_series out;
  for (const auto& s : samples()) {
    if (s.time_s >= t0 && s.time_s < t1) out.add(s);
  }
  return out;
}

}  // namespace wiscape::stats

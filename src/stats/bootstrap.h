// Bootstrap confidence intervals.
//
// WiScape's estimates come from deliberately few samples; an operator
// deciding whether to roll a truck wants to know how much to trust the
// number. Percentile-bootstrap CIs need no distributional assumptions and
// match the framework's resampling style (the NKLD planner already draws
// random subsets).
#pragma once

#include <span>

#include "stats/rng.h"

namespace wiscape::stats {

struct confidence_interval {
  double low = 0.0;
  double high = 0.0;
  double point = 0.0;  ///< sample mean

  double width() const noexcept { return high - low; }
  bool contains(double v) const noexcept { return v >= low && v <= high; }
};

/// Percentile-bootstrap CI for the mean of `xs` at the given confidence
/// level (e.g. 0.95), using `resamples` bootstrap draws. Throws
/// std::invalid_argument on an empty sample, level outside (0, 1), or
/// resamples < 10.
confidence_interval bootstrap_mean_ci(std::span<const double> xs,
                                      double level, rng_stream& rng,
                                      int resamples = 400);

}  // namespace wiscape::stats

#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/running_stats.h"

namespace wiscape::stats {

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile p must be in [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty sample");
  running_stats rs;
  for (double x : xs) rs.add(x);
  return rs.mean();
}

double stddev(std::span<const double> xs) {
  running_stats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double relative_stddev(std::span<const double> xs) {
  running_stats rs;
  for (double x : xs) rs.add(x);
  return rs.relative_stddev();
}

std::vector<cdf_point> empirical_cdf(std::span<const double> xs,
                                     std::size_t max_points) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<cdf_point> out;
  const std::size_t n = sorted.size();
  if (n == 0) return out;
  const std::size_t step =
      (max_points > 0 && n > max_points) ? n / max_points : 1;
  for (std::size_t i = 0; i < n; i += step) {
    out.push_back({sorted[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().value != sorted.back() || out.back().fraction != 1.0) {
    out.push_back({sorted.back(), 1.0});
  }
  return out;
}

double fraction_at_most(std::span<const double> xs, double threshold) {
  if (xs.empty()) throw std::invalid_argument("fraction_at_most of empty sample");
  const auto n =
      std::count_if(xs.begin(), xs.end(), [&](double x) { return x <= threshold; });
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("pearson_correlation: need at least 2 pairs");
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace wiscape::stats

#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wiscape::stats {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins < 1) {
    throw std::invalid_argument("histogram requires lo < hi and bins >= 1");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
}

void histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::vector<double> histogram::pmf(double smoothing) const {
  if (total_ == 0 && smoothing <= 0.0) {
    throw std::logic_error("pmf of empty histogram without smoothing");
  }
  std::vector<double> p(counts_.size());
  const double denom = static_cast<double>(total_) +
                       smoothing * static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = (static_cast<double>(counts_[i]) + smoothing) / denom;
  }
  return p;
}

double entropy(std::span<const double> pmf) {
  double h = 0.0;
  for (double p : pmf) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

double kl_divergence_abs(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("kl_divergence_abs: size mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) {
      throw std::invalid_argument(
          "kl_divergence_abs: q has zero mass where p is positive; smooth "
          "the pmfs first");
    }
    d += p[i] * std::abs(std::log(p[i] / q[i]));
  }
  return d;
}

double nkld(std::span<const double> p, std::span<const double> q) {
  const double hp = entropy(p);
  const double hq = entropy(q);
  if (hp <= 0.0 || hq <= 0.0) {
    // Point-mass distribution(s): identical pmfs are perfectly similar,
    // anything else is maximally dissimilar.
    const bool same = std::equal(p.begin(), p.end(), q.begin(), q.end());
    return same ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return 0.5 * (kl_divergence_abs(p, q) / hp + kl_divergence_abs(q, p) / hq);
}

double nkld_of_samples(std::span<const double> a, std::span<const double> b,
                       std::size_t bins) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("nkld_of_samples: empty sample set");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double x : a) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  for (double x : b) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (lo == hi) {
    // All samples identical: widen the support a hair so binning works.
    lo -= 0.5;
    hi += 0.5;
  }
  histogram ha(lo, hi, bins);
  histogram hb(lo, hi, bins);
  ha.add_all(a);
  hb.add_all(b);
  // Laplace smoothing of one pseudo-count spread over the bins keeps the
  // divergence finite for sparse client-side histograms.
  const double smoothing = 1.0 / static_cast<double>(bins);
  return nkld(ha.pmf(smoothing), hb.pmf(smoothing));
}

}  // namespace wiscape::stats

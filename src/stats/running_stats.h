// Streaming summary statistics (Welford's algorithm).
//
// Zone/epoch estimates in WiScape are built incrementally as client samples
// trickle in; running_stats gives numerically-stable mean/variance without
// retaining the samples.
#pragma once

#include <cstddef>
#include <limits>

namespace wiscape::stats {

/// Accumulates count / mean / variance / extrema of a stream of doubles.
class running_stats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-friendly, Chan et al. form).
  void merge(const running_stats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }

  /// Mean of the samples; 0 when empty.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Coefficient of variation (stddev / mean); the paper's
  /// "relative standard deviation". 0 when mean is 0.
  double relative_stddev() const noexcept;

  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  void reset() noexcept { *this = running_stats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wiscape::stats

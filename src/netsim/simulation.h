// Discrete-event simulation core.
//
// Probes in this reproduction are *actually run* as packet exchanges through
// a queued, rate-limited link model (DESIGN.md: "packet-level DES for
// probes"), so TCP slow-start effects, queueing jitter and loss emerge
// rather than being sampled from formulas. simulation owns the event clock.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wiscape::netsim {

/// Simulated time, seconds since the simulation epoch.
using sim_time = double;

/// An executable event calendar with a monotonic clock.
class simulation {
 public:
  sim_time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `t`. Events scheduled in the past run
  /// at the current time (t clamps to now). Ties run in scheduling order.
  void schedule_at(sim_time t, std::function<void()> fn);

  /// Schedules `fn` after a relative delay (>= 0; negative clamps to 0).
  void schedule_in(sim_time delay, std::function<void()> fn);

  /// Runs events until the calendar empties.
  void run();

  /// Runs events with time <= t_end, then advances the clock to t_end.
  void run_until(sim_time t_end);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct event {
    sim_time t;
    std::uint64_t seq;  // FIFO tiebreak for simultaneous events
    std::function<void()> fn;
  };
  struct later {
    bool operator()(const event& a, const event& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  void pop_and_run();

  std::priority_queue<event, std::vector<event>, later> queue_;
  sim_time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace wiscape::netsim

// A bidirectional client<->server path: cellular downlink (the bottleneck)
// plus a return uplink for ACKs, pings and requests.
#pragma once

#include "netsim/link.h"

namespace wiscape::netsim {

/// Owns the two directional links of one client's session.
class duplex_path {
 public:
  duplex_path(simulation& sim, link_profile downlink, link_profile uplink,
              stats::rng_stream rng)
      : down_(sim, std::move(downlink), rng.fork("down")),
        up_(sim, std::move(uplink), rng.fork("up")) {}

  /// Server -> client direction (data, ping replies).
  link& down() noexcept { return down_; }
  /// Client -> server direction (ACKs, requests, pings).
  link& up() noexcept { return up_; }

  const link& down() const noexcept { return down_; }
  const link& up() const noexcept { return up_; }

 private:
  link down_;
  link up_;
};

}  // namespace wiscape::netsim

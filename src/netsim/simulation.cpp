#include "netsim/simulation.h"

#include <algorithm>
#include <utility>

namespace wiscape::netsim {

void simulation::schedule_at(sim_time t, std::function<void()> fn) {
  queue_.push(event{std::max(t, now_), next_seq_++, std::move(fn)});
}

void simulation::schedule_in(sim_time delay, std::function<void()> fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void simulation::pop_and_run() {
  // Move the handler out before popping: the handler may schedule new
  // events, which mutates the queue.
  auto ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
}

void simulation::run() {
  while (!queue_.empty()) pop_and_run();
}

void simulation::run_until(sim_time t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) pop_and_run();
  now_ = std::max(now_, t_end);
}

}  // namespace wiscape::netsim

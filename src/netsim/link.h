// Packets and the rate-limited, queued, lossy link model.
//
// A link serializes packets at a (possibly time-varying) bit rate through a
// bounded drop-tail queue, then delivers them after a propagation delay with
// optional per-packet delay noise and random loss. The cellular downlink is
// a link whose rate function is wired to cellnet link conditions x fading.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "netsim/simulation.h"
#include "stats/rng.h"

namespace wiscape::netsim {

/// What travels through links. Payload-free: size and metadata suffice for
/// performance simulation.
struct packet {
  std::uint64_t flow_id = 0;
  std::uint32_t seq = 0;
  std::size_t size_bytes = 0;
  sim_time sent_at = 0.0;  ///< stamped by the sender at first transmission
  bool is_ack = false;
};

/// Receiver callback invoked on delivery.
using receiver = std::function<void(const packet&)>;

/// Time-varying properties, queried when each packet starts transmission.
struct link_profile {
  /// Bits per second; must return > 0.
  std::function<double(sim_time)> rate_bps;
  /// One-way propagation + processing delay, seconds.
  std::function<double(sim_time)> delay_s;
  /// Per-packet drop probability in [0, 1].
  std::function<double(sim_time)> loss_prob;
  /// Optional custom service model: total time (seconds) to serve a packet
  /// of the given size starting at time t. When set it replaces the default
  /// size/rate_bps(t) serialization; the probe engine uses it to model
  /// slotted per-user 3G scheduling (transmission progresses only during
  /// granted slots). Must return > 0.
  std::function<double(sim_time, double /*bits*/)> service_time;
  /// Stddev of per-packet delay noise (seconds); models scheduler and core
  /// jitter. Noise is truncated at zero so causality holds.
  double delay_noise_sigma_s = 0.0;
  /// Drop-tail queue capacity, packets (including the one in service).
  std::size_t queue_capacity = 64;
};

/// Fixed-parameter convenience profile.
link_profile fixed_profile(double rate_bps, double delay_s,
                           double loss_prob = 0.0,
                           std::size_t queue_capacity = 64);

/// One-directional link.
class link {
 public:
  /// Throws std::invalid_argument when any profile callback is missing or
  /// queue capacity is zero.
  link(simulation& sim, link_profile profile, stats::rng_stream rng);

  /// Enqueues a packet for `rx`. Silently drops when the queue is full or
  /// the random-loss draw fires; drops are counted.
  void send(packet p, receiver rx);

  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t dropped_queue() const noexcept { return dropped_queue_; }
  std::uint64_t dropped_random() const noexcept { return dropped_random_; }
  std::size_t queue_len() const noexcept { return queued_; }

 private:
  void start_service();

  simulation& sim_;
  link_profile profile_;
  stats::rng_stream rng_;

  struct pending {
    packet pkt;
    receiver rx;
  };
  std::queue<pending> queue_;
  std::size_t queued_ = 0;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_queue_ = 0;
  std::uint64_t dropped_random_ = 0;
};

}  // namespace wiscape::netsim

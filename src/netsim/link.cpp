#include "netsim/link.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace wiscape::netsim {

link_profile fixed_profile(double rate_bps, double delay_s, double loss_prob,
                           std::size_t queue_capacity) {
  link_profile p;
  p.rate_bps = [rate_bps](sim_time) { return rate_bps; };
  p.delay_s = [delay_s](sim_time) { return delay_s; };
  p.loss_prob = [loss_prob](sim_time) { return loss_prob; };
  p.queue_capacity = queue_capacity;
  return p;
}

link::link(simulation& sim, link_profile profile, stats::rng_stream rng)
    : sim_(sim), profile_(std::move(profile)), rng_(rng) {
  if (!profile_.rate_bps || !profile_.delay_s || !profile_.loss_prob) {
    throw std::invalid_argument("link profile callbacks must all be set");
  }
  if (profile_.queue_capacity == 0) {
    throw std::invalid_argument("link queue capacity must be >= 1");
  }
}

void link::send(packet p, receiver rx) {
  if (queued_ >= profile_.queue_capacity) {
    ++dropped_queue_;
    return;
  }
  queue_.push(pending{p, std::move(rx)});
  ++queued_;
  if (!busy_) start_service();
}

void link::start_service() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  pending item = std::move(queue_.front());
  queue_.pop();

  const sim_time t = sim_.now();
  const double bits = static_cast<double>(item.pkt.size_bytes) * 8.0;
  double tx_time;
  if (profile_.service_time) {
    tx_time = std::max(profile_.service_time(t, bits), 1e-9);
  } else {
    tx_time = bits / std::max(profile_.rate_bps(t), 1.0);
  }

  sim_.schedule_in(tx_time, [this, item = std::move(item)]() mutable {
    --queued_;
    const sim_time t2 = sim_.now();
    if (rng_.chance(profile_.loss_prob(t2))) {
      ++dropped_random_;
    } else {
      double delay = profile_.delay_s(t2);
      if (profile_.delay_noise_sigma_s > 0.0) {
        delay += std::abs(rng_.normal(0.0, profile_.delay_noise_sigma_s));
      }
      ++delivered_;
      sim_.schedule_in(delay, [item]() { item.rx(item.pkt); });
    }
    start_service();
  });
}

}  // namespace wiscape::netsim

#include "proto/server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/fault_injection.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "proto/wire_v3.h"

namespace wiscape::proto {

namespace {
// Process-wide server metrics (every coordinator_server instance shares
// them; looked up once, then lock-free).
struct server_metrics {
  obs::counter& lines;
  obs::counter& checkins;
  obs::counter& reports;
  obs::counter& report_batches;
  obs::counter& stats_requests;
  obs::counter& queries;
  obs::counter& query_batches;
  obs::counter& alerts_requests;
  obs::counter& hellos;
  obs::counter& err_parse;
  obs::counter& err_unsupported;
  obs::counter& err_stopped;
  obs::counter& err_version;
  obs::counter& err_internal;
  obs::counter& err_overload;
  obs::counter& faults_injected;
  obs::counter& reply_bytes;
  obs::counter& binary_frames;
  obs::histogram& checkin_latency;
  obs::histogram& report_latency;
  obs::histogram& batch_latency;
  obs::histogram& query_latency;
  obs::histogram& query_batch_latency;
  obs::histogram& alerts_latency;
};

server_metrics& metrics() {
  auto& reg = obs::registry::global();
  static server_metrics m{
      reg.get_counter(obs::names::kServerLines),
      reg.get_counter(obs::names::kServerCheckins),
      reg.get_counter(obs::names::kServerReports),
      reg.get_counter(obs::names::kServerReportBatches),
      reg.get_counter(obs::names::kServerStats),
      reg.get_counter(obs::names::kServerQueries),
      reg.get_counter(obs::names::kServerQueryBatches),
      reg.get_counter(obs::names::kServerAlertsRequests),
      reg.get_counter(obs::names::kServerHellos),
      reg.get_counter(obs::names::kServerErrParse),
      reg.get_counter(obs::names::kServerErrUnsupported),
      reg.get_counter(obs::names::kServerErrStopped),
      reg.get_counter(obs::names::kServerErrVersion),
      reg.get_counter(obs::names::kServerErrInternal),
      reg.get_counter(obs::names::kServerErrOverload),
      reg.get_counter(obs::names::kServerFaultsInjected),
      reg.get_counter(obs::names::kServerReplyBytes),
      reg.get_counter(obs::names::kServerBinaryFrames),
      reg.get_histogram(obs::names::kServerCheckinLatency),
      reg.get_histogram(obs::names::kServerReportLatency),
      reg.get_histogram(obs::names::kServerBatchLatency),
      reg.get_histogram(obs::names::kServerQueryLatency),
      reg.get_histogram(obs::names::kServerQueryBatchLatency),
      reg.get_histogram(obs::names::kServerAlertsLatency)};
  return m;
}

// Registry names are constants from obs/names.h in practice, but the STATS
// frame's integrity must not depend on that: any byte that could break the
// "name value" line/token framing (whitespace, control characters, non-ASCII)
// is rewritten to '_', and oversized names are clipped.
void append_sanitized_name(std::string& out, std::string_view name) {
  constexpr std::size_t max_name = 160;
  const std::size_t n = std::min(name.size(), max_name);
  for (const char c : name.substr(0, n)) {
    const auto u = static_cast<unsigned char>(c);
    out.push_back(u > 0x20 && u < 0x7f ? c : '_');
  }
  if (n == 0) out.push_back('_');
  if (name.size() > max_name) out += "...";
}
}  // namespace

std::string encode_stats() {
  reply_buffer out;
  encode_stats_into(out);
  return std::string(out.view());
}

void encode_stats_into(reply_buffer& out) {
  const auto samples = obs::registry::global().snapshot();
  std::string& bytes = out.storage();
  bytes.reserve(bytes.size() + 16 + samples.size() * 56);
  out.append("STATS ");
  out.append_u64(samples.size());
  for (const auto& s : samples) {
    bytes.push_back('\n');
    append_sanitized_name(bytes, s.name);
    bytes.push_back(' ');
    obs::append_value(bytes, s);
  }
}

std::optional<estimate_reply> coordinator_server::lookup_one(
    const query_request& q) const {
  const geo::zone_id zone =
      (sharded_ != nullptr ? sharded_->grid() : coord_->grid()).zone_of(q.pos);
  const auto est = view_.lookup(zone, q.network, q.metric, q.time_s);
  if (!est) return std::nullopt;
  estimate_reply rep;
  rep.zone = zone;
  rep.network = q.network;
  rep.metric = q.metric;
  rep.count = est->count;
  rep.mean = est->mean;
  rep.stddev = est->stddev;
  rep.epoch_index = est->epoch_index;
  rep.staleness_s = est->staleness_s;
  rep.confidence = est->confidence;
  return rep;
}

request_view request_view::detect(std::string_view data) noexcept {
  return v3::is_frame_start(data) ? binary(data) : text(data);
}

void coordinator_server::handle(request_view req, reply_buffer& out) {
  if (req.framing() == request_view::kind::binary) {
    handle_frame_into(req.bytes(), out);
  } else {
    handle_text_into(req.bytes(), out);
  }
}

std::string coordinator_server::handle(std::string_view line) {
  reply_buffer out;
  handle(request_view::detect(line), out);
  return std::string(out.view());
}

void coordinator_server::handle_into(std::string_view line, reply_buffer& out) {
  handle(request_view::detect(line), out);
}

void coordinator_server::handle_text_into(std::string_view line,
                                          reply_buffer& out) {
  const std::size_t base = out.size();
  metrics().lines.inc();
  const std::string_view type = message_type(line);
  // Every ERR reply carries a stable machine-readable code; counting happens
  // here so the per-reason counters cannot drift from the wire. A partially
  // rendered reply (a QUERYB frame that ERRs mid-payload) is truncated back
  // to `base` first -- ERR replaces, never appends.
  const auto fail = [this, &out, base](err_code code, std::string_view detail) {
    auto& m = metrics();
    switch (code) {
      case err_code::parse:
        m.err_parse.inc();
        break;
      case err_code::unsupported:
        m.err_unsupported.inc();
        break;
      case err_code::stopped:
        m.err_stopped.inc();
        break;
      case err_code::version:
        m.err_version.inc();
        break;
      case err_code::internal:
        m.err_internal.inc();
        break;
      case err_code::overload:
        // Normally counted by the transport that shed the request (the line
        // handler itself never sheds); kept here so the per-reason counters
        // stay total over every ERR source.
        m.err_overload.inc();
        break;
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    out.truncate(base);
    encode_error_into(code, detail, out);
  };
  // Scenario seam: an injected fault refuses the request before dispatch,
  // answering the typed ERR a dying transport/overloaded server would --
  // clients and accounting exercise the real rejection path. Whole-request
  // granularity keeps REPORTB frames all-or-nothing. One relaxed load when
  // no hook is installed.
  if (core::fault::fire(core::fault::site::server_handle) ==
      core::fault::action::fail) {
    metrics().faults_injected.inc();
    fail(err_code::internal, "injected fault: request refused");
    metrics().reply_bytes.inc(out.size() - base);
    return;
  }
  try {
    if (type == "CHECKIN") {
      obs::span timed(metrics().checkin_latency);
      const auto req = decode_checkin(line);
      const auto task =
          sharded_ ? sharded_->checkin(req.pos, req.time_s, req.network_index,
                                       req.active_in_zone, req.client_id)
                   : coord_->checkin(req.pos, req.time_s, req.network_index,
                                     req.active_in_zone, req.client_id);
      metrics().checkins.inc();
      if (!task) {
        out.append("IDLE");
      } else {
        tasks_.fetch_add(1, std::memory_order_relaxed);
        task_assignment rep;
        rep.kind = task->kind;
        rep.network_index = static_cast<std::uint32_t>(task->network_index);
        encode_into(rep, out);
      }
    } else if (type == "REPORT") {
      obs::span timed(metrics().report_latency);
      auto rep = decode_report(line);
      // Resolve the operator id once at the wire boundary so the apply path
      // skips the string hash (the coordinator re-validates before trusting).
      rep.record.network_id =
          sharded_ ? sharded_->network_id_of(rep.record.network)
                   : coord_->network_id_of(rep.record.network);
      if (sharded_ && !sharded_->report(rep.record)) {
        fail(err_code::stopped, "ingestion pipeline stopped");
      } else {
        if (!sharded_) coord_->report(rep.record);
        reports_.fetch_add(1, std::memory_order_relaxed);
        metrics().reports.inc();
        out.append("ACK");
      }
    } else if (type == "REPORTB") {
      obs::span timed(metrics().batch_latency);
      auto& recs = out.records_scratch_;
      decode_report_batch_into(line, recs);
      // Batches overwhelmingly repeat one operator name; memoise the last
      // resolution so a frame costs ~1 interner lookup, not one per record.
      std::string_view last_name;
      std::uint16_t last_id = trace::no_network_id;
      for (auto& r : recs) {
        if (r.network != last_name || last_name.empty()) {
          last_id = sharded_ ? sharded_->network_id_of(r.network)
                             : coord_->network_id_of(r.network);
          last_name = r.network;
        }
        r.network_id = last_id;
      }
      if (sharded_ && sharded_->report_batch(recs) != recs.size()) {
        fail(err_code::stopped, "ingestion pipeline stopped");
      } else {
        if (!sharded_) coord_->report_batch(recs);
        reports_.fetch_add(recs.size(), std::memory_order_relaxed);
        metrics().reports.inc(recs.size());
        metrics().report_batches.inc();
        out.append("ACK ");
        out.append_u64(recs.size());
      }
    } else if (type == "QUERY") {
      obs::span timed(metrics().query_latency);
      const auto q = decode_query(line);
      metrics().queries.inc();
      const auto rep = lookup_one(q);
      if (rep) {
        encode_into(*rep, out);
      } else {
        out.append("NONE");
      }
    } else if (type == "QUERYB") {
      obs::span timed(metrics().query_batch_latency);
      auto& queries = out.queries_scratch_;
      decode_query_batch_into(line, queries);
      out.append("ESTB ");
      out.append_u64(queries.size());
      for (const auto& q : queries) {
        out.append('\n');
        const auto rep = lookup_one(q);
        if (rep) {
          encode_into(*rep, out);
        } else {
          out.append("NONE");
        }
      }
      metrics().queries.inc(queries.size());
      metrics().query_batches.inc();
    } else if (type == "ALERTS") {
      obs::span timed(metrics().alerts_latency);
      const auto req = decode_alerts_request(line);
      const auto drained = view_.alerts_since(
          req.since, std::min<std::size_t>(req.max, max_alert_batch));
      alerts_reply rep;
      rep.alerts.reserve(drained.alerts.size());
      for (const auto& a : drained.alerts) {
        alert_event ev;
        ev.seq = a.seq;
        ev.zone = a.alert.key.zone;
        ev.network = a.alert.key.network;
        ev.metric = a.alert.key.metric;
        ev.epoch_start_s = a.alert.epoch_start_s;
        ev.previous_mean = a.alert.previous_mean;
        ev.new_mean = a.alert.new_mean;
        ev.previous_stddev = a.alert.previous_stddev;
        rep.alerts.push_back(std::move(ev));
      }
      rep.next_seq = drained.next_seq;
      rep.dropped = drained.dropped;
      metrics().alerts_requests.inc();
      encode_into(rep, out);
    } else if (type == "HELLO") {
      const auto req = decode_hello(line);
      if (req.version < wire_min_version) {
        fail(err_code::version, "client version below supported minimum");
      } else {
        metrics().hellos.inc();
        hello_reply rep;
        rep.version = std::min(req.version, opts_.advertised_version);
        rep.min_version = wire_min_version;
        encode_into(rep, out);
      }
    } else if (type == "STATS") {
      metrics().stats_requests.inc();
      encode_stats_into(out);
    } else {
      // Compose "unsupported request: '<clipped line>'" on the stack
      // (22-byte prefix + a 120-byte excerpt + "..." + quote fits in 160);
      // encode_error_into applies the final 120-byte detail clip, matching
      // the historical error_excerpt composition byte-for-byte.
      char detail[160];
      std::size_t len = 0;
      const auto put = [&detail, &len](std::string_view s) {
        const std::size_t k = std::min(s.size(), sizeof detail - len);
        std::memcpy(detail + len, s.data(), k);
        len += k;
      };
      put("unsupported request: '");
      if (line.size() <= 120) {
        put(line);
      } else {
        put(line.substr(0, 120));
        put("...");
      }
      put("'");
      fail(err_code::unsupported, {detail, len});
    }
  } catch (const std::invalid_argument& e) {
    // The line protocol promises a reply per request; malformed input is a
    // client bug the server reports, not a server crash.
    fail(err_code::parse, e.what());
  } catch (const std::exception& e) {
    // Defense in depth: nothing below is expected to throw anything else on
    // wire input (the coordinator rejects bad records instead), but if it
    // does, answer ERR rather than letting the throw escape the protocol
    // layer and take down the transport.
    fail(err_code::internal, e.what());
  }
  metrics().reply_bytes.inc(out.size() - base);
}

void coordinator_server::handle_frame_into(std::string_view frame,
                                           reply_buffer& out) {
  const std::size_t base = out.size();
  auto& m = metrics();
  m.lines.inc();
  m.binary_frames.inc();
  // The binary twin of handle_into's fail lambda: same per-reason counters,
  // same replace-never-append discipline, but the reply is an err frame.
  const auto fail = [this, &out, base, &m](err_code code,
                                           std::string_view detail) {
    switch (code) {
      case err_code::parse:
        m.err_parse.inc();
        break;
      case err_code::unsupported:
        m.err_unsupported.inc();
        break;
      case err_code::stopped:
        m.err_stopped.inc();
        break;
      case err_code::version:
        m.err_version.inc();
        break;
      case err_code::internal:
        m.err_internal.inc();
        break;
      case err_code::overload:
        m.err_overload.inc();
        break;
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    out.truncate(base);
    v3::encode_error_frame(code, detail, out);
  };
  // The same scenario seam as the text path: whole-frame granularity keeps
  // binary REPORTB all-or-nothing, and fault ordinals stay comparable
  // across framings.
  if (core::fault::fire(core::fault::site::server_handle) ==
      core::fault::action::fail) {
    m.faults_injected.inc();
    fail(err_code::internal, "injected fault: request refused");
    m.reply_bytes.inc(out.size() - base);
    return;
  }
  try {
    const auto hdr = v3::peek_header(frame);
    if (!hdr || frame.size() != v3::frame_header_bytes + hdr->payload_len) {
      fail(err_code::parse, "malformed binary frame envelope");
    } else {
      switch (hdr->op) {
        case v3::opcode::report: {
          obs::span timed(m.report_latency);
          auto rep = v3::decode_report_frame(frame);
          rep.record.network_id =
              sharded_ ? sharded_->network_id_of(rep.record.network)
                       : coord_->network_id_of(rep.record.network);
          if (sharded_ && !sharded_->report(rep.record)) {
            fail(err_code::stopped, "ingestion pipeline stopped");
          } else {
            if (!sharded_) coord_->report(rep.record);
            reports_.fetch_add(1, std::memory_order_relaxed);
            m.reports.inc();
            v3::encode_ack_frame(out);
          }
          break;
        }
        case v3::opcode::reportb: {
          obs::span timed(m.batch_latency);
          auto& recs = out.records_scratch_;
          v3::decode_report_batch_frame_into(frame, recs);
          std::string_view last_name;
          std::uint16_t last_id = trace::no_network_id;
          for (auto& r : recs) {
            if (r.network != last_name || last_name.empty()) {
              last_id = sharded_ ? sharded_->network_id_of(r.network)
                                 : coord_->network_id_of(r.network);
              last_name = r.network;
            }
            r.network_id = last_id;
          }
          if (sharded_ && sharded_->report_batch(recs) != recs.size()) {
            fail(err_code::stopped, "ingestion pipeline stopped");
          } else {
            if (!sharded_) coord_->report_batch(recs);
            reports_.fetch_add(recs.size(), std::memory_order_relaxed);
            m.reports.inc(recs.size());
            m.report_batches.inc();
            v3::encode_ack_frame(recs.size(), out);
          }
          break;
        }
        case v3::opcode::query: {
          obs::span timed(m.query_latency);
          const auto q = v3::decode_query_frame(frame);
          m.queries.inc();
          v3::encode_estimate_frame(lookup_one(q), out);
          break;
        }
        case v3::opcode::queryb: {
          obs::span timed(m.query_batch_latency);
          auto& queries = out.queries_scratch_;
          v3::decode_query_batch_frame_into(frame, queries);
          v3::estimate_batch_builder estb(
              static_cast<std::uint32_t>(queries.size()), out);
          for (const auto& q : queries) estb.add(lookup_one(q));
          estb.finish();
          m.queries.inc(queries.size());
          m.query_batches.inc();
          break;
        }
        case v3::opcode::epoch: {
          // Replication pull: serve log records after the follower's
          // sequence cursor. Decode-before-dispatch keeps the error
          // classes honest (a malformed pull is parse, not unsupported).
          const auto pull = v3::decode_epoch_pull_frame(frame);
          if (repl_ == nullptr) {
            fail(err_code::unsupported, "replication not attached");
            break;
          }
          auto& updates = out.epochs_scratch_;
          updates.clear();
          const auto max = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(pull.max_records, v3::max_epoch_batch));
          if (!repl_->pull(pull.since_seq, max, updates)) {
            fail(err_code::stopped,
                 "log truncated below requested seq; snapshot required");
          } else {
            v3::encode_epoch_batch_frame(updates, out);
          }
          break;
        }
        case v3::opcode::epochb: {
          // An EPOCHB arriving as a request is a follower-apply: the
          // leader->follower stream pushes the same bytes a pull returns.
          auto& updates = out.epochs_scratch_;
          v3::decode_epoch_batch_frame_into(frame, updates);
          if (repl_ == nullptr) {
            fail(err_code::unsupported, "replication not attached");
          } else {
            v3::encode_ack_frame(repl_->apply(updates), out);
          }
          break;
        }
        case v3::opcode::snapshot_req: {
          const std::uint64_t offset = v3::decode_snapshot_req_frame(frame);
          if (repl_ == nullptr) {
            fail(err_code::unsupported, "replication not attached");
            break;
          }
          // Chunk staging allocates (snapshot bytes are cold-path by
          // definition: catch-up happens once per join, not per request).
          std::string data;
          std::uint64_t total = 0;
          bool last = false;
          if (!repl_->snapshot(offset, data, total, last)) {
            fail(err_code::parse, "snapshot offset beyond end");
          } else {
            v3::encode_snapshot_chunk_frame(offset, total, last, data, out);
          }
          break;
        }
        case v3::opcode::promote: {
          v3::decode_promote_frame(frame);
          if (repl_ == nullptr) {
            fail(err_code::unsupported, "replication not attached");
          } else if (!repl_->promote()) {
            fail(err_code::unsupported, "promotion refused");
          } else {
            v3::encode_ack_frame(out);
          }
          break;
        }
        case v3::opcode::ack:
        case v3::opcode::est:
        case v3::opcode::estb:
        case v3::opcode::err:
        case v3::opcode::snapshot_chunk: {
          // Reply opcodes arriving as requests: the binary analogue of a
          // client sending "EST ..." -- syntactically valid, not a request.
          char detail[64];
          const int len =
              std::snprintf(detail, sizeof detail,
                            "reply opcode '%s' is not a request",
                            v3::opcode_name(hdr->op));
          fail(err_code::unsupported,
               {detail, len > 0 ? static_cast<std::size_t>(len) : 0});
          break;
        }
      }
    }
  } catch (const std::invalid_argument& e) {
    fail(err_code::parse, e.what());
  } catch (const std::exception& e) {
    fail(err_code::internal, e.what());
  }
  m.reply_bytes.inc(out.size() - base);
}

void coordinator_server::handle_report_group(std::string_view block,
                                             std::size_t count,
                                             reply_buffer& out) {
  auto& m = metrics();
  // One latency sample for the whole group: report_latency measures handler
  // occupancy, and the group occupies the handler once.
  obs::span timed(m.report_latency);
  auto& recs = out.records_scratch_;
  auto& status = out.group_status_;
  auto& errs = out.group_errors_;
  recs.clear();
  status.clear();
  errs.clear();
  // Per-line status so replies stay positional: 0 = decoded ok, 1 = parse
  // error, 2 = injected fault, 3 = unexpected exception. Error strings for
  // 1/3 are queued in line order (cold path; a clean group never touches
  // them).
  constexpr std::uint8_t st_ok = 0, st_parse = 1, st_fault = 2,
                         st_internal = 3;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < count; ++i) {
    m.lines.inc();
    const std::size_t nl = block.find('\n', pos);
    std::string_view line =
        block.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    // The fault seam fires once per line, exactly as per-line dispatch
    // would: a scenario that injects every-Nth-request failures sees the
    // same rejection positions whether or not the transport grouped.
    if (core::fault::fire(core::fault::site::server_handle) ==
        core::fault::action::fail) {
      m.faults_injected.inc();
      status.push_back(st_fault);
      continue;
    }
    try {
      auto rep = decode_report(line);
      // Runs overwhelmingly repeat one operator name; reuse the previous
      // record's resolution instead of re-hashing. Compare against the
      // stored record (not a cached view) -- push_back may move strings.
      auto& r = rep.record;
      if (!recs.empty() && recs.back().network == r.network) {
        r.network_id = recs.back().network_id;
      } else {
        r.network_id = sharded_ ? sharded_->network_id_of(r.network)
                                : coord_->network_id_of(r.network);
      }
      recs.push_back(std::move(r));
      status.push_back(st_ok);
    } catch (const std::invalid_argument& e) {
      errs.emplace_back(e.what());
      status.push_back(st_parse);
    } catch (const std::exception& e) {
      errs.emplace_back(e.what());
      status.push_back(st_internal);
    }
  }
  // One submission for every record that decoded: one ingestion queue lock
  // and one counter delta per group. A stopped pipeline refuses the whole
  // group (ERR stopped on every decoded line), mirroring REPORTB's
  // all-or-nothing discipline.
  bool stopped = false;
  if (!recs.empty()) {
    if (sharded_) {
      stopped = sharded_->report_batch(recs) != recs.size();
    } else {
      coord_->report_batch(recs);
    }
  }
  std::size_t n_ok = 0;
  std::size_t err_i = 0;
  std::size_t reply_bytes = 0;
  for (const std::uint8_t st : status) {
    const std::size_t before = out.size();
    if (st == st_ok && !stopped) {
      out.append("ACK");
      ++n_ok;
    } else if (st == st_ok) {
      m.err_stopped.inc();
      errors_.fetch_add(1, std::memory_order_relaxed);
      encode_error_into(err_code::stopped, "ingestion pipeline stopped", out);
    } else if (st == st_parse) {
      m.err_parse.inc();
      errors_.fetch_add(1, std::memory_order_relaxed);
      encode_error_into(err_code::parse, errs[err_i++], out);
    } else if (st == st_fault) {
      m.err_internal.inc();
      errors_.fetch_add(1, std::memory_order_relaxed);
      encode_error_into(err_code::internal, "injected fault: request refused",
                        out);
    } else {
      m.err_internal.inc();
      errors_.fetch_add(1, std::memory_order_relaxed);
      encode_error_into(err_code::internal, errs[err_i++], out);
    }
    reply_bytes += out.size() - before;
    out.append('\n');
  }
  if (n_ok > 0) {
    reports_.fetch_add(n_ok, std::memory_order_relaxed);
    m.reports.inc(n_ok);
  }
  // reply_bytes counts reply payloads, not the '\n' separators, so the
  // counter matches what count handle_into() calls would have recorded.
  m.reply_bytes.inc(reply_bytes);
}

std::optional<trace::measurement_record> remote_agent::step(
    const mobility::gps_fix& fix, std::uint32_t network_index,
    std::uint32_t active_in_zone) {
  checkin_request req;
  req.client_id = client_id_;
  req.pos = fix.pos;
  req.time_s = fix.time_s;
  req.network_index = network_index;
  req.active_in_zone = active_in_zone;
  req.device = device_.name;

  const std::string reply = send_(encode(req));
  if (message_type(reply) != "TASK") return std::nullopt;
  const auto task = decode_task(reply);

  trace::measurement_record rec;
  switch (task.kind) {
    case trace::probe_kind::tcp_download: {
      probe::tcp_probe_params params;
      if (task.tcp_bytes > 0) params.bytes = task.tcp_bytes;
      rec = engine_->tcp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_burst: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_uplink: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_uplink_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::ping: {
      probe::ping_probe_params params;
      if (task.ping_count > 0) params.count = task.ping_count;
      rec = engine_->ping_probe(task.network_index, fix, params, device_);
      break;
    }
  }

  rec.client_id = client_id_;
  measurement_report rep;
  rep.client_id = client_id_;
  rep.record = rec;
  send_(encode(rep));
  return rec;
}

std::string remote_query_client::roundtrip(const std::string& request,
                                           std::string_view expect) {
  std::string reply = send_(request);
  if (message_type(reply) != expect) {
    throw std::runtime_error("remote query failed: " + error_excerpt(reply));
  }
  return reply;
}

hello_reply remote_query_client::hello(std::uint32_t version) {
  hello_request req;
  req.version = version;
  return decode_hello_reply(roundtrip(encode(req), "HELLO"));
}

std::optional<estimate_reply> remote_query_client::query(
    const query_request& q) {
  const std::string reply = send_(encode(q));
  const std::string_view type = message_type(reply);
  if (type == "NONE") return std::nullopt;
  if (type != "EST") {
    throw std::runtime_error("remote query failed: " + error_excerpt(reply));
  }
  return decode_estimate(reply);
}

std::vector<std::optional<estimate_reply>> remote_query_client::query_batch(
    std::span<const query_request> queries) {
  return decode_estimate_batch(roundtrip(encode_query_batch(queries), "ESTB"));
}

alerts_reply remote_query_client::alerts(std::uint64_t since,
                                         std::uint32_t max) {
  alerts_request req;
  req.since = since;
  req.max = max;
  return decode_alerts_reply(roundtrip(encode(req), "ALERTS"));
}

}  // namespace wiscape::proto

#include "proto/server.h"

#include <stdexcept>

namespace wiscape::proto {

std::string coordinator_server::handle(const std::string& line) {
  try {
    const std::string type = message_type(line);
    if (type == "CHECKIN") {
      const auto req = decode_checkin(line);
      const auto task =
          sharded_ ? sharded_->checkin(req.pos, req.time_s, req.network_index,
                                       req.active_in_zone, req.client_id)
                   : coord_->checkin(req.pos, req.time_s, req.network_index,
                                     req.active_in_zone, req.client_id);
      if (!task) return encode_idle();
      tasks_.fetch_add(1, std::memory_order_relaxed);
      task_assignment out;
      out.kind = task->kind;
      out.network_index = static_cast<std::uint32_t>(task->network_index);
      return encode(out);
    }
    if (type == "REPORT") {
      const auto rep = decode_report(line);
      if (sharded_) {
        if (!sharded_->report(rep.record)) {
          throw std::invalid_argument("ingestion pipeline stopped");
        }
      } else {
        coord_->report(rep.record);
      }
      reports_.fetch_add(1, std::memory_order_relaxed);
      return "ACK";
    }
    throw std::invalid_argument("unsupported request: '" + line + "'");
  } catch (const std::invalid_argument& e) {
    // The line protocol promises a reply per request; malformed input is a
    // client bug the server reports, not a server crash.
    errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_error(e.what());
  }
}

std::optional<trace::measurement_record> remote_agent::step(
    const mobility::gps_fix& fix, std::uint32_t network_index,
    std::uint32_t active_in_zone) {
  checkin_request req;
  req.client_id = client_id_;
  req.pos = fix.pos;
  req.time_s = fix.time_s;
  req.network_index = network_index;
  req.active_in_zone = active_in_zone;
  req.device = device_.name;

  const std::string reply = send_(encode(req));
  if (message_type(reply) != "TASK") return std::nullopt;
  const auto task = decode_task(reply);

  trace::measurement_record rec;
  switch (task.kind) {
    case trace::probe_kind::tcp_download: {
      probe::tcp_probe_params params;
      if (task.tcp_bytes > 0) params.bytes = task.tcp_bytes;
      rec = engine_->tcp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_burst: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_uplink: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_uplink_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::ping: {
      probe::ping_probe_params params;
      if (task.ping_count > 0) params.count = task.ping_count;
      rec = engine_->ping_probe(task.network_index, fix, params, device_);
      break;
    }
  }

  rec.client_id = client_id_;
  measurement_report rep;
  rep.client_id = client_id_;
  rep.record = rec;
  send_(encode(rep));
  return rec;
}

}  // namespace wiscape::proto

#include "proto/server.h"

#include <sstream>
#include <stdexcept>

#include "obs/names.h"
#include "obs/registry.h"
#include "obs/span.h"

namespace wiscape::proto {

namespace {
// Process-wide server metrics (every coordinator_server instance shares
// them; looked up once, then lock-free).
struct server_metrics {
  obs::counter& lines;
  obs::counter& checkins;
  obs::counter& reports;
  obs::counter& report_batches;
  obs::counter& stats_requests;
  obs::counter& err_parse;
  obs::counter& err_unsupported;
  obs::counter& err_stopped;
  obs::counter& err_internal;
  obs::histogram& checkin_latency;
  obs::histogram& report_latency;
  obs::histogram& batch_latency;
};

server_metrics& metrics() {
  auto& reg = obs::registry::global();
  static server_metrics m{
      reg.get_counter(obs::names::kServerLines),
      reg.get_counter(obs::names::kServerCheckins),
      reg.get_counter(obs::names::kServerReports),
      reg.get_counter(obs::names::kServerReportBatches),
      reg.get_counter(obs::names::kServerStats),
      reg.get_counter(obs::names::kServerErrParse),
      reg.get_counter(obs::names::kServerErrUnsupported),
      reg.get_counter(obs::names::kServerErrStopped),
      reg.get_counter(obs::names::kServerErrInternal),
      reg.get_histogram(obs::names::kServerCheckinLatency),
      reg.get_histogram(obs::names::kServerReportLatency),
      reg.get_histogram(obs::names::kServerBatchLatency)};
  return m;
}
}  // namespace

std::string encode_stats() {
  const auto samples = obs::registry::global().snapshot();
  std::ostringstream os;
  os << "STATS " << samples.size();
  for (const auto& s : samples) {
    os << '\n' << s.name << ' ' << obs::format_value(s);
  }
  return os.str();
}

std::string coordinator_server::handle(std::string_view line) {
  metrics().lines.inc();
  const std::string_view type = message_type(line);
  try {
    if (type == "CHECKIN") {
      obs::span timed(metrics().checkin_latency);
      const auto req = decode_checkin(line);
      const auto task =
          sharded_ ? sharded_->checkin(req.pos, req.time_s, req.network_index,
                                       req.active_in_zone, req.client_id)
                   : coord_->checkin(req.pos, req.time_s, req.network_index,
                                     req.active_in_zone, req.client_id);
      metrics().checkins.inc();
      if (!task) return encode_idle();
      tasks_.fetch_add(1, std::memory_order_relaxed);
      task_assignment out;
      out.kind = task->kind;
      out.network_index = static_cast<std::uint32_t>(task->network_index);
      return encode(out);
    }
    if (type == "REPORT") {
      obs::span timed(metrics().report_latency);
      auto rep = decode_report(line);
      // Resolve the operator id once at the wire boundary so the apply path
      // skips the string hash (the coordinator re-validates before trusting).
      rep.record.network_id =
          sharded_ ? sharded_->network_id_of(rep.record.network)
                   : coord_->network_id_of(rep.record.network);
      if (sharded_) {
        if (!sharded_->report(rep.record)) {
          metrics().err_stopped.inc();
          errors_.fetch_add(1, std::memory_order_relaxed);
          return encode_error("ingestion pipeline stopped");
        }
      } else {
        coord_->report(rep.record);
      }
      reports_.fetch_add(1, std::memory_order_relaxed);
      metrics().reports.inc();
      return "ACK";
    }
    if (type == "REPORTB") {
      obs::span timed(metrics().batch_latency);
      auto recs = decode_report_batch(line);
      // Batches overwhelmingly repeat one operator name; memoise the last
      // resolution so a frame costs ~1 interner lookup, not one per record.
      std::string_view last_name;
      std::uint16_t last_id = trace::no_network_id;
      for (auto& r : recs) {
        if (r.network != last_name || last_name.empty()) {
          last_id = sharded_ ? sharded_->network_id_of(r.network)
                             : coord_->network_id_of(r.network);
          last_name = r.network;
        }
        r.network_id = last_id;
      }
      if (sharded_) {
        if (sharded_->report_batch(recs) != recs.size()) {
          metrics().err_stopped.inc();
          errors_.fetch_add(1, std::memory_order_relaxed);
          return encode_error("ingestion pipeline stopped");
        }
      } else {
        coord_->report_batch(recs);
      }
      reports_.fetch_add(recs.size(), std::memory_order_relaxed);
      metrics().reports.inc(recs.size());
      metrics().report_batches.inc();
      return "ACK " + std::to_string(recs.size());
    }
    if (type == "STATS") {
      metrics().stats_requests.inc();
      return encode_stats();
    }
    metrics().err_unsupported.inc();
    errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_error("unsupported request: '" + error_excerpt(line) + "'");
  } catch (const std::invalid_argument& e) {
    // The line protocol promises a reply per request; malformed input is a
    // client bug the server reports, not a server crash.
    metrics().err_parse.inc();
    errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_error(e.what());
  } catch (const std::exception& e) {
    // Defense in depth: nothing below is expected to throw anything else on
    // wire input (the coordinator rejects bad records instead), but if it
    // does, answer ERR rather than letting the throw escape the protocol
    // layer and take down the transport.
    metrics().err_internal.inc();
    errors_.fetch_add(1, std::memory_order_relaxed);
    return encode_error(std::string("internal error: ") + e.what());
  }
}

std::optional<trace::measurement_record> remote_agent::step(
    const mobility::gps_fix& fix, std::uint32_t network_index,
    std::uint32_t active_in_zone) {
  checkin_request req;
  req.client_id = client_id_;
  req.pos = fix.pos;
  req.time_s = fix.time_s;
  req.network_index = network_index;
  req.active_in_zone = active_in_zone;
  req.device = device_.name;

  const std::string reply = send_(encode(req));
  if (message_type(reply) != "TASK") return std::nullopt;
  const auto task = decode_task(reply);

  trace::measurement_record rec;
  switch (task.kind) {
    case trace::probe_kind::tcp_download: {
      probe::tcp_probe_params params;
      if (task.tcp_bytes > 0) params.bytes = task.tcp_bytes;
      rec = engine_->tcp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_burst: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::udp_uplink: {
      probe::udp_probe_params params;
      if (task.udp_packets > 0) params.packets = task.udp_packets;
      rec = engine_->udp_uplink_probe(task.network_index, fix, params, device_);
      break;
    }
    case trace::probe_kind::ping: {
      probe::ping_probe_params params;
      if (task.ping_count > 0) params.count = task.ping_count;
      rec = engine_->ping_probe(task.network_index, fix, params, device_);
      break;
    }
  }

  rec.client_id = client_id_;
  measurement_report rep;
  rep.client_id = client_id_;
  rep.record = rec;
  send_(encode(rep));
  return rec;
}

}  // namespace wiscape::proto

// Wire messages between client user agents and the measurement coordinator
// (paper Sec 3.4: "a simple user agent in each client device ... a
// measurement coordinator, deployed by the operator or by third-party
// users, will manage the entire measurement process").
//
// The format is a single text line per message -- `TYPE k=v k=v ...` --
// chosen for the same reasons as the CSV trace format: transport-agnostic,
// greppable, and trivially replaceable by real field software. Encoding
// never fails; decoding throws std::invalid_argument with a reason.
//
// Request types: CHECKIN (task request), REPORT (completed measurement),
// STATS (operational metrics dump). Reply types: TASK, IDLE, ACK, ERR, and
// the STATS reply (`STATS <n>` followed by n `name value` lines -- the one
// multi-line message; see coordinator_server::handle). All functions here
// are stateless and thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "geo/lat_lon.h"
#include "trace/record.h"

namespace wiscape::proto {

/// Client -> coordinator: periodic zone report / task request.
struct checkin_request {
  std::uint64_t client_id = 0;       ///< 0 = anonymous (never budget-capped)
  geo::lat_lon pos;                  ///< client position (degrees)
  double time_s = 0.0;               ///< client clock, seconds since epoch 0
  std::uint32_t network_index = 0;   ///< operator the client can probe
  std::uint32_t active_in_zone = 1;  ///< peers the client estimates nearby
  std::string device = "laptop";     ///< device category (probe profiles)
};

/// Coordinator -> client: a measurement instruction (absent = stay idle).
struct task_assignment {
  trace::probe_kind kind = trace::probe_kind::udp_burst;
  std::uint32_t network_index = 0;
  /// Probe sizing knobs; 0 = client default.
  std::uint64_t tcp_bytes = 0;
  std::uint32_t udp_packets = 0;
  std::uint32_t ping_count = 0;
};

/// Client -> coordinator: a completed measurement.
struct measurement_report {
  std::uint64_t client_id = 0;      ///< reporting device (0 = anonymous)
  trace::measurement_record record; ///< the full Table 1 record (CSV payload)
};

// ---- codec ----------------------------------------------------------------
// encode() never fails; decode_*() throws std::invalid_argument naming the
// offending field. All codec functions are pure and thread-safe.

/// Encodes a check-in as one "CHECKIN k=v ..." line.
std::string encode(const checkin_request& m);
/// Encodes a task as one "TASK k=v ..." line.
std::string encode(const task_assignment& m);
/// Encodes a report as one "REPORT client=<id> csv=<record>" line.
std::string encode(const measurement_report& m);

/// The coordinator's answer to a check-in when no task is issued.
std::string encode_idle();

/// The server's reply to a malformed or rejected request: "ERR <reason>".
std::string encode_error(const std::string& reason);

/// The message type tag at the start of a line ("CHECKIN", "TASK", "REPORT",
/// "IDLE", "ACK", "ERR", "STATS"); empty for a malformed line.
std::string message_type(const std::string& line);

/// Parses a CHECKIN line. Throws std::invalid_argument on any missing or
/// malformed field.
checkin_request decode_checkin(const std::string& line);
/// Parses a TASK line. Throws std::invalid_argument on any missing or
/// malformed field.
task_assignment decode_task(const std::string& line);
/// Parses a REPORT line. Throws std::invalid_argument on any missing or
/// malformed field (including the embedded CSV record).
measurement_report decode_report(const std::string& line);

}  // namespace wiscape::proto

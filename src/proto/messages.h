// Wire messages between client user agents and the measurement coordinator
// (paper Sec 3.4: "a simple user agent in each client device ... a
// measurement coordinator, deployed by the operator or by third-party
// users, will manage the entire measurement process").
//
// The format is a single text line per message -- `TYPE k=v k=v ...` --
// chosen for the same reasons as the CSV trace format: transport-agnostic,
// greppable, and trivially replaceable by real field software. Encoding
// never fails (oversized fields grow the output, never truncate it);
// decoding throws std::invalid_argument with a reason.
//
// Decoding is a zero-allocation fast path: lines are walked as
// std::string_view tokens and numbers parsed with std::from_chars -- no
// istringstream, no key/value map, no locale, no heap traffic on the happy
// path (only the std::string members of the decoded structs may allocate,
// and short names stay in SSO). Error reasons (the cold path) allocate and
// echo at most a clipped excerpt of the offending input.
//
// Protocol v2 (normative spec: docs/WIRE_PROTOCOL.md). Request types:
//   write side -- CHECKIN (task request), REPORT (completed measurement),
//   REPORTB (batched reports: "REPORTB <n>" header + n CSV record lines);
//   read side  -- QUERY (estimate lookup), QUERYB (batched lookups,
//   mirroring the REPORTB frame discipline), ALERTS (incremental change-
//   alert drain), HELLO (version negotiation), STATS (metrics dump).
// Reply types: TASK, IDLE, ACK, EST, NONE, the multi-line ESTB / ALERTS /
// STATS frames, HELLO, and ERR (typed: "ERR <code> <detail>" with a stable
// code token -- see err_code). All functions here are stateless and
// thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/lat_lon.h"
#include "geo/zone_grid.h"
#include "trace/record.h"

namespace wiscape::proto {

/// Client -> coordinator: periodic zone report / task request.
struct checkin_request {
  std::uint64_t client_id = 0;       ///< 0 = anonymous (never budget-capped)
  geo::lat_lon pos;                  ///< client position (degrees)
  double time_s = 0.0;               ///< client clock, seconds since epoch 0
  std::uint32_t network_index = 0;   ///< operator the client can probe
  std::uint32_t active_in_zone = 1;  ///< peers the client estimates nearby
  std::string device = "laptop";     ///< device category (probe profiles)
};

/// Coordinator -> client: a measurement instruction (absent = stay idle).
struct task_assignment {
  trace::probe_kind kind = trace::probe_kind::udp_burst;
  std::uint32_t network_index = 0;
  /// Probe sizing knobs; 0 = client default.
  std::uint64_t tcp_bytes = 0;
  std::uint32_t udp_packets = 0;
  std::uint32_t ping_count = 0;
};

/// Client -> coordinator: a completed measurement.
struct measurement_report {
  std::uint64_t client_id = 0;      ///< reporting device (0 = anonymous)
  trace::measurement_record record; ///< the full Table 1 record (CSV payload)
};

/// Hard cap on the record count of one REPORTB frame; larger counts are
/// rejected before any payload is decoded (a hostile header cannot force a
/// huge allocation).
inline constexpr std::size_t max_report_batch = 65536;

// ---- protocol versioning --------------------------------------------------

/// The protocol version this build speaks. v1: CHECKIN/REPORT/REPORTB/
/// STATS. v2 adds the read side (QUERY/QUERYB/ALERTS/HELLO) and typed ERR
/// codes. v3 adds the length-prefixed binary framing for the hot commands
/// (proto/wire_v3.h); the text forms remain valid on every version.
inline constexpr std::uint32_t wire_version = 3;
/// Oldest client version this build still serves (v1 clients never send
/// read-side commands, and every v1 reply shape is unchanged).
inline constexpr std::uint32_t wire_min_version = 1;

/// Client -> coordinator: version negotiation ("HELLO ver=<n>").
struct hello_request {
  std::uint32_t version = wire_version;  ///< highest version the client speaks
};

/// Coordinator -> client: "HELLO ver=<negotiated> min=<min>". `version` is
/// min(client version, wire_version) -- the version both sides speak.
struct hello_reply {
  std::uint32_t version = wire_version;
  std::uint32_t min_version = wire_min_version;
};

// ---- read-side messages ---------------------------------------------------

/// Client -> coordinator: estimate lookup ("QUERY lat=.. lon=.. net=..
/// metric=.. [t=..]"). The server maps the position to its zone grid; `t`
/// (the client clock) is optional and only prices the reply's staleness.
struct query_request {
  geo::lat_lon pos;
  std::string network;
  trace::metric metric = trace::metric::tcp_throughput_bps;
  double time_s = -1.0;  ///< <0 = not provided (staleness unknown)
};

/// Coordinator -> client: one served estimate ("EST zone=<ix>:<iy> ...").
/// A stream with no published estimate answers "NONE" instead.
struct estimate_reply {
  geo::zone_id zone;
  std::string network;
  trace::metric metric = trace::metric::tcp_throughput_bps;
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t epoch_index = 0;
  double staleness_s = -1.0;  ///< -1 = unknown (query carried no t)
  double confidence = 0.0;
};

/// One replicated frozen epoch (ISSUE 10): the leader log's sequence
/// number (the follower's dedup key) plus the (zone, network, metric)
/// stream key and the published estimate. Travels in v3 EPOCHB frames with
/// doubles as raw IEEE bits, so a follower's applied state is bit-equal to
/// the leader's. Lives here (not wire_v3.h) because reply_buffer stages
/// decode scratch of it.
struct epoch_update {
  std::uint64_t seq = 0;
  geo::zone_id zone;
  std::string network;
  trace::metric metric = trace::metric::tcp_throughput_bps;
  double epoch_start_s = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::uint64_t samples = 0;
};

/// Client -> coordinator: incremental alert drain ("ALERTS since=<seq>
/// [max=<n>]").
struct alerts_request {
  std::uint64_t since = 0;  ///< drain alerts with sequence > since
  std::uint32_t max = 256;  ///< at most this many per reply frame
};

/// One change alert in an ALERTS reply frame.
struct alert_event {
  std::uint64_t seq = 0;
  geo::zone_id zone;
  std::string network;
  trace::metric metric = trace::metric::tcp_throughput_bps;
  double epoch_start_s = 0.0;
  double previous_mean = 0.0;
  double new_mean = 0.0;
  double previous_stddev = 0.0;
};

/// Coordinator -> client: "ALERTS <n> next=<seq> dropped=<d>" header + n
/// ALERT lines. Feed next_seq back as the next request's `since`.
struct alerts_reply {
  std::vector<alert_event> alerts;
  std::uint64_t next_seq = 0;
  std::uint64_t dropped = 0;
};

/// Hard cap on the lookup count of one QUERYB frame (same discipline as
/// max_report_batch: rejected before any payload decode or allocation).
inline constexpr std::size_t max_query_batch = 4096;

/// Hard cap on the alert count of one ALERTS reply frame: the server clamps
/// alerts_request::max to this, and decode_alerts_reply rejects larger
/// headers before allocating.
inline constexpr std::size_t max_alert_batch = 4096;

// ---- error codes ----------------------------------------------------------

/// Stable machine-readable ERR categories, serialized as "ERR <code>
/// <detail>". Codes are append-only wire surface: clients switch on the
/// token, the detail is for humans and capped at 120 bytes.
enum class err_code {
  parse,        ///< request line/frame failed to decode
  unsupported,  ///< syntactically valid line of an unknown type
  stopped,      ///< ingestion pipeline stopped; report refused
  version,      ///< HELLO version below wire_min_version
  internal,     ///< unexpected exception while handling (defense in depth)
  overload,     ///< transport shed the request under backpressure; retry
                ///< with backoff (the request was never dispatched)
};

/// The code's stable wire token ("parse", "unsupported", ...).
std::string_view to_string(err_code code) noexcept;
/// Parses a code token; nullopt for anything else (forward compatibility:
/// clients treat unknown codes as a generic error).
std::optional<err_code> err_code_from_string(std::string_view s) noexcept;

// ---- reply buffer ---------------------------------------------------------

class coordinator_server;

/// A growable reply arena for the zero-allocation encode path.
///
/// Every encode_*_into() function appends wire bytes here instead of
/// returning a std::string, so a caller that reuses one reply_buffer per
/// connection pays no heap traffic per reply in steady state: the byte
/// storage and the decode scratch vectors keep their capacity across
/// clear() calls, and the typed append helpers (std::to_chars under the
/// hood) never touch the heap once the buffer has warmed up.
///
/// The buffer also carries coordinator_server's per-request decode scratch
/// (REPORTB records, QUERYB queries, REPORT-group bookkeeping), so one
/// reply_buffer per session is the whole per-connection arena. Not
/// thread-safe; confine one buffer to one caller at a time.
class reply_buffer {
 public:
  /// The encoded bytes (valid until the next mutating call).
  std::string_view view() const noexcept { return bytes_; }
  std::size_t size() const noexcept { return bytes_.size(); }
  /// Drops the bytes, keeping capacity (and the decode scratch) warm.
  void clear() noexcept { bytes_.clear(); }
  /// Truncates back to `n` bytes (n <= size()); encoders use this to
  /// replace a partially rendered reply with an ERR line.
  void truncate(std::size_t n) { bytes_.resize(n); }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  void append(std::string_view s) { bytes_.append(s); }
  void append(char c) { bytes_.push_back(c); }
  /// Appends printf-rendered text (grows past 256 rendered bytes instead
  /// of truncating). Byte-identical to format_line-based encoders.
  void append_format(const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));
  void append_u64(std::uint64_t v);
  void append_i32(std::int32_t v);
  void append_u32(std::uint32_t v);
  /// Appends `v` exactly as printf "%.17g" would render it (std::to_chars
  /// with general format, precision 17 -- specified to match printf), so
  /// replies stay byte-identical to the historical snprintf encoders.
  void append_double17(double v);

  /// The underlying byte store, for encoders that interoperate with
  /// std::string& appenders (obs::append_value). Appending through it is
  /// equivalent to append().
  std::string& storage() noexcept { return bytes_; }

 private:
  friend class coordinator_server;

  std::string bytes_;
  // coordinator_server's per-request decode scratch, reused across
  // requests so REPORTB/QUERYB frames and REPORT groups decode without
  // per-frame vector allocations (element strings stay in SSO).
  std::vector<trace::measurement_record> records_scratch_;
  std::vector<query_request> queries_scratch_;
  std::vector<std::uint8_t> group_status_;
  std::vector<std::string> group_errors_;
  std::vector<epoch_update> epochs_scratch_;
};

// ---- codec ----------------------------------------------------------------
// encode() never fails; decode_*() throws std::invalid_argument naming the
// offending field. All codec functions are pure and thread-safe.

// The encode_into / decode_*_into flavours are the zero-allocation forms:
// they append to (or fill) caller-owned storage whose capacity survives
// across calls, and are byte-identical to their std::string counterparts
// (which are now thin wrappers). The hot server reply path uses only these.

/// Encodes a check-in as one "CHECKIN k=v ..." line.
std::string encode(const checkin_request& m);
/// Encodes a task as one "TASK k=v ..." line.
std::string encode(const task_assignment& m);
/// Appends the "TASK k=v ..." line to `out` (no trailing newline).
void encode_into(const task_assignment& m, reply_buffer& out);
/// Encodes a report as one "REPORT client=<id> csv=<record>" line.
std::string encode(const measurement_report& m);

/// Encodes a batch of records as one "REPORTB <n>" frame: a header line
/// followed by n CSV record payload lines ('\n'-separated, no trailing
/// newline). Each record carries its own client_id in the CSV schema, so no
/// per-record framing is needed.
std::string encode_report_batch(std::span<const trace::measurement_record> recs);

/// Encodes a version negotiation as one "HELLO ver=<n>" line.
std::string encode(const hello_request& m);
/// Encodes the negotiation answer as one "HELLO ver=<n> min=<n>" line.
std::string encode(const hello_reply& m);
/// Appends the "HELLO ver=<n> min=<n>" reply line to `out`.
void encode_into(const hello_reply& m, reply_buffer& out);

/// Encodes a lookup as one "QUERY k=v ..." line (t omitted when < 0).
std::string encode(const query_request& m);
/// Encodes a served estimate as one "EST k=v ..." line. mean/stddev are
/// rendered with round-trip precision (%.17g): what the client decodes is
/// bit-for-bit what the view served.
std::string encode(const estimate_reply& m);
/// Appends the "EST k=v ..." line to `out`: the zero-allocation form every
/// QUERY/QUERYB reply is rendered through (doubles via append_double17, so
/// the %.17g round-trip guarantee holds byte-for-byte).
void encode_into(const estimate_reply& m, reply_buffer& out);
/// The QUERY reply when the stream has no published estimate yet.
std::string encode_none();

/// Encodes a batch of lookups as one "QUERYB <n>" frame: a header line
/// followed by n QUERY payload lines (the k=v fields without the QUERY
/// tag), '\n'-separated, no trailing newline.
std::string encode_query_batch(std::span<const query_request> qs);
/// Encodes the QUERYB answer as one "ESTB <n>" frame: n lines, each a full
/// "EST k=v ..." line or "NONE", positionally matching the request.
std::string encode_estimate_batch(
    std::span<const std::optional<estimate_reply>> replies);

/// Encodes an alert drain request as one "ALERTS since=<n> max=<n>" line.
std::string encode(const alerts_request& m);
/// Encodes the drain answer as one "ALERTS <n> next=<seq> dropped=<d>"
/// frame: header + n "ALERT k=v ..." lines, oldest first.
std::string encode(const alerts_reply& m);
/// Appends the ALERTS reply frame to `out`.
void encode_into(const alerts_reply& m, reply_buffer& out);

/// The coordinator's answer to a check-in when no task is issued.
std::string encode_idle();

/// The server's reply to a malformed or rejected request:
/// "ERR <code> <detail>". The detail is clipped to 120 bytes.
std::string encode_error(err_code code, std::string_view detail);
/// Appends the "ERR <code> <detail>" line to `out` (detail clipped to 120
/// bytes, same as encode_error) without heap traffic.
void encode_error_into(err_code code, std::string_view detail,
                       reply_buffer& out);

/// Clips `s` for inclusion in an error reason: at most `max_len` bytes plus
/// an ellipsis, so a multi-megabyte garbage line is never echoed verbatim.
std::string error_excerpt(std::string_view s, std::size_t max_len = 120);

/// How many payload lines follow a reply's first line on a stream
/// transport. Single-line replies (TASK, IDLE, ACK, EST, NONE, HELLO, ERR)
/// answer 0; the self-describing multi-line frames answer their header
/// count: "ESTB <n>" and "STATS <n>" -> n, "ALERTS <n> next=..." -> n.
/// A malformed or hostile header answers 0 (the caller's read loop then
/// resynchronises on the next reply; counts are clamped to the frame caps
/// above). Pure, zero-allocation: blocking clients use this to know when a
/// reply is complete without protocol-specific read loops.
std::size_t reply_extra_lines(std::string_view header_line) noexcept;

/// The message type tag at the start of a line ("CHECKIN", "TASK", "REPORT",
/// "REPORTB", "IDLE", "ACK", "ERR", "STATS", "QUERY", "QUERYB", "EST",
/// "ESTB", "NONE", "ALERTS", "ALERT", "HELLO"); empty for a malformed line.
/// The returned view aliases a static literal, never the input.
std::string_view message_type(std::string_view line);

/// Parses a CHECKIN line. Throws std::invalid_argument on any missing,
/// duplicate or malformed field (unknown keys are ignored).
checkin_request decode_checkin(std::string_view line);
/// Parses a TASK line. Throws std::invalid_argument on any missing,
/// duplicate or malformed field (unknown keys are ignored).
task_assignment decode_task(std::string_view line);
/// Parses a REPORT line. Throws std::invalid_argument on any missing or
/// malformed field (including the embedded CSV record).
measurement_report decode_report(std::string_view line);
/// Parses a REPORTB frame into its records. All-or-nothing: throws
/// std::invalid_argument when the header is malformed, the count disagrees
/// with the payload lines, the count exceeds max_report_batch, or any
/// payload line fails to decode.
std::vector<trace::measurement_record> decode_report_batch(
    std::string_view frame);
/// decode_report_batch into caller-owned storage: `out` is cleared and
/// refilled, reusing its capacity across frames (the zero-allocation
/// steady-state form; record names stay in SSO). Payload lines tolerate a
/// trailing '\r' (telnet-framed batches), same as single-line requests.
void decode_report_batch_into(std::string_view frame,
                              std::vector<trace::measurement_record>& out);

/// Parses a "HELLO ver=<n>" request. Throws std::invalid_argument on a
/// missing/duplicate/malformed ver field.
hello_request decode_hello(std::string_view line);
/// Parses a "HELLO ver=<n> min=<n>" reply.
hello_reply decode_hello_reply(std::string_view line);

/// Parses a QUERY line. Throws std::invalid_argument on any missing,
/// duplicate or malformed field (t is optional; unknown keys are ignored).
query_request decode_query(std::string_view line);
/// Parses an EST reply line.
estimate_reply decode_estimate(std::string_view line);

/// Parses a QUERYB frame. All-or-nothing, same discipline as
/// decode_report_batch: throws when the header is malformed, the count
/// disagrees with the payload lines or exceeds max_query_batch, or any
/// payload line fails to decode.
std::vector<query_request> decode_query_batch(std::string_view frame);
/// decode_query_batch into caller-owned storage (cleared and refilled,
/// capacity reused): the zero-allocation steady-state form.
void decode_query_batch_into(std::string_view frame,
                             std::vector<query_request>& out);
/// Parses an ESTB reply frame into per-request results (nullopt for NONE
/// lines). All-or-nothing, same error discipline as decode_query_batch.
std::vector<std::optional<estimate_reply>> decode_estimate_batch(
    std::string_view frame);

/// Parses an "ALERTS since=<n> [max=<n>]" request.
alerts_request decode_alerts_request(std::string_view line);
/// Parses an "ALERTS <n> next=.. dropped=.." reply frame (header + n ALERT
/// lines). All-or-nothing.
alerts_reply decode_alerts_reply(std::string_view frame);

}  // namespace wiscape::proto

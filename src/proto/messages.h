// Wire messages between client user agents and the measurement coordinator
// (paper Sec 3.4: "a simple user agent in each client device ... a
// measurement coordinator, deployed by the operator or by third-party
// users, will manage the entire measurement process").
//
// The format is a single text line per message -- `TYPE k=v k=v ...` --
// chosen for the same reasons as the CSV trace format: transport-agnostic,
// greppable, and trivially replaceable by real field software. Encoding
// never fails (oversized fields grow the output, never truncate it);
// decoding throws std::invalid_argument with a reason.
//
// Decoding is a zero-allocation fast path: lines are walked as
// std::string_view tokens and numbers parsed with std::from_chars -- no
// istringstream, no key/value map, no locale, no heap traffic on the happy
// path (only the std::string members of the decoded structs may allocate,
// and short names stay in SSO). Error reasons (the cold path) allocate and
// echo at most a clipped excerpt of the offending input.
//
// Request types: CHECKIN (task request), REPORT (completed measurement),
// REPORTB (batched reports -- the one multi-line request: "REPORTB <n>"
// followed by n CSV record payload lines), STATS (operational metrics
// dump). Reply types: TASK, IDLE, ACK, ERR, and the STATS reply
// (`STATS <n>` followed by n `name value` lines; see
// coordinator_server::handle). All functions here are stateless and
// thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/lat_lon.h"
#include "trace/record.h"

namespace wiscape::proto {

/// Client -> coordinator: periodic zone report / task request.
struct checkin_request {
  std::uint64_t client_id = 0;       ///< 0 = anonymous (never budget-capped)
  geo::lat_lon pos;                  ///< client position (degrees)
  double time_s = 0.0;               ///< client clock, seconds since epoch 0
  std::uint32_t network_index = 0;   ///< operator the client can probe
  std::uint32_t active_in_zone = 1;  ///< peers the client estimates nearby
  std::string device = "laptop";     ///< device category (probe profiles)
};

/// Coordinator -> client: a measurement instruction (absent = stay idle).
struct task_assignment {
  trace::probe_kind kind = trace::probe_kind::udp_burst;
  std::uint32_t network_index = 0;
  /// Probe sizing knobs; 0 = client default.
  std::uint64_t tcp_bytes = 0;
  std::uint32_t udp_packets = 0;
  std::uint32_t ping_count = 0;
};

/// Client -> coordinator: a completed measurement.
struct measurement_report {
  std::uint64_t client_id = 0;      ///< reporting device (0 = anonymous)
  trace::measurement_record record; ///< the full Table 1 record (CSV payload)
};

/// Hard cap on the record count of one REPORTB frame; larger counts are
/// rejected before any payload is decoded (a hostile header cannot force a
/// huge allocation).
inline constexpr std::size_t max_report_batch = 65536;

// ---- codec ----------------------------------------------------------------
// encode() never fails; decode_*() throws std::invalid_argument naming the
// offending field. All codec functions are pure and thread-safe.

/// Encodes a check-in as one "CHECKIN k=v ..." line.
std::string encode(const checkin_request& m);
/// Encodes a task as one "TASK k=v ..." line.
std::string encode(const task_assignment& m);
/// Encodes a report as one "REPORT client=<id> csv=<record>" line.
std::string encode(const measurement_report& m);

/// Encodes a batch of records as one "REPORTB <n>" frame: a header line
/// followed by n CSV record payload lines ('\n'-separated, no trailing
/// newline). Each record carries its own client_id in the CSV schema, so no
/// per-record framing is needed.
std::string encode_report_batch(std::span<const trace::measurement_record> recs);

/// The coordinator's answer to a check-in when no task is issued.
std::string encode_idle();

/// The server's reply to a malformed or rejected request: "ERR <reason>".
std::string encode_error(const std::string& reason);

/// Clips `s` for inclusion in an error reason: at most `max_len` bytes plus
/// an ellipsis, so a multi-megabyte garbage line is never echoed verbatim.
std::string error_excerpt(std::string_view s, std::size_t max_len = 120);

/// The message type tag at the start of a line ("CHECKIN", "TASK", "REPORT",
/// "REPORTB", "IDLE", "ACK", "ERR", "STATS"); empty for a malformed line.
/// The returned view aliases a static literal, never the input.
std::string_view message_type(std::string_view line);

/// Parses a CHECKIN line. Throws std::invalid_argument on any missing,
/// duplicate or malformed field (unknown keys are ignored).
checkin_request decode_checkin(std::string_view line);
/// Parses a TASK line. Throws std::invalid_argument on any missing,
/// duplicate or malformed field (unknown keys are ignored).
task_assignment decode_task(std::string_view line);
/// Parses a REPORT line. Throws std::invalid_argument on any missing or
/// malformed field (including the embedded CSV record).
measurement_report decode_report(std::string_view line);
/// Parses a REPORTB frame into its records. All-or-nothing: throws
/// std::invalid_argument when the header is malformed, the count disagrees
/// with the payload lines, the count exceeds max_report_batch, or any
/// payload line fails to decode.
std::vector<trace::measurement_record> decode_report_batch(
    std::string_view frame);

}  // namespace wiscape::proto

// Wire protocol v3: length-prefixed binary frames for the hot commands.
//
// v2's text lines cost exactly what PR 8 left on the table: %.17g floats
// rendered and re-parsed on every exchange, from_chars per field, and a
// CRLF scan over every byte received. v3 removes all three for the
// commands that dominate traffic -- REPORT/REPORTB on the write side,
// QUERY/QUERYB on the read side, and their ACK/EST/ESTB/ERR replies --
// by shipping them as binary frames:
//
//   +--------+--------+----------------+=================+
//   | 0xB3   | opcode | payload length |  payload bytes  |
//   | 1 byte | u8     | u32 LE         |  (length bytes) |
//   +--------+--------+----------------+=================+
//
// All integers are little-endian fixed width; doubles travel as their raw
// IEEE-754 bit pattern (u64 LE), so a REPORT -> EST round trip is bit-exact
// by construction -- no decimal rendering is involved anywhere. Strings are
// u16 length + bytes. The magic byte 0xB3 is outside ASCII and every text
// command starts with an uppercase letter, so the first byte of a request
// decides its framing unambiguously: binary and text frames interleave
// freely on one negotiated-v3 session, and the control commands
// (CHECKIN/HELLO/STATS/ALERTS) stay text-only -- text remains the fallback
// at any time.
//
// Negotiation rides the existing HELLO state machine (docs/WIRE_PROTOCOL.md
// section 8): the server advertises wire_version (3), wire_min_version
// stays 1, and a TCP session may send binary frames only after negotiating
// ver >= 3 (permissive transports and the in-process handler accept them
// unconditionally, mirroring "handle() accepts any command").
//
// Same codec discipline as the text one: encoding never fails, decoding
// throws std::invalid_argument naming the offending field, counts are
// validated against the protocol caps *and* against the actual payload size
// before any allocation -- a hostile header can never force a large
// reserve. All functions are stateless and thread-safe.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "proto/messages.h"
#include "trace/record.h"

namespace wiscape::proto::v3 {

/// First byte of every binary frame. Outside ASCII (text commands start
/// with 'A'..'Z'), so framing is decided by one byte peek.
inline constexpr unsigned char frame_magic = 0xB3;

/// Fixed frame header size: magic + opcode + u32 payload length.
inline constexpr std::size_t frame_header_bytes = 6;

/// The binary commands and replies. Append-only wire surface, like
/// err_code: the value is the opcode byte on the wire, and every
/// enumerator has a row in docs/WIRE_PROTOCOL.md's opcode table
/// (tools/check_docs.sh gates that).
enum class opcode : std::uint8_t {
  report = 1,   ///< request: one measurement record -> ack
  reportb = 2,  ///< request: batched records -> ack (all-or-nothing)
  query = 3,    ///< request: one estimate lookup -> est
  queryb = 4,   ///< request: batched lookups -> estb (positional)
  ack = 5,      ///< reply: report accepted (batch form carries the count)
  est = 6,      ///< reply: one estimate, or none (presence flag 0)
  estb = 7,     ///< reply: batched estimates, positional with the queryb
  err = 8,      ///< reply: typed error (err_code byte + clipped detail)
  // Replication opcodes (ISSUE 10). Negotiation is unchanged: they are v3
  // frames, gated by the same HELLO ver >= 3 rule as every other frame.
  epoch = 9,    ///< request: pull epoch records after a sequence -> epochb
  epochb = 10,  ///< reply to epoch; ALSO a request on a follower (apply
                ///< the batch -> ack) -- the leader->follower stream and
                ///< the follower's catch-up pull share one encoding
  snapshot_req = 11,   ///< request: snapshot bytes from an offset -> chunk
  snapshot_chunk = 12, ///< reply: one bounded slice of the snapshot
  promote = 13, ///< request: assume leadership (follower -> leader) -> ack
};

/// True when `op` is a defined opcode byte.
constexpr bool opcode_valid(std::uint8_t op) noexcept {
  return op >= static_cast<std::uint8_t>(opcode::report) &&
         op <= static_cast<std::uint8_t>(opcode::promote);
}

/// Stable lower_snake_case opcode name ("report", "estb", ...), for logs
/// and error details.
const char* opcode_name(opcode op) noexcept;

/// A parsed frame header.
struct frame_header {
  opcode op = opcode::err;
  std::uint32_t payload_len = 0;
};

/// True when `data` (>= 1 byte) opens a binary frame.
inline bool is_frame_start(std::string_view data) noexcept {
  return !data.empty() &&
         static_cast<unsigned char>(data.front()) == frame_magic;
}

/// Parses the 6-byte header at the front of `data`. nullopt when there are
/// fewer than frame_header_bytes available, the magic byte is wrong, or the
/// opcode is undefined -- the caller decides whether that means "wait for
/// more bytes" or "hostile frame". Never reads past the header: the
/// declared payload length is returned unvalidated, so callers can refuse
/// oversized declarations before buffering (let alone allocating) anything.
std::optional<frame_header> peek_header(std::string_view data) noexcept;

/// Decoded ACK reply.
struct ack_frame {
  bool batched = false;     ///< true: answered a reportb (count meaningful)
  std::uint64_t count = 0;  ///< records accepted (batch form)
};

/// Decoded ERR reply.
struct error_frame {
  err_code code = err_code::internal;
  std::string detail;
};

// ---- replication frames (ISSUE 10) ----------------------------------------

/// Most epoch records a single EPOCHB frame may carry (mirrors
/// max_report_batch's role: bounds the decode-side reserve).
inline constexpr std::size_t max_epoch_batch = 4096;

/// Largest snapshot slice a SNAPSHOT_CHUNK ships; small enough to stay
/// well under any session read-buffer cap while catch-up streams it.
inline constexpr std::size_t max_snapshot_chunk = 16 * 1024;

// The epoch_update element an EPOCHB frame carries is a shared proto type
// (proto/messages.h, next to estimate_reply): reply_buffer stages decode
// scratch of it, so it must be complete where reply_buffer is.

/// Decoded EPOCH pull request: "send records with seq > since_seq, at most
/// max_records of them".
struct epoch_pull {
  std::uint64_t since_seq = 0;
  std::uint32_t max_records = 0;  ///< clipped to max_epoch_batch by servers
};

/// Decoded SNAPSHOT_CHUNK reply. `data` views into the decoded frame.
struct snapshot_chunk {
  std::uint64_t offset = 0;  ///< byte offset of this slice in the snapshot
  std::uint64_t total = 0;   ///< full snapshot size, for progress/validation
  bool last = false;         ///< true on the final slice
  std::string_view data;
};

// ---- encoders -------------------------------------------------------------
// Each appends one complete frame (header + payload) to `out`. Like the
// text encode_*_into family, these are the zero-allocation forms: a warmed
// reply_buffer takes a frame with no heap traffic. Strings longer than
// 65535 bytes are clipped (u16 length prefix); every field the protocol
// round-trips stays well under that.

void encode_report_frame(const measurement_report& m, reply_buffer& out);
void encode_report_batch_frame(std::span<const trace::measurement_record> recs,
                               reply_buffer& out);
void encode_query_frame(const query_request& q, reply_buffer& out);
void encode_query_batch_frame(std::span<const query_request> qs,
                              reply_buffer& out);
/// Single-report ACK (batched=false, no count).
void encode_ack_frame(reply_buffer& out);
/// Batch ACK carrying the accepted-record count.
void encode_ack_frame(std::uint64_t count, reply_buffer& out);
/// EST reply; nullopt encodes the "no estimate published" answer (text
/// NONE) as a presence flag of 0.
void encode_estimate_frame(const std::optional<estimate_reply>& rep,
                           reply_buffer& out);
void encode_estimate_batch_frame(
    std::span<const std::optional<estimate_reply>> reps, reply_buffer& out);

/// Incremental ESTB encoder for the server's zero-allocation reply path:
/// open with the element count, add() each estimate as its lookup resolves
/// (exactly `count` times), finish() to patch the frame length. The text
/// path streams its ESTB lines the same way; this is the binary twin, so
/// QUERYB replies never stage a std::vector of estimates.
class estimate_batch_builder {
 public:
  estimate_batch_builder(std::uint32_t count, reply_buffer& out);
  void add(const std::optional<estimate_reply>& rep);
  void finish();

 private:
  reply_buffer* out_;
  std::size_t at_;
};
/// ERR reply; the detail is clipped exactly like the text encoder
/// (error_excerpt's 120-byte cap).
void encode_error_frame(err_code code, std::string_view detail,
                        reply_buffer& out);

/// EPOCH pull request.
void encode_epoch_pull_frame(const epoch_pull& p, reply_buffer& out);
/// EPOCHB batch of epoch records (reply to a pull, or a follower-apply
/// request; same bytes either way).
void encode_epoch_batch_frame(std::span<const epoch_update> updates,
                              reply_buffer& out);
/// SNAPSHOT_REQ for the slice starting at `offset`.
void encode_snapshot_req_frame(std::uint64_t offset, reply_buffer& out);
/// SNAPSHOT_CHUNK reply (data.size() <= max_snapshot_chunk enforced by the
/// server; the codec clips nothing).
void encode_snapshot_chunk_frame(std::uint64_t offset, std::uint64_t total,
                                 bool last, std::string_view data,
                                 reply_buffer& out);
/// PROMOTE request (empty payload).
void encode_promote_frame(reply_buffer& out);

/// std::string-returning conveniences for clients and tests (thin wrappers
/// over the _into forms, like the text codec's encode() family).
std::string encode_report_frame(const measurement_report& m);
std::string encode_report_batch_frame(
    std::span<const trace::measurement_record> recs);
std::string encode_query_frame(const query_request& q);
std::string encode_query_batch_frame(std::span<const query_request> qs);
std::string encode_epoch_pull_frame(const epoch_pull& p);
std::string encode_epoch_batch_frame(std::span<const epoch_update> updates);
std::string encode_snapshot_req_frame(std::uint64_t offset);
std::string encode_promote_frame();

// ---- decoders -------------------------------------------------------------
// `frame` is one complete frame, header included; the header's declared
// length must equal the bytes present. All-or-nothing with the same error
// discipline as the text decoders: std::invalid_argument names the
// offending field, batch counts are checked against the protocol caps and
// against the payload size (>= the minimum encoding per element) before
// any reserve.

measurement_report decode_report_frame(std::string_view frame);
void decode_report_batch_frame_into(std::string_view frame,
                                    std::vector<trace::measurement_record>& out);
std::vector<trace::measurement_record> decode_report_batch_frame(
    std::string_view frame);
query_request decode_query_frame(std::string_view frame);
void decode_query_batch_frame_into(std::string_view frame,
                                   std::vector<query_request>& out);
std::vector<query_request> decode_query_batch_frame(std::string_view frame);
ack_frame decode_ack_frame(std::string_view frame);
std::optional<estimate_reply> decode_estimate_frame(std::string_view frame);
std::vector<std::optional<estimate_reply>> decode_estimate_batch_frame(
    std::string_view frame);
error_frame decode_error_frame(std::string_view frame);
epoch_pull decode_epoch_pull_frame(std::string_view frame);
void decode_epoch_batch_frame_into(std::string_view frame,
                                   std::vector<epoch_update>& out);
std::vector<epoch_update> decode_epoch_batch_frame(std::string_view frame);
std::uint64_t decode_snapshot_req_frame(std::string_view frame);
/// The returned chunk's `data` views into `frame`; copy before the frame's
/// backing bytes are reused.
snapshot_chunk decode_snapshot_chunk_frame(std::string_view frame);
/// Validates the empty-payload PROMOTE request.
void decode_promote_frame(std::string_view frame);

}  // namespace wiscape::proto::v3

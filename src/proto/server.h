// A transport-agnostic coordinator server and its client-side counterparts.
//
// coordinator_server turns the in-process core::coordinator into a
// protocol service: hand it any request -- a protocol v2 text line or a
// v3 binary frame, wrapped in a request_view (from a socket, a message
// queue, a file of replayed traffic -- the transport is the caller's
// business) -- and it answers: CHECKIN/REPORT/REPORTB on the write side,
// QUERY/QUERYB/ALERTS/HELLO on the read side (served through
// core::estimate_view, so queries never take a shard lock in concurrent
// mode), and the v3 replication opcodes when a replication_endpoint is
// attached (ISSUE 10). remote_agent is the write-side client shim (check-in / execute /
// report cycle); remote_query_client is the read-side one (negotiate,
// look up estimates, drain alerts) -- both against any `send` function.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/coordinator.h"
#include "core/estimate_view.h"
#include "core/sharded_coordinator.h"
#include "probe/engine.h"
#include "proto/messages.h"

namespace wiscape::proto {

/// Renders the process-wide obs:: metrics registry as the STATS wire reply:
/// "STATS <n>" followed by n lines of "name value", sorted by name. Also
/// usable directly by tools that want the dump without a server.
/// Thread-safe.
std::string encode_stats();
/// encode_stats appended to a caller-owned reply_buffer (the form the
/// server serves STATS through). Thread-safe.
void encode_stats_into(reply_buffer& out);

/// A borrowed request plus its framing tag: the one argument shape every
/// request enters coordinator_server::handle() with, whether it arrived as
/// a protocol v2 text line or a v3 binary frame (ISSUE 10's unified entry
/// point). Construct with text()/binary() when the transport already knows
/// the framing (the TCP session's dual framer does), or detect() to apply
/// the one-byte classification rule: 0xB3 (the v3 frame magic) is outside
/// ASCII and every text command starts with an uppercase letter, so the
/// first byte decides unambiguously. Borrows the bytes; nothing is
/// retained after handle() returns.
class request_view {
 public:
  enum class kind : std::uint8_t {
    text,    ///< one protocol v2 line (no trailing newline)
    binary,  ///< one complete v3 frame, header included
  };

  /// Wraps a text line the transport has already classified.
  static constexpr request_view text(std::string_view line) noexcept {
    return {kind::text, line};
  }
  /// Wraps a complete binary frame the transport has already classified.
  static constexpr request_view binary(std::string_view frame) noexcept {
    return {kind::binary, frame};
  }
  /// Classifies by the first byte (the rule handle_into applied inline):
  /// frame magic -> binary, anything else (including empty) -> text.
  static request_view detect(std::string_view data) noexcept;

  kind framing() const noexcept { return kind_; }
  std::string_view bytes() const noexcept { return bytes_; }

 private:
  constexpr request_view(kind k, std::string_view b) noexcept
      : kind_(k), bytes_(b) {}

  kind kind_;
  std::string_view bytes_;
};

/// The replication surface a coordinator_server dispatches the v3
/// replication opcodes against (ISSUE 10). Implemented by src/repl's
/// leader/follower roles; declared here because the server owns all wire
/// encode/decode -- implementations exchange typed records only and never
/// see frame bytes, so proto does not depend on repl. All methods must be
/// as thread-safe as the server mode demands (concurrent mode dispatches
/// from many transport threads).
class replication_endpoint {
 public:
  virtual ~replication_endpoint() = default;

  /// Serves an EPOCH pull: appends up to `max_records` log records with
  /// sequence > `since_seq`, in sequence order, to `out` (not cleared).
  /// Returns false when since_seq has fallen below the log's retained base
  /// -- the puller is too far behind and must snapshot-catch-up instead
  /// (the server answers ERR stopped naming that).
  virtual bool pull(std::uint64_t since_seq, std::uint32_t max_records,
                    std::vector<epoch_update>& out) = 0;

  /// Serves one snapshot slice for SNAPSHOT_REQ: fills `data` with at most
  /// v3::max_snapshot_chunk bytes starting at `offset`, sets `total` to
  /// the full snapshot size and `last` when this slice ends it. Offset 0
  /// captures a fresh snapshot; later offsets read the captured bytes, so
  /// a chunk sequence is self-consistent. Returns false when `offset` is
  /// beyond the snapshot (answered as ERR parse).
  virtual bool snapshot(std::uint64_t offset, std::string& data,
                        std::uint64_t& total, bool& last) = 0;

  /// Applies a replicated batch (an EPOCHB frame arriving as a request on
  /// a follower). Returns the number of records applied -- duplicates the
  /// follower has already seen are skipped and not counted.
  virtual std::uint64_t apply(std::span<const epoch_update> updates) = 0;

  /// PROMOTE: assume leadership. Returns false when refused (already the
  /// leader, or this endpoint cannot lead).
  virtual bool promote() = 0;
};

/// Construction-time server tuning. Immutable after construction by
/// design: a torn mid-serving change to any of these can never be
/// observed by a concurrent session (the mutable set_advertised_version()
/// knob this replaces was exactly that hazard).
struct server_options {
  /// The highest version HELLO negotiation offers. Lowering it below
  /// wire_version makes the server answer `HELLO ver=<n>` like an older
  /// build -- the version-interop tests run a v3 client against a v2-max
  /// server this way. Must be within [wire_min_version, wire_version].
  std::uint32_t advertised_version = wire_version;
};

/// Serves a coordinator over the line protocol.
///
/// Two modes share one request surface:
///  * sequential -- wraps a core::coordinator; handle() must be called from
///    one thread at a time, exactly as before.
///  * concurrent -- wraps a core::sharded_coordinator; handle() is safe to
///    call from many transport threads at once. CHECKINs are answered
///    synchronously by the owning shard, REPORTs are enqueued into the
///    sharded ingestion pipeline (ACK means accepted, not yet applied;
///    flush the sharded coordinator before reading its tables).
class coordinator_server {
 public:
  /// Borrows the coordinator; it must outlive the server.
  explicit coordinator_server(core::coordinator& coord,
                              const server_options& opts = {})
      : coord_(&coord), view_(coord), opts_(opts) {}

  /// Concurrent mode over a sharded coordinator (it must outlive the
  /// server).
  explicit coordinator_server(core::sharded_coordinator& coord,
                              const server_options& opts = {})
      : sharded_(&coord), view_(coord), opts_(opts) {}

  /// THE request entry point: handles one request -- text line or binary
  /// frame, per the view's framing tag -- and appends the reply to `out`
  /// (text replies carry no trailing newline; binary requests are answered
  /// with one complete binary frame). Every transport and the replication
  /// stream dispatch through this one method; handle(line) and
  /// handle_into() below are thin wrappers over it.
  ///
  /// A caller that reuses one reply_buffer per connection (clear() between
  /// requests) pays zero heap allocations per request in steady state:
  /// replies are rendered with to_chars-based appends, and batch frames
  /// (REPORTB/QUERYB/EPOCHB in either framing) decode into the buffer's
  /// scratch vectors, whose capacity survives across requests.
  /// Thread-safety follows the mode -- any number of threads in concurrent
  /// mode (each with its own reply_buffer), one at a time in sequential
  /// mode.
  ///
  /// Text commands (normative spec: docs/WIRE_PROTOCOL.md):
  ///   CHECKIN   -> TASK ... | IDLE
  ///   REPORT    -> ACK
  ///   REPORTB   -> "ACK <n>" ("REPORTB <n>" header + n CSV record lines,
  ///                decoded and ingested as one batch -- all-or-nothing, a
  ///                single bad record ERRs the whole frame and nothing is
  ///                ingested)
  ///   QUERY     -> EST ... | NONE (estimate lookup via core::estimate_view;
  ///                lock-free against ingestion in concurrent mode)
  ///   QUERYB    -> "ESTB <n>" + n EST/NONE lines (batched lookups, same
  ///                all-or-nothing frame discipline as REPORTB)
  ///   ALERTS    -> "ALERTS <n> next=.. dropped=.." + n ALERT lines
  ///                (incremental >2-sigma change-alert drain by cursor)
  ///   HELLO     -> "HELLO ver=<negotiated> min=<min>" (version
  ///                negotiation; versions below min ERR with code version)
  ///   STATS     -> "STATS <n>" + n lines "name value" (a flat dump of the
  ///                process-wide obs:: registry; names are sanitised so a
  ///                hostile registration cannot corrupt line framing)
  ///   malformed -> "ERR <code> <detail>" (stable code token -- see
  ///                err_code; long inputs echoed clipped, never verbatim)
  ///
  /// Binary requests dispatch on their v3 opcode (proto/wire_v3.h) and are
  /// answered with a binary reply frame -- ack/est/estb on success, err on
  /// failure. Like text commands, the in-process handler accepts binary
  /// frames unconditionally; only the TCP session gates them on the
  /// negotiated version. Binary REPORTB decode skips number parsing
  /// entirely and the reply path writes raw IEEE-754 bits, so v3 exchanges
  /// keep the same zero-allocation steady state with a fraction of the
  /// per-record cost. The replication opcodes (EPOCH pull, EPOCHB apply,
  /// SNAPSHOT_REQ, PROMOTE) require an attached replication endpoint and
  /// answer ERR unsupported ("replication not attached") without one.
  ///
  /// The request is read as a borrowed view; nothing is retained after
  /// return. Every request is counted into the obs:: metrics registry
  /// (proto.server.*), including per-command latency histograms. In
  /// concurrent mode an ACKed report is applied asynchronously: flush the
  /// sharded coordinator before expecting a QUERY to serve it.
  void handle(request_view req, reply_buffer& out);

  /// Deprecated spelling: handle() with the framing auto-detected and the
  /// reply returned as a freshly allocated string. Byte-identical to the
  /// unified entry point; kept for callers and tests that predate it.
  std::string handle(std::string_view line);

  /// Deprecated spelling: handle(request_view::detect(line), out). Kept
  /// for callers that predate the unified entry point; new code should
  /// tag the framing at the transport and call handle() directly.
  void handle_into(std::string_view line, reply_buffer& out);

  /// Transport micro-batch: answers `count` consecutive single-line REPORT
  /// requests -- `block`, their concatenated '\n'-terminated lines -- in one
  /// call, appending one reply per line to `out` *including* the '\n'
  /// terminator after each (replies stay positional with the lines).
  ///
  /// Semantics are line-for-line identical to count handle_into() calls
  /// ("ACK", "ERR parse ...", "ERR internal injected fault..." or
  /// "ERR stopped ..." in the same positions, same counter increments, and
  /// the server_handle fault seam fires once per line), except that every
  /// record that decodes is submitted through one report_batch() call --
  /// one queue lock and one counter delta per group instead of one per
  /// line. The event loop uses this to coalesce REPORT runs drained in one
  /// epoll wake; a stopped pipeline answers ERR stopped on every decoded
  /// line of the group, mirroring REPORTB's all-or-nothing discipline.
  /// Lines may carry a trailing '\r' (stripped, like single requests).
  void handle_report_group(std::string_view block, std::size_t count,
                           reply_buffer& out);

  /// True when serving a sharded coordinator (handle() is thread-safe).
  bool concurrent() const noexcept { return sharded_ != nullptr; }

  /// Attaches the replication surface the v3 replication opcodes dispatch
  /// against (nullptr detaches; the default). Borrowed -- the endpoint
  /// must outlive the server. Attach before serving traffic: like
  /// construction, this is not synchronized against in-flight handlers.
  void attach_replication(replication_endpoint* repl) noexcept {
    repl_ = repl;
  }
  replication_endpoint* replication() const noexcept { return repl_; }

  /// The highest version HELLO negotiation offers (a construction-time
  /// option -- see server_options::advertised_version).
  std::uint32_t advertised_version() const noexcept {
    return opts_.advertised_version;
  }

  /// REPORT lines accepted (ACKed) since construction.
  std::uint64_t reports_received() const noexcept {
    return reports_.load(std::memory_order_relaxed);
  }
  /// CHECKIN lines answered with a TASK since construction.
  std::uint64_t tasks_issued() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }
  /// Malformed or rejected request lines answered with ERR.
  std::uint64_t errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  std::optional<estimate_reply> lookup_one(const query_request& q) const;
  /// handle()'s text half: dispatches one protocol v2 line.
  void handle_text_into(std::string_view line, reply_buffer& out);
  /// handle()'s binary half: dispatches one complete v3 frame on its
  /// opcode and appends the binary reply frame.
  void handle_frame_into(std::string_view frame, reply_buffer& out);

  core::coordinator* coord_ = nullptr;
  core::sharded_coordinator* sharded_ = nullptr;
  core::estimate_view view_;
  server_options opts_;
  replication_endpoint* repl_ = nullptr;
  std::atomic<std::uint64_t> reports_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Client-side agent speaking the line protocol through a caller-supplied
/// transport (`send` delivers a request line and returns the response line).
class remote_agent {
 public:
  /// Delivers one request line, returns the response line. The agent is as
  /// thread-safe as this function plus the probe engine (in practice:
  /// confine one agent to one thread).
  using transport = std::function<std::string(const std::string&)>;

  remote_agent(probe::probe_engine& engine, transport send,
               std::uint64_t client_id,
               probe::device_profile device = probe::laptop_device())
      : engine_(&engine),
        send_(std::move(send)),
        client_id_(client_id),
        device_(std::move(device)) {}

  /// One opportunistic cycle: check in, execute any assigned task, report.
  /// Returns the record when a probe ran.
  std::optional<trace::measurement_record> step(
      const mobility::gps_fix& fix, std::uint32_t network_index,
      std::uint32_t active_in_zone = 4);

 private:
  probe::probe_engine* engine_;
  transport send_;
  std::uint64_t client_id_;
  probe::device_profile device_;
};

/// Client-side query shim speaking the read half of protocol v2 through a
/// caller-supplied transport. Holds no state beyond the transport; as
/// thread-safe as `send` is.
class remote_query_client {
 public:
  /// Delivers one request (possibly multi-line) and returns the reply.
  using transport = std::function<std::string(const std::string&)>;

  explicit remote_query_client(transport send) : send_(std::move(send)) {}

  /// HELLO handshake: offers `version` (default: ours) and returns the
  /// server's negotiated reply. Throws std::runtime_error when the server
  /// rejects the version (ERR version) or replies with anything unexpected.
  hello_reply hello(std::uint32_t version = wire_version);

  /// One estimate lookup; nullopt when the server answered NONE (stream
  /// unknown or no epoch published yet). Throws std::runtime_error on ERR.
  std::optional<estimate_reply> query(const query_request& q);

  /// Batched flavour: one QUERYB frame, replies positional with the
  /// requests. Throws std::runtime_error on ERR.
  std::vector<std::optional<estimate_reply>> query_batch(
      std::span<const query_request> queries);

  /// Drains change alerts after cursor `since` (feed the reply's next_seq
  /// back in to continue). Throws std::runtime_error on ERR.
  alerts_reply alerts(std::uint64_t since, std::uint32_t max = 256);

 private:
  std::string roundtrip(const std::string& request, std::string_view expect);

  transport send_;
};

}  // namespace wiscape::proto

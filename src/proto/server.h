// A transport-agnostic coordinator server and its client-side counterpart.
//
// coordinator_server turns the in-process core::coordinator into a
// line-protocol service: hand it any CHECKIN/REPORT line (from a socket, a
// message queue, a file of replayed traffic -- the transport is the
// caller's business) and it answers with TASK/IDLE/ACK lines.
// remote_agent is the matching client shim: it performs the check-in /
// execute / report cycle against any `send` function.
#pragma once

#include <atomic>
#include <functional>
#include <string_view>

#include "core/coordinator.h"
#include "core/sharded_coordinator.h"
#include "probe/engine.h"
#include "proto/messages.h"

namespace wiscape::proto {

/// Renders the process-wide obs:: metrics registry as the STATS wire reply:
/// "STATS <n>" followed by n lines of "name value", sorted by name. Also
/// usable directly by tools that want the dump without a server.
/// Thread-safe.
std::string encode_stats();

/// Serves a coordinator over the line protocol.
///
/// Two modes share one request surface:
///  * sequential -- wraps a core::coordinator; handle() must be called from
///    one thread at a time, exactly as before.
///  * concurrent -- wraps a core::sharded_coordinator; handle() is safe to
///    call from many transport threads at once. CHECKINs are answered
///    synchronously by the owning shard, REPORTs are enqueued into the
///    sharded ingestion pipeline (ACK means accepted, not yet applied;
///    flush the sharded coordinator before reading its tables).
class coordinator_server {
 public:
  /// Borrows the coordinator; it must outlive the server.
  explicit coordinator_server(core::coordinator& coord) : coord_(&coord) {}

  /// Concurrent mode over a sharded coordinator (it must outlive the
  /// server).
  explicit coordinator_server(core::sharded_coordinator& coord)
      : sharded_(&coord) {}

  /// Handles one request and returns the response:
  ///   CHECKIN   -> TASK ... | IDLE
  ///   REPORT    -> ACK
  ///   REPORTB   -> "ACK <n>" (the one multi-line request: "REPORTB <n>"
  ///                header + n CSV record lines, decoded and ingested as one
  ///                batch -- all-or-nothing, a single bad record ERRs the
  ///                whole frame and nothing is ingested)
  ///   STATS     -> "STATS <n>" + n lines "name value" (the one multi-line
  ///                reply: a flat dump of the process-wide obs:: registry)
  ///   malformed -> ERR <reason> (long inputs are echoed clipped, never
  ///                verbatim)
  /// The request is read as a borrowed view; nothing is retained after
  /// return. Thread-safety follows the mode: any number of threads in
  /// concurrent mode, one at a time in sequential mode. Every request is
  /// counted into the obs:: metrics registry (proto.server.*), including
  /// per-command latency histograms.
  std::string handle(std::string_view line);

  /// True when serving a sharded coordinator (handle() is thread-safe).
  bool concurrent() const noexcept { return sharded_ != nullptr; }

  /// REPORT lines accepted (ACKed) since construction.
  std::uint64_t reports_received() const noexcept {
    return reports_.load(std::memory_order_relaxed);
  }
  /// CHECKIN lines answered with a TASK since construction.
  std::uint64_t tasks_issued() const noexcept {
    return tasks_.load(std::memory_order_relaxed);
  }
  /// Malformed or rejected request lines answered with ERR.
  std::uint64_t errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  core::coordinator* coord_ = nullptr;
  core::sharded_coordinator* sharded_ = nullptr;
  std::atomic<std::uint64_t> reports_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> errors_{0};
};

/// Client-side agent speaking the line protocol through a caller-supplied
/// transport (`send` delivers a request line and returns the response line).
class remote_agent {
 public:
  /// Delivers one request line, returns the response line. The agent is as
  /// thread-safe as this function plus the probe engine (in practice:
  /// confine one agent to one thread).
  using transport = std::function<std::string(const std::string&)>;

  remote_agent(probe::probe_engine& engine, transport send,
               std::uint64_t client_id,
               probe::device_profile device = probe::laptop_device())
      : engine_(&engine),
        send_(std::move(send)),
        client_id_(client_id),
        device_(std::move(device)) {}

  /// One opportunistic cycle: check in, execute any assigned task, report.
  /// Returns the record when a probe ran.
  std::optional<trace::measurement_record> step(
      const mobility::gps_fix& fix, std::uint32_t network_index,
      std::uint32_t active_in_zone = 4);

 private:
  probe::probe_engine* engine_;
  transport send_;
  std::uint64_t client_id_;
  probe::device_profile device_;
};

}  // namespace wiscape::proto

#include "proto/wire_v3.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

namespace wiscape::proto::v3 {

namespace {

// ---- byte-level writers ---------------------------------------------------
// Little-endian, endianness-independent (byte shifts, no reinterpret_cast of
// the output buffer). All append to the reply_buffer's byte store.

void put_u8(reply_buffer& out, std::uint8_t v) {
  out.append(static_cast<char>(v));
}

void put_u16(reply_buffer& out, std::uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out.append(std::string_view(b, 2));
}

void put_u32(reply_buffer& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(std::string_view(b, 4));
}

void put_u64(reply_buffer& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(std::string_view(b, 8));
}

void put_i32(reply_buffer& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

// Doubles travel as their raw IEEE-754 bits: bit-exact round trips, no
// decimal rendering anywhere on the v3 path.
void put_f64(reply_buffer& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_str16(reply_buffer& out, std::string_view s) {
  const std::size_t n = std::min<std::size_t>(s.size(), 0xffff);
  put_u16(out, static_cast<std::uint16_t>(n));
  out.append(s.substr(0, n));
}

/// Opens a frame: appends the header with a zero length placeholder and
/// returns the frame's start offset for end_frame to patch.
std::size_t begin_frame(reply_buffer& out, opcode op) {
  const std::size_t at = out.size();
  put_u8(out, frame_magic);
  put_u8(out, static_cast<std::uint8_t>(op));
  put_u32(out, 0);
  return at;
}

/// Closes the frame opened at `at`: patches the real payload length into
/// the header (the payload is whatever was appended since begin_frame).
void end_frame(reply_buffer& out, std::size_t at) {
  const std::size_t len = out.size() - at - frame_header_bytes;
  std::string& b = out.storage();
  for (int i = 0; i < 4; ++i) {
    b[at + 2 + static_cast<std::size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
}

// ---- byte-level reader ----------------------------------------------------
// A bounds-checked cursor over one frame's payload. Every read validates
// the remaining bytes first and throws std::invalid_argument naming the
// field -- an off-by-one in a hostile frame surfaces as ERR parse, never as
// a read past the buffer.

struct reader {
  std::string_view buf;
  std::size_t pos = 0;

  std::size_t left() const noexcept { return buf.size() - pos; }
  bool done() const noexcept { return pos == buf.size(); }

  [[noreturn]] static void underrun(const char* what) {
    throw std::invalid_argument(std::string("binary frame truncated at ") +
                                what);
  }

  /// One bounds check covering the next `n` bytes. The _raw loads below
  /// skip their per-field check; callers must have reserved the span here
  /// first, which turns a fixed-width struct prefix into a single branch
  /// followed by straight-line loads.
  void need(std::size_t n, const char* what) const {
    if (left() < n) underrun(what);
  }

  template <typename T>
  T load_le() noexcept {
    T v;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&v, buf.data() + pos, sizeof(T));
    } else {
      v = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        v = static_cast<T>(
            v | static_cast<T>(static_cast<unsigned char>(buf[pos + i]))
                    << (8 * i));
      }
    }
    pos += sizeof(T);
    return v;
  }

  std::uint8_t u8_raw() noexcept {
    return static_cast<std::uint8_t>(buf[pos++]);
  }
  std::uint64_t u64_raw() noexcept { return load_le<std::uint64_t>(); }
  std::int32_t i32_raw() noexcept {
    return static_cast<std::int32_t>(load_le<std::uint32_t>());
  }
  double f64_raw() noexcept {
    return std::bit_cast<double>(load_le<std::uint64_t>());
  }

  std::uint8_t u8(const char* what) {
    need(1, what);
    return u8_raw();
  }
  std::uint16_t u16(const char* what) {
    need(2, what);
    return load_le<std::uint16_t>();
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    return load_le<std::uint32_t>();
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    return u64_raw();
  }
  std::int32_t i32(const char* what) {
    return static_cast<std::int32_t>(u32(what));
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }
  std::string_view str16(const char* what) {
    const std::uint16_t n = u16(what);
    if (left() < n) underrun(what);
    const std::string_view s = buf.substr(pos, n);
    pos += n;
    return s;
  }
};

/// Validates the frame envelope and returns the payload: the magic and
/// opcode must match, and the declared length must equal the bytes present.
std::string_view payload_of(std::string_view frame, opcode expect) {
  const auto h = peek_header(frame);
  if (!h) {
    throw std::invalid_argument("not a binary v3 frame");
  }
  if (h->op != expect) {
    throw std::invalid_argument(
        std::string("unexpected frame opcode: have ") + opcode_name(h->op) +
        ", want " + opcode_name(expect));
  }
  if (frame.size() != frame_header_bytes + h->payload_len) {
    throw std::invalid_argument(
        "frame length mismatch: declared " + std::to_string(h->payload_len) +
        " payload bytes, have " +
        std::to_string(frame.size() - frame_header_bytes));
  }
  return frame.substr(frame_header_bytes);
}

void require_done(const reader& r) {
  if (!r.done()) {
    throw std::invalid_argument("trailing bytes after binary frame payload");
  }
}

// ---- record / query / estimate element codecs -----------------------------
// The fixed-width prefix of a record is 90 bytes; with the two u16 string
// length prefixes the minimum wire size per record is 94 bytes. Batch
// decoders check the declared count against these minima and the actual
// payload size before reserving anything.
constexpr std::size_t record_fixed_bytes = 90;
constexpr std::size_t query_fixed_bytes = 25;
constexpr std::size_t est_fixed_bytes = 57;  // after the presence flag
constexpr std::size_t min_record_bytes = record_fixed_bytes + 4;
constexpr std::size_t min_query_bytes = query_fixed_bytes + 2;
constexpr std::size_t min_est_bytes = 1;  // presence flag 0 (text NONE)

void put_record(reply_buffer& out, const trace::measurement_record& r) {
  put_f64(out, r.time_s);
  put_f64(out, r.pos.lat_deg);
  put_f64(out, r.pos.lon_deg);
  put_f64(out, r.speed_mps);
  put_u64(out, r.client_id);
  put_u8(out, static_cast<std::uint8_t>(r.kind));
  put_u8(out, r.success ? 1 : 0);
  put_f64(out, r.throughput_bps);
  put_f64(out, r.loss_rate);
  put_f64(out, r.jitter_s);
  put_f64(out, r.rtt_s);
  put_i32(out, r.ping_sent);
  put_i32(out, r.ping_failures);
  put_f64(out, r.rssi_dbm);
  put_str16(out, r.network);
  put_str16(out, r.device);
}

void get_record(reader& r, trace::measurement_record& rec) {
  // This is the REPORTB ingest hot path: one bounds check covers the whole
  // fixed-width prefix, then the loads run unchecked (the two trailing
  // strings keep their own checks because their lengths come off the wire).
  r.need(record_fixed_bytes, "record fixed fields");
  rec.time_s = r.f64_raw();
  rec.pos.lat_deg = r.f64_raw();
  rec.pos.lon_deg = r.f64_raw();
  rec.speed_mps = r.f64_raw();
  rec.client_id = r.u64_raw();
  const std::uint8_t kind = r.u8_raw();
  if (kind > static_cast<std::uint8_t>(trace::probe_kind::udp_uplink)) {
    throw std::invalid_argument("bad probe kind byte " + std::to_string(kind));
  }
  rec.kind = static_cast<trace::probe_kind>(kind);
  const std::uint8_t success = r.u8_raw();
  if (success > 1) {
    throw std::invalid_argument("bad success byte " + std::to_string(success));
  }
  rec.success = success == 1;
  rec.throughput_bps = r.f64_raw();
  rec.loss_rate = r.f64_raw();
  rec.jitter_s = r.f64_raw();
  rec.rtt_s = r.f64_raw();
  rec.ping_sent = r.i32_raw();
  rec.ping_failures = r.i32_raw();
  rec.rssi_dbm = r.f64_raw();
  // The interned id is never shipped: like the text path, it is resolved
  // server-side at the wire boundary against the coordinator's own interner.
  rec.network_id = trace::no_network_id;
  rec.network = r.str16("record.network");
  rec.device = r.str16("record.device");
}

void put_query(reply_buffer& out, const query_request& q) {
  put_f64(out, q.pos.lat_deg);
  put_f64(out, q.pos.lon_deg);
  put_u8(out, static_cast<std::uint8_t>(q.metric));
  put_f64(out, q.time_s);
  put_str16(out, q.network);
}

void get_query(reader& r, query_request& q) {
  r.need(query_fixed_bytes, "query fixed fields");
  q.pos.lat_deg = r.f64_raw();
  q.pos.lon_deg = r.f64_raw();
  const std::uint8_t metric = r.u8_raw();
  if (metric > static_cast<std::uint8_t>(trace::metric::uplink_throughput_bps)) {
    throw std::invalid_argument("bad metric byte " + std::to_string(metric));
  }
  q.metric = static_cast<trace::metric>(metric);
  q.time_s = r.f64_raw();
  q.network = r.str16("query.network");
}

void put_estimate(reply_buffer& out, const std::optional<estimate_reply>& rep) {
  if (!rep) {
    put_u8(out, 0);  // the text NONE reply, as a presence flag
    return;
  }
  put_u8(out, 1);
  put_i32(out, rep->zone.ix);
  put_i32(out, rep->zone.iy);
  put_u8(out, static_cast<std::uint8_t>(rep->metric));
  put_u64(out, rep->count);
  put_f64(out, rep->mean);
  put_f64(out, rep->stddev);
  put_u64(out, rep->epoch_index);
  put_f64(out, rep->staleness_s);
  put_f64(out, rep->confidence);
  put_str16(out, rep->network);
}

std::optional<estimate_reply> get_estimate(reader& r) {
  const std::uint8_t present = r.u8("est.present");
  if (present == 0) return std::nullopt;
  if (present != 1) {
    throw std::invalid_argument("bad estimate presence byte " +
                                std::to_string(present));
  }
  estimate_reply rep;
  r.need(est_fixed_bytes, "est fixed fields");
  rep.zone.ix = r.i32_raw();
  rep.zone.iy = r.i32_raw();
  const std::uint8_t metric = r.u8_raw();
  if (metric > static_cast<std::uint8_t>(trace::metric::uplink_throughput_bps)) {
    throw std::invalid_argument("bad metric byte " + std::to_string(metric));
  }
  rep.metric = static_cast<trace::metric>(metric);
  rep.count = r.u64_raw();
  rep.mean = r.f64_raw();
  rep.stddev = r.f64_raw();
  rep.epoch_index = r.u64_raw();
  rep.staleness_s = r.f64_raw();
  rep.confidence = r.f64_raw();
  rep.network = r.str16("est.network");
  return rep;
}

// One epoch_update's fixed-width prefix (seq + zone + metric + estimate);
// the trailing str16 network adds at least its 2-byte length prefix.
constexpr std::size_t epoch_fixed_bytes = 49;
constexpr std::size_t min_epoch_bytes = epoch_fixed_bytes + 2;

void put_epoch(reply_buffer& out, const epoch_update& u) {
  put_u64(out, u.seq);
  put_i32(out, u.zone.ix);
  put_i32(out, u.zone.iy);
  put_u8(out, static_cast<std::uint8_t>(u.metric));
  put_f64(out, u.epoch_start_s);
  put_f64(out, u.mean);
  put_f64(out, u.stddev);
  put_u64(out, u.samples);
  put_str16(out, u.network);
}

void get_epoch(reader& r, epoch_update& u) {
  r.need(epoch_fixed_bytes, "epoch fixed fields");
  u.seq = r.u64_raw();
  u.zone.ix = r.i32_raw();
  u.zone.iy = r.i32_raw();
  const std::uint8_t metric = r.u8_raw();
  if (metric > static_cast<std::uint8_t>(trace::metric::uplink_throughput_bps)) {
    throw std::invalid_argument("bad metric byte " + std::to_string(metric));
  }
  u.metric = static_cast<trace::metric>(metric);
  u.epoch_start_s = r.f64_raw();
  u.mean = r.f64_raw();
  u.stddev = r.f64_raw();
  u.samples = r.u64_raw();
  u.network = r.str16("epoch.network");
}

/// Rejects a batch count before any allocation: over the protocol cap, or
/// impossibly large for the bytes actually present (every element costs at
/// least `min_bytes` on the wire).
void check_count(std::uint32_t n, std::size_t cap, std::size_t min_bytes,
                 std::size_t payload_left, const char* what) {
  if (n > cap) {
    throw std::invalid_argument(std::string(what) + " count " +
                                std::to_string(n) + " exceeds cap " +
                                std::to_string(cap));
  }
  if (static_cast<std::uint64_t>(n) * min_bytes > payload_left) {
    throw std::invalid_argument(std::string(what) + " count " +
                                std::to_string(n) +
                                " inconsistent with payload size");
  }
}

}  // namespace

const char* opcode_name(opcode op) noexcept {
  switch (op) {
    case opcode::report:
      return "report";
    case opcode::reportb:
      return "reportb";
    case opcode::query:
      return "query";
    case opcode::queryb:
      return "queryb";
    case opcode::ack:
      return "ack";
    case opcode::est:
      return "est";
    case opcode::estb:
      return "estb";
    case opcode::err:
      return "err";
    case opcode::epoch:
      return "epoch";
    case opcode::epochb:
      return "epochb";
    case opcode::snapshot_req:
      return "snapshot_req";
    case opcode::snapshot_chunk:
      return "snapshot_chunk";
    case opcode::promote:
      return "promote";
  }
  return "unknown";
}

std::optional<frame_header> peek_header(std::string_view data) noexcept {
  if (data.size() < frame_header_bytes || !is_frame_start(data)) {
    return std::nullopt;
  }
  const auto op = static_cast<std::uint8_t>(data[1]);
  if (!opcode_valid(op)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(data[2 + i]))
           << (8 * i);
  }
  return frame_header{static_cast<opcode>(op), len};
}

// ---- encoders -------------------------------------------------------------

void encode_report_frame(const measurement_report& m, reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::report);
  put_u64(out, m.client_id);
  put_record(out, m.record);
  end_frame(out, at);
}

void encode_report_batch_frame(std::span<const trace::measurement_record> recs,
                               reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::reportb);
  put_u32(out, static_cast<std::uint32_t>(recs.size()));
  for (const auto& r : recs) put_record(out, r);
  end_frame(out, at);
}

void encode_query_frame(const query_request& q, reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::query);
  put_query(out, q);
  end_frame(out, at);
}

void encode_query_batch_frame(std::span<const query_request> qs,
                              reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::queryb);
  put_u32(out, static_cast<std::uint32_t>(qs.size()));
  for (const auto& q : qs) put_query(out, q);
  end_frame(out, at);
}

void encode_ack_frame(reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::ack);
  put_u8(out, 0);
  put_u64(out, 0);
  end_frame(out, at);
}

void encode_ack_frame(std::uint64_t count, reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::ack);
  put_u8(out, 1);
  put_u64(out, count);
  end_frame(out, at);
}

void encode_estimate_frame(const std::optional<estimate_reply>& rep,
                           reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::est);
  put_estimate(out, rep);
  end_frame(out, at);
}

void encode_estimate_batch_frame(
    std::span<const std::optional<estimate_reply>> reps, reply_buffer& out) {
  estimate_batch_builder b(static_cast<std::uint32_t>(reps.size()), out);
  for (const auto& rep : reps) b.add(rep);
  b.finish();
}

estimate_batch_builder::estimate_batch_builder(std::uint32_t count,
                                               reply_buffer& out)
    : out_(&out), at_(begin_frame(out, opcode::estb)) {
  put_u32(out, count);
}

void estimate_batch_builder::add(const std::optional<estimate_reply>& rep) {
  put_estimate(*out_, rep);
}

void estimate_batch_builder::finish() { end_frame(*out_, at_); }

void encode_error_frame(err_code code, std::string_view detail,
                        reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::err);
  put_u8(out, static_cast<std::uint8_t>(code));
  // Same clip as the text encoder (error_excerpt's 120-byte cap): a hostile
  // frame is never echoed at length.
  constexpr std::size_t max_detail = 120;
  if (detail.size() <= max_detail) {
    put_str16(out, detail);
  } else {
    put_u16(out, static_cast<std::uint16_t>(max_detail + 3));
    out.append(detail.substr(0, max_detail));
    out.append("...");
  }
  end_frame(out, at);
}

void encode_epoch_pull_frame(const epoch_pull& p, reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::epoch);
  put_u64(out, p.since_seq);
  put_u32(out, p.max_records);
  end_frame(out, at);
}

void encode_epoch_batch_frame(std::span<const epoch_update> updates,
                              reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::epochb);
  put_u32(out, static_cast<std::uint32_t>(updates.size()));
  for (const auto& u : updates) put_epoch(out, u);
  end_frame(out, at);
}

void encode_snapshot_req_frame(std::uint64_t offset, reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::snapshot_req);
  put_u64(out, offset);
  end_frame(out, at);
}

void encode_snapshot_chunk_frame(std::uint64_t offset, std::uint64_t total,
                                 bool last, std::string_view data,
                                 reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::snapshot_chunk);
  put_u64(out, offset);
  put_u64(out, total);
  put_u8(out, last ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(data.size()));
  out.append(data);
  end_frame(out, at);
}

void encode_promote_frame(reply_buffer& out) {
  const std::size_t at = begin_frame(out, opcode::promote);
  end_frame(out, at);
}

std::string encode_report_frame(const measurement_report& m) {
  reply_buffer out;
  encode_report_frame(m, out);
  return std::string(out.view());
}

std::string encode_report_batch_frame(
    std::span<const trace::measurement_record> recs) {
  reply_buffer out;
  encode_report_batch_frame(recs, out);
  return std::string(out.view());
}

std::string encode_query_frame(const query_request& q) {
  reply_buffer out;
  encode_query_frame(q, out);
  return std::string(out.view());
}

std::string encode_query_batch_frame(std::span<const query_request> qs) {
  reply_buffer out;
  encode_query_batch_frame(qs, out);
  return std::string(out.view());
}

std::string encode_epoch_pull_frame(const epoch_pull& p) {
  reply_buffer out;
  encode_epoch_pull_frame(p, out);
  return std::string(out.view());
}

std::string encode_epoch_batch_frame(std::span<const epoch_update> updates) {
  reply_buffer out;
  encode_epoch_batch_frame(updates, out);
  return std::string(out.view());
}

std::string encode_snapshot_req_frame(std::uint64_t offset) {
  reply_buffer out;
  encode_snapshot_req_frame(offset, out);
  return std::string(out.view());
}

std::string encode_promote_frame() {
  reply_buffer out;
  encode_promote_frame(out);
  return std::string(out.view());
}

// ---- decoders -------------------------------------------------------------

measurement_report decode_report_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::report)};
  measurement_report m;
  m.client_id = r.u64("report.client_id");
  get_record(r, m.record);
  require_done(r);
  return m;
}

void decode_report_batch_frame_into(
    std::string_view frame, std::vector<trace::measurement_record>& out) {
  reader r{payload_of(frame, opcode::reportb)};
  const std::uint32_t n = r.u32("reportb.count");
  check_count(n, max_report_batch, min_record_bytes, r.left(), "reportb");
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.emplace_back();
    get_record(r, out.back());
  }
  require_done(r);
}

std::vector<trace::measurement_record> decode_report_batch_frame(
    std::string_view frame) {
  std::vector<trace::measurement_record> out;
  decode_report_batch_frame_into(frame, out);
  return out;
}

query_request decode_query_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::query)};
  query_request q;
  get_query(r, q);
  require_done(r);
  return q;
}

void decode_query_batch_frame_into(std::string_view frame,
                                   std::vector<query_request>& out) {
  reader r{payload_of(frame, opcode::queryb)};
  const std::uint32_t n = r.u32("queryb.count");
  check_count(n, max_query_batch, min_query_bytes, r.left(), "queryb");
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.emplace_back();
    get_query(r, out.back());
  }
  require_done(r);
}

std::vector<query_request> decode_query_batch_frame(std::string_view frame) {
  std::vector<query_request> out;
  decode_query_batch_frame_into(frame, out);
  return out;
}

ack_frame decode_ack_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::ack)};
  ack_frame a;
  const std::uint8_t batched = r.u8("ack.batched");
  if (batched > 1) {
    throw std::invalid_argument("bad ack batch flag " + std::to_string(batched));
  }
  a.batched = batched == 1;
  a.count = r.u64("ack.count");
  require_done(r);
  return a;
}

std::optional<estimate_reply> decode_estimate_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::est)};
  auto rep = get_estimate(r);
  require_done(r);
  return rep;
}

std::vector<std::optional<estimate_reply>> decode_estimate_batch_frame(
    std::string_view frame) {
  reader r{payload_of(frame, opcode::estb)};
  const std::uint32_t n = r.u32("estb.count");
  check_count(n, max_query_batch, min_est_bytes, r.left(), "estb");
  std::vector<std::optional<estimate_reply>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_estimate(r));
  require_done(r);
  return out;
}

epoch_pull decode_epoch_pull_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::epoch)};
  epoch_pull p;
  p.since_seq = r.u64("epoch.since_seq");
  p.max_records = r.u32("epoch.max_records");
  require_done(r);
  return p;
}

void decode_epoch_batch_frame_into(std::string_view frame,
                                   std::vector<epoch_update>& out) {
  reader r{payload_of(frame, opcode::epochb)};
  const std::uint32_t n = r.u32("epochb.count");
  check_count(n, max_epoch_batch, min_epoch_bytes, r.left(), "epochb");
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.emplace_back();
    get_epoch(r, out.back());
  }
  require_done(r);
}

std::vector<epoch_update> decode_epoch_batch_frame(std::string_view frame) {
  std::vector<epoch_update> out;
  decode_epoch_batch_frame_into(frame, out);
  return out;
}

std::uint64_t decode_snapshot_req_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::snapshot_req)};
  const std::uint64_t offset = r.u64("snapshot_req.offset");
  require_done(r);
  return offset;
}

snapshot_chunk decode_snapshot_chunk_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::snapshot_chunk)};
  snapshot_chunk c;
  c.offset = r.u64("snapshot_chunk.offset");
  c.total = r.u64("snapshot_chunk.total");
  const std::uint8_t last = r.u8("snapshot_chunk.last");
  if (last > 1) {
    throw std::invalid_argument("bad snapshot_chunk last flag " +
                                std::to_string(last));
  }
  c.last = last == 1;
  const std::uint32_t len = r.u32("snapshot_chunk.len");
  if (len > max_snapshot_chunk) {
    throw std::invalid_argument("snapshot chunk length " +
                                std::to_string(len) + " exceeds cap " +
                                std::to_string(max_snapshot_chunk));
  }
  r.need(len, "snapshot_chunk.data");
  c.data = r.buf.substr(r.pos, len);
  r.pos += len;
  require_done(r);
  return c;
}

void decode_promote_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::promote)};
  require_done(r);
}

error_frame decode_error_frame(std::string_view frame) {
  reader r{payload_of(frame, opcode::err)};
  error_frame e;
  const std::uint8_t code = r.u8("err.code");
  if (code > static_cast<std::uint8_t>(err_code::overload)) {
    throw std::invalid_argument("bad err code byte " + std::to_string(code));
  }
  e.code = static_cast<err_code>(code);
  e.detail = std::string(r.str16("err.detail"));
  require_done(r);
  return e;
}

}  // namespace wiscape::proto::v3

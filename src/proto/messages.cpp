#include "proto/messages.h"

#include <algorithm>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "trace/csv.h"

namespace wiscape::proto {

namespace {

// ---- zero-allocation line tokenizer ---------------------------------------
// The happy path never allocates: tokens are views into the input line and
// numbers are parsed in place with std::from_chars. Only throw-paths build
// std::strings.

constexpr std::string_view separators = " \t\r";

/// Walks a line as whitespace-separated tokens (views into the input).
/// Hand-rolled byte loop rather than find_first_[not_]of: the 3-character
/// set variants scan per candidate character, and this cursor runs twice
/// per field on the hottest wire paths (QUERY/REPORT decode).
struct token_cursor {
  std::string_view rest;

  static bool is_sep(char c) { return c == ' ' || c == '\t' || c == '\r'; }

  std::optional<std::string_view> next() {
    const char* p = rest.data();
    const char* const end = p + rest.size();
    while (p != end && is_sep(*p)) ++p;
    if (p == end) {
      rest = {};
      return std::nullopt;
    }
    const char* b = p;
    while (p != end && !is_sep(*p)) ++p;
    rest = std::string_view(p, static_cast<std::size_t>(end - p));
    return std::string_view(b, static_cast<std::size_t>(p - b));
  }
};

struct kv {
  std::string_view key;
  std::string_view value;
};

kv split_kv(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == token.size()) {
    throw std::invalid_argument("malformed field '" + error_excerpt(token, 80) +
                                "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

void expect_tag(token_cursor& c, std::string_view expected,
                std::string_view line) {
  const auto tag = c.next();
  if (!tag || *tag != expected) {
    throw std::invalid_argument("expected " + std::string(expected) +
                                " message, got '" + error_excerpt(line) + "'");
  }
}

[[noreturn]] void bad_numeric(std::string_view key, std::string_view s) {
  throw std::invalid_argument("bad numeric field " + std::string(key) + "='" +
                              error_excerpt(s, 80) + "'");
}

double parse_double(std::string_view s, std::string_view key) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

std::uint64_t parse_u64(std::string_view s, std::string_view key) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

std::uint32_t parse_u32(std::string_view s, std::string_view key) {
  std::uint32_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

/// Field-presence bookkeeping: one bit per required field, so missing and
/// duplicate keys are detected without a map.
void mark_seen(unsigned& seen, unsigned bit, std::string_view key) {
  if (seen & bit) {
    throw std::invalid_argument("duplicate field '" + std::string(key) + "'");
  }
  seen |= bit;
}

void require_seen(unsigned seen, unsigned bit, const char* key) {
  if (!(seen & bit)) {
    throw std::invalid_argument(std::string("missing field '") + key + "'");
  }
}

/// snprintf into a stack buffer, growing onto the heap instead of silently
/// truncating when the rendered line is longer than the buffer.
template <class... Args>
std::string format_line(const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n < 0) throw std::runtime_error("encode: snprintf format error");
  if (static_cast<std::size_t>(n) < sizeof buf) {
    return std::string(buf, static_cast<std::size_t>(n));
  }
  std::string out(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(out.data(), out.size(), fmt, args...);
  out.resize(static_cast<std::size_t>(n));
  return out;
}

}  // namespace

std::string error_excerpt(std::string_view s, std::size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  return std::string(s.substr(0, max_len)) + "...";
}

// ---- reply_buffer ---------------------------------------------------------

void reply_buffer::append_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list retry;
  va_copy(retry, args);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(retry);
    throw std::runtime_error("encode: vsnprintf format error");
  }
  if (static_cast<std::size_t>(n) < sizeof buf) {
    bytes_.append(buf, static_cast<std::size_t>(n));
  } else {
    // Rare long line: render straight into the tail of the byte store.
    const std::size_t old = bytes_.size();
    bytes_.resize(old + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(bytes_.data() + old, static_cast<std::size_t>(n) + 1, fmt,
                   retry);
    bytes_.resize(old + static_cast<std::size_t>(n));
  }
  va_end(retry);
}

void reply_buffer::append_u64(std::uint64_t v) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  bytes_.append(buf, static_cast<std::size_t>(end - buf));
}

void reply_buffer::append_i32(std::int32_t v) {
  char buf[12];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  bytes_.append(buf, static_cast<std::size_t>(end - buf));
}

void reply_buffer::append_u32(std::uint32_t v) {
  char buf[10];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  bytes_.append(buf, static_cast<std::size_t>(end - buf));
}

void reply_buffer::append_double17(double v) {
  // std::to_chars with an explicit precision is specified to render "as if
  // by printf" with that precision -- the parity with the historical
  // snprintf("%.17g") encoders is pinned by a regression test over a value
  // corpus, not assumed.
  char buf[40];
  const auto [end, ec] =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general, 17);
  if (ec != std::errc{}) {
    append_format("%.17g", v);  // unreachable belt-and-braces
    return;
  }
  bytes_.append(buf, static_cast<std::size_t>(end - buf));
}

std::string encode(const checkin_request& m) {
  return format_line(
      "CHECKIN client=%llu lat=%.6f lon=%.6f t=%.3f net=%u "
      "active=%u device=%s",
      static_cast<unsigned long long>(m.client_id), m.pos.lat_deg,
      m.pos.lon_deg, m.time_s, m.network_index, m.active_in_zone,
      m.device.c_str());
}

std::string encode(const task_assignment& m) {
  reply_buffer out;
  encode_into(m, out);
  return std::string(out.view());
}

void encode_into(const task_assignment& m, reply_buffer& out) {
  out.append_format(
      "TASK kind=%s net=%u tcp_bytes=%llu udp_packets=%u "
      "ping_count=%u",
      trace::to_string(m.kind).c_str(), m.network_index,
      static_cast<unsigned long long>(m.tcp_bytes), m.udp_packets,
      m.ping_count);
}

std::string encode(const measurement_report& m) {
  // The record payload reuses the CSV trace schema verbatim, so reports can
  // be appended straight into dataset files.
  return "REPORT client=" + std::to_string(m.client_id) + " csv=" +
         trace::to_csv(m.record);
}

std::string encode_report_batch(
    std::span<const trace::measurement_record> recs) {
  std::string out = "REPORTB " + std::to_string(recs.size());
  for (const auto& rec : recs) {
    out += '\n';
    out += trace::to_csv(rec);
  }
  return out;
}

std::string encode_idle() { return "IDLE"; }

namespace {
// The single table every err_code conversion is driven from: one row per
// code, in enum order (static_asserted below so a new code cannot be added
// without a token).
struct err_row {
  err_code code;
  std::string_view token;
};
constexpr err_row err_table[] = {
    {err_code::parse, "parse"},
    {err_code::unsupported, "unsupported"},
    {err_code::stopped, "stopped"},
    {err_code::version, "version"},
    {err_code::internal, "internal"},
    {err_code::overload, "overload"},
};
static_assert(static_cast<std::size_t>(err_code::overload) + 1 ==
                  sizeof err_table / sizeof err_table[0],
              "every err_code needs a row in err_table");
}  // namespace

std::string_view to_string(err_code code) noexcept {
  return err_table[static_cast<std::size_t>(code)].token;
}

std::optional<err_code> err_code_from_string(std::string_view s) noexcept {
  for (const err_row& row : err_table) {
    if (row.token == s) return row.code;
  }
  return std::nullopt;
}

std::string encode_error(err_code code, std::string_view detail) {
  const std::string_view token = to_string(code);
  std::string out;
  out.reserve(4 + token.size() + 1 + std::min<std::size_t>(detail.size(), 124));
  out += "ERR ";
  out += token;
  out += ' ';
  out += error_excerpt(detail);
  return out;
}

void encode_error_into(err_code code, std::string_view detail,
                       reply_buffer& out) {
  constexpr std::size_t max_detail = 120;  // error_excerpt's default clip
  out.append("ERR ");
  out.append(to_string(code));
  out.append(' ');
  if (detail.size() <= max_detail) {
    out.append(detail);
  } else {
    out.append(detail.substr(0, max_detail));
    out.append("...");
  }
}

std::size_t reply_extra_lines(std::string_view header_line) noexcept {
  const std::size_t sp = header_line.find_first_of(" \t\r\n");
  const std::string_view tag =
      sp == std::string_view::npos ? header_line : header_line.substr(0, sp);
  std::size_t cap = 0;
  if (tag == "ESTB") {
    cap = max_query_batch;
  } else if (tag == "ALERTS") {
    cap = max_alert_batch;
  } else if (tag == "STATS") {
    // STATS frames enumerate registered metrics; bounded in practice but not
    // by a protocol constant. Use a generous fixed ceiling.
    cap = 65536;
  } else {
    return 0;  // single-line reply (TASK, IDLE, ACK, EST, NONE, HELLO, ERR)
  }
  if (sp == std::string_view::npos) return 0;
  const std::string_view rest = header_line.substr(sp + 1);
  const std::size_t start = rest.find_first_not_of(" \t");
  if (start == std::string_view::npos) return 0;
  std::size_t end = start;
  while (end < rest.size() && rest[end] >= '0' && rest[end] <= '9') ++end;
  if (end == start) return 0;
  std::size_t n = 0;
  if (std::from_chars(rest.data() + start, rest.data() + end, n).ec !=
      std::errc{}) {
    return 0;
  }
  return std::min(n, cap);
}

std::string_view message_type(std::string_view line) {
  const std::size_t sp = line.find_first_of(" \t\r\n");
  const std::string_view tag =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  // Return the static literal, not a view into the caller's line, so the
  // result stays valid after the line's buffer dies.
  for (const std::string_view known :
       {"CHECKIN", "TASK", "REPORT", "REPORTB", "IDLE", "ACK", "ERR", "STATS",
        "QUERY", "QUERYB", "EST", "ESTB", "NONE", "ALERTS", "ALERT",
        "HELLO"}) {
    if (tag == known) return known;
  }
  return {};
}

checkin_request decode_checkin(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "CHECKIN", line);
  enum : unsigned {
    f_client = 1u << 0,
    f_lat = 1u << 1,
    f_lon = 1u << 2,
    f_t = 1u << 3,
    f_net = 1u << 4,
    f_active = 1u << 5,
    f_device = 1u << 6,
  };
  checkin_request m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "client") {
      mark_seen(seen, f_client, f.key);
      m.client_id = parse_u64(f.value, f.key);
    } else if (f.key == "lat") {
      mark_seen(seen, f_lat, f.key);
      m.pos.lat_deg = parse_double(f.value, f.key);
    } else if (f.key == "lon") {
      mark_seen(seen, f_lon, f.key);
      m.pos.lon_deg = parse_double(f.value, f.key);
    } else if (f.key == "t") {
      mark_seen(seen, f_t, f.key);
      m.time_s = parse_double(f.value, f.key);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network_index = parse_u32(f.value, f.key);
    } else if (f.key == "active") {
      mark_seen(seen, f_active, f.key);
      m.active_in_zone = parse_u32(f.value, f.key);
    } else if (f.key == "device") {
      mark_seen(seen, f_device, f.key);
      m.device.assign(f.value);
    }
    // Unknown keys are tolerated and ignored (forward compatibility), same
    // as the old map-based parser which only looked up the fields it needed.
  }
  require_seen(seen, f_client, "client");
  require_seen(seen, f_lat, "lat");
  require_seen(seen, f_lon, "lon");
  require_seen(seen, f_t, "t");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_active, "active");
  require_seen(seen, f_device, "device");
  return m;
}

task_assignment decode_task(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "TASK", line);
  enum : unsigned {
    f_kind = 1u << 0,
    f_net = 1u << 1,
    f_tcp_bytes = 1u << 2,
    f_udp_packets = 1u << 3,
    f_ping_count = 1u << 4,
  };
  task_assignment m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "kind") {
      mark_seen(seen, f_kind, f.key);
      m.kind = trace::probe_kind_from_string(f.value);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network_index = parse_u32(f.value, f.key);
    } else if (f.key == "tcp_bytes") {
      mark_seen(seen, f_tcp_bytes, f.key);
      m.tcp_bytes = parse_u64(f.value, f.key);
    } else if (f.key == "udp_packets") {
      mark_seen(seen, f_udp_packets, f.key);
      m.udp_packets = parse_u32(f.value, f.key);
    } else if (f.key == "ping_count") {
      mark_seen(seen, f_ping_count, f.key);
      m.ping_count = parse_u32(f.value, f.key);
    }
  }
  require_seen(seen, f_kind, "kind");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_tcp_bytes, "tcp_bytes");
  require_seen(seen, f_udp_packets, "udp_packets");
  require_seen(seen, f_ping_count, "ping_count");
  return m;
}

measurement_report decode_report(std::string_view line) {
  // REPORT client=<id> csv=<csv line with commas and no spaces>
  constexpr std::string_view prefix = "REPORT client=";
  if (line.substr(0, prefix.size()) != prefix) {
    throw std::invalid_argument("expected REPORT message");
  }
  // The client id is the run of characters up to the next space, which must
  // open " csv=" -- a single memchr instead of a substring search.
  const std::size_t csv_pos = line.find(' ', prefix.size());
  if (csv_pos == std::string_view::npos ||
      line.substr(csv_pos, 5) != " csv=") {
    throw std::invalid_argument("REPORT missing csv field");
  }
  measurement_report m;
  const std::string_view id = line.substr(prefix.size(),
                                          csv_pos - prefix.size());
  // Exact full-width parse: the old std::stoull path both truncated at the
  // first non-digit (silent misparse) and ids never hit it above 2^53
  // unscathed when they travelled via need_u64's double.
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(id.data(), id.data() + id.size(), v);
  if (ec != std::errc{} || end != id.data() + id.size() || id.empty()) {
    throw std::invalid_argument("REPORT bad client id");
  }
  m.client_id = v;
  m.record = trace::from_csv(line.substr(csv_pos + 5));
  return m;
}

std::vector<trace::measurement_record> decode_report_batch(
    std::string_view frame) {
  std::vector<trace::measurement_record> out;
  decode_report_batch_into(frame, out);
  return out;
}

void decode_report_batch_into(std::string_view frame,
                              std::vector<trace::measurement_record>& out) {
  out.clear();
  const std::size_t nl = frame.find('\n');
  const std::string_view header =
      nl == std::string_view::npos ? frame : frame.substr(0, nl);
  token_cursor c{header};
  expect_tag(c, "REPORTB", header);
  const auto count_tok = c.next();
  if (!count_tok) {
    throw std::invalid_argument("REPORTB missing record count");
  }
  const std::uint64_t n = parse_u64(*count_tok, "count");
  if (c.next()) {
    throw std::invalid_argument("REPORTB header has trailing tokens");
  }
  if (n > max_report_batch) {
    throw std::invalid_argument("REPORTB count " + std::to_string(n) +
                                " exceeds max " +
                                std::to_string(max_report_batch));
  }
  out.reserve(static_cast<std::size_t>(n));
  std::size_t produced = 0;
  std::string_view rest =
      nl == std::string_view::npos ? std::string_view{} : frame.substr(nl + 1);
  while (!rest.empty()) {
    if (produced == n) {
      throw std::invalid_argument("REPORTB count mismatch: header says " +
                                  std::to_string(n) + ", payload has more");
    }
    const std::size_t e = rest.find('\n');
    std::string_view payload =
        e == std::string_view::npos ? rest : rest.substr(0, e);
    // CRLF-framed batches: the '\r' before each '\n' is framing, not CSV.
    if (!payload.empty() && payload.back() == '\r') payload.remove_suffix(1);
    try {
      out.push_back(trace::from_csv(payload));
    } catch (const std::invalid_argument& ex) {
      throw std::invalid_argument("REPORTB record " +
                                  std::to_string(produced) + ": " + ex.what());
    }
    ++produced;
    if (e == std::string_view::npos) break;
    rest = rest.substr(e + 1);  // a single trailing '\n' ends the frame
  }
  if (produced != n) {
    throw std::invalid_argument("REPORTB count mismatch: header says " +
                                std::to_string(n) + ", got " +
                                std::to_string(produced) + " records");
  }
}

// ---- read-side codec (protocol v2) ----------------------------------------

namespace {

/// Parses a "ix:iy" zone token (two signed 32-bit ints).
geo::zone_id parse_zone(std::string_view s, std::string_view key) {
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos) bad_numeric(key, s);
  geo::zone_id z;
  const std::string_view ix = s.substr(0, colon);
  const std::string_view iy = s.substr(colon + 1);
  const auto [e1, c1] = std::from_chars(ix.data(), ix.data() + ix.size(), z.ix);
  if (c1 != std::errc{} || e1 != ix.data() + ix.size() || ix.empty()) {
    bad_numeric(key, s);
  }
  const auto [e2, c2] = std::from_chars(iy.data(), iy.data() + iy.size(), z.iy);
  if (c2 != std::errc{} || e2 != iy.data() + iy.size() || iy.empty()) {
    bad_numeric(key, s);
  }
  return z;
}

/// Parses the k=v fields of a QUERY (everything after the tag). Shared by
/// decode_query and QUERYB payload lines.
query_request parse_query_fields(token_cursor& c) {
  enum : unsigned {
    f_lat = 1u << 0,
    f_lon = 1u << 1,
    f_net = 1u << 2,
    f_metric = 1u << 3,
    f_t = 1u << 4,
  };
  query_request m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "lat") {
      mark_seen(seen, f_lat, f.key);
      m.pos.lat_deg = parse_double(f.value, f.key);
    } else if (f.key == "lon") {
      mark_seen(seen, f_lon, f.key);
      m.pos.lon_deg = parse_double(f.value, f.key);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network.assign(f.value);
    } else if (f.key == "metric") {
      mark_seen(seen, f_metric, f.key);
      m.metric = trace::metric_from_string(f.value);
    } else if (f.key == "t") {
      mark_seen(seen, f_t, f.key);
      m.time_s = parse_double(f.value, f.key);
    }
  }
  require_seen(seen, f_lat, "lat");
  require_seen(seen, f_lon, "lon");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_metric, "metric");
  return m;  // t optional: stays -1 (staleness unknown) when absent
}

/// Renders the k=v fields of a QUERY (without the tag) into `out`.
void append_query_fields(std::string& out, const query_request& m) {
  out += format_line("lat=%.6f lon=%.6f net=%s metric=%s", m.pos.lat_deg,
                     m.pos.lon_deg, m.network.c_str(),
                     trace::to_string(m.metric).c_str());
  if (m.time_s >= 0.0) out += format_line(" t=%.3f", m.time_s);
}

/// Frame walker shared by the multi-line decoders: splits off the header
/// line and hands out payload lines one at a time.
struct frame_cursor {
  std::string_view rest;
  bool done = false;

  explicit frame_cursor(std::string_view frame, std::string_view& header) {
    const std::size_t nl = frame.find('\n');
    if (nl == std::string_view::npos) {
      header = frame;
      done = true;
    } else {
      header = frame.substr(0, nl);
      rest = frame.substr(nl + 1);
      done = rest.empty();
    }
  }

  std::optional<std::string_view> next() {
    if (done) return std::nullopt;
    const std::size_t e = rest.find('\n');
    std::string_view line;
    if (e == std::string_view::npos) {
      line = rest;
      done = true;  // a single trailing '\n' ends the frame
    } else {
      line = rest.substr(0, e);
      rest = rest.substr(e + 1);
      done = rest.empty();
    }
    // CRLF tolerance lives here (not in a transport-side rewrite buffer):
    // the '\r' before each '\n' is framing, never payload.
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    return line;
  }
};

/// Parses a multi-line frame's "<TAG> <count> [k=v ...]" header count and
/// enforces `cap` before any payload work.
std::uint64_t parse_frame_count(token_cursor& c, std::string_view tag,
                                std::size_t cap) {
  const auto count_tok = c.next();
  if (!count_tok) {
    throw std::invalid_argument(std::string(tag) + " missing count");
  }
  const std::uint64_t n = parse_u64(*count_tok, "count");
  if (n > cap) {
    throw std::invalid_argument(std::string(tag) + " count " +
                                std::to_string(n) + " exceeds max " +
                                std::to_string(cap));
  }
  return n;
}

}  // namespace

std::string encode(const hello_request& m) {
  return format_line("HELLO ver=%u", m.version);
}

std::string encode(const hello_reply& m) {
  return format_line("HELLO ver=%u min=%u", m.version, m.min_version);
}

void encode_into(const hello_reply& m, reply_buffer& out) {
  out.append("HELLO ver=");
  out.append_u32(m.version);
  out.append(" min=");
  out.append_u32(m.min_version);
}

hello_request decode_hello(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "HELLO", line);
  hello_request m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "ver") {
      mark_seen(seen, 1u, f.key);
      m.version = parse_u32(f.value, f.key);
    }
  }
  require_seen(seen, 1u, "ver");
  return m;
}

hello_reply decode_hello_reply(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "HELLO", line);
  enum : unsigned { f_ver = 1u << 0, f_min = 1u << 1 };
  hello_reply m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "ver") {
      mark_seen(seen, f_ver, f.key);
      m.version = parse_u32(f.value, f.key);
    } else if (f.key == "min") {
      mark_seen(seen, f_min, f.key);
      m.min_version = parse_u32(f.value, f.key);
    }
  }
  require_seen(seen, f_ver, "ver");
  require_seen(seen, f_min, "min");
  return m;
}

std::string encode(const query_request& m) {
  std::string out = "QUERY ";
  append_query_fields(out, m);
  return out;
}

query_request decode_query(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "QUERY", line);
  return parse_query_fields(c);
}

std::string encode(const estimate_reply& m) {
  reply_buffer out;
  encode_into(m, out);
  return std::string(out.view());
}

void encode_into(const estimate_reply& m, reply_buffer& out) {
  // %.17g-equivalent rendering on every double: what the client decodes is
  // bit-for-bit what the view served (a remote application reproduces
  // in-process decisions). Field-by-field appends instead of one snprintf:
  // the EST line is the hottest reply and integer/double to_chars is a
  // large constant factor cheaper than printf format parsing.
  out.append("EST zone=");
  out.append_i32(m.zone.ix);
  out.append(':');
  out.append_i32(m.zone.iy);
  out.append(" net=");
  out.append(m.network);
  out.append(" metric=");
  out.append(trace::to_string(m.metric));
  out.append(" count=");
  out.append_u64(m.count);
  out.append(" mean=");
  out.append_double17(m.mean);
  out.append(" stddev=");
  out.append_double17(m.stddev);
  out.append(" epoch=");
  out.append_u64(m.epoch_index);
  out.append(" staleness_s=");
  out.append_double17(m.staleness_s);
  out.append(" conf=");
  out.append_double17(m.confidence);
}

std::string encode_none() { return "NONE"; }

estimate_reply decode_estimate(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "EST", line);
  enum : unsigned {
    f_zone = 1u << 0,
    f_net = 1u << 1,
    f_metric = 1u << 2,
    f_count = 1u << 3,
    f_mean = 1u << 4,
    f_stddev = 1u << 5,
    f_epoch = 1u << 6,
    f_staleness = 1u << 7,
    f_conf = 1u << 8,
  };
  estimate_reply m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "zone") {
      mark_seen(seen, f_zone, f.key);
      m.zone = parse_zone(f.value, f.key);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network.assign(f.value);
    } else if (f.key == "metric") {
      mark_seen(seen, f_metric, f.key);
      m.metric = trace::metric_from_string(f.value);
    } else if (f.key == "count") {
      mark_seen(seen, f_count, f.key);
      m.count = parse_u64(f.value, f.key);
    } else if (f.key == "mean") {
      mark_seen(seen, f_mean, f.key);
      m.mean = parse_double(f.value, f.key);
    } else if (f.key == "stddev") {
      mark_seen(seen, f_stddev, f.key);
      m.stddev = parse_double(f.value, f.key);
    } else if (f.key == "epoch") {
      mark_seen(seen, f_epoch, f.key);
      m.epoch_index = parse_u64(f.value, f.key);
    } else if (f.key == "staleness_s") {
      mark_seen(seen, f_staleness, f.key);
      m.staleness_s = parse_double(f.value, f.key);
    } else if (f.key == "conf") {
      mark_seen(seen, f_conf, f.key);
      m.confidence = parse_double(f.value, f.key);
    }
  }
  require_seen(seen, f_zone, "zone");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_metric, "metric");
  require_seen(seen, f_count, "count");
  require_seen(seen, f_mean, "mean");
  require_seen(seen, f_stddev, "stddev");
  require_seen(seen, f_epoch, "epoch");
  require_seen(seen, f_staleness, "staleness_s");
  require_seen(seen, f_conf, "conf");
  return m;
}

std::string encode_query_batch(std::span<const query_request> qs) {
  std::string out = "QUERYB " + std::to_string(qs.size());
  for (const query_request& q : qs) {
    out += '\n';
    append_query_fields(out, q);
  }
  return out;
}

std::vector<query_request> decode_query_batch(std::string_view frame) {
  std::vector<query_request> out;
  decode_query_batch_into(frame, out);
  return out;
}

void decode_query_batch_into(std::string_view frame,
                             std::vector<query_request>& out) {
  out.clear();
  std::string_view header;
  frame_cursor lines(frame, header);
  token_cursor c{header};
  expect_tag(c, "QUERYB", header);
  const std::uint64_t n = parse_frame_count(c, "QUERYB", max_query_batch);
  if (c.next()) {
    throw std::invalid_argument("QUERYB header has trailing tokens");
  }
  out.reserve(static_cast<std::size_t>(n));
  while (const auto line = lines.next()) {
    if (out.size() == n) {
      throw std::invalid_argument("QUERYB count mismatch: header says " +
                                  std::to_string(n) + ", payload has more");
    }
    token_cursor fields{*line};
    try {
      out.push_back(parse_query_fields(fields));
    } catch (const std::invalid_argument& ex) {
      throw std::invalid_argument("QUERYB query " +
                                  std::to_string(out.size()) + ": " +
                                  ex.what());
    }
  }
  if (out.size() != n) {
    throw std::invalid_argument("QUERYB count mismatch: header says " +
                                std::to_string(n) + ", got " +
                                std::to_string(out.size()) + " queries");
  }
}

std::string encode_estimate_batch(
    std::span<const std::optional<estimate_reply>> replies) {
  std::string out = "ESTB " + std::to_string(replies.size());
  for (const auto& r : replies) {
    out += '\n';
    if (r.has_value()) {
      out += encode(*r);
    } else {
      out += "NONE";
    }
  }
  return out;
}

std::vector<std::optional<estimate_reply>> decode_estimate_batch(
    std::string_view frame) {
  std::string_view header;
  frame_cursor lines(frame, header);
  token_cursor c{header};
  expect_tag(c, "ESTB", header);
  const std::uint64_t n = parse_frame_count(c, "ESTB", max_query_batch);
  if (c.next()) {
    throw std::invalid_argument("ESTB header has trailing tokens");
  }
  std::vector<std::optional<estimate_reply>> out;
  out.reserve(static_cast<std::size_t>(n));
  while (const auto line = lines.next()) {
    if (out.size() == n) {
      throw std::invalid_argument("ESTB count mismatch: header says " +
                                  std::to_string(n) + ", payload has more");
    }
    try {
      if (*line == "NONE") {
        out.emplace_back(std::nullopt);
      } else {
        out.emplace_back(decode_estimate(*line));
      }
    } catch (const std::invalid_argument& ex) {
      throw std::invalid_argument("ESTB reply " + std::to_string(out.size()) +
                                  ": " + ex.what());
    }
  }
  if (out.size() != n) {
    throw std::invalid_argument("ESTB count mismatch: header says " +
                                std::to_string(n) + ", got " +
                                std::to_string(out.size()) + " replies");
  }
  return out;
}

std::string encode(const alerts_request& m) {
  return format_line("ALERTS since=%llu max=%u",
                     static_cast<unsigned long long>(m.since), m.max);
}

alerts_request decode_alerts_request(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "ALERTS", line);
  enum : unsigned { f_since = 1u << 0, f_max = 1u << 1 };
  alerts_request m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "since") {
      mark_seen(seen, f_since, f.key);
      m.since = parse_u64(f.value, f.key);
    } else if (f.key == "max") {
      mark_seen(seen, f_max, f.key);
      m.max = parse_u32(f.value, f.key);
    }
  }
  require_seen(seen, f_since, "since");
  return m;  // max optional: defaults to 256
}

std::string encode(const alerts_reply& m) {
  reply_buffer out;
  encode_into(m, out);
  return std::string(out.view());
}

void encode_into(const alerts_reply& m, reply_buffer& out) {
  out.append("ALERTS ");
  out.append_u64(m.alerts.size());
  out.append(" next=");
  out.append_u64(m.next_seq);
  out.append(" dropped=");
  out.append_u64(m.dropped);
  for (const alert_event& a : m.alerts) {
    out.append('\n');
    out.append("ALERT seq=");
    out.append_u64(a.seq);
    out.append(" zone=");
    out.append_i32(a.zone.ix);
    out.append(':');
    out.append_i32(a.zone.iy);
    out.append(" net=");
    out.append(a.network);
    out.append(" metric=");
    out.append(trace::to_string(a.metric));
    out.append(" epoch_start_s=");
    out.append_double17(a.epoch_start_s);
    out.append(" prev_mean=");
    out.append_double17(a.previous_mean);
    out.append(" new_mean=");
    out.append_double17(a.new_mean);
    out.append(" prev_stddev=");
    out.append_double17(a.previous_stddev);
  }
}

alerts_reply decode_alerts_reply(std::string_view frame) {
  std::string_view header;
  frame_cursor lines(frame, header);
  token_cursor c{header};
  expect_tag(c, "ALERTS", header);
  const std::uint64_t n = parse_frame_count(c, "ALERTS", max_alert_batch);
  alerts_reply m;
  enum : unsigned { f_next = 1u << 0, f_dropped = 1u << 1 };
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "next") {
      mark_seen(seen, f_next, f.key);
      m.next_seq = parse_u64(f.value, f.key);
    } else if (f.key == "dropped") {
      mark_seen(seen, f_dropped, f.key);
      m.dropped = parse_u64(f.value, f.key);
    }
  }
  require_seen(seen, f_next, "next");
  require_seen(seen, f_dropped, "dropped");
  m.alerts.reserve(static_cast<std::size_t>(n));
  while (const auto line = lines.next()) {
    if (m.alerts.size() == n) {
      throw std::invalid_argument("ALERTS count mismatch: header says " +
                                  std::to_string(n) + ", payload has more");
    }
    token_cursor ac{*line};
    expect_tag(ac, "ALERT", *line);
    enum : unsigned {
      a_seq = 1u << 0,
      a_zone = 1u << 1,
      a_net = 1u << 2,
      a_metric = 1u << 3,
      a_epoch = 1u << 4,
      a_prev_mean = 1u << 5,
      a_new_mean = 1u << 6,
      a_prev_stddev = 1u << 7,
    };
    alert_event a;
    unsigned aseen = 0;
    while (const auto tok = ac.next()) {
      const kv f = split_kv(*tok);
      if (f.key == "seq") {
        mark_seen(aseen, a_seq, f.key);
        a.seq = parse_u64(f.value, f.key);
      } else if (f.key == "zone") {
        mark_seen(aseen, a_zone, f.key);
        a.zone = parse_zone(f.value, f.key);
      } else if (f.key == "net") {
        mark_seen(aseen, a_net, f.key);
        a.network.assign(f.value);
      } else if (f.key == "metric") {
        mark_seen(aseen, a_metric, f.key);
        a.metric = trace::metric_from_string(f.value);
      } else if (f.key == "epoch_start_s") {
        mark_seen(aseen, a_epoch, f.key);
        a.epoch_start_s = parse_double(f.value, f.key);
      } else if (f.key == "prev_mean") {
        mark_seen(aseen, a_prev_mean, f.key);
        a.previous_mean = parse_double(f.value, f.key);
      } else if (f.key == "new_mean") {
        mark_seen(aseen, a_new_mean, f.key);
        a.new_mean = parse_double(f.value, f.key);
      } else if (f.key == "prev_stddev") {
        mark_seen(aseen, a_prev_stddev, f.key);
        a.previous_stddev = parse_double(f.value, f.key);
      }
    }
    require_seen(aseen, a_seq, "seq");
    require_seen(aseen, a_zone, "zone");
    require_seen(aseen, a_net, "net");
    require_seen(aseen, a_metric, "metric");
    require_seen(aseen, a_epoch, "epoch_start_s");
    require_seen(aseen, a_prev_mean, "prev_mean");
    require_seen(aseen, a_new_mean, "new_mean");
    require_seen(aseen, a_prev_stddev, "prev_stddev");
    m.alerts.push_back(std::move(a));
  }
  if (m.alerts.size() != n) {
    throw std::invalid_argument("ALERTS count mismatch: header says " +
                                std::to_string(n) + ", got " +
                                std::to_string(m.alerts.size()) + " alerts");
  }
  return m;
}

}  // namespace wiscape::proto

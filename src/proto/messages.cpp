#include "proto/messages.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "trace/csv.h"

namespace wiscape::proto {

namespace {

/// Splits "TYPE k=v k=v ..." into the tag and a key->value map.
std::unordered_map<std::string, std::string> fields_of(
    const std::string& line, const std::string& expected_type) {
  std::istringstream is(line);
  std::string tag;
  if (!(is >> tag) || tag != expected_type) {
    throw std::invalid_argument("expected " + expected_type + " message, got '" +
                                line + "'");
  }
  std::unordered_map<std::string, std::string> out;
  std::string token;
  while (is >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed field '" + token + "'");
    }
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

const std::string& need(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  const auto it = fields.find(key);
  if (it == fields.end()) {
    throw std::invalid_argument("missing field '" + key + "'");
  }
  return it->second;
}

double need_double(const std::unordered_map<std::string, std::string>& fields,
                   const std::string& key) {
  const std::string& s = need(fields, key);
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric field " + key + "='" + s + "'");
  }
}

std::uint64_t need_u64(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  return static_cast<std::uint64_t>(need_double(fields, key));
}

}  // namespace

std::string encode(const checkin_request& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "CHECKIN client=%llu lat=%.6f lon=%.6f t=%.3f net=%u "
                "active=%u device=%s",
                static_cast<unsigned long long>(m.client_id), m.pos.lat_deg,
                m.pos.lon_deg, m.time_s, m.network_index, m.active_in_zone,
                m.device.c_str());
  return buf;
}

std::string encode(const task_assignment& m) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "TASK kind=%s net=%u tcp_bytes=%llu udp_packets=%u "
                "ping_count=%u",
                trace::to_string(m.kind).c_str(), m.network_index,
                static_cast<unsigned long long>(m.tcp_bytes), m.udp_packets,
                m.ping_count);
  return buf;
}

std::string encode(const measurement_report& m) {
  // The record payload reuses the CSV trace schema verbatim, so reports can
  // be appended straight into dataset files.
  return "REPORT client=" + std::to_string(m.client_id) + " csv=" +
         trace::to_csv(m.record);
}

std::string encode_idle() { return "IDLE"; }

std::string encode_error(const std::string& reason) {
  return "ERR " + reason;
}

std::string message_type(const std::string& line) {
  const auto sp = line.find(' ');
  const std::string tag = sp == std::string::npos ? line : line.substr(0, sp);
  for (const char* known :
       {"CHECKIN", "TASK", "REPORT", "IDLE", "ACK", "ERR", "STATS"}) {
    if (tag == known) return tag;
  }
  return "";
}

checkin_request decode_checkin(const std::string& line) {
  const auto f = fields_of(line, "CHECKIN");
  checkin_request m;
  m.client_id = need_u64(f, "client");
  m.pos = {need_double(f, "lat"), need_double(f, "lon")};
  m.time_s = need_double(f, "t");
  m.network_index = static_cast<std::uint32_t>(need_u64(f, "net"));
  m.active_in_zone = static_cast<std::uint32_t>(need_u64(f, "active"));
  m.device = need(f, "device");
  return m;
}

task_assignment decode_task(const std::string& line) {
  const auto f = fields_of(line, "TASK");
  task_assignment m;
  m.kind = trace::probe_kind_from_string(need(f, "kind"));
  m.network_index = static_cast<std::uint32_t>(need_u64(f, "net"));
  m.tcp_bytes = need_u64(f, "tcp_bytes");
  m.udp_packets = static_cast<std::uint32_t>(need_u64(f, "udp_packets"));
  m.ping_count = static_cast<std::uint32_t>(need_u64(f, "ping_count"));
  return m;
}

measurement_report decode_report(const std::string& line) {
  // REPORT client=<id> csv=<csv line with commas and no spaces>
  const std::string prefix = "REPORT client=";
  if (line.rfind(prefix, 0) != 0) {
    throw std::invalid_argument("expected REPORT message");
  }
  const auto csv_pos = line.find(" csv=");
  if (csv_pos == std::string::npos) {
    throw std::invalid_argument("REPORT missing csv field");
  }
  measurement_report m;
  try {
    m.client_id = std::stoull(line.substr(prefix.size(),
                                          csv_pos - prefix.size()));
  } catch (const std::exception&) {
    throw std::invalid_argument("REPORT bad client id");
  }
  m.record = trace::from_csv(line.substr(csv_pos + 5));
  return m;
}

}  // namespace wiscape::proto

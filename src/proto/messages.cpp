#include "proto/messages.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "trace/csv.h"

namespace wiscape::proto {

namespace {

// ---- zero-allocation line tokenizer ---------------------------------------
// The happy path never allocates: tokens are views into the input line and
// numbers are parsed in place with std::from_chars. Only throw-paths build
// std::strings.

constexpr std::string_view separators = " \t\r";

/// Walks a line as whitespace-separated tokens (views into the input).
struct token_cursor {
  std::string_view rest;

  std::optional<std::string_view> next() {
    const std::size_t b = rest.find_first_not_of(separators);
    if (b == std::string_view::npos) {
      rest = {};
      return std::nullopt;
    }
    const std::size_t e = rest.find_first_of(separators, b);
    std::string_view tok;
    if (e == std::string_view::npos) {
      tok = rest.substr(b);
      rest = {};
    } else {
      tok = rest.substr(b, e - b);
      rest = rest.substr(e);
    }
    return tok;
  }
};

struct kv {
  std::string_view key;
  std::string_view value;
};

kv split_kv(std::string_view token) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 == token.size()) {
    throw std::invalid_argument("malformed field '" + error_excerpt(token, 80) +
                                "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

void expect_tag(token_cursor& c, std::string_view expected,
                std::string_view line) {
  const auto tag = c.next();
  if (!tag || *tag != expected) {
    throw std::invalid_argument("expected " + std::string(expected) +
                                " message, got '" + error_excerpt(line) + "'");
  }
}

[[noreturn]] void bad_numeric(std::string_view key, std::string_view s) {
  throw std::invalid_argument("bad numeric field " + std::string(key) + "='" +
                              error_excerpt(s, 80) + "'");
}

double parse_double(std::string_view s, std::string_view key) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

std::uint64_t parse_u64(std::string_view s, std::string_view key) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

std::uint32_t parse_u32(std::string_view s, std::string_view key) {
  std::uint32_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) bad_numeric(key, s);
  return v;
}

/// Field-presence bookkeeping: one bit per required field, so missing and
/// duplicate keys are detected without a map.
void mark_seen(unsigned& seen, unsigned bit, std::string_view key) {
  if (seen & bit) {
    throw std::invalid_argument("duplicate field '" + std::string(key) + "'");
  }
  seen |= bit;
}

void require_seen(unsigned seen, unsigned bit, const char* key) {
  if (!(seen & bit)) {
    throw std::invalid_argument(std::string("missing field '") + key + "'");
  }
}

/// snprintf into a stack buffer, growing onto the heap instead of silently
/// truncating when the rendered line is longer than the buffer.
template <class... Args>
std::string format_line(const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n < 0) throw std::runtime_error("encode: snprintf format error");
  if (static_cast<std::size_t>(n) < sizeof buf) {
    return std::string(buf, static_cast<std::size_t>(n));
  }
  std::string out(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(out.data(), out.size(), fmt, args...);
  out.resize(static_cast<std::size_t>(n));
  return out;
}

}  // namespace

std::string error_excerpt(std::string_view s, std::size_t max_len) {
  if (s.size() <= max_len) return std::string(s);
  return std::string(s.substr(0, max_len)) + "...";
}

std::string encode(const checkin_request& m) {
  return format_line(
      "CHECKIN client=%llu lat=%.6f lon=%.6f t=%.3f net=%u "
      "active=%u device=%s",
      static_cast<unsigned long long>(m.client_id), m.pos.lat_deg,
      m.pos.lon_deg, m.time_s, m.network_index, m.active_in_zone,
      m.device.c_str());
}

std::string encode(const task_assignment& m) {
  return format_line(
      "TASK kind=%s net=%u tcp_bytes=%llu udp_packets=%u "
      "ping_count=%u",
      trace::to_string(m.kind).c_str(), m.network_index,
      static_cast<unsigned long long>(m.tcp_bytes), m.udp_packets,
      m.ping_count);
}

std::string encode(const measurement_report& m) {
  // The record payload reuses the CSV trace schema verbatim, so reports can
  // be appended straight into dataset files.
  return "REPORT client=" + std::to_string(m.client_id) + " csv=" +
         trace::to_csv(m.record);
}

std::string encode_report_batch(
    std::span<const trace::measurement_record> recs) {
  std::string out = "REPORTB " + std::to_string(recs.size());
  for (const auto& rec : recs) {
    out += '\n';
    out += trace::to_csv(rec);
  }
  return out;
}

std::string encode_idle() { return "IDLE"; }

std::string encode_error(const std::string& reason) {
  return "ERR " + reason;
}

std::string_view message_type(std::string_view line) {
  const std::size_t sp = line.find_first_of(" \t\r\n");
  const std::string_view tag =
      sp == std::string_view::npos ? line : line.substr(0, sp);
  // Return the static literal, not a view into the caller's line, so the
  // result stays valid after the line's buffer dies.
  for (const std::string_view known : {"CHECKIN", "TASK", "REPORT", "REPORTB",
                                       "IDLE", "ACK", "ERR", "STATS"}) {
    if (tag == known) return known;
  }
  return {};
}

checkin_request decode_checkin(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "CHECKIN", line);
  enum : unsigned {
    f_client = 1u << 0,
    f_lat = 1u << 1,
    f_lon = 1u << 2,
    f_t = 1u << 3,
    f_net = 1u << 4,
    f_active = 1u << 5,
    f_device = 1u << 6,
  };
  checkin_request m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "client") {
      mark_seen(seen, f_client, f.key);
      m.client_id = parse_u64(f.value, f.key);
    } else if (f.key == "lat") {
      mark_seen(seen, f_lat, f.key);
      m.pos.lat_deg = parse_double(f.value, f.key);
    } else if (f.key == "lon") {
      mark_seen(seen, f_lon, f.key);
      m.pos.lon_deg = parse_double(f.value, f.key);
    } else if (f.key == "t") {
      mark_seen(seen, f_t, f.key);
      m.time_s = parse_double(f.value, f.key);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network_index = parse_u32(f.value, f.key);
    } else if (f.key == "active") {
      mark_seen(seen, f_active, f.key);
      m.active_in_zone = parse_u32(f.value, f.key);
    } else if (f.key == "device") {
      mark_seen(seen, f_device, f.key);
      m.device.assign(f.value);
    }
    // Unknown keys are tolerated and ignored (forward compatibility), same
    // as the old map-based parser which only looked up the fields it needed.
  }
  require_seen(seen, f_client, "client");
  require_seen(seen, f_lat, "lat");
  require_seen(seen, f_lon, "lon");
  require_seen(seen, f_t, "t");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_active, "active");
  require_seen(seen, f_device, "device");
  return m;
}

task_assignment decode_task(std::string_view line) {
  token_cursor c{line};
  expect_tag(c, "TASK", line);
  enum : unsigned {
    f_kind = 1u << 0,
    f_net = 1u << 1,
    f_tcp_bytes = 1u << 2,
    f_udp_packets = 1u << 3,
    f_ping_count = 1u << 4,
  };
  task_assignment m;
  unsigned seen = 0;
  while (const auto tok = c.next()) {
    const kv f = split_kv(*tok);
    if (f.key == "kind") {
      mark_seen(seen, f_kind, f.key);
      m.kind = trace::probe_kind_from_string(f.value);
    } else if (f.key == "net") {
      mark_seen(seen, f_net, f.key);
      m.network_index = parse_u32(f.value, f.key);
    } else if (f.key == "tcp_bytes") {
      mark_seen(seen, f_tcp_bytes, f.key);
      m.tcp_bytes = parse_u64(f.value, f.key);
    } else if (f.key == "udp_packets") {
      mark_seen(seen, f_udp_packets, f.key);
      m.udp_packets = parse_u32(f.value, f.key);
    } else if (f.key == "ping_count") {
      mark_seen(seen, f_ping_count, f.key);
      m.ping_count = parse_u32(f.value, f.key);
    }
  }
  require_seen(seen, f_kind, "kind");
  require_seen(seen, f_net, "net");
  require_seen(seen, f_tcp_bytes, "tcp_bytes");
  require_seen(seen, f_udp_packets, "udp_packets");
  require_seen(seen, f_ping_count, "ping_count");
  return m;
}

measurement_report decode_report(std::string_view line) {
  // REPORT client=<id> csv=<csv line with commas and no spaces>
  constexpr std::string_view prefix = "REPORT client=";
  if (line.substr(0, prefix.size()) != prefix) {
    throw std::invalid_argument("expected REPORT message");
  }
  // The client id is the run of characters up to the next space, which must
  // open " csv=" -- a single memchr instead of a substring search.
  const std::size_t csv_pos = line.find(' ', prefix.size());
  if (csv_pos == std::string_view::npos ||
      line.substr(csv_pos, 5) != " csv=") {
    throw std::invalid_argument("REPORT missing csv field");
  }
  measurement_report m;
  const std::string_view id = line.substr(prefix.size(),
                                          csv_pos - prefix.size());
  // Exact full-width parse: the old std::stoull path both truncated at the
  // first non-digit (silent misparse) and ids never hit it above 2^53
  // unscathed when they travelled via need_u64's double.
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(id.data(), id.data() + id.size(), v);
  if (ec != std::errc{} || end != id.data() + id.size() || id.empty()) {
    throw std::invalid_argument("REPORT bad client id");
  }
  m.client_id = v;
  m.record = trace::from_csv(line.substr(csv_pos + 5));
  return m;
}

std::vector<trace::measurement_record> decode_report_batch(
    std::string_view frame) {
  const std::size_t nl = frame.find('\n');
  const std::string_view header =
      nl == std::string_view::npos ? frame : frame.substr(0, nl);
  token_cursor c{header};
  expect_tag(c, "REPORTB", header);
  const auto count_tok = c.next();
  if (!count_tok) {
    throw std::invalid_argument("REPORTB missing record count");
  }
  const std::uint64_t n = parse_u64(*count_tok, "count");
  if (c.next()) {
    throw std::invalid_argument("REPORTB header has trailing tokens");
  }
  if (n > max_report_batch) {
    throw std::invalid_argument("REPORTB count " + std::to_string(n) +
                                " exceeds max " +
                                std::to_string(max_report_batch));
  }
  std::vector<trace::measurement_record> out;
  out.reserve(static_cast<std::size_t>(n));
  std::size_t produced = 0;
  std::string_view rest =
      nl == std::string_view::npos ? std::string_view{} : frame.substr(nl + 1);
  while (!rest.empty()) {
    if (produced == n) {
      throw std::invalid_argument("REPORTB count mismatch: header says " +
                                  std::to_string(n) + ", payload has more");
    }
    const std::size_t e = rest.find('\n');
    const std::string_view payload =
        e == std::string_view::npos ? rest : rest.substr(0, e);
    try {
      out.push_back(trace::from_csv(payload));
    } catch (const std::invalid_argument& ex) {
      throw std::invalid_argument("REPORTB record " +
                                  std::to_string(produced) + ": " + ex.what());
    }
    ++produced;
    if (e == std::string_view::npos) break;
    rest = rest.substr(e + 1);  // a single trailing '\n' ends the frame
  }
  if (produced != n) {
    throw std::invalid_argument("REPORTB count mismatch: header says " +
                                std::to_string(n) + ", got " +
                                std::to_string(produced) + " records");
  }
  return out;
}

}  // namespace wiscape::proto

#include "trace/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace wiscape::trace {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

double to_double(const std::string& s, const char* field) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("bad CSV field ") + field + ": '" +
                                s + "'");
  }
}

int to_int(const std::string& s, const char* field) {
  return static_cast<int>(to_double(s, field));
}

}  // namespace

std::string csv_header() {
  return "time_s,network,lat,lon,speed_mps,kind,success,throughput_bps,"
         "loss_rate,jitter_s,rtt_s,ping_sent,ping_failures,rssi_dbm,device,client_id";
}

std::string to_csv(const measurement_record& r) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%.3f,%s,%.6f,%.6f,%.2f,%s,%d,%.1f,%.6f,%.6f,%.6f,%d,%d,%.1f,%s,%llu",
                r.time_s, r.network.c_str(), r.pos.lat_deg, r.pos.lon_deg,
                r.speed_mps, to_string(r.kind).c_str(), r.success ? 1 : 0,
                r.throughput_bps, r.loss_rate, r.jitter_s, r.rtt_s,
                r.ping_sent, r.ping_failures, r.rssi_dbm, r.device.c_str(),
                static_cast<unsigned long long>(r.client_id));
  return buf;
}

measurement_record from_csv(const std::string& line) {
  const auto f = split(line, ',');
  if (f.size() != 16) {
    throw std::invalid_argument("CSV record needs 16 fields, got " +
                                std::to_string(f.size()));
  }
  measurement_record r;
  r.time_s = to_double(f[0], "time_s");
  r.network = f[1];
  r.pos = {to_double(f[2], "lat"), to_double(f[3], "lon")};
  r.speed_mps = to_double(f[4], "speed_mps");
  r.kind = probe_kind_from_string(f[5]);
  r.success = to_int(f[6], "success") != 0;
  r.throughput_bps = to_double(f[7], "throughput_bps");
  r.loss_rate = to_double(f[8], "loss_rate");
  r.jitter_s = to_double(f[9], "jitter_s");
  r.rtt_s = to_double(f[10], "rtt_s");
  r.ping_sent = to_int(f[11], "ping_sent");
  r.ping_failures = to_int(f[12], "ping_failures");
  r.rssi_dbm = to_double(f[13], "rssi_dbm");
  r.device = f[14];
  r.client_id = static_cast<std::uint64_t>(to_double(f[15], "client_id"));
  return r;
}

void write_csv(std::ostream& os, const dataset& ds) {
  os << csv_header() << '\n';
  for (const auto& r : ds.records()) os << to_csv(r) << '\n';
}

void write_csv_file(const std::string& path, const dataset& ds) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(os, ds);
}

dataset read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("empty CSV input");
  }
  if (line != csv_header()) {
    throw std::invalid_argument("CSV header mismatch: '" + line + "'");
  }
  dataset ds;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ds.add(from_csv(line));
  }
  return ds;
}

dataset read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(is);
}

}  // namespace wiscape::trace

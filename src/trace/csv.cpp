#include "trace/csv.h"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace wiscape::trace {

namespace {

/// Clips a field echoed into an error message so a multi-megabyte garbage
/// input cannot be reflected verbatim into the reason string.
std::string clip(std::string_view s, std::size_t max_len = 80) {
  if (s.size() <= max_len) return std::string(s);
  return std::string(s.substr(0, max_len)) + "...";
}

/// Exact decimal fast path for the fixed-notation values to_csv emits
/// ("12345.500", "-89.400000"): with the mantissa under 10^15 < 2^53 and a
/// fractional power of ten that is itself exactly representable, one IEEE
/// divide rounds exactly once -- bit-identical to std::from_chars, at a
/// fraction of its cost. Anything else (exponents, inf/nan, overlong or
/// malformed digits) returns false and takes the from_chars path.
bool parse_simple_decimal(std::string_view s, double& out) {
  static constexpr double kPow10[23] = {
      1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
      1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};
  const char* p = s.data();
  const char* const e = p + s.size();
  if (p == e) return false;
  const bool neg = *p == '-';
  p += neg;
  std::uint64_t mant = 0;
  const char* const int_start = p;
  while (p != e && static_cast<unsigned>(*p - '0') <= 9u) {
    mant = mant * 10 + static_cast<std::uint64_t>(*p - '0');
    ++p;
  }
  std::size_t digits = static_cast<std::size_t>(p - int_start);
  std::size_t frac = 0;
  if (p != e && *p == '.') {
    ++p;
    const char* const frac_start = p;
    while (p != e && static_cast<unsigned>(*p - '0') <= 9u) {
      mant = mant * 10 + static_cast<std::uint64_t>(*p - '0');
      ++p;
    }
    frac = static_cast<std::size_t>(p - frac_start);
    // A trailing dot with no fraction ("1."): from_chars treats it as a
    // partial parse, so it must not shortcut here.
    if (frac == 0) return false;
    digits += frac;
  }
  // >15 digits can need more than one rounding (and the mantissa may have
  // wrapped); leftover chars mean exponents/inf/nan/garbage. Both defer.
  if (p != e || digits == 0 || digits > 15 || frac > 22) return false;
  const double v = frac ? static_cast<double>(mant) / kPow10[frac]
                        : static_cast<double>(mant);
  out = neg ? -v : v;
  return true;
}

double to_double(std::string_view s, const char* field) {
  double v = 0.0;
  if (parse_simple_decimal(s, v)) return v;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    throw std::invalid_argument(std::string("bad CSV field ") + field + ": '" +
                                clip(s) + "'");
  }
  return v;
}

int to_int(std::string_view s, const char* field) {
  int v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    throw std::invalid_argument(std::string("bad CSV field ") + field + ": '" +
                                clip(s) + "'");
  }
  return v;
}

std::uint64_t to_u64(std::string_view s, const char* field) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size()) {
    throw std::invalid_argument(std::string("bad CSV field ") + field + ": '" +
                                clip(s) + "'");
  }
  return v;
}

/// snprintf into a stack buffer, growing onto the heap instead of silently
/// truncating when the rendered line is longer than the buffer.
template <class... Args>
std::string format_line(const char* fmt, Args... args) {
  char buf[320];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n < 0) throw std::runtime_error("to_csv: snprintf format error");
  if (static_cast<std::size_t>(n) < sizeof buf) {
    return std::string(buf, static_cast<std::size_t>(n));
  }
  std::string out(static_cast<std::size_t>(n) + 1, '\0');
  std::snprintf(out.data(), out.size(), fmt, args...);
  out.resize(static_cast<std::size_t>(n));
  return out;
}

}  // namespace

std::string csv_header() {
  return "time_s,network,lat,lon,speed_mps,kind,success,throughput_bps,"
         "loss_rate,jitter_s,rtt_s,ping_sent,ping_failures,rssi_dbm,device,client_id";
}

std::string to_csv(const measurement_record& r) {
  return format_line(
      "%.3f,%s,%.6f,%.6f,%.2f,%s,%d,%.1f,%.6f,%.6f,%.6f,%d,%d,%.1f,%s,%llu",
      r.time_s, r.network.c_str(), r.pos.lat_deg, r.pos.lon_deg, r.speed_mps,
      to_string(r.kind).c_str(), r.success ? 1 : 0, r.throughput_bps,
      r.loss_rate, r.jitter_s, r.rtt_s, r.ping_sent, r.ping_failures,
      r.rssi_dbm, r.device.c_str(),
      static_cast<unsigned long long>(r.client_id));
}

namespace {

/// Cuts comma-separated fields off the front of a record in one fused
/// pass -- a record is ~100 bytes of ~6-byte fields, where a plain
/// byte-compare loop beats sixteen memchr calls and parsing each field as
/// it is cut avoids a second walk. After the final field `p` rests one
/// past `end`, which is how exhaustion is told apart from a last empty
/// field.
struct field_cursor {
  const char* p;
  const char* const end;
  bool exhausted() const { return p > end; }
  std::string_view cut() {
    const char* const s = p;
    while (p != end && *p != ',') ++p;
    const std::string_view f(s, static_cast<std::size_t>(p - s));
    p = (p == end) ? end + 1 : p + 1;
    return f;
  }
};

[[noreturn]] void throw_field_count(std::string_view line) {
  std::size_t count = 1;
  for (const char c : line) count += c == ',';
  throw std::invalid_argument("CSV record needs 16 fields, got " +
                              std::to_string(count));
}

std::string_view next_field(field_cursor& c, std::string_view line) {
  if (c.exhausted()) throw_field_count(line);
  return c.cut();
}

}  // namespace

measurement_record from_csv(std::string_view line) {
  field_cursor c{line.data(), line.data() + line.size()};
  measurement_record r;
  r.time_s = to_double(next_field(c, line), "time_s");
  r.network.assign(next_field(c, line));
  r.pos.lat_deg = to_double(next_field(c, line), "lat");
  r.pos.lon_deg = to_double(next_field(c, line), "lon");
  r.speed_mps = to_double(next_field(c, line), "speed_mps");
  r.kind = probe_kind_from_string(next_field(c, line));
  r.success = to_int(next_field(c, line), "success") != 0;
  r.throughput_bps = to_double(next_field(c, line), "throughput_bps");
  r.loss_rate = to_double(next_field(c, line), "loss_rate");
  r.jitter_s = to_double(next_field(c, line), "jitter_s");
  r.rtt_s = to_double(next_field(c, line), "rtt_s");
  r.ping_sent = to_int(next_field(c, line), "ping_sent");
  r.ping_failures = to_int(next_field(c, line), "ping_failures");
  r.rssi_dbm = to_double(next_field(c, line), "rssi_dbm");
  r.device.assign(next_field(c, line));
  // Exact 64-bit parse: ids above 2^53 used to be corrupted by a double
  // round-trip.
  r.client_id = to_u64(next_field(c, line), "client_id");
  if (!c.exhausted()) throw_field_count(line);
  return r;
}

void write_csv(std::ostream& os, const dataset& ds) {
  os << csv_header() << '\n';
  for (const auto& r : ds.records()) os << to_csv(r) << '\n';
}

void write_csv_file(const std::string& path, const dataset& ds) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  write_csv(os, ds);
}

dataset read_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("empty CSV input");
  }
  if (line != csv_header()) {
    throw std::invalid_argument("CSV header mismatch: '" + clip(line) + "'");
  }
  dataset ds;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ds.add(from_csv(line));
  }
  return ds;
}

dataset read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return read_csv(is);
}

}  // namespace wiscape::trace

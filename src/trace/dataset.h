// Datasets: bags of measurement records with the filtering/grouping verbs
// the paper's analysis uses (by network, probe kind, time span, zone).
#pragma once

#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "geo/zone_grid.h"
#include "stats/time_series.h"
#include "trace/record.h"

namespace wiscape::trace {

class dataset {
 public:
  dataset() = default;
  explicit dataset(std::vector<measurement_record> records)
      : records_(std::move(records)) {}

  void add(measurement_record r) { records_.push_back(std::move(r)); }
  void append(const dataset& other);

  const std::vector<measurement_record>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  /// Records matching a predicate.
  dataset filter(const std::function<bool(const measurement_record&)>& pred) const;

  /// Successful records of one network and probe kind.
  dataset select(std::string_view network, probe_kind kind) const;

  /// Records with time in [t0, t1).
  dataset between(double t0, double t1) const;

  /// Values of a metric over successful records of the matching kind
  /// (optionally one network; empty = all).
  std::vector<double> metric_values(metric m, std::string_view network = {}) const;

  /// (time, value) series of a metric, same filtering as metric_values.
  stats::time_series metric_series(metric m, std::string_view network = {}) const;

  /// Groups record indices by grid zone.
  std::unordered_map<geo::zone_id, std::vector<std::size_t>, geo::zone_id_hash>
  group_by_zone(const geo::zone_grid& grid) const;

  /// Per-zone values of a metric (successful, matching kind, one network or
  /// all when empty), keeping only zones with at least `min_samples` values.
  std::unordered_map<geo::zone_id, std::vector<double>, geo::zone_id_hash>
  zone_metric_values(const geo::zone_grid& grid, metric m,
                     std::string_view network = {},
                     std::size_t min_samples = 1) const;

 private:
  std::vector<measurement_record> records_;
};

}  // namespace wiscape::trace

// Trace hygiene: the cleaning pass every crowd-sourced pipeline needs.
//
// Field data from volunteer devices arrives dirty -- GPS glitches that
// teleport a bus across town, duplicated uploads after flaky connections,
// readings from the future, zero-length probes. WiScape's statistics assume
// none of that, so datasets go through this scrub first. Each rule is
// individually toggleable and the report says what was dropped and why
// (silent data loss is how measurement studies go wrong).
#pragma once

#include <string>

#include "trace/dataset.h"

namespace wiscape::trace {

struct hygiene_config {
  /// Drop records whose GPS fix implies an impossible jump from the same
  /// client stream: faster than this between consecutive records.
  /// (Applied per network+device stream ordered by time.) 0 disables.
  double max_plausible_speed_mps = 70.0;
  /// Drop physically impossible metric values.
  bool drop_negative_metrics = true;
  /// Drop throughputs above this (a 2011 3G link cannot beat it). 0 disables.
  double max_throughput_bps = 20e6;
  /// Drop exact duplicates (same time, network, position, kind).
  bool drop_duplicates = true;
  /// Drop records timestamped outside [min_time_s, max_time_s); both 0
  /// disables the window.
  double min_time_s = 0.0;
  double max_time_s = 0.0;
};

struct hygiene_report {
  std::size_t input = 0;
  std::size_t kept = 0;
  std::size_t dropped_teleport = 0;
  std::size_t dropped_negative = 0;
  std::size_t dropped_implausible_rate = 0;
  std::size_t dropped_duplicate = 0;
  std::size_t dropped_out_of_window = 0;

  std::size_t dropped() const noexcept { return input - kept; }
  std::string summary() const;
};

/// Scrubs `ds` according to `cfg`; the cleaned dataset is written to `out`
/// and the report returned. `out` may alias nothing (it is cleared first).
hygiene_report scrub(const dataset& ds, const hygiene_config& cfg,
                     dataset& out);

}  // namespace wiscape::trace

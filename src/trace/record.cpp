#include "trace/record.h"

#include <stdexcept>

namespace wiscape::trace {

std::string to_string(probe_kind k) {
  switch (k) {
    case probe_kind::tcp_download:
      return "tcp";
    case probe_kind::udp_burst:
      return "udp";
    case probe_kind::ping:
      return "ping";
    case probe_kind::udp_uplink:
      return "udp_up";
  }
  return "?";
}

probe_kind probe_kind_from_string(std::string_view s) {
  if (s == "tcp") return probe_kind::tcp_download;
  if (s == "udp") return probe_kind::udp_burst;
  if (s == "ping") return probe_kind::ping;
  if (s == "udp_up") return probe_kind::udp_uplink;
  throw std::invalid_argument("unknown probe kind: " + std::string(s));
}

std::string to_string(metric m) {
  switch (m) {
    case metric::tcp_throughput_bps:
      return "tcp_throughput";
    case metric::udp_throughput_bps:
      return "udp_throughput";
    case metric::loss_rate:
      return "loss_rate";
    case metric::jitter_s:
      return "jitter";
    case metric::rtt_s:
      return "rtt";
    case metric::uplink_throughput_bps:
      return "uplink_throughput";
  }
  return "?";
}

metric metric_from_string(std::string_view s) {
  // Hot on the wire QUERY path (one call per decoded query): compare
  // against static names instead of materialising to_string() temporaries.
  struct entry {
    std::string_view name;
    metric m;
  };
  static constexpr entry kNames[] = {
      {"tcp_throughput", metric::tcp_throughput_bps},
      {"udp_throughput", metric::udp_throughput_bps},
      {"loss_rate", metric::loss_rate},
      {"jitter", metric::jitter_s},
      {"rtt", metric::rtt_s},
      {"uplink_throughput", metric::uplink_throughput_bps},
  };
  for (const auto& e : kNames) {
    if (e.name == s) return e.m;
  }
  throw std::invalid_argument("unknown metric: " + std::string(s));
}

probe_kind kind_for(metric m) noexcept {
  switch (m) {
    case metric::tcp_throughput_bps:
      return probe_kind::tcp_download;
    case metric::udp_throughput_bps:
    case metric::loss_rate:
    case metric::jitter_s:
      return probe_kind::udp_burst;
    case metric::rtt_s:
      return probe_kind::ping;
    case metric::uplink_throughput_bps:
      return probe_kind::udp_uplink;
  }
  return probe_kind::ping;
}

std::span<const metric> metrics_of(probe_kind k) noexcept {
  // Order matters: the coordinator folds a record's metrics in this order,
  // and change-alert ordering is observable output.
  static constexpr metric tcp[] = {metric::tcp_throughput_bps};
  static constexpr metric udp[] = {metric::udp_throughput_bps,
                                   metric::loss_rate, metric::jitter_s};
  static constexpr metric icmp[] = {metric::rtt_s};
  static constexpr metric up[] = {metric::uplink_throughput_bps};
  switch (k) {
    case probe_kind::tcp_download:
      return tcp;
    case probe_kind::udp_burst:
      return udp;
    case probe_kind::ping:
      return icmp;
    case probe_kind::udp_uplink:
      return up;
  }
  return {};
}

double value_of(const measurement_record& r, metric m) noexcept {
  if (r.kind != kind_for(m)) return 0.0;
  switch (m) {
    case metric::tcp_throughput_bps:
    case metric::udp_throughput_bps:
    case metric::uplink_throughput_bps:
      return r.throughput_bps;
    case metric::loss_rate:
      return r.loss_rate;
    case metric::jitter_s:
      return r.jitter_s;
    case metric::rtt_s:
      return r.rtt_s;
  }
  return 0.0;
}

}  // namespace wiscape::trace

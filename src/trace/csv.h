// CSV import/export of datasets.
//
// The paper promises its traces via CRAWDAD; this is the interchange layer:
// a flat, self-describing CSV schema so synthetic datasets can be exported,
// inspected, and re-loaded (or replaced with real field data).
//
// Parsing is a zero-allocation fast path: from_csv() walks the line as a
// std::string_view, numeric fields go through std::from_chars (no locale,
// no istringstream, no temporary substrings), and only the two string
// fields of the decoded record allocate -- short names stay in SSO. Error
// messages (the cold path) may allocate and echo at most a clipped excerpt
// of the offending field.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/dataset.h"

namespace wiscape::trace {

/// Header line of the CSV schema (time,network,lat,lon,speed,kind,...).
std::string csv_header();

/// Renders one record as a CSV line (no trailing newline). Never truncates:
/// oversized fields (e.g. a long device name) grow the output instead.
std::string to_csv(const measurement_record& r);

/// Parses one CSV line. Throws std::invalid_argument on malformed input
/// (wrong field count, non-numeric field, trailing junk in a number).
/// Integer fields -- including the 64-bit client_id -- are parsed exactly
/// with std::from_chars, never through a double.
measurement_record from_csv(std::string_view line);

/// Writes `ds` with header to a stream / file.
void write_csv(std::ostream& os, const dataset& ds);
void write_csv_file(const std::string& path, const dataset& ds);

/// Reads a dataset written by write_csv. Throws std::runtime_error when the
/// file cannot be opened and std::invalid_argument on schema mismatch.
dataset read_csv(std::istream& is);
dataset read_csv_file(const std::string& path);

}  // namespace wiscape::trace

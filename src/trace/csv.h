// CSV import/export of datasets.
//
// The paper promises its traces via CRAWDAD; this is the interchange layer:
// a flat, self-describing CSV schema so synthetic datasets can be exported,
// inspected, and re-loaded (or replaced with real field data).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/dataset.h"

namespace wiscape::trace {

/// Header line of the CSV schema (time,network,lat,lon,speed,kind,...).
std::string csv_header();

/// Renders one record as a CSV line (no trailing newline).
std::string to_csv(const measurement_record& r);

/// Parses one CSV line. Throws std::invalid_argument on malformed input.
measurement_record from_csv(const std::string& line);

/// Writes `ds` with header to a stream / file.
void write_csv(std::ostream& os, const dataset& ds);
void write_csv_file(const std::string& path, const dataset& ds);

/// Reads a dataset written by write_csv. Throws std::runtime_error when the
/// file cannot be opened and std::invalid_argument on schema mismatch.
dataset read_csv(std::istream& is);
dataset read_csv_file(const std::string& path);

}  // namespace wiscape::trace

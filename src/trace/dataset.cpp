#include "trace/dataset.h"

namespace wiscape::trace {

void dataset::append(const dataset& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

dataset dataset::filter(
    const std::function<bool(const measurement_record&)>& pred) const {
  dataset out;
  for (const auto& r : records_) {
    if (pred(r)) out.add(r);
  }
  return out;
}

dataset dataset::select(std::string_view network, probe_kind kind) const {
  return filter([&](const measurement_record& r) {
    return r.success && r.kind == kind &&
           (network.empty() || r.network == network);
  });
}

dataset dataset::between(double t0, double t1) const {
  return filter([&](const measurement_record& r) {
    return r.time_s >= t0 && r.time_s < t1;
  });
}

std::vector<double> dataset::metric_values(metric m,
                                           std::string_view network) const {
  const probe_kind k = kind_for(m);
  std::vector<double> out;
  for (const auto& r : records_) {
    if (!r.success || r.kind != k) continue;
    if (!network.empty() && r.network != network) continue;
    out.push_back(value_of(r, m));
  }
  return out;
}

stats::time_series dataset::metric_series(metric m,
                                          std::string_view network) const {
  const probe_kind k = kind_for(m);
  stats::time_series out;
  for (const auto& r : records_) {
    if (!r.success || r.kind != k) continue;
    if (!network.empty() && r.network != network) continue;
    out.add(r.time_s, value_of(r, m));
  }
  return out;
}

std::unordered_map<geo::zone_id, std::vector<std::size_t>, geo::zone_id_hash>
dataset::group_by_zone(const geo::zone_grid& grid) const {
  std::unordered_map<geo::zone_id, std::vector<std::size_t>, geo::zone_id_hash>
      out;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out[grid.zone_of(records_[i].pos)].push_back(i);
  }
  return out;
}

std::unordered_map<geo::zone_id, std::vector<double>, geo::zone_id_hash>
dataset::zone_metric_values(const geo::zone_grid& grid, metric m,
                            std::string_view network,
                            std::size_t min_samples) const {
  const probe_kind k = kind_for(m);
  std::unordered_map<geo::zone_id, std::vector<double>, geo::zone_id_hash> out;
  for (const auto& r : records_) {
    if (!r.success || r.kind != k) continue;
    if (!network.empty() && r.network != network) continue;
    out[grid.zone_of(r.pos)].push_back(value_of(r, m));
  }
  for (auto it = out.begin(); it != out.end();) {
    if (it->second.size() < min_samples) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace wiscape::trace

#include "trace/hygiene.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

namespace wiscape::trace {

std::string hygiene_report::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "kept %zu/%zu (teleport %zu, negative %zu, implausible %zu, "
                "duplicate %zu, out-of-window %zu)",
                kept, input, dropped_teleport, dropped_negative,
                dropped_implausible_rate, dropped_duplicate,
                dropped_out_of_window);
  return buf;
}

hygiene_report scrub(const dataset& ds, const hygiene_config& cfg,
                     dataset& out) {
  hygiene_report rep;
  rep.input = ds.size();
  out = dataset{};

  // Pass 1: order record indices per client stream by time for the
  // teleport check (two different clients are never a teleport).
  std::map<std::tuple<std::uint64_t, std::string, std::string>,
           std::vector<std::size_t>>
      streams;
  const auto& records = ds.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    streams[{records[i].client_id, records[i].network, records[i].device}]
        .push_back(i);
  }
  std::vector<bool> teleport(records.size(), false);
  if (cfg.max_plausible_speed_mps > 0.0) {
    for (auto& [_, idx] : streams) {
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return records[a].time_s < records[b].time_s;
      });
      // Compare each record against the last *kept* record, not its raw
      // predecessor: otherwise dropping a glitch re-pairs its neighbours
      // and a second scrub pass would drop more (non-idempotent).
      std::size_t anchor = idx[0];
      for (std::size_t k = 1; k < idx.size(); ++k) {
        const auto& prev = records[anchor];
        const auto& cur = records[idx[k]];
        const double dt = cur.time_s - prev.time_s;
        if (dt > 0.0) {
          const double dist = geo::distance_m(prev.pos, cur.pos);
          if (dist / dt > cfg.max_plausible_speed_mps) {
            teleport[idx[k]] = true;
            continue;  // anchor stays on the last kept record
          }
        }
        anchor = idx[k];
      }
    }
  }

  std::set<std::tuple<double, std::string, double, double, int>> seen;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];

    if (cfg.max_time_s > cfg.min_time_s &&
        (r.time_s < cfg.min_time_s || r.time_s >= cfg.max_time_s)) {
      ++rep.dropped_out_of_window;
      continue;
    }
    if (teleport[i]) {
      ++rep.dropped_teleport;
      continue;
    }
    if (cfg.drop_negative_metrics &&
        (r.throughput_bps < 0.0 || r.loss_rate < 0.0 || r.loss_rate > 1.0 ||
         r.jitter_s < 0.0 || r.rtt_s < 0.0 || r.ping_failures < 0 ||
         r.ping_failures > r.ping_sent)) {
      ++rep.dropped_negative;
      continue;
    }
    if (cfg.max_throughput_bps > 0.0 &&
        r.throughput_bps > cfg.max_throughput_bps) {
      ++rep.dropped_implausible_rate;
      continue;
    }
    if (cfg.drop_duplicates) {
      const auto key = std::make_tuple(r.time_s, r.network, r.pos.lat_deg,
                                       r.pos.lon_deg, static_cast<int>(r.kind));
      if (!seen.insert(key).second) {
        ++rep.dropped_duplicate;
        continue;
      }
    }
    out.add(r);
  }
  rep.kept = out.size();
  return rep;
}

}  // namespace wiscape::trace

// The measurement sample schema (paper Table 1: packet sequence numbers,
// receive timestamps, GPS coordinates -- folded up to per-probe records).
//
// Every probe a client runs produces one measurement_record; datasets are
// bags of records; everything above (zone tables, epochs, NKLD, validation)
// consumes records without caring whether they came from the simulator or a
// CRAWDAD-style CSV of field data.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "geo/lat_lon.h"

namespace wiscape::trace {

/// Sentinel for measurement_record::network_id: the name has not been
/// resolved against an interner (matches core::network_interner::npos).
inline constexpr std::uint16_t no_network_id = 0xFFFF;

/// What kind of probe produced a record.
enum class probe_kind {
  tcp_download,  ///< bulk TCP transfer, yields downlink throughput
  udp_burst,     ///< CBR UDP train, yields throughput/loss/jitter
  ping,          ///< UDP/ICMP ping train, yields RTT and failure counts
  udp_uplink,    ///< client->server CBR train (Table 1's uplink direction)
};

std::string to_string(probe_kind k);
/// Parses the strings produced by to_string(probe_kind); throws
/// std::invalid_argument otherwise. Does not allocate on success.
probe_kind probe_kind_from_string(std::string_view s);

/// One collected measurement sample.
struct measurement_record {
  double time_s = 0.0;        ///< probe start, seconds since epoch
  std::string network;        ///< operator name ("NetA"/"NetB"/"NetC")
  geo::lat_lon pos;           ///< GPS fix at probe start
  double speed_mps = 0.0;     ///< vehicle speed at probe start
  /// Device category that measured ("laptop", "phone", ...). Composability
  /// only holds within a category (Sec 3.3); core::normalize estimates the
  /// cross-category scale.
  std::string device = "laptop";
  /// Stable identifier of the measuring client (0 = unknown). Used for
  /// per-client accounting and for ordering each client's GPS stream in
  /// trace::hygiene (two distinct clients are not a "teleport").
  std::uint64_t client_id = 0;
  /// Cached interned id of `network`, resolved once at the wire boundary
  /// against the coordinator's fixed operator list (no_network_id when the
  /// record came from a path that did not resolve it, or the operator is
  /// not in the list). Purely an acceleration: consumers must validate the
  /// id maps back to `network` before trusting it, since records can cross
  /// process boundaries carrying a foreign interner's ids.
  std::uint16_t network_id = no_network_id;
  probe_kind kind = probe_kind::tcp_download;
  bool success = false;       ///< probe completed (coverage + no timeout)

  // Metric payloads; meaningful fields depend on `kind`, others stay 0.
  double throughput_bps = 0.0;
  double loss_rate = 0.0;
  double jitter_s = 0.0;
  double rtt_s = 0.0;
  int ping_sent = 0;
  int ping_failures = 0;
  /// Modem-reported signal strength at probe time (dBm; -999 = unknown).
  /// Recorded on every probe; the paper found RSSI uncorrelated with TCP
  /// throughput (Sec 5) and excluded it from the estimated metrics, so it
  /// is intentionally absent from the `metric` enum.
  double rssi_dbm = -999.0;
};

/// Metrics a record can be asked for (the paper's Sec 2 list).
enum class metric {
  tcp_throughput_bps,
  udp_throughput_bps,
  loss_rate,
  jitter_s,
  rtt_s,
  uplink_throughput_bps,
};

std::string to_string(metric m);

/// Parses the strings produced by to_string(metric); throws
/// std::invalid_argument otherwise.
metric metric_from_string(std::string_view s);

/// The probe kind that carries a metric.
probe_kind kind_for(metric m) noexcept;

/// The metrics a probe kind yields, in the canonical fold order the
/// coordinator applies them (alert ordering depends on this order staying
/// fixed). Views into static storage.
std::span<const metric> metrics_of(probe_kind k) noexcept;

/// Value of `m` in record `r`. Callers should pre-filter records by
/// kind_for(m) and success; mismatched kinds return 0.
double value_of(const measurement_record& r, metric m) noexcept;

}  // namespace wiscape::trace

// Deterministic fleet-scale scenario engine.
//
// A scenario is a tick-driven simulation of a whole WiScape deployment --
// a two-operator cellular build-out, a fleet of reporting clients, the
// sharded coordinator behind the wire protocol, an alert consumer, and a
// set of named stressors (flash crowds, operator outages, client clock
// skew, hostile clients, coordinator restarts, slow consumers, QoE-driven
// churn) -- with machine-checked invariants evaluated at every tick and at
// teardown (scenario/invariants.h).
//
// Determinism contract: one driver thread owns all wire traffic and all
// randomness fans out of the run seed via stats::rng_stream forks keyed by
// (role, client, tick), so the same (config, seed) produces a byte-identical
// tick log -- including runs with injected faults (scenario/injector.h keys
// fault decisions on deterministic invocation ordinals) and runs that kill
// and restore the coordinator mid-run through core::persist. The tick log
// records only driver-deterministic quantities; worker-side timing counters
// (drain batches, queue high-water) are deliberately excluded.
//
// The engine ingests through proto::coordinator_server::handle() -- real
// REPORTB/REPORT/QUERY/ALERTS frames over the v2 wire codec -- so every
// scenario exercises the same seams production traffic crosses. With
// stressors::over_tcp the same frames additionally cross a real loopback
// socket through net::tcp_server's epoll loops (connection_churn): the
// driver stays the single synchronous traffic source, so the determinism
// contract holds transport-independently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/injector.h"
#include "scenario/invariants.h"

namespace wiscape::scenario {

/// The named stress knobs a scenario composes. All default off.
struct stressors {
  /// Flash crowd: a stadium-style hotspot_event on every operator over
  /// [flash_start_s, flash_end_s), with a third of the fleet converging on
  /// the hotspot for its duration.
  bool flash_crowd = false;
  double flash_start_s = 600.0;
  double flash_end_s = 1500.0;
  /// Operator outage: a persistent full-outage trouble spot covering
  /// operator 0's core (probes there fail; the records flow through the
  /// rejected-report accounting).
  bool outage = false;
  /// Client clock skew: per-client N(0, sigma) offset applied to report
  /// timestamps; 0 disables.
  double clock_skew_sigma_s = 0.0;
  /// GPS jitter: per-report N(0, sigma_m) position noise in meters.
  double gps_jitter_m = 0.0;
  /// Hostile clients: replayed frames, NaN/absurd coordinates, an
  /// interner-exhaustion name flood pinned to one zone, malformed frames
  /// and duplicate REPORTB frames (exercising the PR 4 rejection paths).
  bool hostile = false;
  /// QoE churn: clients whose QUERY answers err by more than the threshold
  /// (relative to the simulated ground truth) withdraw from sampling.
  bool qoe_churn = false;
  double qoe_rel_error_threshold = 0.75;
  /// Alert-consumer pacing: ring capacity, drain cadence (ticks) and batch
  /// cap. A tiny ring with a slow consumer exercises dropped-accounting.
  std::size_t alert_ring_capacity = 1024;
  std::uint64_t alert_drain_every = 1;
  std::uint32_t alert_drain_max = 256;
  /// Kill the coordinator at the start of this tick, snapshot through
  /// core::persist, rebuild, restore, continue. Use with
  /// checkin_driven=false (shard task-rng state is not persisted).
  std::optional<std::uint64_t> restart_tick;
  /// Replicated mode (ISSUE 10): run a follower coordinator alongside the
  /// leader, snapshot-catch-up at start, pull the epoch stream (EPOCH ->
  /// EPOCHB frames through the leader's server) after every tick's flush,
  /// and assert the follower serves QUERYs at bounded staleness. The
  /// replica_lag fault site skips poll rounds. Use with
  /// checkin_driven=false when combined with kill_leader_tick (shard
  /// task-rng state is not replicated).
  bool replicate = false;
  /// With replicate: kill -9 the leader at the start of this tick -- no
  /// flush, no snapshot -- promote the follower through a wire PROMOTE
  /// frame, client-assisted-replay the ACKed records whose epochs the
  /// follower has not frozen, and serve the rest of the run from the
  /// promoted coordinator. The run's final published state must be
  /// bit-equal to an uninterrupted run's (the leader_kill regression
  /// compares through final_estb).
  std::optional<std::uint64_t> kill_leader_tick;
  /// Deliberately corrupt the driver's ack count at this tick -- proves the
  /// report-accounting invariant catches a real discrepancy.
  std::optional<std::uint64_t> sabotage_tick;
  /// Fault-injection schedule installed for the run (scenario/injector.h).
  std::vector<fault_rule> faults;
  /// Drive every wire exchange over a real loopback TCP connection through
  /// net::tcp_server (epoll front end) instead of calling the line handler
  /// in-process. net::line_client replies are byte-identical to handle(),
  /// so accounting and the tick log are transport-independent; the driver
  /// reconnects (and re-negotiates HELLO) through injected accept_fail
  /// storms, counting reconnects/refusals in the tick log's tcp= field.
  /// Not combined with `hostile` in the catalogue: hostile REPORTB frames
  /// deliberately lie about their line counts, which desynchronises stream
  /// framing on a persistent connection.
  bool over_tcp = false;
  /// With over_tcp: proactively drop and re-establish the driver's
  /// connection at the start of every Nth tick (connection churn through
  /// the full session lifecycle). 0 = never.
  std::uint64_t reconnect_every = 0;
  /// Drive the fleet's hot traffic (the REPORT/REPORTB submits and the QoE
  /// QUERY) through the binary wire v3 framing instead of the text codec;
  /// control traffic (HELLO/CHECKIN/ALERTS) stays text, as a v3 production
  /// client would. Composes with over_tcp, where the frames cross the real
  /// socket through line_client::request_frame -- the seam the
  /// frame_truncate fault fires at.
  bool wire_v3 = false;
};

struct scenario_config {
  std::string name = "unnamed";
  std::uint64_t ticks = 40;
  double tick_s = 60.0;
  std::size_t clients = 48;
  std::size_t shards = 4;
  bool synchronous = false;  ///< sharded_config::synchronous
  /// Issue a wire CHECKIN per client per tick (draws shard task rng).
  bool checkin_driven = true;
  /// Per-zone epoch duration (epoch_config::default_epoch_s).
  double epoch_s = 300.0;
  stressors stress;
};

struct scenario_result {
  std::string name;
  std::uint64_t seed = 0;
  bool passed = false;
  std::vector<violation> violations;
  /// One line per tick, driver-deterministic fields only: byte-identical
  /// across runs of the same (config, seed). Schema: EXPERIMENTS.md.
  std::string tick_log;
  /// Deterministic teardown dump: the final ESTB reply frames over every
  /// configured-operator stream, sorted by (zone, network, metric). Two
  /// runs that end in the same published state compare byte-equal here
  /// (the restart regression compares an interrupted run against an
  /// uninterrupted one through this field).
  std::string final_estb;
};

/// Runs one scenario to completion. The obs:: registry is process-global,
/// so scenarios must run one at a time per process (the engine reads
/// counter deltas, which tolerate prior accumulation but not concurrent
/// runs).
scenario_result run_scenario(const scenario_config& cfg, std::uint64_t seed);

}  // namespace wiscape::scenario

#include "scenario/invariants.h"

#include <sstream>

namespace wiscape::scenario {

std::string to_string(const violation& v) {
  std::ostringstream os;
  os << "tick=" << v.tick << " seed=" << v.seed << " " << v.invariant << ": "
     << v.detail;
  return os.str();
}

std::optional<std::string> check_report_accounting(const tick_accounting& a) {
  std::ostringstream os;
  if (a.submitted != a.acked + a.erred) {
    os << "submitted=" << a.submitted << " != acked=" << a.acked
       << " + erred=" << a.erred << " (a record vanished at the wire)";
    return os.str();
  }
  if (a.apply_errors_delta != 0) {
    os << "apply_errors_delta=" << a.apply_errors_delta
       << " (the apply path threw on wire-reachable input)";
    return os.str();
  }
  if (a.refused > a.erred) {
    os << "refused=" << a.refused << " > erred=" << a.erred
       << " (driver accounting bug: refused is a subset of erred)";
    return os.str();
  }
  const std::uint64_t dispatched = a.acked + (a.erred - a.refused);
  const std::uint64_t pipeline =
      a.accepted_delta + a.rejected_delta + a.dropped_delta;
  if (dispatched != pipeline) {
    os << "dispatched=" << dispatched << " (acked=" << a.acked << " + erred="
       << a.erred << " - refused=" << a.refused << ") != accepted_delta="
       << a.accepted_delta << " + rejected_delta=" << a.rejected_delta
       << " + dropped_delta=" << a.dropped_delta
       << " (a dispatched record missed every pipeline counter)";
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_alert_accounting(const alert_ledger& l) {
  std::ostringstream os;
  if (l.cursor > l.pushed) {
    os << "cursor=" << l.cursor << " > pushed=" << l.pushed
       << " (consumer saw sequences the ring never assigned)";
    return os.str();
  }
  if (l.served_total + l.dropped_total != l.cursor) {
    os << "served=" << l.served_total << " + dropped=" << l.dropped_total
       << " != cursor=" << l.cursor << " (an alert push is unaccounted)";
    return os.str();
  }
  if (l.fully_drained && l.cursor != l.pushed) {
    os << "fully drained consumer stopped at cursor=" << l.cursor
       << " with pushed=" << l.pushed << " (alerts lost without accounting)";
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_staleness(const staleness_probe& p) {
  // A stream's open epoch can span (last_sample - epoch_s, last_sample]; the
  // frozen epoch behind it starts at most one more epoch earlier. Anything
  // older means rollovers stopped while samples kept arriving.
  const double floor_s = p.last_sample_s - 2.0 * p.epoch_s - p.slack_s;
  if (p.latest_epoch_start_s < floor_s) {
    std::ostringstream os;
    os << "latest frozen epoch starts at " << p.latest_epoch_start_s
       << "s but samples reach " << p.last_sample_s << "s (bound "
       << floor_s << "s with epoch=" << p.epoch_s << "s)";
    return os.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_counter_monotone(
    const std::vector<obs::metric_sample>& prev,
    const std::vector<obs::metric_sample>& cur) {
  // Both are name-sorted; walk them as a merge. New names in `cur` are fine
  // (instruments register lazily); names vanishing from `cur` are not.
  std::size_t i = 0, j = 0;
  while (i < prev.size()) {
    if (!prev[i].monotone) {
      ++i;
      continue;
    }
    while (j < cur.size() && cur[j].name < prev[i].name) ++j;
    if (j == cur.size() || cur[j].name != prev[i].name) {
      return "monotone sample '" + prev[i].name +
             "' disappeared between snapshots";
    }
    if (cur[j].value < prev[i].value) {
      std::ostringstream os;
      os << "monotone sample '" << prev[i].name << "' decreased: "
         << prev[i].value << " -> " << cur[j].value;
      return os.str();
    }
    ++i;
  }
  return std::nullopt;
}

}  // namespace wiscape::scenario

#include "scenario/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "apps/estimate_knowledge.h"
#include "cellnet/deployment.h"
#include "cellnet/presets.h"
#include "core/estimate_view.h"
#include "core/persist.h"
#include "core/sharded_coordinator.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/messages.h"
#include "proto/server.h"
#include "proto/wire_v3.h"
#include "repl/replica.h"
#include "stats/rng.h"
#include "trace/record.h"

namespace wiscape::scenario {
namespace {

// Sort order shared with core::persist: scenarios and snapshots enumerate
// streams identically, so final_estb dumps compare byte-for-byte.
struct key_less {
  bool operator()(const core::estimate_key& a,
                  const core::estimate_key& b) const noexcept {
    if (a.zone.ix != b.zone.ix) return a.zone.ix < b.zone.ix;
    if (a.zone.iy != b.zone.iy) return a.zone.iy < b.zone.iy;
    if (a.network != b.network) return a.network < b.network;
    return static_cast<int>(a.metric) < static_cast<int>(b.metric);
  }
};

// The wire CSV renders lat/lon at %.6f, so the driver snaps every position
// to integer microdegrees up front: the zone the driver computes locally is
// the zone the decoded record lands in.
double snap_deg(double deg) { return std::round(deg * 1e6) / 1e6; }
geo::lat_lon snap(const geo::lat_lon& p) {
  return {snap_deg(p.lat_deg), snap_deg(p.lon_deg)};
}

struct client_state {
  geo::lat_lon home;  ///< microdegree-snapped home fix
  geo::xy home_xy;
  std::size_t op = 0;
  double skew_s = 0.0;
  bool active = true;
  std::uint64_t id = 0;
};

// True when an ERR reply refused the request before dispatch ("ERR internal"
// from an injected server_handle fault, "ERR parse"): its records never
// reached the coordinator. "ERR stopped" frames did reach it and account
// through accepted/rejected/dropped.
bool refused_before_dispatch(std::string_view reply) {
  const std::size_t sp1 = reply.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = reply.find(' ', sp1 + 1);
  const std::string_view code = reply.substr(
      sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                             : sp2 - sp1 - 1);
  return code == "internal" || code == "parse" || code == "unsupported" ||
         code == "overload";
}

// The binary-framing twins of message_type/refused_before_dispatch: replies
// classify by opcode, and a refusal by the err frame's code.
proto::v3::opcode reply_opcode(std::string_view reply) {
  const auto hdr = proto::v3::peek_header(reply);
  // A reply the server produced always carries a valid header; treat
  // anything else as an error frame so accounting stays conservative.
  return hdr ? hdr->op : proto::v3::opcode::err;
}

bool frame_refused_before_dispatch(std::string_view reply) {
  if (reply_opcode(reply) != proto::v3::opcode::err) return false;
  const proto::v3::error_frame err = proto::v3::decode_error_frame(reply);
  return err.code == proto::err_code::internal ||
         err.code == proto::err_code::parse ||
         err.code == proto::err_code::unsupported ||
         err.code == proto::err_code::overload;
}

// Continuity window of one tracked stream, for the staleness invariant.
// Gap fast-forward legitimately publishes old epochs right after a feeding
// gap (outage, churn), so staleness is only asserted for streams that have
// been fed on every consecutive tick for >= 2 epochs.
struct feed_state {
  double window_start_s = 0.0;  ///< first sample time of the current window
  double last_s = 0.0;          ///< newest sample time seen
  std::uint64_t last_tick = 0;
};

}  // namespace

scenario_result run_scenario(const scenario_config& cfg, std::uint64_t seed) {
  scenario_result out;
  out.name = cfg.name;
  out.seed = seed;

  stats::rng_stream root(seed);

  // ---- world: two-operator build-out around the Madison anchor ----------
  geo::projection proj(cellnet::anchors::madison);
  const cellnet::extent area{4000.0, 4000.0};
  const std::vector<std::string> names = {"NetB", "NetC"};
  std::vector<cellnet::operator_config> ops;
  {
    stats::rng_stream drng = root.fork("deployment");
    double scale = 0.9;
    for (const std::string& n : names) {
      cellnet::operator_config oc;
      oc.name = n;
      oc.tech = radio::technology::evdo_rev_a;
      oc.seed = drng.fork(n).seed();
      oc.tower_spacing_m = 1500.0;
      oc.capacity_scale = scale;
      scale += 0.2;
      ops.push_back(std::move(oc));
    }
  }
  cellnet::deployment dep(proj, area, std::move(ops));
  if (cfg.stress.flash_crowd) {
    for (std::size_t i = 0; i < dep.size(); ++i) {
      dep.network(i).add_event({geo::xy{0.0, 0.0}, 1200.0,
                                cfg.stress.flash_start_s, cfg.stress.flash_end_s,
                                0.55});
    }
  }
  if (cfg.stress.outage) {
    dep.network(0).add_trouble_spot({geo::xy{0.0, 0.0}, 3000.0, 1.0, 0.25});
  }

  geo::zone_grid grid(proj, 250.0);

  core::coordinator_config ccfg;
  ccfg.epochs.default_epoch_s = cfg.epoch_s;
  ccfg.alert_ring_capacity = cfg.stress.alert_ring_capacity;
  core::sharded_config scfg;
  scfg.coordinator = ccfg;
  scfg.num_shards = cfg.shards;
  scfg.synchronous = cfg.synchronous;

  auto coord = std::make_unique<core::sharded_coordinator>(grid, names, scfg,
                                                           seed);
  auto server = std::make_unique<proto::coordinator_server>(*coord);

  // ---- replicated mode (ISSUE 10) ---------------------------------------
  // A follower coordinator rides along: the leader's server gains the
  // replication endpoint, the follower catches up by snapshot at boot and
  // pulls the epoch stream after every tick's flush. Declared after
  // coord/server so the roles are destroyed first (the epoch tap detaches
  // while its coordinator is still alive).
  std::unique_ptr<core::sharded_coordinator> fcoord;
  std::unique_ptr<proto::coordinator_server> fserver;
  std::unique_ptr<repl::leader> repl_leader;
  std::unique_ptr<repl::follower> repl_follower;
  // Client-assisted replay buffer: every record the leader ACKed, in ACK
  // order, kept until the kill so the promoted follower can rebuild the
  // open-epoch accumulators the dead leader never streamed.
  std::vector<trace::measurement_record> acked_log;
  bool keep_acked = false;
  if (cfg.stress.replicate) {
    if (cfg.stress.restart_tick) {
      // The restart stressor rebuilds `coord` under the leader's attached
      // epoch tap; failover already covers the kill-and-continue story.
      throw std::invalid_argument(
          "scenario: replicate and restart_tick cannot combine");
    }
    keep_acked = cfg.stress.kill_leader_tick.has_value();
    repl_leader = std::make_unique<repl::leader>(*coord);
    server->attach_replication(repl_leader.get());
    fcoord = std::make_unique<core::sharded_coordinator>(grid, names, scfg,
                                                         seed);
    fserver = std::make_unique<proto::coordinator_server>(*fcoord);
    repl_follower = std::make_unique<repl::follower>(*fcoord);
    fserver->attach_replication(repl_follower.get());
  }

  // ---- transport ---------------------------------------------------------
  // With over_tcp every exchange crosses a real loopback socket through the
  // epoll front end; otherwise it calls the line handler in-process. The
  // driver stays the single synchronous traffic source either way, and
  // line_client replies are byte-identical to handle(), so all accounting
  // below is transport-independent. Declared tcp before wire_client so the
  // client's socket closes before the server's loops join at scope exit.
  std::unique_ptr<net::tcp_server> tcp;
  net::line_client wire_client;
  std::uint64_t tcp_reconnects = 0;  // successful re-establishes after boot
  std::uint64_t tcp_refused = 0;     // refused connects + rejected HELLOs

  auto tcp_start = [&] {
    net::server_config ncfg;
    ncfg.event_loops = cfg.synchronous ? 1 : 2;
    ncfg.idle_timeout_s = 3600.0;  // driver ticks never pause that long
    // No ingest_saturation source: queue depth depends on worker timing, so
    // shedding would break the byte-identical tick-log contract. Shedding
    // determinism is covered in tests/net_test.cpp with a fixed source.
    tcp = std::make_unique<net::tcp_server>(*server, ncfg);
    tcp->start();
  };
  // Connect + HELLO, riding out an injected accept_fail storm: the kernel
  // completes the handshake from the backlog, the server closes the socket
  // after accept4(), and the client sees EOF on its first read -- a refused
  // HELLO. Each such round is one deterministic accept ordinal, so the
  // fired-fault count in the tick log stays reproducible.
  auto tcp_connect = [&](bool initial) {
    for (int attempt = 0;; ++attempt) {
      if (attempt >= 200) {
        throw std::runtime_error(
            "scenario: TCP reconnect never converged (fault schedule kills "
            "every accept?)");
      }
      if (!wire_client.try_connect("127.0.0.1", tcp->port())) {
        ++tcp_refused;
        continue;
      }
      try {
        (void)wire_client.hello();
      } catch (const std::exception&) {
        ++tcp_refused;
        wire_client.close();
        continue;
      }
      if (!initial) ++tcp_reconnects;
      return;
    }
  };
  if (cfg.stress.over_tcp) {
    tcp_start();
    tcp_connect(true);
  }
  auto wire = [&](std::string_view req) -> std::string {
    if (!tcp) return server->handle(req);
    for (int attempt = 0;; ++attempt) {
      if (!wire_client.connected()) tcp_connect(false);
      try {
        return wire_client.request(req);
      } catch (const std::runtime_error&) {
        wire_client.close();
        if (attempt >= 200) throw;
      }
    }
  };
  // The binary-frame twin of wire(): sends one self-delimiting v3 frame
  // and returns the binary reply frame. The same reconnect loop rides out
  // injected frame_truncate faults (the client throws mid-send, the server
  // discards the cut frame at EOF, the retry resends the whole frame -- so
  // the acked/erred ledger stays exact).
  auto wire_frame = [&](std::string_view frame) -> std::string {
    if (!tcp) return server->handle(frame);
    for (int attempt = 0;; ++attempt) {
      if (!wire_client.connected()) tcp_connect(false);
      try {
        return std::string(wire_client.request_frame(frame));
      } catch (const std::runtime_error&) {
        wire_client.close();
        if (attempt >= 200) throw;
      }
    }
  };

  // Replication traffic rides the same transport as client traffic: the
  // follower's EPOCH/SNAPSHOT_REQ frames cross the leader's server (and
  // the real socket with over_tcp). Boot-time catch-up mirrors a joiner:
  // snapshot transfer, then the log suffix the snapshot fenced.
  const repl::transport repl_transport = [&](std::string_view frame) {
    return wire_frame(frame);
  };
  if (repl_follower) repl_follower->catch_up(repl_transport);

  // ---- fleet -------------------------------------------------------------
  std::vector<client_state> fleet;
  {
    stats::rng_stream pos_rng = root.fork("clients");
    stats::rng_stream skew_rng = root.fork("skew");
    for (std::size_t i = 0; i < cfg.clients; ++i) {
      stats::rng_stream cr = pos_rng.fork(i);
      const geo::xy raw{cr.uniform(-1600.0, 1600.0),
                        cr.uniform(-1600.0, 1600.0)};
      client_state c;
      c.home = snap(proj.to_lat_lon(raw));
      c.home_xy = proj.to_xy(c.home);
      c.op = i % dep.size();
      if (cfg.stress.clock_skew_sigma_s > 0.0) {
        c.skew_s = skew_rng.fork(i).normal(0.0, cfg.stress.clock_skew_sigma_s);
      }
      c.id = 1000 + i;
      fleet.push_back(c);
    }
  }

  // ---- fault schedule ----------------------------------------------------
  injector inj(root.fork("faults").seed());
  for (const fault_rule& r : cfg.stress.faults) inj.add_rule(r);
  arm_scope armed(inj);

  // Declared after `armed`, so it unwinds first on every exit path: the
  // event-loop threads poll the fault hook and must be joined before the
  // injector they read is unhooked and destroyed.
  struct tcp_teardown {
    std::unique_ptr<net::tcp_server>& tcp;
    net::line_client& client;
    ~tcp_teardown() {
      if (!tcp) return;
      client.close();
      tcp->stop();
      tcp.reset();
    }
  } tcp_guard{tcp, wire_client};

  obs::registry& reg = obs::registry::global();
  obs::counter& accepted_ctr = reg.get_counter(obs::names::kCoordReportsAccepted);
  obs::counter& rejected_ctr = reg.get_counter(obs::names::kCoordReportsRejected);
  obs::counter& apply_err_ctr = reg.get_counter(obs::names::kShardedApplyErrors);
  obs::counter& dropped_ctr = reg.get_counter(obs::names::kShardedDropped);

  std::map<core::estimate_key, feed_state, key_less> tracked;
  std::uint64_t served_total = 0, dropped_total = 0, cursor = 0;
  std::vector<obs::metric_sample> prev_snapshot;
  std::ostringstream log;
  std::string replay_frame;           // previous tick's first fleet frame
  std::size_t replay_count = 0;

  auto note = [&](const char* inv, std::uint64_t tick, std::string detail) {
    out.violations.push_back(violation{inv, tick, seed, std::move(detail)});
  };

  // Sends records over the wire in REPORTB frames of at most 32 and folds
  // the replies into the tick's accounting. The server ACKs a frame
  // all-or-nothing, so a frame's records land wholly in acked or erred.
  // With wire_v3 the frames (and replies) are binary; the classification
  // is the same, keyed on opcode instead of the reply's type tag.
  auto submit = [&](std::span<const trace::measurement_record> recs,
                    std::uint64_t& acked, std::uint64_t& erred,
                    std::uint64_t& refused) {
    for (std::size_t off = 0; off < recs.size(); off += 32) {
      const std::size_t n = std::min<std::size_t>(32, recs.size() - off);
      const auto chunk = recs.subspan(off, n);
      bool ok, pre;
      if (cfg.stress.wire_v3) {
        const std::string reply =
            wire_frame(proto::v3::encode_report_batch_frame(chunk));
        ok = reply_opcode(reply) == proto::v3::opcode::ack;
        pre = !ok && frame_refused_before_dispatch(reply);
      } else {
        const std::string reply = wire(proto::encode_report_batch(chunk));
        ok = proto::message_type(reply) == "ACK";
        pre = !ok && refused_before_dispatch(reply);
      }
      if (ok) {
        acked += n;
        if (keep_acked) {
          acked_log.insert(acked_log.end(), chunk.begin(), chunk.end());
        }
      } else {
        erred += n;
        if (pre) refused += n;
      }
    }
  };

  // Clock slack for the staleness bound: tick quantisation plus (nearly all
  // of) the skew distribution when clocks are skewed.
  const double slack_s = cfg.tick_s + 1.0 + 6.0 * cfg.stress.clock_skew_sigma_s;

  for (std::uint64_t t = 0; t < cfg.ticks; ++t) {
    const double T0 = static_cast<double>(t) * cfg.tick_s;
    bool restarted = false;

    // ---- coordinator kill + restore mid-run ------------------------------
    if (cfg.stress.restart_tick && *cfg.stress.restart_tick == t) {
      coord->flush();
      std::stringstream snap_io;
      bool saved = true;
      try {
        core::save_coordinator_state(snap_io, *coord);
      } catch (const std::exception&) {
        saved = false;  // injected persist_save fault: skip the restart
      }
      if (saved) {
        // The TCP front end holds a pointer into *server: tear it down
        // first, rebuild it over the restored handler, reconnect.
        const bool was_tcp = tcp != nullptr;
        if (was_tcp) {
          wire_client.close();
          tcp->stop();
          tcp.reset();
        }
        server.reset();
        coord->stop();
        coord.reset();
        coord = std::make_unique<core::sharded_coordinator>(grid, names, scfg,
                                                            seed);
        core::load_coordinator_state(snap_io, *coord);
        server = std::make_unique<proto::coordinator_server>(*coord);
        if (was_tcp) {
          tcp_start();
          tcp_connect(false);
        }
        restarted = true;
      }
    }

    // ---- leader kill + follower promotion --------------------------------
    // kill -9 semantics: no flush, no snapshot -- the leader dies with its
    // ingest queues and open-epoch accumulators. Every epoch frozen through
    // the previous tick already reached the follower via that tick's
    // post-flush poll, so only open state is lost; client-assisted replay
    // below rebuilds it bit-identically from the driver's ACK log.
    bool killed = false;
    if (repl_follower && cfg.stress.kill_leader_tick &&
        *cfg.stress.kill_leader_tick == t && !repl_follower->promoted()) {
      const bool was_tcp = tcp != nullptr;
      if (was_tcp) {
        wire_client.close();
        tcp->stop();
        tcp.reset();
      }
      server.reset();
      repl_leader.reset();  // detach the tap while the old leader is alive
      coord->stop();
      coord.reset();
      // Promote through the unified wire path -- the same PROMOTE frame an
      // operator's failover tooling would send.
      const std::string reply =
          fserver->handle(proto::v3::encode_promote_frame());
      if (reply_opcode(reply) != proto::v3::opcode::ack) {
        note("leader_failover", t, "wire PROMOTE was refused");
      }
      coord = std::move(fcoord);
      server = std::move(fserver);
      // The promoted coordinator's alert ring starts fresh: replicated
      // epochs never fire alerts (the fast-forward path has no tap), so
      // the consumer ledger resets with it.
      served_total = 0;
      dropped_total = 0;
      cursor = 0;
      if (was_tcp) {
        tcp_start();
        tcp_connect(false);
      }
      killed = true;
    }

    // ---- proactive connection churn --------------------------------------
    if (tcp && cfg.stress.reconnect_every > 0 && t > 0 &&
        t % cfg.stress.reconnect_every == 0) {
      wire_client.close();
      tcp_connect(false);
    }

    const std::uint64_t accepted0 = accepted_ctr.value();
    const std::uint64_t rejected0 = rejected_ctr.value();
    const std::uint64_t apply_err0 = apply_err_ctr.value();
    const std::uint64_t dropped0 = dropped_ctr.value();
    std::uint64_t submitted = 0, acked = 0, erred = 0, refused = 0;

    // ---- client-assisted replay (paper's core mechanism, post-failover) --
    // Clients hold their ACKed reports until the epoch containing them is
    // published; after a failover each re-submits the suffix the promoted
    // coordinator has not frozen. The driver plays all clients here: a
    // record is replayed iff its aligned epoch is at or past the stream's
    // frozen high-water mark. Metric sets are disjoint per probe kind, so
    // every metric of a record shares one stream history and the first
    // metric decides for all. Replay preserves ACK order, which is
    // per-stream ingest order, so the rebuilt open accumulators (and
    // every later rollover) are bit-equal to an uninterrupted run's.
    if (killed) {
      keep_acked = false;
      std::vector<trace::measurement_record> replay;
      for (const trace::measurement_record& rec : acked_log) {
        if (!rec.success) continue;  // never fed a stream; nothing to rebuild
        const auto ms = trace::metrics_of(rec.kind);
        if (ms.empty()) continue;
        const geo::zone_id z = grid.zone_of(rec.pos);
        const std::optional<core::epoch_estimate> latest =
            coord->latest(core::estimate_key{z, rec.network, ms.front()});
        const double hw = latest
                              ? latest->epoch_start_s + cfg.epoch_s
                              : -std::numeric_limits<double>::infinity();
        if (std::floor(rec.time_s / cfg.epoch_s) * cfg.epoch_s >= hw) {
          replay.push_back(rec);
        }
      }
      submitted += replay.size();
      submit(replay, acked, erred, refused);
      acked_log.clear();
      acked_log.shrink_to_fit();
    }

    // ---- fleet traffic ---------------------------------------------------
    stats::rng_stream tick_rng = root.fork("traffic").fork(t);
    std::vector<trace::measurement_record> batch;
    const bool flash_now = cfg.stress.flash_crowd &&
                           T0 >= cfg.stress.flash_start_s &&
                           T0 < cfg.stress.flash_end_s;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      client_state& c = fleet[i];
      if (!c.active) continue;
      // Fresh substream per (tick, client): a withdrawn client never shifts
      // anyone else's draws.
      stats::rng_stream cr = tick_rng.fork(i);
      if (cfg.checkin_driven) {
        proto::checkin_request chk;
        chk.client_id = c.id;
        chk.pos = c.home;
        chk.time_s = T0 + c.skew_s;
        chk.network_index = static_cast<std::uint32_t>(c.op);
        chk.active_in_zone = 4;
        (void)wire(proto::encode(chk));
      }
      for (int r = 0; r < 2; ++r) {
        const double tt = T0 + 7.0 + 23.0 * r;
        geo::xy at = c.home_xy;
        if (flash_now && i % 3 == 0) {
          // A third of the fleet converges on the stadium for the event.
          at = {at.x_m * 0.2, at.y_m * 0.2};
        }
        if (cfg.stress.gps_jitter_m > 0.0) {
          at.x_m += cr.normal(0.0, cfg.stress.gps_jitter_m);
          at.y_m += cr.normal(0.0, cfg.stress.gps_jitter_m);
        }
        const geo::lat_lon pos = snap(proj.to_lat_lon(at));
        const geo::xy pxy = proj.to_xy(pos);
        const cellnet::link_conditions cond = dep.conditions_at(c.op, pos, tt);
        const bool ok =
            cond.in_coverage && !dep.network(c.op).in_outage(pxy, tt);
        const double u1 = cr.uniform();
        const double u2 = cr.uniform();

        trace::measurement_record rec;
        rec.time_s = tt + c.skew_s;
        rec.network = names[c.op];
        rec.pos = pos;
        rec.client_id = c.id;
        rec.rssi_dbm = cond.rx_dbm;
        rec.success = ok;
        const double free_bps = cond.capacity_bps * (1.0 - cond.utilization);
        switch ((t + i + static_cast<std::uint64_t>(r)) % 3) {
          case 0:
            rec.kind = trace::probe_kind::udp_burst;
            rec.throughput_bps = free_bps * (0.85 + 0.3 * u1);
            rec.loss_rate = cond.loss_prob;
            rec.jitter_s = 0.002 + 0.004 * u2;
            break;
          case 1:
            rec.kind = trace::probe_kind::ping;
            rec.rtt_s = cond.rtt_s * (0.95 + 0.1 * u1);
            rec.ping_sent = 10;
            rec.ping_failures = ok ? 0 : 10;
            break;
          default:
            rec.kind = trace::probe_kind::tcp_download;
            rec.throughput_bps = 0.9 * free_bps * (0.85 + 0.3 * u1);
            break;
        }
        if (ok) {
          const geo::zone_id z = grid.zone_of(pos);
          for (trace::metric m : trace::metrics_of(rec.kind)) {
            auto [it, inserted] =
                tracked.try_emplace(core::estimate_key{z, rec.network, m});
            feed_state& fs = it->second;
            if (inserted || fs.last_tick + 1 < t) {
              fs.window_start_s = rec.time_s;  // gap: restart the window
              fs.last_s = rec.time_s;
            } else {
              fs.last_s = std::max(fs.last_s, rec.time_s);
            }
            fs.last_tick = t;
          }
        }
        batch.push_back(std::move(rec));
        ++submitted;
      }
    }
    if (!batch.empty()) {
      // First record rides the single-REPORT path; the rest batch.
      const proto::measurement_report first{batch.front().client_id,
                                            batch.front()};
      bool ok, pre;
      if (cfg.stress.wire_v3) {
        const std::string reply = wire_frame(proto::v3::encode_report_frame(first));
        ok = reply_opcode(reply) == proto::v3::opcode::ack;
        pre = !ok && frame_refused_before_dispatch(reply);
      } else {
        const std::string reply = wire(proto::encode(first));
        ok = proto::message_type(reply) == "ACK";
        pre = !ok && refused_before_dispatch(reply);
      }
      if (ok) {
        ++acked;
        if (keep_acked) acked_log.push_back(batch.front());
      } else {
        ++erred;
        if (pre) ++refused;
      }
      submit(std::span(batch).subspan(1), acked, erred, refused);
    }

    // ---- hostile clients -------------------------------------------------
    if (cfg.stress.hostile) {
      // Replay of a previously ACKed frame: duplicates flow through the
      // normal accounting (the coordinator has no replay window by design).
      if (!replay_frame.empty()) {
        const std::string reply = wire(replay_frame);
        submitted += replay_count;
        if (proto::message_type(reply) == "ACK") {
          acked += replay_count;
        } else {
          erred += replay_count;
          if (refused_before_dispatch(reply)) refused += replay_count;
        }
      }
      // Absurd coordinates: NaN and +-1e308 saturate the zone grid and must
      // land in the rejected counter, never throw.
      std::vector<trace::measurement_record> bad;
      for (int k = 0; k < 3; ++k) {
        trace::measurement_record rec;
        rec.time_s = T0 + 11.0;
        rec.network = "MalCoord";
        rec.client_id = 660000 + static_cast<std::uint64_t>(k);
        rec.kind = trace::probe_kind::udp_burst;
        rec.success = true;
        rec.throughput_bps = 1.0e6;
        if (k == 0) {
          rec.pos = {std::numeric_limits<double>::quiet_NaN(),
                     std::numeric_limits<double>::quiet_NaN()};
        } else if (k == 1) {
          rec.pos = {1.0e308, 1.0e308};
        } else {
          rec.pos = {-1.0e308, 50.0};
        }
        bad.push_back(std::move(rec));
      }
      submitted += bad.size();
      submit(bad, acked, erred, refused);
      // Malformed frames: must draw a typed ERR, carry no records.
      for (const std::string_view junk :
           {std::string_view("REPORTB 3\ngarbage"),
            std::string_view("REPORT client=1 csv=notcsv"),
            std::string_view("REPORTB two\nx")}) {
        const std::string reply = wire(junk);
        if (proto::message_type(reply) != "ERR") {
          note("hostile_reply", t,
               "malformed frame was not refused: " + std::string(junk));
        }
      }
      // Duplicate REPORTB: the identical frame sent twice in one tick.
      {
        std::vector<trace::measurement_record> dup;
        for (int k = 0; k < 3; ++k) {
          trace::measurement_record rec;
          rec.time_s = T0 + 13.0 + k;
          rec.network = "MalDup";
          rec.pos = snap(proj.to_lat_lon(geo::xy{200.0, 200.0}));
          rec.client_id = 661000;
          rec.kind = trace::probe_kind::ping;
          rec.success = true;
          rec.rtt_s = 0.2;
          rec.ping_sent = 10;
          dup.push_back(std::move(rec));
        }
        const std::string frame = proto::encode_report_batch(dup);
        for (int rep = 0; rep < 2; ++rep) {
          const std::string reply = wire(frame);
          submitted += dup.size();
          if (proto::message_type(reply) == "ACK") {
            acked += dup.size();
          } else {
            erred += dup.size();
            if (refused_before_dispatch(reply)) refused += dup.size();
          }
        }
      }
      // Interner-exhaustion flood: thousands of one-off operator names
      // pinned to a single zone. The owning shard's interner caps out and
      // the tail flows through the rejected counter (the PR 4 path).
      if (t == 5) {
        const geo::lat_lon flood_pos = snap(proj.to_lat_lon(geo::xy{120.0, 80.0}));
        std::vector<trace::measurement_record> flood;
        flood.reserve(4200);
        for (int k = 0; k < 4200; ++k) {
          trace::measurement_record rec;
          rec.time_s = T0 + 17.0;
          rec.network = "Mal" + std::to_string(k);
          rec.pos = flood_pos;
          rec.client_id = 662000;
          rec.kind = trace::probe_kind::udp_burst;
          rec.success = true;
          rec.throughput_bps = 5.0e5;
          flood.push_back(std::move(rec));
        }
        submitted += flood.size();
        submit(flood, acked, erred, refused);
      }
    }
    // Stash this tick's first frame for next tick's replay.
    if (cfg.stress.hostile && batch.size() > 1) {
      replay_count = std::min<std::size_t>(32, batch.size() - 1);
      replay_frame = proto::encode_report_batch(
          std::span(batch).subspan(1, replay_count));
    }

    // ---- QoE-driven churn ------------------------------------------------
    std::size_t withdrawn = 0;
    if (cfg.stress.qoe_churn && t >= 8 && t % 4 == 0) {
      coord->flush();
      core::estimate_view view(*coord);
      apps::estimate_knowledge know(view, grid, names, 10);
      const double now = T0 + 40.0;
      for (client_state& c : fleet) {
        if (!c.active) continue;
        const cellnet::link_conditions cond =
            dep.conditions_at(c.op, c.home, now);
        const double truth =
            0.9 * cond.capacity_bps * (1.0 - cond.utilization);
        const double expect = know.expected_bps(c.op, c.home);
        if (expect > 0.0 && truth > 0.0) {
          const double rel = std::abs(expect - truth) / truth;
          if (rel > cfg.stress.qoe_rel_error_threshold) c.active = false;
        }
      }
      // One wire QUERY per churn round keeps the read path under traffic.
      proto::query_request q;
      q.pos = fleet.front().home;
      q.network = names[fleet.front().op];
      q.metric = trace::metric::tcp_throughput_bps;
      q.time_s = now;
      if (cfg.stress.wire_v3) {
        const std::string reply = wire_frame(proto::v3::encode_query_frame(q));
        if (reply_opcode(reply) != proto::v3::opcode::est) {
          note("query_reply", t,
               "binary QUERY drew opcode '" +
                   std::string(proto::v3::opcode_name(reply_opcode(reply))) +
                   "' instead of est");
        }
      } else {
        const std::string reply = wire(proto::encode(q));
        const std::string_view type = proto::message_type(reply);
        if (type != "EST" && type != "NONE") {
          note("query_reply", t, "QUERY drew '" + std::string(type) +
                                     "' instead of EST/NONE");
        }
      }
    }
    for (const client_state& c : fleet) {
      if (!c.active) ++withdrawn;
    }

    // ---- deliberate sabotage (proves the checker catches a real lie) -----
    if (cfg.stress.sabotage_tick && *cfg.stress.sabotage_tick == t) ++acked;

    // ---- invariants ------------------------------------------------------
    coord->flush();  // make the counter deltas exact for this tick

    // ---- alert consumer (after flush: the set of alerts visible at the
    // drain is a function of the tick, not of worker timing) --------------
    if ((t + 1) % cfg.stress.alert_drain_every == 0) {
      const std::string reply = wire(
          proto::encode(proto::alerts_request{cursor, cfg.stress.alert_drain_max}));
      // An injected server_handle fault answers ERR: the consumer simply
      // makes no progress this tick (the ledger stays consistent).
      if (proto::message_type(reply) == "ALERTS") {
        const proto::alerts_reply drained = proto::decode_alerts_reply(reply);
        served_total += drained.alerts.size();
        dropped_total += drained.dropped;
        cursor = drained.next_seq;
      }
    }

    // ---- replication: post-flush pull + bounded-staleness probe ----------
    // The poll runs after flush, so the epochs it pulls are a function of
    // the tick, not of worker timing -- the repl= tick-log field stays
    // byte-identical across runs. An injected replica_lag fault skips the
    // round (a stalled replica link); the staleness bound below tolerates
    // a few consecutive skips.
    std::uint64_t repl_applied = 0;
    if (repl_follower && !repl_follower->promoted()) {
      const std::optional<std::uint64_t> applied =
          repl_follower->poll(repl_transport);
      if (!applied) {
        note("replication", t, "leader log truncated below follower cursor");
      } else {
        repl_applied = *applied;
      }
      const double stale_tol = 2.0 * cfg.epoch_s + 3.0 * cfg.tick_s;
      for (const auto& [key, fs] : tracked) {
        if (fs.last_tick != t) continue;  // not fed this tick
        const std::optional<core::epoch_estimate> lead = coord->latest(key);
        if (!lead) continue;
        const std::optional<core::epoch_estimate> fol = fcoord->latest(key);
        if (!fol) {
          if (lead->epoch_start_s + stale_tol < T0) {
            note("replica_staleness", t,
                 "follower missing stream " + key.network +
                     " published on the leader since " +
                     std::to_string(lead->epoch_start_s));
          }
        } else if (lead->epoch_start_s - fol->epoch_start_s > stale_tol) {
          note("replica_staleness", t,
               "follower behind by " +
                   std::to_string(lead->epoch_start_s - fol->epoch_start_s) +
                   "s on stream " + key.network);
        } else {
          // One QUERY through the follower's own server keeps the replica
          // read path under traffic -- a standby must answer while syncing.
          proto::query_request q;
          q.pos = grid.center(key.zone);
          q.network = key.network;
          q.metric = key.metric;
          q.time_s = T0 + cfg.tick_s;
          const std::string reply = fserver->handle(proto::encode(q));
          if (proto::message_type(reply) != "EST") {
            note("replica_query", t,
                 "follower QUERY drew '" +
                     std::string(proto::message_type(reply)) +
                     "' instead of EST");
          }
        }
        break;  // one probe per tick keeps the log schema fixed-width
      }
    }

    tick_accounting acct;
    acct.submitted = submitted;
    acct.acked = acked;
    acct.erred = erred;
    acct.refused = refused;
    acct.accepted_delta = accepted_ctr.value() - accepted0;
    acct.rejected_delta = rejected_ctr.value() - rejected0;
    acct.dropped_delta = dropped_ctr.value() - dropped0;
    acct.apply_errors_delta = apply_err_ctr.value() - apply_err0;
    if (auto d = check_report_accounting(acct)) {
      note("report_accounting", t, *d);
    }

    alert_ledger ledger;
    ledger.served_total = served_total;
    ledger.dropped_total = dropped_total;
    ledger.cursor = cursor;
    ledger.pushed = coord->alert_sink().pushed();
    ledger.fully_drained = false;
    if (auto d = check_alert_accounting(ledger)) {
      note("alert_accounting", t, *d);
    }

    {
      core::estimate_view view(*coord);
      for (const auto& [key, fs] : tracked) {
        if (fs.last_tick != t) continue;  // not fed this tick
        const std::optional<core::epoch_estimate> latest = coord->latest(key);
        // Staleness only for streams continuously fed >= 2 epochs + slack.
        if (fs.last_s - fs.window_start_s >= 2.0 * cfg.epoch_s + slack_s) {
          if (!latest) {
            note("estimate_staleness", t,
                 "stream " + key.network + " fed continuously for " +
                     std::to_string(fs.last_s - fs.window_start_s) +
                     "s has no published epoch");
          } else if (auto d = check_staleness({latest->epoch_start_s,
                                               fs.last_s, cfg.epoch_s,
                                               slack_s})) {
            note("estimate_staleness", t, *d);
          }
        }
        // The serving mirror must agree bit-for-bit with the shard tables.
        if (latest) {
          const auto served = view.lookup(key.zone, key.network, key.metric);
          if (!served) {
            note("view_consistency", t,
                 "published stream missing from the serving mirror");
          } else if (served->mean != latest->mean ||
                     served->stddev != latest->stddev ||
                     served->count != latest->samples) {
            note("view_consistency", t,
                 "mirror and shard disagree on the latest epoch");
          }
        }
      }
    }

    std::vector<obs::metric_sample> snap_now = reg.snapshot();
    if (!prev_snapshot.empty()) {
      if (auto d = check_counter_monotone(prev_snapshot, snap_now)) {
        note("counter_monotone", t, *d);
      }
    }
    prev_snapshot = std::move(snap_now);

    // ---- tick log (driver-deterministic fields only) ---------------------
    log << "tick=" << t << " submitted=" << submitted << " acked=" << acked
        << " erred=" << erred << " accepted=" << acct.accepted_delta
        << " rejected=" << acct.rejected_delta
        << " streams=" << coord->keys().size()
        << " alerts=" << coord->alert_sink().pushed()
        << " served=" << served_total << " dropped=" << dropped_total
        << " cursor=" << cursor << " withdrawn=" << withdrawn
        << " restart=" << (restarted ? 1 : 0) << " faults=q"
        << inj.fired(core::fault::site::queue_push) << "/h"
        << inj.fired(core::fault::site::server_handle) << "/p"
        << inj.fired(core::fault::site::persist_save) << "/a"
        << inj.fired(core::fault::site::accept_fail);
    if (cfg.stress.over_tcp) {
      // Driver-side connection ledger: accept_fail ordinals are driven by
      // the driver's sequential connects, so both counts are deterministic.
      log << " tcp=" << tcp_reconnects << "/" << tcp_refused;
    }
    if (cfg.stress.replicate) {
      // applied-this-tick / replica_lag faults fired / promoted flag --
      // all driver-deterministic (the poll runs post-flush).
      log << " repl=" << repl_applied << "/"
          << inj.fired(core::fault::site::replica_lag) << "/"
          << (repl_follower->promoted() ? 1 : 0);
    }
    log << "\n";
  }

  // ---- teardown ----------------------------------------------------------
  coord->flush();
  const std::uint64_t pushed = coord->alert_sink().pushed();
  for (int spin = 0; cursor < pushed && spin < 10000; ++spin) {
    const std::uint64_t before = cursor;
    const std::string reply =
        wire(proto::encode(proto::alerts_request{cursor, 256}));
    if (proto::message_type(reply) != "ALERTS") continue;  // injected fault
    const proto::alerts_reply drained = proto::decode_alerts_reply(reply);
    served_total += drained.alerts.size();
    dropped_total += drained.dropped;
    cursor = drained.next_seq;
    if (cursor == before) break;  // no progress: let the checker report it
  }
  if (auto d = check_alert_accounting(
          {served_total, dropped_total, cursor, pushed, true})) {
    note("alert_accounting", cfg.ticks, *d);
  }

  // Final ESTB dump over every configured-operator stream, sorted: two runs
  // ending in the same published state compare byte-equal here.
  {
    std::vector<core::estimate_key> keys = coord->keys();
    std::erase_if(keys, [&](const core::estimate_key& k) {
      return std::find(names.begin(), names.end(), k.network) == names.end();
    });
    std::sort(keys.begin(), keys.end(), key_less{});
    const double now = static_cast<double>(cfg.ticks) * cfg.tick_s;
    std::vector<proto::query_request> qs;
    qs.reserve(keys.size());
    for (const core::estimate_key& k : keys) {
      proto::query_request q;
      q.pos = grid.center(k.zone);
      q.network = k.network;
      q.metric = k.metric;
      q.time_s = now;
      qs.push_back(std::move(q));
    }
    std::ostringstream estb;
    for (std::size_t off = 0; off < qs.size(); off += 512) {
      const std::size_t n = std::min<std::size_t>(512, qs.size() - off);
      estb << wire(proto::encode_query_batch(std::span(qs).subspan(off, n)))
           << "\n";
    }
    out.final_estb = estb.str();
  }

  out.tick_log = log.str();
  out.passed = out.violations.empty();
  return out;
}

}  // namespace wiscape::scenario

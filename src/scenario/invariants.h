// Machine-checked scenario invariants.
//
// Every scenario the engine runs declares properties that must hold at
// every tick and at teardown; this header is the vocabulary of those
// properties, expressed as pure checkers over plain structs so tests can
// exercise each one against deliberately broken inputs without running a
// scenario. A checker returns std::nullopt when the invariant holds and a
// human-readable detail string when it does not; the engine wraps the
// detail with the tick and seed so a red run is reproducible from its
// failure message alone.
//
// The invariants (DESIGN.md §6):
//  * report accounting -- every record a client submitted is accounted
//    exactly once: submitted == acked + erred at the wire, and every record
//    that reached the pipeline lands in exactly one of the coordinator's
//    accepted/rejected/dropped counters once the pipeline is flushed, with
//    zero apply errors.
//  * alert accounting -- the alert ring's ledger never leaks: what a
//    consumer was served plus what it was told it dropped equals its
//    cursor, the cursor never passes the push count, and a fully drained
//    consumer's cursor equals it.
//  * estimate staleness -- a stream that keeps receiving samples keeps
//    publishing: its latest frozen epoch is never more than two epochs (+
//    slack) behind the newest accepted sample.
//  * counter monotonicity -- no obs:: sample flagged monotone ever
//    decreases between consecutive snapshots (obs::metric_sample::monotone).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace wiscape::scenario {

/// One invariant failure, carrying everything needed to reproduce it.
struct violation {
  std::string invariant;  ///< stable checker name ("report_accounting", ...)
  std::uint64_t tick = 0;
  std::uint64_t seed = 0;
  std::string detail;
};

/// Renders "tick=<t> seed=<s> <invariant>: <detail>".
std::string to_string(const violation& v);

/// Wire + pipeline accounting for one tick (deltas over the tick, except
/// where noted). Two classes of ERR matter: a frame refused *before*
/// dispatch ("ERR internal"/"ERR parse" -- its records never reach the
/// coordinator, counted in `refused`) and a frame that failed *inside* the
/// pipeline ("ERR stopped" -- a REPORTB routed across shards can partially
/// apply before one shard's push fails, with the shortfall counted into
/// core.sharded.reports_dropped). The identity is therefore
///   acked + (erred - refused) == accepted + rejected + dropped.
struct tick_accounting {
  std::uint64_t submitted = 0;  ///< records sent this tick (driver side)
  std::uint64_t acked = 0;      ///< records covered by ACK replies
  std::uint64_t erred = 0;      ///< records covered by ERR replies
  std::uint64_t refused = 0;    ///< erred records refused before dispatch
  std::uint64_t accepted_delta = 0;  ///< core.coordinator.reports_accepted
  std::uint64_t rejected_delta = 0;  ///< core.coordinator.reports_rejected
  std::uint64_t dropped_delta = 0;   ///< core.sharded.reports_dropped
  std::uint64_t apply_errors_delta = 0;  ///< core.sharded.apply_errors
};
std::optional<std::string> check_report_accounting(const tick_accounting& a);

/// One alert consumer's ledger against the ring (cumulative values).
struct alert_ledger {
  std::uint64_t served_total = 0;   ///< alerts the consumer drained
  std::uint64_t dropped_total = 0;  ///< alerts the ring reported dropped
  std::uint64_t cursor = 0;         ///< the consumer's drain cursor
  std::uint64_t pushed = 0;         ///< alert_ring::pushed()
  bool fully_drained = false;       ///< teardown: consumer drained to empty
};
std::optional<std::string> check_alert_accounting(const alert_ledger& l);

/// Staleness probe for one stream that is still receiving samples.
struct staleness_probe {
  double latest_epoch_start_s = 0.0;  ///< newest frozen epoch's start
  double last_sample_s = 0.0;         ///< newest accepted sample's timestamp
  double epoch_s = 0.0;               ///< the stream's epoch duration
  double slack_s = 0.0;               ///< tick quantisation + clock slack
};
std::optional<std::string> check_staleness(const staleness_probe& p);

/// No monotone-flagged sample decreases from `prev` to `cur`, and none
/// disappears. Both snapshots must be name-sorted (obs::registry::snapshot
/// returns them that way).
std::optional<std::string> check_counter_monotone(
    const std::vector<obs::metric_sample>& prev,
    const std::vector<obs::metric_sample>& cur);

}  // namespace wiscape::scenario

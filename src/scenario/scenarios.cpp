#include "scenario/scenarios.h"

#include <stdexcept>

namespace wiscape::scenario {
namespace {

scenario_config base(const std::string& name) {
  scenario_config cfg;
  cfg.name = name;
  cfg.ticks = 40;
  cfg.tick_s = 60.0;
  cfg.clients = 48;
  cfg.shards = 4;
  cfg.epoch_s = 300.0;
  return cfg;
}

}  // namespace

std::vector<std::string> scenario_names() {
  return {"baseline",        "flash_crowd", "operator_outage",
          "clock_skew",      "hostile_clients", "restart_mid_storm",
          "qoe_churn",       "slow_consumer",   "fault_storm",
          "connection_churn", "wire_v3",        "leader_kill"};
}

scenario_config make_scenario(const std::string& name) {
  scenario_config cfg = base(name);
  if (name == "baseline") {
    return cfg;
  }
  if (name == "flash_crowd") {
    cfg.stress.flash_crowd = true;
    cfg.stress.flash_start_s = 600.0;
    cfg.stress.flash_end_s = 1500.0;
    return cfg;
  }
  if (name == "operator_outage") {
    cfg.stress.outage = true;
    return cfg;
  }
  if (name == "clock_skew") {
    cfg.stress.clock_skew_sigma_s = 90.0;
    cfg.stress.gps_jitter_m = 30.0;
    return cfg;
  }
  if (name == "hostile_clients") {
    cfg.stress.hostile = true;
    return cfg;
  }
  if (name == "restart_mid_storm") {
    cfg.stress.flash_crowd = true;
    cfg.stress.restart_tick = 20;
    // Shard task-rng state is not persisted, so a restarted run only
    // matches an uninterrupted one when check-ins draw no tasks.
    cfg.checkin_driven = false;
    return cfg;
  }
  if (name == "qoe_churn") {
    cfg.stress.qoe_churn = true;
    cfg.stress.qoe_rel_error_threshold = 0.35;
    return cfg;
  }
  if (name == "slow_consumer") {
    cfg.stress.alert_ring_capacity = 16;
    cfg.stress.alert_drain_every = 8;
    cfg.stress.alert_drain_max = 4;
    return cfg;
  }
  if (name == "fault_storm") {
    cfg.stress.flash_crowd = true;
    // A sprinkle of queue refusals, five whole-request refusals, and
    // worker-side stalls: accounting must absorb all of it.
    cfg.stress.faults.push_back(
        {core::fault::site::queue_push, 50, 40, 0.05,
         core::fault::action::fail});
    cfg.stress.faults.push_back(
        {core::fault::site::server_handle, 100, 5, 1.0,
         core::fault::action::fail});
    cfg.stress.faults.push_back(
        {core::fault::site::drain_stall, 0, 20, 0.1,
         core::fault::action::stall});
    return cfg;
  }
  if (name == "connection_churn") {
    // All traffic over real loopback sockets through the epoll front end.
    // The driver drops its connection every 4 ticks, an accept_fail storm
    // kills a third of new connections at the accept edge for a stretch,
    // and read stalls / simulated unwritable sockets delay the loops --
    // accounting and the tick log must come out byte-identical per seed.
    cfg.stress.over_tcp = true;
    cfg.stress.reconnect_every = 3;
    // Each refused accept triggers a driver retry -- another accept ordinal
    // -- so the storm feeds itself until count runs out.
    cfg.stress.faults.push_back(
        {core::fault::site::accept_fail, 2, 30, 0.5,
         core::fault::action::fail});
    // Timing-only faults: stalls and fake EAGAIN perturb the event loops
    // without changing any driver-visible count.
    cfg.stress.faults.push_back(
        {core::fault::site::read_stall, 0, 25, 0.02,
         core::fault::action::stall});
    cfg.stress.faults.push_back(
        {core::fault::site::write_full, 0, 10, 0.02,
         core::fault::action::fail});
    return cfg;
  }
  if (name == "wire_v3") {
    // Hot traffic (REPORT/REPORTB/QUERY) in binary v3 frames over real
    // loopback sockets, control traffic in text on the same sessions --
    // the mixed-framing production shape. Periodic reconnects renegotiate
    // HELLO, and injected frame truncations cut binary frames mid-send:
    // the driver's retry-after-reconnect keeps the ledger exact, so the
    // tick log must still come out byte-identical per seed.
    cfg.stress.over_tcp = true;
    cfg.stress.wire_v3 = true;
    cfg.stress.qoe_churn = true;  // keeps the binary QUERY leg under traffic
    cfg.stress.reconnect_every = 5;
    cfg.stress.faults.push_back(
        {core::fault::site::frame_truncate, 3, 12, 0.02,
         core::fault::action::fail});
    cfg.stress.faults.push_back(
        {core::fault::site::read_stall, 0, 25, 0.02,
         core::fault::action::stall});
    return cfg;
  }
  if (name == "leader_kill") {
    // Replicated coordinator under a flash-crowd ingest storm: the
    // follower snapshot-catches-up at boot, pulls the epoch stream every
    // tick, and answers staleness-probed QUERYs while syncing. At tick 20
    // the leader dies kill -9 style (no flush, no snapshot), the follower
    // is promoted through a wire PROMOTE frame, and client-assisted
    // replay rebuilds the lost open epochs -- the run's final published
    // state must be bit-equal to an uninterrupted run's (the regression
    // compares final_estb). A few injected replica_lag skips stall the
    // pull within the staleness bound.
    cfg.stress.flash_crowd = true;
    cfg.stress.replicate = true;
    cfg.stress.kill_leader_tick = 20;
    // Shard task-rng state is not replicated, so a failed-over run only
    // matches an uninterrupted one when check-ins draw no tasks.
    cfg.checkin_driven = false;
    cfg.stress.faults.push_back(
        {core::fault::site::replica_lag, 3, 4, 0.25,
         core::fault::action::fail});
    return cfg;
  }
  std::string known;
  for (const std::string& n : scenario_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("unknown scenario '" + name + "' (known: " +
                              known + ")");
}

}  // namespace wiscape::scenario

// Seeded fault-injection schedules over the core::fault site registry.
//
// The scenario engine does not sprinkle ad-hoc `if (test_mode)` branches
// through the stack; instead each production seam fires a core::fault site
// (src/core/fault_injection.h) and this injector decides -- deterministically
// from (seed, site, invocation ordinal) -- whether that particular crossing
// fails, stalls, or proceeds. The decision is a pure hash, not an rng
// stream, so it is independent of which thread asks and of how many other
// sites fired in between: the same seed produces the same fault schedule at
// every site on every run, which is what makes fault-injected scenario runs
// byte-replayable.
//
// Thread safety: on() is called from arbitrary threads (drain workers cross
// the drain_stall site); the per-site counters are atomics and the rule set
// is immutable once armed. arm_scope installs the injector process-wide for
// a lexical region and restores the previous hook on exit -- scenarios run
// one at a time, which the process-wide slot (and the obs registry, and the
// scenario engine's use of registry deltas) already requires.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/fault_injection.h"

namespace wiscape::scenario {

/// One scheduled fault: at site `site`, skip the first `after` invocations,
/// then fire `action` with `probability` per invocation, at most `count`
/// times. Rules are evaluated in insertion order; the first one that fires
/// wins the invocation.
struct fault_rule {
  core::fault::site site = core::fault::site::queue_push;
  std::uint64_t after = 0;
  std::uint64_t count = std::numeric_limits<std::uint64_t>::max();
  double probability = 1.0;
  core::fault::action action = core::fault::action::fail;
};

class injector final : public core::fault::hook {
 public:
  explicit injector(std::uint64_t seed) : seed_(seed) {}

  /// Adds a rule (at most 16 per injector). Must not be called after the
  /// injector is armed (the rule set is read lock-free from arbitrary
  /// threads). Throws std::length_error past the rule capacity.
  void add_rule(const fault_rule& r) {
    if (rules_.size() >= rule_fired_.size()) {
      throw std::length_error("scenario::injector rule capacity exceeded");
    }
    rules_.push_back(r);
  }

  /// The fault decision for one site crossing. Deterministic in
  /// (seed, site, per-site invocation ordinal); lock-free.
  core::fault::action on(core::fault::site s) noexcept override;

  /// Invocations of `s` observed so far (fired or not).
  std::uint64_t seen(core::fault::site s) const noexcept {
    return seen_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
  }
  /// Invocations of `s` answered with a non-proceed action.
  std::uint64_t fired(core::fault::site s) const noexcept {
    return fired_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t seed_;
  std::vector<fault_rule> rules_;
  std::array<std::atomic<std::uint64_t>, core::fault::site_count> seen_{};
  std::array<std::atomic<std::uint64_t>, core::fault::site_count> fired_{};
  // Per-rule fire budget, parallel to rules_ (atomic: decided cross-thread).
  mutable std::array<std::atomic<std::uint64_t>, 16> rule_fired_{};
};

/// RAII arming: installs the injector as the process-wide fault hook and
/// restores whatever was installed before on destruction.
class arm_scope {
 public:
  explicit arm_scope(injector& inj) : prev_(core::fault::install(&inj)) {}
  ~arm_scope() { core::fault::install(prev_); }
  arm_scope(const arm_scope&) = delete;
  arm_scope& operator=(const arm_scope&) = delete;

 private:
  core::fault::hook* prev_;
};

}  // namespace wiscape::scenario

// The named scenario catalogue.
//
// Each entry is a fully specified scenario_config: tests, the scenario
// runner CLI and the bench all resolve scenarios from here by name, so "run
// flash_crowd at seed 7" means the same run everywhere. The catalogue
// (ISSUE 6's acceptance list plus two extras):
//
//   baseline          -- no stressors; the determinism and accounting floor
//   flash_crowd       -- stadium hotspot_event + a third of the fleet
//                        converging on it mid-run
//   operator_outage   -- a full-outage trouble spot over operator 0's core;
//                        probes there fail and flow through rejection
//   clock_skew        -- per-client clock skew (sigma 90 s) + GPS jitter
//                        (sigma 30 m)
//   hostile_clients   -- replayed frames, NaN/absurd coordinates, malformed
//                        frames, duplicate batches, interner-exhaustion
//                        flood
//   restart_mid_storm -- flash crowd with a coordinator kill + persist
//                        restore at tick 20
//   qoe_churn         -- clients withdraw when served estimates err badly
//                        against ground truth
//   slow_consumer     -- a 16-slot alert ring drained every 8 ticks, 4 at a
//                        time (exercises dropped-alert accounting)
//   fault_storm       -- injected queue_push / server_handle / drain_stall
//                        faults riding a flash crowd
//   connection_churn  -- all traffic over real loopback TCP through the
//                        epoll front end, with proactive reconnects every
//                        4 ticks, an accept_fail storm and read/write
//                        stalls (net/server.h fault seams)
#pragma once

#include <string>
#include <vector>

#include "scenario/engine.h"

namespace wiscape::scenario {

/// Names of every catalogued scenario, in a stable order.
std::vector<std::string> scenario_names();

/// The catalogued config for `name`. Throws std::invalid_argument on an
/// unknown name (listing the known ones).
scenario_config make_scenario(const std::string& name);

}  // namespace wiscape::scenario

#include "scenario/injector.h"

#include <stdexcept>

#include "stats/rng.h"

namespace wiscape::scenario {

core::fault::action injector::on(core::fault::site s) noexcept {
  const auto si = static_cast<std::size_t>(s);
  const std::uint64_t n = seen_[si].fetch_add(1, std::memory_order_relaxed);
  for (std::size_t ri = 0; ri < rules_.size() && ri < rule_fired_.size();
       ++ri) {
    const fault_rule& r = rules_[ri];
    if (r.site != s || n < r.after) continue;
    if (rule_fired_[ri].load(std::memory_order_relaxed) >= r.count) continue;
    if (r.probability < 1.0) {
      // Pure-hash Bernoulli keyed on (seed, site, ordinal): the decision is
      // a function of this crossing alone, never of thread interleaving.
      const std::uint64_t h = stats::splitmix64(
          seed_ ^ ((si + 1) * 0x9e3779b97f4a7c15ULL) ^
          (n * 0xd1342543de82ef95ULL));
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u >= r.probability) continue;
    }
    if (rule_fired_[ri].fetch_add(1, std::memory_order_relaxed) >= r.count) {
      continue;  // another thread spent the last of this rule's budget
    }
    fired_[si].fetch_add(1, std::memory_order_relaxed);
    return r.action;
  }
  return core::fault::action::proceed;
}

}  // namespace wiscape::scenario

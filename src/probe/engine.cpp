#include "probe/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "netsim/path.h"
#include "radio/fading.h"
#include "transport/ping.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace wiscape::probe {

namespace {
/// How long the slow-field condition cache stays valid (simulated seconds).
/// Probes re-query the cellnet field at this cadence; fading varies faster
/// and is applied per call.
constexpr double slow_refresh_s = 1.0;

/// Slotted per-user scheduling. 3G downlinks are time-division scheduled
/// (EV-DO serves one user per 1.67 ms slot, proportional-fair over ~ms
/// horizons): a client is served in bursts above its average share with
/// gaps in between. Bulk transfers queue through the gaps and see the
/// average rate, but packet-pair / one-way-delay probing tools sample the
/// burst structure -- which is precisely why Pathload and WBest misestimate
/// cellular links (Sec 3.3.1 / Koutsonikolas & Hu). We model the schedule
/// as 8 ms grant windows in which the client is scheduled with probability
/// sched_p, receiving its share scaled by 1/sched_p (mean preserved).
constexpr double sched_slot_s = 0.008;
constexpr double sched_p = 0.6;

bool scheduled_in_slot(std::uint64_t seed, std::int64_t slot) noexcept {
  const std::uint64_t h =
      stats::splitmix64(seed ^ stats::splitmix64(static_cast<std::uint64_t>(slot)));
  return static_cast<double>(h >> 11) / 9007199254740992.0 < sched_p;
}
}  // namespace

device_profile laptop_device() { return {"laptop", 0.0}; }
device_profile phone_device() { return {"phone", 2.5}; }

/// Per-probe wiring: one DES, one fading process, a cached view of the slow
/// cellular field at the probe's position, and the duplex path whose rate /
/// delay / loss callbacks sample them.
struct probe_engine::session {
  netsim::simulation sim;
  const cellnet::cellular_network& net;
  geo::xy pos;
  double wall_t0;
  mutable radio::fading_process fading;
  std::uint64_t sched_seed;

  mutable cellnet::link_conditions cached{};
  mutable double cache_wall_t = -1.0;

  std::optional<netsim::duplex_path> path;

  double sinr_penalty_db = 0.0;

  session(const cellnet::cellular_network& n, geo::xy p, double t0,
          stats::rng_stream fading_rng, double penalty_db = 0.0)
      : net(n),
        pos(p),
        wall_t0(t0),
        fading(fading_rng, n.config().fading_sigma, n.config().fading_tau_s),
        sched_seed(fading_rng.fork("sched").seed()),
        sinr_penalty_db(penalty_db) {}

  const cellnet::link_conditions& slow(double sim_t) const {
    const double wall = wall_t0 + sim_t;
    if (cache_wall_t < 0.0 || wall - cache_wall_t >= slow_refresh_s) {
      cached = net.conditions_at(pos, wall, sinr_penalty_db);
      cache_wall_t = wall;
    }
    return cached;
  }

  void build_path(stats::rng_stream link_rng) {
    const auto& cfg = net.config();

    netsim::link_profile down;
    // Burst rate while a slot is granted: the client's share scaled up by
    // 1/sched_p. The slotted service model below only lets transmission
    // progress during granted slots, so the long-run average equals the
    // share exactly.
    down.rate_bps = [this](netsim::sim_time t) {
      const auto& lc = slow(t);
      const double gain = fading.gain_at(wall_t0 + t);
      const double share = std::max(lc.capacity_bps * gain, 1000.0);
      return share / sched_p;
    };
    down.service_time = [this, rate = down.rate_bps](netsim::sim_time t,
                                                     double bits) {
      const double burst = std::max(rate(t), 1.0);
      const double start = wall_t0 + t;
      double remaining = bits;
      // Walk slots by integer index (never re-derive the index from a
      // floating-point time: the boundary can round back into the previous
      // slot and loop forever). Transmit through granted slots, skip the
      // rest.
      auto slot = static_cast<std::int64_t>(std::floor(start / sched_slot_s));
      double cursor = start;
      while (true) {
        const double slot_end = static_cast<double>(slot + 1) * sched_slot_s;
        if (scheduled_in_slot(sched_seed, slot)) {
          const double can_send = burst * std::max(slot_end - cursor, 0.0);
          if (can_send >= remaining) {
            cursor += remaining / burst;
            break;
          }
          remaining -= can_send;
        }
        cursor = slot_end;
        ++slot;
      }
      return std::max(cursor - start, 1e-9);
    };
    down.delay_s = [this](netsim::sim_time t) { return slow(t).rtt_s / 2.0; };
    down.loss_prob = [this](netsim::sim_time t) {
      const auto& lc = slow(t);
      return lc.in_coverage ? lc.loss_prob : 1.0;
    };
    down.delay_noise_sigma_s = cfg.latency_jitter_sigma_s;
    // 3G RNC buffers were famously deep (bufferbloat): bulk TCP rarely sees
    // queue loss, so per-download throughput is stable -- the property that
    // makes Fig 4's low intra-zone spread possible.
    down.queue_capacity = 256;

    netsim::link_profile up;
    up.rate_bps = [this](netsim::sim_time t) {
      const double gain = fading.gain_at(wall_t0 + t);
      return std::max(slow(t).uplink_capacity_bps * gain, 8e3);
    };
    up.delay_s = [this](netsim::sim_time t) { return slow(t).rtt_s / 2.0; };
    up.loss_prob = [this](netsim::sim_time t) {
      const auto& lc = slow(t);
      return lc.in_coverage ? lc.loss_prob * 0.3 : 1.0;
    };
    up.delay_noise_sigma_s = cfg.latency_jitter_sigma_s * 0.5;
    up.queue_capacity = 64;

    path.emplace(sim, std::move(down), std::move(up), link_rng);
  }
};


namespace {
/// Stamps the modem-style RSSI reading onto a record: slow-field received
/// power plus an *independent* instantaneous fluctuation. RSSI is a
/// momentary pilot-channel sample; by the time a transfer runs, fast fading
/// has decorrelated (tau ~ 2 s), so the reading shares no noise with the
/// measured throughput -- which is why the paper found RSSI uncorrelated
/// with TCP throughput and dropped it (Sec 5).
double rssi_reading(const cellnet::link_conditions& lc, double noise_db) {
  return lc.rx_dbm + noise_db;
}
}  // namespace

probe_engine::probe_engine(const cellnet::deployment& dep, std::uint64_t seed)
    : dep_(&dep), rng_(seed) {}

trace::measurement_record probe_engine::base_record(
    std::size_t net, const mobility::gps_fix& fix, trace::probe_kind kind,
    const device_profile& dev) const {
  trace::measurement_record r;
  r.time_s = fix.time_s;
  r.network = dep_->network(net).config().name;
  r.pos = fix.pos;
  r.speed_mps = fix.speed_mps;
  r.device = dev.name;
  r.kind = kind;
  return r;
}

trace::measurement_record probe_engine::tcp_probe(
    std::size_t net, const mobility::gps_fix& fix,
    const tcp_probe_params& params, const device_profile& dev) {
  auto record = base_record(net, fix, trace::probe_kind::tcp_download, dev);
  const auto& network = dep_->network(net);
  const geo::xy pos = dep_->proj().to_xy(fix.pos);
  const std::uint64_t id = ++probe_counter_;

  session s(network, pos, fix.time_s, rng_.fork(id).fork("fading"),
            dev.sinr_penalty_db);
  record.rssi_dbm = rssi_reading(s.slow(0.0),
                                 rng_.fork(id).fork("rssi").normal(0.0, 2.5));
  if (!s.slow(0.0).in_coverage) return record;  // success stays false
  s.build_path(rng_.fork(id).fork("link"));

  transport::tcp_config cfg;
  cfg.transfer_bytes = params.bytes;
  std::optional<transport::tcp_result> result;
  auto flow = transport::start_tcp_download(
      s.sim, *s.path, cfg, id,
      [&result](const transport::tcp_result& r) { result = r; });
  s.sim.run_until(params.deadline_s);
  if (!result) flow->abort();

  record.success = result->completed;
  record.throughput_bps = result->throughput_bps;
  record.rtt_s = result->srtt_s;
  return record;
}

trace::measurement_record probe_engine::udp_probe(
    std::size_t net, const mobility::gps_fix& fix,
    const udp_probe_params& params, const device_profile& dev) {
  auto record = base_record(net, fix, trace::probe_kind::udp_burst, dev);
  const auto& network = dep_->network(net);
  const geo::xy pos = dep_->proj().to_xy(fix.pos);
  const std::uint64_t id = ++probe_counter_;

  session s(network, pos, fix.time_s, rng_.fork(id).fork("fading"),
            dev.sinr_penalty_db);
  const auto first = s.slow(0.0);
  record.rssi_dbm = rssi_reading(first,
                                 rng_.fork(id).fork("rssi").normal(0.0, 2.5));
  if (!first.in_coverage) return record;
  s.build_path(rng_.fork(id).fork("link"));

  transport::udp_config cfg;
  cfg.packet_count = params.packets;
  cfg.packet_bytes = params.packet_bytes;
  // Adaptive pacing (Table 1: "inter packet delay adaptively varies based on
  // available capacity"): offer just under the current link share so the
  // burst measures available bandwidth without self-induced queue loss.
  const double adaptive =
      static_cast<double>(params.packet_bytes) * 8.0 / (0.95 * first.capacity_bps);
  cfg.interval_s = std::max(params.interval_s, adaptive);

  std::optional<transport::udp_result> result;
  auto flow = transport::start_udp_flow(
      s.sim, *s.path, cfg, id,
      [&result](const transport::udp_result& r) { result = r; });
  const double deadline = static_cast<double>(params.packets) * cfg.interval_s +
                          cfg.drain_timeout_s + params.deadline_s;
  s.sim.run_until(deadline);
  (void)flow;
  if (!result) return record;  // should not happen: finish() is scheduled

  record.success = result->received > 0;
  record.throughput_bps = result->throughput_bps;
  record.loss_rate = result->loss_rate;
  record.jitter_s = result->jitter_s;
  return record;
}

trace::measurement_record probe_engine::udp_uplink_probe(
    std::size_t net, const mobility::gps_fix& fix,
    const udp_probe_params& params, const device_profile& dev) {
  auto record = base_record(net, fix, trace::probe_kind::udp_uplink, dev);
  const auto& network = dep_->network(net);
  const geo::xy pos = dep_->proj().to_xy(fix.pos);
  const std::uint64_t id = ++probe_counter_;

  session s(network, pos, fix.time_s, rng_.fork(id).fork("fading"),
            dev.sinr_penalty_db);
  const auto first = s.slow(0.0);
  record.rssi_dbm = rssi_reading(first,
                                 rng_.fork(id).fork("rssi").normal(0.0, 2.5));
  if (!first.in_coverage) return record;
  s.build_path(rng_.fork(id).fork("link"));

  transport::udp_config cfg;
  cfg.packet_count = params.packets;
  cfg.packet_bytes = params.packet_bytes;
  cfg.use_uplink = true;
  const double adaptive = static_cast<double>(params.packet_bytes) * 8.0 /
                          (0.95 * first.uplink_capacity_bps);
  cfg.interval_s = std::max(params.interval_s, adaptive);

  std::optional<transport::udp_result> result;
  auto flow = transport::start_udp_flow(
      s.sim, *s.path, cfg, id,
      [&result](const transport::udp_result& r) { result = r; });
  const double deadline = static_cast<double>(params.packets) * cfg.interval_s +
                          cfg.drain_timeout_s + params.deadline_s;
  s.sim.run_until(deadline);
  (void)flow;
  if (!result) return record;

  record.success = result->received > 0;
  record.throughput_bps = result->throughput_bps;
  record.loss_rate = result->loss_rate;
  record.jitter_s = result->jitter_s;
  return record;
}

trace::measurement_record probe_engine::ping_probe(
    std::size_t net, const mobility::gps_fix& fix,
    const ping_probe_params& params, const device_profile& dev) {
  auto record = base_record(net, fix, trace::probe_kind::ping, dev);
  const auto& network = dep_->network(net);
  const geo::xy pos = dep_->proj().to_xy(fix.pos);
  const std::uint64_t id = ++probe_counter_;

  session s(network, pos, fix.time_s, rng_.fork(id).fork("fading"),
            dev.sinr_penalty_db);
  record.rssi_dbm = rssi_reading(s.slow(0.0),
                                 rng_.fork(id).fork("rssi").normal(0.0, 2.5));
  s.build_path(rng_.fork(id).fork("link"));

  transport::ping_config cfg;
  cfg.count = params.count;
  cfg.interval_s = params.interval_s;
  cfg.timeout_s = params.timeout_s;

  std::optional<transport::ping_result> result;
  auto train = transport::start_ping_train(
      s.sim, *s.path, cfg, id,
      [&result](const transport::ping_result& r) { result = r; });
  s.sim.run();
  (void)train;

  // Ping probes always produce a record: failures are themselves the signal
  // (Fig 9's failed-ping triage).
  record.ping_sent = static_cast<int>(result->sent);
  record.ping_failures = static_cast<int>(result->failures);
  record.success = result->replies > 0;
  record.rtt_s = result->mean_rtt_s;
  return record;
}

probe_engine::train_result probe_engine::udp_train(std::size_t net,
                                                   const mobility::gps_fix& fix,
                                                   double rate_bps,
                                                   std::uint32_t packets,
                                                   std::size_t packet_bytes) {
  train_result out;
  out.packet_bytes = packet_bytes;
  out.sent = packets;
  out.send_s.assign(packets, -1.0);
  out.recv_s.assign(packets, -1.0);
  if (!(rate_bps > 0.0) || packets == 0 || packet_bytes == 0) {
    throw std::invalid_argument("udp_train: bad rate/count/size");
  }

  const auto& network = dep_->network(net);
  const geo::xy pos = dep_->proj().to_xy(fix.pos);
  const std::uint64_t id = ++probe_counter_;

  session s(network, pos, fix.time_s, rng_.fork(id).fork("fading"));
  if (!s.slow(0.0).in_coverage) return out;
  s.build_path(rng_.fork(id).fork("link"));

  const double interval =
      static_cast<double>(packet_bytes) * 8.0 / rate_bps;
  for (std::uint32_t i = 0; i < packets; ++i) {
    const double at = static_cast<double>(i) * interval;
    s.sim.schedule_at(at, [&s, &out, i, packet_bytes, id]() {
      netsim::packet p;
      p.flow_id = id;
      p.seq = i;
      p.size_bytes = packet_bytes;
      p.sent_at = s.sim.now();
      out.send_s[i] = s.sim.now();
      s.path->down().send(p, [&s, &out](const netsim::packet& pkt) {
        out.recv_s[pkt.seq] = s.sim.now();
      });
    });
  }
  s.sim.run();
  return out;
}

}  // namespace wiscape::probe

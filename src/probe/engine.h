// The probe engine: runs one client measurement as an actual packet-level
// simulation against the modelled cellular link, and folds the outcome into
// a trace::measurement_record.
//
// Each probe builds a fresh discrete-event simulation whose downlink rate
// function samples the slow cellnet field (cached per-second) multiplied by
// a per-probe fast-fading process -- so a 1 MB TCP download experiences
// slow start, queueing, fading churn and loss exactly where a real probe
// would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cellnet/deployment.h"
#include "mobility/schedule.h"
#include "trace/record.h"

namespace wiscape::probe {

/// Client hardware category (paper Sec 3.3: composability only holds
/// within a category; phones have a more constrained radio front-end and
/// antenna than laptop/SBC modems).
struct device_profile {
  std::string name = "laptop";
  double sinr_penalty_db = 0.0;
};

/// The paper's collection platform: laptops / single-board computers with
/// USB or PCMCIA cellular modems.
device_profile laptop_device();
/// A mobile phone: ~2.5 dB effective SINR penalty from the constrained
/// front-end.
device_profile phone_device();

struct tcp_probe_params {
  std::size_t bytes = 1'000'000;  ///< the paper's 1 MB download
  double deadline_s = 120.0;      ///< abort unfinished probes (success=false)
};

struct udp_probe_params {
  std::uint32_t packets = 100;
  std::size_t packet_bytes = 1200;  ///< Table 1's large UDP probe size
  /// Minimum inter-packet spacing; the engine adapts upward to ~the link
  /// share (Table 1: "1msec~100msec, adaptively varies based on available
  /// capacity"). Keep this at the 1 ms end or fast links go send-limited.
  double interval_s = 0.001;
  double deadline_s = 30.0;
};

struct ping_probe_params {
  std::uint32_t count = 12;  ///< WiRover's ~12 pings/minute
  double interval_s = 5.0;
  double timeout_s = 2.0;
};

class probe_engine {
 public:
  /// The engine borrows the deployment; it must outlive the engine.
  probe_engine(const cellnet::deployment& dep, std::uint64_t seed);

  const cellnet::deployment& dep() const noexcept { return *dep_; }

  /// One TCP download on operator index `net` from a client at `fix`.
  trace::measurement_record tcp_probe(std::size_t net,
                                      const mobility::gps_fix& fix,
                                      const tcp_probe_params& params = {},
                                      const device_profile& dev = {});

  /// One UDP burst (throughput / loss / jitter).
  trace::measurement_record udp_probe(std::size_t net,
                                      const mobility::gps_fix& fix,
                                      const udp_probe_params& params = {},
                                      const device_profile& dev = {});

  /// One client->server UDP burst on the uplink (Table 1's uplink rates).
  trace::measurement_record udp_uplink_probe(std::size_t net,
                                             const mobility::gps_fix& fix,
                                             const udp_probe_params& params = {},
                                             const device_profile& dev = {});

  /// One ping train (RTT / failures).
  trace::measurement_record ping_probe(std::size_t net,
                                       const mobility::gps_fix& fix,
                                       const ping_probe_params& params = {},
                                       const device_profile& dev = {});

  /// Raw downlink UDP train at a fixed offered rate: per-packet send and
  /// receive timestamps (receive < 0 marks a lost packet). This is the
  /// primitive the bandwidth-estimation baselines (Pathload, WBest) build
  /// their probing logic on.
  struct train_result {
    std::size_t packet_bytes = 0;
    std::uint32_t sent = 0;
    std::vector<double> send_s;  ///< indexed by sequence number
    std::vector<double> recv_s;  ///< -1 for lost packets
  };
  train_result udp_train(std::size_t net, const mobility::gps_fix& fix,
                         double rate_bps, std::uint32_t packets,
                         std::size_t packet_bytes);

  /// Number of probes run so far (also salt for per-probe rng substreams).
  std::uint64_t probes_run() const noexcept { return probe_counter_; }

 private:
  struct session;  // per-probe wiring (path + fading + condition cache)

  trace::measurement_record base_record(std::size_t net,
                                        const mobility::gps_fix& fix,
                                        trace::probe_kind kind,
                                        const device_profile& dev) const;

  const cellnet::deployment* dep_;
  stats::rng_stream rng_;
  std::uint64_t probe_counter_ = 0;
};

}  // namespace wiscape::probe

// Dataset builders: regenerate each of the paper's collection campaigns
// (Table 2) against the synthetic substrate.
//
//   Standalone   - Madison transit buses, single network (NetB), 1 MB TCP
//                  downloads + ICMP-style pings, city-wide
//   WiRover      - buses with two networks (NetB+NetC), latency-only
//                  (UDP ping trains), Madison + the 240 km corridor
//   Spot         - static indoor locations, continuous TCP/UDP sampling
//   Proximate    - car loops within 250 m of the Spot locations
//   Short segment- 20 km road stretch, all three networks, TCP/UDP/ping
//
// All builders are deterministic in (engine seed, params).
#pragma once

#include <vector>

#include "probe/engine.h"
#include "trace/dataset.h"

namespace wiscape::probe {

/// Picks `count` static locations spread over the deployment that have
/// coverage on every operator (the paper chose representative zones with
/// low variability for its Spot collection).
std::vector<geo::lat_lon> default_spot_locations(
    const cellnet::deployment& dep, int count, std::uint64_t seed);

struct standalone_params {
  int days = 10;
  std::size_t buses = 5;
  std::size_t routes = 12;
  double probe_interval_s = 90.0;      ///< per bus, between TCP probes
  std::size_t tcp_bytes = 1'000'000;
  std::size_t network_index = 1;       ///< NetB in the madison preset
  bool with_pings = true;              ///< ICMP-style ping alongside TCP
};

/// Bus-mounted single-network city campaign (TCP + pings).
trace::dataset collect_standalone(probe_engine& engine,
                                  const standalone_params& params);

struct wirover_params {
  int days = 6;
  std::size_t buses = 4;
  /// The paper's cadence is ~12 pings a minute; short, frequent trains keep
  /// zone attribution honest while the bus moves (a 12-ping 60 s train
  /// would span several zones at highway speed).
  double train_interval_s = 20.0;
  std::uint32_t pings_per_train = 4;
  double ping_spacing_s = 1.0;
};

/// Two-network latency campaign on intercity buses (the corridor preset) or
/// city buses (madison preset) -- ping trains only, per the paper.
trace::dataset collect_wirover(probe_engine& engine,
                               const wirover_params& params);

struct spot_params {
  int days = 3;
  double udp_interval_s = 10.0;   ///< continuous fine-grained UDP sampling
  double tcp_interval_s = 60.0;
  std::uint32_t udp_packets = 50;
  std::size_t tcp_bytes = 250'000;
};

/// Continuous static-location campaign across all operators.
trace::dataset collect_spot(probe_engine& engine,
                            const std::vector<geo::lat_lon>& locations,
                            const spot_params& params);

struct proximate_params {
  int days = 3;
  double loop_radius_m = 250.0;
  double probe_interval_s = 20.0;
  std::uint32_t udp_packets = 100;
  std::size_t tcp_bytes = 250'000;
};

/// Car-loop campaign in the vicinity of a static location.
trace::dataset collect_proximate(probe_engine& engine,
                                 const geo::lat_lon& center,
                                 const proximate_params& params);

struct segment_params {
  int days = 5;
  double probe_interval_s = 30.0;
  std::size_t tcp_bytes = 500'000;
  std::uint32_t udp_packets = 100;
  std::uint32_t pings_per_train = 5;
};

/// All-operator campaign along a road (the segment preset's main road from
/// west extent edge to east edge).
trace::dataset collect_segment(probe_engine& engine,
                               const segment_params& params);

}  // namespace wiscape::probe

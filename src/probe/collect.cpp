#include "probe/collect.h"

#include "mobility/fleet.h"
#include "mobility/route_gen.h"

namespace wiscape::probe {

namespace {

/// Probe-time jitter: clients are opportunistic, not metronomes.
double jittered(double interval_s, stats::rng_stream& rng) {
  return interval_s * rng.uniform(0.85, 1.15);
}

}  // namespace

std::vector<geo::lat_lon> default_spot_locations(
    const cellnet::deployment& dep, int count, std::uint64_t seed) {
  std::vector<geo::lat_lon> out;
  stats::rng_stream rng(seed);
  const auto& area = dep.area();
  // Rejection-sample positions covered by every operator; cap attempts so a
  // pathological deployment cannot loop forever.
  for (int attempts = 0; attempts < 1000 && out.size() < static_cast<std::size_t>(count);
       ++attempts) {
    geo::xy p{rng.uniform(-area.width_m * 0.4, area.width_m * 0.4),
              rng.uniform(-area.height_m * 0.4, area.height_m * 0.4)};
    bool ok = true;
    for (std::size_t n = 0; n < dep.size(); ++n) {
      const auto lc = dep.network(n).conditions_at(p, 12.0 * 3600);
      if (!lc.in_coverage || lc.sinr_db < 2.0) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(dep.proj().to_lat_lon(p));
  }
  return out;
}

trace::dataset collect_standalone(probe_engine& engine,
                                  const standalone_params& params) {
  const auto& dep = engine.dep();
  stats::rng_stream rng(engine.dep().network(0).config().seed ^ 0x57a4d41aULL);

  auto routes = mobility::make_city_routes(
      dep.proj(), dep.area().width_m * 0.9, dep.area().height_m * 0.9,
      params.routes, rng.fork("routes"));
  mobility::fleet fleet(std::move(routes), params.buses,
                        mobility::transit_bus_params(), rng.fork("fleet"));

  trace::dataset ds;
  tcp_probe_params tcp;
  tcp.bytes = params.tcp_bytes;
  ping_probe_params ping;
  ping.count = 5;
  ping.interval_s = 1.0;

  stats::rng_stream jitter = rng.fork("jitter");
  for (int day = 0; day < params.days; ++day) {
    const double day_start = day * 86400.0;
    for (std::size_t bus = 0; bus < fleet.size(); ++bus) {
      double t = day_start + 6.0 * 3600;
      const double t_end = day_start + 24.0 * 3600;
      while (t < t_end) {
        if (auto fix = fleet.fix_at(bus, t)) {
          auto rec = engine.tcp_probe(params.network_index, *fix, tcp);
          rec.client_id = bus + 1;
          ds.add(std::move(rec));
          if (params.with_pings) {
            auto pr = engine.ping_probe(params.network_index, *fix, ping);
            pr.client_id = bus + 1;
            ds.add(std::move(pr));
          }
        }
        t += jittered(params.probe_interval_s, jitter);
      }
    }
  }
  return ds;
}

trace::dataset collect_wirover(probe_engine& engine,
                               const wirover_params& params) {
  const auto& dep = engine.dep();
  stats::rng_stream rng(dep.network(0).config().seed ^ 0x31304e52ULL);

  // Buses run the full main road of the region: west edge to east edge.
  const double half_w = dep.area().width_m / 2.0;
  const geo::lat_lon west = dep.proj().to_lat_lon({-half_w * 0.95, 0.0});
  const geo::lat_lon east = dep.proj().to_lat_lon({half_w * 0.95, 0.0});
  std::vector<geo::polyline> roads;
  roads.push_back(mobility::make_road(west, east, dep.area().height_m * 0.15,
                                      rng.fork("road")));
  const bool intercity = dep.area().width_m > 50'000.0;
  mobility::fleet fleet(std::move(roads), params.buses,
                        intercity ? mobility::intercity_bus_params()
                                  : mobility::transit_bus_params(),
                        rng.fork("fleet"));

  ping_probe_params ping;
  ping.count = params.pings_per_train;
  ping.interval_s = params.ping_spacing_s;

  trace::dataset ds;
  stats::rng_stream jitter = rng.fork("jitter");
  for (int day = 0; day < params.days; ++day) {
    const double day_start = day * 86400.0;
    for (std::size_t bus = 0; bus < fleet.size(); ++bus) {
      double t = day_start + 7.0 * 3600;
      const double t_end = day_start + 22.0 * 3600;
      while (t < t_end) {
        if (auto fix = fleet.fix_at(bus, t)) {
          for (std::size_t n = 0; n < dep.size(); ++n) {
            auto rec = engine.ping_probe(n, *fix, ping);
            rec.client_id = bus + 1;
            ds.add(std::move(rec));
          }
        }
        t += jittered(params.train_interval_s, jitter);
      }
    }
  }
  return ds;
}

trace::dataset collect_spot(probe_engine& engine,
                            const std::vector<geo::lat_lon>& locations,
                            const spot_params& params) {
  const auto& dep = engine.dep();
  stats::rng_stream rng(dep.network(0).config().seed ^ 0x5907aaabULL);

  udp_probe_params udp;
  udp.packets = params.udp_packets;
  tcp_probe_params tcp;
  tcp.bytes = params.tcp_bytes;

  trace::dataset ds;
  stats::rng_stream jitter = rng.fork("jitter");
  const double t_total = params.days * 86400.0;
  std::uint64_t station = 0;
  for (const auto& loc : locations) {
    ++station;
    mobility::static_node node{loc};
    double next_tcp = 0.0;
    double t = 0.0;
    while (t < t_total) {
      const auto fix = node.fix_at(t);
      for (std::size_t n = 0; n < dep.size(); ++n) {
        auto rec = engine.udp_probe(n, fix, udp);
        rec.client_id = station;
        ds.add(std::move(rec));
      }
      if (t >= next_tcp) {
        for (std::size_t n = 0; n < dep.size(); ++n) {
          auto rec = engine.tcp_probe(n, fix, tcp);
          rec.client_id = station;
          ds.add(std::move(rec));
        }
        next_tcp = t + params.tcp_interval_s;
      }
      t += jittered(params.udp_interval_s, jitter);
    }
  }
  return ds;
}

trace::dataset collect_proximate(probe_engine& engine,
                                 const geo::lat_lon& center,
                                 const proximate_params& params) {
  const auto& dep = engine.dep();
  stats::rng_stream rng(dep.network(0).config().seed ^ 0x9067817eULL);

  std::vector<geo::polyline> loop;
  loop.push_back(
      mobility::make_drive_loop(dep.proj(), center, params.loop_radius_m));
  mobility::fleet car(std::move(loop), 1, mobility::drive_loop_params(),
                      rng.fork("car"));

  udp_probe_params udp;
  udp.packets = params.udp_packets;
  tcp_probe_params tcp;
  tcp.bytes = params.tcp_bytes;

  trace::dataset ds;
  stats::rng_stream jitter = rng.fork("jitter");
  for (int day = 0; day < params.days; ++day) {
    double t = day * 86400.0 + 8.0 * 3600;
    const double t_end = day * 86400.0 + 20.0 * 3600;
    double next_tcp = t;
    while (t < t_end) {
      if (auto fix = car.fix_at(0, t)) {
        for (std::size_t n = 0; n < dep.size(); ++n) {
          auto rec = engine.udp_probe(n, *fix, udp);
          rec.client_id = 1;
          ds.add(std::move(rec));
        }
        if (t >= next_tcp) {
          for (std::size_t n = 0; n < dep.size(); ++n) {
            auto rec = engine.tcp_probe(n, *fix, tcp);
            rec.client_id = 1;
            ds.add(std::move(rec));
          }
          next_tcp = t + 3.0 * params.probe_interval_s;
        }
      }
      t += jittered(params.probe_interval_s, jitter);
    }
  }
  return ds;
}

trace::dataset collect_segment(probe_engine& engine,
                               const segment_params& params) {
  const auto& dep = engine.dep();
  stats::rng_stream rng(dep.network(0).config().seed ^ 0x5e94e47ULL);

  const double half_w = dep.area().width_m / 2.0;
  const geo::lat_lon west = dep.proj().to_lat_lon({-half_w * 0.9, 0.0});
  const geo::lat_lon east = dep.proj().to_lat_lon({half_w * 0.9, 0.0});
  std::vector<geo::polyline> road;
  road.push_back(
      mobility::make_road(west, east, 150.0, rng.fork("road"), 24));
  mobility::fleet car(std::move(road), 1, mobility::drive_loop_params(),
                      rng.fork("car"));

  tcp_probe_params tcp;
  tcp.bytes = params.tcp_bytes;
  udp_probe_params udp;
  udp.packets = params.udp_packets;
  ping_probe_params ping;
  ping.count = params.pings_per_train;
  ping.interval_s = 1.0;

  trace::dataset ds;
  stats::rng_stream jitter = rng.fork("jitter");
  for (int day = 0; day < params.days; ++day) {
    double t = day * 86400.0 + 8.0 * 3600;
    const double t_end = day * 86400.0 + 20.0 * 3600;
    while (t < t_end) {
      if (auto fix = car.fix_at(0, t)) {
        for (std::size_t n = 0; n < dep.size(); ++n) {
          for (auto rec : {engine.tcp_probe(n, *fix, tcp),
                           engine.udp_probe(n, *fix, udp),
                           engine.ping_probe(n, *fix, ping)}) {
            rec.client_id = 1;
            ds.add(std::move(rec));
          }
        }
      }
      t += jittered(params.probe_interval_s, jitter);
    }
  }
  return ds;
}

}  // namespace wiscape::probe

// One TCP session's protocol state machine, decoupled from its socket.
//
// A session owns the two byte_rings of one connection and everything the
// transport must decide *between* the socket and proto::coordinator_server:
//   * framing -- requests are '\n'-terminated lines, except the REPORTB /
//     QUERYB frames whose header announces how many payload lines follow;
//     pump() extracts exactly one complete request at a time, tolerating
//     partial arrivals (a frame split across any number of reads) and
//     telnet-style CRLF line endings. On a session negotiated to wire
//     protocol v3 (or a permissive port), a request whose first byte is the
//     binary frame magic 0xB3 is cut by its length prefix instead of by
//     newline scan -- binary and text requests interleave freely, and the
//     binary reply frames are queued without a line terminator (frames are
//     self-delimiting);
//   * HELLO gating -- when the server requires negotiation-first, any
//     command before a successful HELLO answers "ERR version" and closes
//     the session (docs/WIRE_PROTOCOL.md, transport rules);
//   * backpressure -- per the shed policy, QUERY-class or REPORT-class
//     requests are answered "ERR overload" without dispatching while the
//     ingest pipeline is saturated, so the event loop never blocks behind
//     a full report queue;
//   * bounded-buffer policy -- a request that outgrows the read ring, or
//     replies that outgrow the write ring (a slow reader), close the
//     session with a typed reason the server counts.
//
// The class is deliberately socket-free: the event loop feeds bytes into
// in() and drains out() to the fd, and tests drive the same state machine
// byte-for-byte without a kernel in the loop. Not thread-safe -- a session
// belongs to the one event-loop thread that accepted it.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "net/byte_ring.h"
#include "proto/server.h"

namespace wiscape::net {

/// Which class of request the backpressure policy sheds first.
enum class shed_policy {
  queries_first,  ///< protect ingest: shed QUERY/QUERYB/ALERTS before reports
  reports_first,  ///< protect serving: shed REPORT/REPORTB before queries
};

/// Why a session ended (drives the per-reason disconnect counters).
enum class close_reason {
  none,             ///< still open
  peer_eof,         ///< orderly close by the peer
  io_error,         ///< read/write syscall failed (or injected read fault)
  oversize,         ///< request exceeded the read-ring cap before completing
  slow_reader,      ///< replies exceeded the write-ring cap
  hello_violation,  ///< command before HELLO while negotiation is required
  bad_frame,        ///< REPORTB/QUERYB header with a malformed/hostile count
  idle_timeout,     ///< no complete request within the idle window
  shutdown,         ///< server stopping
};

/// Shed class of a request type (classify()).
enum class request_class { query, report, control };

/// Maps a message-type tag to its shed class: QUERY/QUERYB/ALERTS are
/// query-class, REPORT/REPORTB are report-class, everything else (CHECKIN,
/// HELLO, STATS, unknown) is control and never shed.
request_class classify(std::string_view type) noexcept;

/// Per-session buffer caps and protocol gates (server_config embeds one).
struct session_limits {
  std::size_t read_buffer_bytes = 1u << 20;   ///< request cap (ring max)
  std::size_t write_buffer_bytes = 4u << 20;  ///< queued-replies cap
  bool require_hello = true;  ///< enforce HELLO-before-anything on this port
  /// Group runs of >= 2 consecutive single-line REPORTs buffered in one
  /// pump into one handle_report_group() call (one ingestion submit per
  /// run instead of one per line). Replies stay byte-identical and
  /// positional; disable to force per-line dispatch.
  bool coalesce_reports = true;
};

/// One pump() call's view of the backpressure state. The event loop caches
/// the saturation value (refreshing it every few dispatches) so sessions
/// never call into the coordinator on the fast path.
struct shed_state {
  shed_policy policy = shed_policy::queries_first;
  double saturation = 0.0;  ///< core::sharded_coordinator::ingest_saturation
  double start = 0.75;      ///< >= start: shed the policy's first class
  double hard = 0.95;       ///< >= hard: shed both classes (control serves)
};

/// What one pump() call did, for the caller's metric accounting.
struct pump_stats {
  std::uint64_t dispatched = 0;    ///< requests handed to the line handler
  std::uint64_t shed_queries = 0;  ///< query-class answered ERR overload
  std::uint64_t shed_reports = 0;  ///< report-class answered ERR overload
  /// Of dispatched: REPORT lines answered through a coalesced group
  /// (handle_report_group) rather than one handler call per line.
  std::uint64_t grouped_reports = 0;
};

class session {
 public:
  session(const session_limits& limits, proto::coordinator_server& handler)
      : in_(limits.read_buffer_bytes),
        out_(limits.write_buffer_bytes),
        handler_(&handler),
        require_hello_(limits.require_hello),
        coalesce_reports_(limits.coalesce_reports) {}

  /// Receive ring: the socket (or a test) appends raw bytes here.
  byte_ring& in() noexcept { return in_; }
  /// Transmit ring: replies accumulate here until flushed to the socket.
  byte_ring& out() noexcept { return out_; }

  /// Extracts and answers every complete request currently buffered.
  /// Replies (with a trailing '\n') are appended to out(). Returns false
  /// when the session must be disconnected -- reason() says why, and any
  /// final ERR reply is already in out() for a best-effort flush.
  bool pump(const shed_state& shed, pump_stats& stats);

  close_reason reason() const noexcept { return reason_; }
  /// Records the close reason if none is set yet (first reason wins).
  void set_reason(close_reason r) noexcept {
    if (reason_ == close_reason::none) reason_ = r;
  }
  bool saw_hello() const noexcept { return saw_hello_; }
  /// The wire version the session's last successful HELLO negotiated
  /// (0 = none yet). Binary v3 frames are accepted once this is >= 3, or at
  /// any time on a permissive (require_hello = false) port.
  std::uint32_t negotiated_version() const noexcept { return hello_version_; }
  /// True when a frame header has been read but its payload is incomplete
  /// (an idle timeout firing now cuts a request mid-frame) -- a multi-line
  /// text frame or a binary frame whose declared length has not arrived.
  bool mid_frame() const noexcept {
    return frame_lines_total_ > 1 || binary_need_ > 0;
  }
  /// Replies queued into out() since the last call, then resets to zero.
  /// The event loop drains this at flush time to account one writev per
  /// wake against the replies it carries (net.server.replies_per_flush).
  std::uint64_t take_queued_replies() noexcept {
    return std::exchange(replies_queued_, 0);
  }

 private:
  /// Appends `reply` + '\n' to out(); false = write ring overflow.
  bool queue_reply(std::string_view reply);
  /// Appends a self-delimiting binary reply frame (no '\n') to out();
  /// false = write ring overflow.
  bool queue_reply_frame(std::string_view frame);
  /// Handles one complete request of `len` bytes (including the final
  /// newline) sitting at the front of in(). Returns false to disconnect.
  bool dispatch(std::size_t len, const shed_state& shed, pump_stats& stats);
  /// The binary framing path: cuts/validates/dispatches v3 frames at the
  /// front of in(). Sets `*progressed` when one complete frame was handled
  /// (the pump loop re-enters for whatever follows). Returns false to
  /// disconnect.
  bool pump_binary(const shed_state& shed, pump_stats& stats,
                   bool* progressed);

  byte_ring in_;
  byte_ring out_;
  proto::coordinator_server* handler_;
  bool require_hello_;
  bool coalesce_reports_;
  bool saw_hello_ = false;
  close_reason reason_ = close_reason::none;
  std::uint32_t hello_version_ = 0;

  // Framing cursor: scan_ is the in_-offset where the newline search
  // resumes; frame_lines_total_/found_ track the multi-line frame in
  // progress (total == 0 means the next line decides). binary_need_ is the
  // total byte length of the binary frame in progress (0 = none): the two
  // framers never run at once, since a request is wholly one or the other.
  std::size_t scan_ = 0;
  std::size_t frame_lines_total_ = 0;
  std::size_t frame_lines_found_ = 0;
  std::size_t binary_need_ = 0;
  std::uint64_t replies_queued_ = 0;
  // Per-session reply arena: every reply renders here (zero heap
  // allocations in steady state once its capacity has warmed up), then
  // lands in out() with one append.
  proto::reply_buffer rb_;
};

}  // namespace wiscape::net

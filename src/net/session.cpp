#include "net/session.h"

#include <charconv>

#include "proto/messages.h"
#include "proto/wire_v3.h"

namespace wiscape::net {

namespace {

/// Payload-line count a request's first line announces: "REPORTB <n>" and
/// "QUERYB <n>" are followed by n lines, everything else by none. Returns
/// npos for a frame header whose count is malformed or exceeds the
/// protocol cap -- the session answers ERR and disconnects rather than
/// misreading the payload lines as requests.
constexpr std::size_t invalid_frame = byte_ring::npos;

std::size_t payload_lines(std::string_view header) {
  const std::size_t sp = header.find_first_of(" \t\r");
  const std::string_view tag =
      sp == std::string_view::npos ? header : header.substr(0, sp);
  std::size_t cap = 0;
  if (tag == "REPORTB") {
    cap = proto::max_report_batch;
  } else if (tag == "QUERYB") {
    cap = proto::max_query_batch;
  } else {
    return 0;
  }
  if (sp == std::string_view::npos) return invalid_frame;
  const std::string_view rest = header.substr(sp + 1);
  const std::size_t b = rest.find_first_not_of(" \t");
  if (b == std::string_view::npos) return invalid_frame;
  std::size_t e = b;
  while (e < rest.size() && rest[e] >= '0' && rest[e] <= '9') ++e;
  if (e == b) return invalid_frame;
  std::size_t n = 0;
  if (std::from_chars(rest.data() + b, rest.data() + e, n).ec != std::errc{}) {
    return invalid_frame;
  }
  // Trailing garbage after the count is the decoder's problem (it answers
  // ERR parse); only the count itself gates framing.
  return n > cap ? invalid_frame : n;
}

/// The first line of the (possibly wrapped) request, copied into `buf` up
/// to its size -- enough to read a frame header's tag and count without
/// linearizing the whole ring.
std::string_view header_prefix(const byte_ring& ring, std::size_t line_len,
                               std::span<char> buf) {
  const std::size_t n = std::min(line_len, buf.size());
  const auto spans = ring.read_spans();
  const std::size_t first = std::min(n, spans[0].size());
  std::memcpy(buf.data(), spans[0].data(), first);
  if (first < n) std::memcpy(buf.data() + first, spans[1].data(), n - first);
  return {buf.data(), n};
}

/// True when the buffered line at ring offset `off` opens with "REPORT "
/// -- the tag plus the separating space, so REPORTB never matches. The
/// caller guarantees at least 7 readable bytes at `off`.
bool starts_with_report(const byte_ring& ring, std::size_t off) {
  constexpr std::string_view tag = "REPORT ";
  for (std::size_t i = 0; i < tag.size(); ++i) {
    if (ring.at(off + i) != tag[i]) return false;
  }
  return true;
}

/// Would the shed policy refuse a report-class request right now? Grouping
/// steps aside under shed so the per-line ERR overload accounting stays
/// exactly what per-line dispatch produces.
bool sheds_reports(const shed_state& shed) {
  return shed.saturation >= shed.start &&
         (shed.saturation >= shed.hard ||
          shed.policy == shed_policy::reports_first);
}

}  // namespace

request_class classify(std::string_view type) noexcept {
  if (type == "QUERY" || type == "QUERYB" || type == "ALERTS") {
    return request_class::query;
  }
  if (type == "REPORT" || type == "REPORTB") return request_class::report;
  return request_class::control;
}

bool session::queue_reply(std::string_view reply) {
  if (reply.size() + 1 > out_.headroom() || !out_.append(reply) ||
      !out_.append('\n')) {
    set_reason(close_reason::slow_reader);
    return false;
  }
  ++replies_queued_;
  return true;
}

bool session::queue_reply_frame(std::string_view frame) {
  // Binary frames are self-delimiting: no '\n' terminator -- an
  // interstitial byte would desynchronise the client's length-prefix cut.
  if (frame.size() > out_.headroom() || !out_.append(frame)) {
    set_reason(close_reason::slow_reader);
    return false;
  }
  ++replies_queued_;
  return true;
}

bool session::dispatch(std::size_t len, const shed_state& shed,
                       pump_stats& stats) {
  // The request view: everything up to (not including) the final newline.
  // Telnet-style CRLF is the protocol layer's business now: the final
  // line's '\r' is clipped here for the type peek, and frame payload lines
  // are stripped per line by the decoders -- no rewrite buffer.
  std::string_view req = in_.linearize().substr(0, len - 1);
  if (!req.empty() && req.back() == '\r') req.remove_suffix(1);

  const std::string_view type = proto::message_type(req);
  if (require_hello_ && !saw_hello_ && type != "HELLO") {
    rb_.clear();
    proto::encode_error_into(proto::err_code::version,
                             "HELLO required before any command", rb_);
    queue_reply(rb_.view());
    set_reason(close_reason::hello_violation);
    return false;
  }

  const request_class cls = classify(type);
  bool do_shed = false;
  if (cls != request_class::control && shed.saturation >= shed.start) {
    do_shed = shed.saturation >= shed.hard ||
              (shed.policy == shed_policy::queries_first
                   ? cls == request_class::query
                   : cls == request_class::report);
  }
  if (do_shed) {
    if (cls == request_class::query) {
      ++stats.shed_queries;
    } else {
      ++stats.shed_reports;
    }
    rb_.clear();
    proto::encode_error_into(proto::err_code::overload,
                             "ingest saturated; retry with backoff", rb_);
    return queue_reply(rb_.view());
  }

  rb_.clear();
  // The line framer classified the request; tag it so the handler's
  // unified entry point skips re-detection.
  handler_->handle(proto::request_view::text(req), rb_);
  ++stats.dispatched;
  if (type == "HELLO" && proto::message_type(rb_.view()) == "HELLO") {
    saw_hello_ = true;
    // The negotiated version gates binary framing; re-negotiation (a second
    // HELLO) re-decides it, matching the server's idempotent answer.
    hello_version_ = proto::decode_hello_reply(rb_.view()).version;
  }
  return queue_reply(rb_.view());
}

bool session::pump_binary(const shed_state& shed, pump_stats& stats,
                          bool* progressed) {
  *progressed = false;
  // Gate: a negotiation-first port only accepts binary frames on a session
  // that negotiated ver >= 3 (permissive ports accept them any time, like
  // the in-process handler). The peer spoke binary, so the final ERR is a
  // binary err frame.
  if (require_hello_ && (!saw_hello_ || hello_version_ < 3)) {
    rb_.clear();
    proto::v3::encode_error_frame(
        proto::err_code::version,
        saw_hello_ ? "binary frames require a negotiated ver>=3 session"
                   : "HELLO required before any command",
        rb_);
    queue_reply_frame(rb_.view());
    set_reason(saw_hello_ ? close_reason::bad_frame
                          : close_reason::hello_violation);
    return false;
  }
  if (in_.size() < proto::v3::frame_header_bytes) {
    return true;  // header still arriving
  }
  char hdr_buf[proto::v3::frame_header_bytes];
  for (std::size_t i = 0; i < proto::v3::frame_header_bytes; ++i) {
    hdr_buf[i] = in_.at(i);
  }
  const auto hdr = proto::v3::peek_header(
      std::string_view(hdr_buf, proto::v3::frame_header_bytes));
  if (!hdr) {
    // Magic byte with an undefined opcode: a hostile or desynchronised
    // peer. Same close as a hostile text frame header.
    rb_.clear();
    proto::v3::encode_error_frame(proto::err_code::parse,
                                  "undefined binary frame opcode", rb_);
    queue_reply_frame(rb_.view());
    set_reason(close_reason::bad_frame);
    return false;
  }
  const std::size_t total = proto::v3::frame_header_bytes + hdr->payload_len;
  if (total > in_.max_bytes()) {
    // The declared length can never fit the read ring: refuse now, without
    // buffering (let alone allocating) any of it -- the oversize close a
    // runaway text line gets, decided 6 bytes in.
    rb_.clear();
    proto::v3::encode_error_frame(proto::err_code::parse,
                                  "frame exceeds the read buffer cap", rb_);
    queue_reply_frame(rb_.view());
    set_reason(close_reason::oversize);
    return false;
  }
  if (in_.size() < total) {
    binary_need_ = total;  // complete header, payload pending: mid-frame
    return true;
  }
  binary_need_ = 0;
  const std::string_view frame = in_.linearize().substr(0, total);

  // Shed classification mirrors the text path: report/reportb are
  // report-class, query/queryb are query-class, reply opcodes (which the
  // handler refuses anyway) are control.
  request_class cls = request_class::control;
  if (hdr->op == proto::v3::opcode::report ||
      hdr->op == proto::v3::opcode::reportb) {
    cls = request_class::report;
  } else if (hdr->op == proto::v3::opcode::query ||
             hdr->op == proto::v3::opcode::queryb) {
    cls = request_class::query;
  }
  bool do_shed = false;
  if (cls != request_class::control && shed.saturation >= shed.start) {
    do_shed = shed.saturation >= shed.hard ||
              (shed.policy == shed_policy::queries_first
                   ? cls == request_class::query
                   : cls == request_class::report);
  }
  bool ok;
  if (do_shed) {
    if (cls == request_class::query) {
      ++stats.shed_queries;
    } else {
      ++stats.shed_reports;
    }
    rb_.clear();
    proto::v3::encode_error_frame(proto::err_code::overload,
                                  "ingest saturated; retry with backoff", rb_);
    ok = queue_reply_frame(rb_.view());
  } else {
    rb_.clear();
    handler_->handle(proto::request_view::binary(frame), rb_);
    ++stats.dispatched;
    ok = queue_reply_frame(rb_.view());
  }
  in_.consume(total);
  *progressed = true;
  return ok;
}

bool session::pump(const shed_state& shed, pump_stats& stats) {
  for (;;) {
    // A new request whose first byte is the v3 magic is framed by its
    // length prefix, not by newline scan (0xB3 never starts a text
    // command). The check only fires between requests: scan_ == 0 and no
    // text frame in progress means no text bytes are buffered ahead.
    if (frame_lines_total_ == 0 && scan_ == 0 && !in_.empty() &&
        static_cast<unsigned char>(in_.at(0)) == proto::v3::frame_magic) {
      bool progressed = false;
      if (!pump_binary(shed, stats, &progressed)) return false;
      if (!progressed) return true;  // frame incomplete: wait for bytes
      continue;  // whatever follows may be text or binary
    }

    // Advance the line scan until the current request is complete.
    std::size_t request_len = 0;
    while (request_len == 0) {
      const std::size_t nl = in_.find('\n', scan_);
      if (nl == byte_ring::npos) {
        // Incomplete. A read ring at its cap that still holds no complete
        // request can never complete one: answer ERR and disconnect.
        if (in_.full()) {
          queue_reply(proto::encode_error(
              proto::err_code::parse, "request exceeds the read buffer cap"));
          set_reason(close_reason::oversize);
          return false;
        }
        return true;
      }
      if (frame_lines_total_ == 0) {
        // First line of a new request: does it announce payload lines?
        char buf[64];
        const std::size_t n = payload_lines(header_prefix(in_, nl, buf));
        if (n == invalid_frame) {
          queue_reply(proto::encode_error(proto::err_code::parse,
                                          "malformed batch frame header"));
          set_reason(close_reason::bad_frame);
          return false;
        }
        frame_lines_total_ = 1 + n;
        frame_lines_found_ = 0;
      }
      ++frame_lines_found_;
      scan_ = nl + 1;
      if (frame_lines_found_ == frame_lines_total_) request_len = scan_;
    }

    // Adaptive micro-batch: a run of >= 2 consecutive complete single-line
    // REPORTs buffered right now (a pipelining reporter drained in one
    // wake) is answered through one handle_report_group() call -- one
    // ingestion submit and one counter delta for the run, same as REPORTB.
    // Grouping steps aside whenever per-line dispatch would do anything
    // other than hand the line to the handler (HELLO gate not yet
    // satisfied, report class being shed) so replies and accounting stay
    // byte-for-byte identical.
    if (coalesce_reports_ && frame_lines_total_ == 1 && request_len >= 8 &&
        (saw_hello_ || !require_hello_) && !sheds_reports(shed) &&
        starts_with_report(in_, 0)) {
      std::size_t group_end = request_len;
      std::size_t count = 1;
      while (count < proto::max_report_batch) {
        const std::size_t nl = in_.find('\n', group_end);
        if (nl == byte_ring::npos || nl - group_end < 7 ||
            !starts_with_report(in_, group_end)) {
          break;
        }
        group_end = nl + 1;
        ++count;
      }
      if (count >= 2) {
        const std::string_view block = in_.linearize().substr(0, group_end);
        rb_.clear();
        handler_->handle_report_group(block, count, rb_);
        // The group's replies arrive '\n'-terminated; land them in one
        // append.
        if (rb_.size() > out_.headroom() || !out_.append(rb_.view())) {
          set_reason(close_reason::slow_reader);
          return false;
        }
        stats.dispatched += count;
        stats.grouped_reports += count;
        replies_queued_ += count;
        in_.consume(group_end);
        scan_ = 0;
        frame_lines_total_ = 0;
        frame_lines_found_ = 0;
        continue;
      }
    }

    if (!dispatch(request_len, shed, stats)) return false;
    in_.consume(request_len);
    scan_ = 0;
    frame_lines_total_ = 0;
    frame_lines_found_ = 0;
  }
}

}  // namespace wiscape::net

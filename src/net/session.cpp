#include "net/session.h"

#include <charconv>

#include "proto/messages.h"

namespace wiscape::net {

namespace {

/// Payload-line count a request's first line announces: "REPORTB <n>" and
/// "QUERYB <n>" are followed by n lines, everything else by none. Returns
/// npos for a frame header whose count is malformed or exceeds the
/// protocol cap -- the session answers ERR and disconnects rather than
/// misreading the payload lines as requests.
constexpr std::size_t invalid_frame = byte_ring::npos;

std::size_t payload_lines(std::string_view header) {
  const std::size_t sp = header.find_first_of(" \t\r");
  const std::string_view tag =
      sp == std::string_view::npos ? header : header.substr(0, sp);
  std::size_t cap = 0;
  if (tag == "REPORTB") {
    cap = proto::max_report_batch;
  } else if (tag == "QUERYB") {
    cap = proto::max_query_batch;
  } else {
    return 0;
  }
  if (sp == std::string_view::npos) return invalid_frame;
  const std::string_view rest = header.substr(sp + 1);
  const std::size_t b = rest.find_first_not_of(" \t");
  if (b == std::string_view::npos) return invalid_frame;
  std::size_t e = b;
  while (e < rest.size() && rest[e] >= '0' && rest[e] <= '9') ++e;
  if (e == b) return invalid_frame;
  std::size_t n = 0;
  if (std::from_chars(rest.data() + b, rest.data() + e, n).ec != std::errc{}) {
    return invalid_frame;
  }
  // Trailing garbage after the count is the decoder's problem (it answers
  // ERR parse); only the count itself gates framing.
  return n > cap ? invalid_frame : n;
}

/// The first line of the (possibly wrapped) request, copied into `buf` up
/// to its size -- enough to read a frame header's tag and count without
/// linearizing the whole ring.
std::string_view header_prefix(const byte_ring& ring, std::size_t line_len,
                               std::span<char> buf) {
  const std::size_t n = std::min(line_len, buf.size());
  const auto spans = ring.read_spans();
  const std::size_t first = std::min(n, spans[0].size());
  std::memcpy(buf.data(), spans[0].data(), first);
  if (first < n) std::memcpy(buf.data() + first, spans[1].data(), n - first);
  return {buf.data(), n};
}

}  // namespace

request_class classify(std::string_view type) noexcept {
  if (type == "QUERY" || type == "QUERYB" || type == "ALERTS") {
    return request_class::query;
  }
  if (type == "REPORT" || type == "REPORTB") return request_class::report;
  return request_class::control;
}

bool session::queue_reply(std::string_view reply) {
  if (reply.size() + 1 > out_.headroom() || !out_.append(reply) ||
      !out_.append('\n')) {
    set_reason(close_reason::slow_reader);
    return false;
  }
  return true;
}

bool session::dispatch(std::size_t len, const shed_state& shed,
                       pump_stats& stats) {
  // The request view: everything up to (not including) the final newline.
  std::string_view req = in_.linearize().substr(0, len - 1);
  if (!req.empty() && req.back() == '\r') req.remove_suffix(1);
  if (req.find('\r') != std::string_view::npos) {
    // Telnet cold path: a CRLF-framed multi-line frame. Rebuild without the
    // '\r' that precedes each '\n' so payload decoders see clean lines.
    scratch_.clear();
    scratch_.reserve(req.size());
    for (std::size_t i = 0; i < req.size(); ++i) {
      if (req[i] == '\r' && i + 1 < req.size() && req[i + 1] == '\n') continue;
      scratch_.push_back(req[i]);
    }
    req = scratch_;
  }

  const std::string_view type = proto::message_type(req);
  if (require_hello_ && !saw_hello_ && type != "HELLO") {
    queue_reply(proto::encode_error(proto::err_code::version,
                                    "HELLO required before any command"));
    set_reason(close_reason::hello_violation);
    return false;
  }

  const request_class cls = classify(type);
  bool do_shed = false;
  if (cls != request_class::control && shed.saturation >= shed.start) {
    do_shed = shed.saturation >= shed.hard ||
              (shed.policy == shed_policy::queries_first
                   ? cls == request_class::query
                   : cls == request_class::report);
  }
  if (do_shed) {
    if (cls == request_class::query) {
      ++stats.shed_queries;
    } else {
      ++stats.shed_reports;
    }
    return queue_reply(proto::encode_error(
        proto::err_code::overload, "ingest saturated; retry with backoff"));
  }

  const std::string reply = handler_->handle(req);
  ++stats.dispatched;
  if (type == "HELLO" && proto::message_type(reply) == "HELLO") {
    saw_hello_ = true;
  }
  return queue_reply(reply);
}

bool session::pump(const shed_state& shed, pump_stats& stats) {
  for (;;) {
    // Advance the line scan until the current request is complete.
    std::size_t request_len = 0;
    while (request_len == 0) {
      const std::size_t nl = in_.find('\n', scan_);
      if (nl == byte_ring::npos) {
        // Incomplete. A read ring at its cap that still holds no complete
        // request can never complete one: answer ERR and disconnect.
        if (in_.full()) {
          queue_reply(proto::encode_error(
              proto::err_code::parse, "request exceeds the read buffer cap"));
          set_reason(close_reason::oversize);
          return false;
        }
        return true;
      }
      if (frame_lines_total_ == 0) {
        // First line of a new request: does it announce payload lines?
        char buf[64];
        const std::size_t n = payload_lines(header_prefix(in_, nl, buf));
        if (n == invalid_frame) {
          queue_reply(proto::encode_error(proto::err_code::parse,
                                          "malformed batch frame header"));
          set_reason(close_reason::bad_frame);
          return false;
        }
        frame_lines_total_ = 1 + n;
        frame_lines_found_ = 0;
      }
      ++frame_lines_found_;
      scan_ = nl + 1;
      if (frame_lines_found_ == frame_lines_total_) request_len = scan_;
    }

    if (!dispatch(request_len, shed, stats)) return false;
    in_.consume(request_len);
    scan_ = 0;
    frame_lines_total_ = 0;
    frame_lines_found_ = 0;
  }
}

}  // namespace wiscape::net

#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace wiscape::net {

line_client::line_client(line_client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_pos_(std::exchange(other.rx_pos_, 0)) {}

line_client& line_client::operator=(line_client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_pos_ = std::exchange(other.rx_pos_, 0);
  }
  return *this;
}

void line_client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_pos_ = 0;
}

bool line_client::try_connect(const std::string& host, std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return true;
}

void line_client::connect(const std::string& host, std::uint16_t port) {
  if (!try_connect(host, port)) {
    throw std::system_error(errno, std::generic_category(),
                            "line_client::connect " + host);
  }
}

std::string_view line_client::read_line() {
  for (;;) {
    const std::size_t nl = rx_.find('\n', rx_pos_);
    if (nl != std::string::npos) {
      std::string_view line(rx_.data() + rx_pos_, nl - rx_pos_);
      rx_pos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return line;
    }
    // Compact the consumed prefix before growing the buffer further.
    if (rx_pos_ > 0 && rx_pos_ == rx_.size()) {
      rx_.clear();
      rx_pos_ = 0;
    } else if (rx_pos_ > 65536) {
      rx_.erase(0, rx_pos_);
      rx_pos_ = 0;
    }
    char buf[16384];
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof buf, 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      throw std::runtime_error(n == 0
                                   ? "line_client: connection closed by peer"
                                   : "line_client: recv failed: " +
                                         std::string(std::strerror(errno)));
    }
    rx_.append(buf, static_cast<std::size_t>(n));
  }
}

std::string line_client::request(std::string_view req) {
  if (fd_ < 0) throw std::runtime_error("line_client: not connected");
  std::string framed;
  framed.reserve(req.size() + 1);
  framed.append(req);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n;
    do {
      n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                 MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      throw std::runtime_error("line_client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }

  // The reply: its first line announces how many payload lines follow.
  std::string reply(read_line());
  const std::size_t extra = proto::reply_extra_lines(reply);
  for (std::size_t i = 0; i < extra; ++i) {
    const std::string_view line = read_line();
    reply.push_back('\n');
    reply.append(line);
  }
  return reply;
}

proto::hello_reply line_client::hello(std::uint32_t version) {
  proto::hello_request req;
  req.version = version;
  const std::string reply = request(proto::encode(req));
  if (proto::message_type(reply) != "HELLO") {
    throw std::runtime_error("line_client: HELLO rejected: " +
                             proto::error_excerpt(reply));
  }
  return proto::decode_hello_reply(reply);
}

}  // namespace wiscape::net

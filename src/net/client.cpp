#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "core/fault_injection.h"
#include "proto/wire_v3.h"

namespace wiscape::net {

line_client::line_client(line_client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      rx_pos_(std::exchange(other.rx_pos_, 0)) {}

line_client& line_client::operator=(line_client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    rx_pos_ = std::exchange(other.rx_pos_, 0);
  }
  return *this;
}

void line_client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
  rx_pos_ = 0;
}

bool line_client::try_connect(const std::string& host, std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    ::close(fd);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return true;
}

void line_client::connect(const std::string& host, std::uint16_t port) {
  if (!try_connect(host, port)) {
    throw std::system_error(errno, std::generic_category(),
                            "line_client::connect " + host);
  }
}

void line_client::fill_rx() {
  // 64 KiB per recv: a batched ESTB reply (~70 KiB at 1024 estimates)
  // lands in two syscalls instead of five.
  char buf[65536];
  ssize_t n;
  do {
    n = ::recv(fd_, buf, sizeof buf, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) {
    throw std::runtime_error(n == 0 ? "line_client: connection closed by peer"
                                    : "line_client: recv failed: " +
                                          std::string(std::strerror(errno)));
  }
  rx_.append(buf, static_cast<std::size_t>(n));
}

std::string_view line_client::read_line() {
  for (;;) {
    const std::size_t nl = rx_.find('\n', rx_pos_);
    if (nl != std::string::npos) {
      std::string_view line(rx_.data() + rx_pos_, nl - rx_pos_);
      rx_pos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return line;
    }
    // Compact the consumed prefix before growing the buffer further.
    if (rx_pos_ > 0 && rx_pos_ == rx_.size()) {
      rx_.clear();
      rx_pos_ = 0;
    } else if (rx_pos_ > 65536) {
      rx_.erase(0, rx_pos_);
      rx_pos_ = 0;
    }
    fill_rx();
  }
}

void line_client::send_framed(std::string_view req) {
  if (fd_ < 0) throw std::runtime_error("line_client: not connected");
  // Gather I/O: the request and its newline leave in one syscall with no
  // concatenated copy. sendmsg rather than writev for MSG_NOSIGNAL -- a
  // server dying mid-churn must surface as an error, not SIGPIPE.
  char nl = '\n';
  iovec iov[2];
  iov[0].iov_base = const_cast<char*>(req.data());
  iov[0].iov_len = req.size();
  iov[1].iov_base = &nl;
  iov[1].iov_len = 1;
  iovec* cur = iov;
  int iovcnt = 2;
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = cur;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    ssize_t n;
    do {
      n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      throw std::runtime_error("line_client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (iovcnt > 0 && left >= cur->iov_len) {
      left -= cur->iov_len;
      ++cur;
      --iovcnt;
    }
    if (iovcnt > 0) {
      cur->iov_base = static_cast<char*>(cur->iov_base) + left;
      cur->iov_len -= left;
    }
  }
}

void line_client::send_all(std::string_view bytes) {
  if (fd_ < 0) throw std::runtime_error("line_client: not connected");
  iovec iov;
  iov.iov_base = const_cast<char*>(bytes.data());
  iov.iov_len = bytes.size();
  while (iov.iov_len > 0) {
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    ssize_t n;
    do {
      n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      throw std::runtime_error("line_client: send failed: " +
                               std::string(std::strerror(errno)));
    }
    iov.iov_base = static_cast<char*>(iov.iov_base) + n;
    iov.iov_len -= static_cast<std::size_t>(n);
  }
}

std::string_view line_client::read_frame() {
  // Compact the consumed prefix (same policy as read_line) so a long
  // pipelined burst does not grow rx_ with bytes already handed out.
  if (rx_pos_ > 0 && rx_pos_ == rx_.size()) {
    rx_.clear();
    rx_pos_ = 0;
  } else if (rx_pos_ > 65536) {
    rx_.erase(0, rx_pos_);
    rx_pos_ = 0;
  }
  while (rx_.size() - rx_pos_ < proto::v3::frame_header_bytes) fill_rx();
  const auto hdr = proto::v3::peek_header(
      std::string_view(rx_.data() + rx_pos_, rx_.size() - rx_pos_));
  if (!hdr) {
    throw std::runtime_error("line_client: reply is not a binary frame");
  }
  const std::size_t total = proto::v3::frame_header_bytes + hdr->payload_len;
  while (rx_.size() - rx_pos_ < total) fill_rx();
  std::string_view frame(rx_.data() + rx_pos_, total);
  rx_pos_ += total;
  return frame;
}

std::string_view line_client::request_frame(std::string_view frame) {
  if (fd_ < 0) throw std::runtime_error("line_client: not connected");
  switch (core::fault::fire(core::fault::site::frame_truncate)) {
    case core::fault::action::fail:
      // A client dying mid-send: ship a strict prefix of the frame, then
      // surface the failure. The server is left holding a cut frame that
      // only EOF resolves (the caller's reconnect path closes the socket).
      if (frame.size() > 1) send_all(frame.substr(0, frame.size() / 2));
      throw std::runtime_error("line_client: send failed: injected truncation");
    case core::fault::action::stall:
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      break;
    case core::fault::action::proceed:
      break;
  }
  send_all(frame);
  // Compact so the reply lands contiguously at the front of rx_; with a
  // warm buffer the erase and recv appends reuse capacity (no allocation).
  if (rx_pos_ > 0) {
    rx_.erase(0, rx_pos_);
    rx_pos_ = 0;
  }
  return read_frame();
}

std::string line_client::request(std::string_view req) {
  return std::string(request_view(req));
}

std::string_view line_client::request_view(std::string_view req) {
  send_framed(req);
  // Compact first so the whole reply lands contiguously at the front of
  // rx_ and the returned view needs no stitching. With a warm buffer the
  // erase and the recv appends below reuse capacity: zero allocations.
  if (rx_pos_ > 0) {
    rx_.erase(0, rx_pos_);
    rx_pos_ = 0;
  }
  std::size_t scanned = 0;
  std::size_t lines_needed = 1;
  std::size_t lines_found = 0;
  std::size_t end = 0;
  for (;;) {
    const std::size_t nl = rx_.find('\n', scanned);
    if (nl == std::string::npos) {
      scanned = rx_.size();
      fill_rx();
      continue;
    }
    ++lines_found;
    if (lines_found == 1) {
      // The reply's first line announces how many payload lines follow.
      std::string_view first(rx_.data(), nl);
      if (!first.empty() && first.back() == '\r') first.remove_suffix(1);
      lines_needed += proto::reply_extra_lines(first);
    }
    scanned = nl + 1;
    if (lines_found == lines_needed) {
      end = nl;
      break;
    }
  }
  rx_pos_ = scanned;
  std::string_view reply(rx_.data(), end);
  if (!reply.empty() && reply.back() == '\r') reply.remove_suffix(1);
  return reply;
}

std::size_t line_client::pipeline(std::string_view block, std::size_t count) {
  // One burst of complete back-to-back requests (text lines and/or binary
  // frames)...
  send_all(block);
  // ...then all the replies, positional with the requests. Each reply's
  // first byte picks its framing: the v3 magic is not printable ASCII, so
  // no text reply ever starts with it.
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    while (rx_pos_ == rx_.size()) {
      // Compact before growing, exactly like read_line's empty-buffer
      // path: without this, the framing peek below keeps appending past
      // an ever-longer consumed prefix and rx_ balloons across a burst.
      if (rx_pos_ > 0) {
        rx_.clear();
        rx_pos_ = 0;
      }
      fill_rx();
    }
    if (static_cast<unsigned char>(rx_[rx_pos_]) == proto::v3::frame_magic) {
      total += read_frame().size();
      continue;
    }
    const std::string_view first = read_line();
    total += first.size() + 1;
    const std::size_t extra = proto::reply_extra_lines(first);
    for (std::size_t j = 0; j < extra; ++j) total += read_line().size() + 1;
  }
  return total;
}

proto::hello_reply line_client::hello(std::uint32_t version) {
  proto::hello_request req;
  req.version = version;
  const std::string reply = request(proto::encode(req));
  if (proto::message_type(reply) != "HELLO") {
    throw std::runtime_error("line_client: HELLO rejected: " +
                             proto::error_excerpt(reply));
  }
  return proto::decode_hello_reply(reply);
}

}  // namespace wiscape::net

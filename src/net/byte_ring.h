// Growable, bounded byte ring buffer for per-session socket I/O.
//
// Every TCP session owns two of these (read side and write side), so their
// footprint decides whether C10k is cheap: a ring starts at a small
// power-of-two capacity (4 KiB) and doubles lazily up to a hard cap, so ten
// thousand mostly-idle sessions cost megabytes, not the gigabytes that
// eagerly cap-sized buffers would. The cap is the backpressure line --
// append() refuses to grow past it, and the session layer converts that
// refusal into a counted disconnect (oversized request on the read side,
// slow reader on the write side) instead of unbounded memory growth.
//
// The storage is circular (head index + size over a power-of-two vector),
// which makes consume() O(1): bytes drained from the front never trigger a
// memmove of what remains, the common case when a socket drains replies in
// kernel-buffer-sized slices. Access is span-based so the session layer can
// recv()/send() straight into/out of the storage:
//   * write_spans() / commit(n)  -- up to two raw slots for readv-style fill
//   * read_spans()  / consume(n) -- up to two readable slices for writev
//   * linearize()                -- rotates the readable region contiguous
//     (in place, no allocation) so a complete request can be handed to the
//     zero-copy line decoder as one std::string_view
// A request that does not wrap (the common case -- requests start at the
// head right after the previous consume) linearizes for free.
//
// Not thread-safe: a ring belongs to exactly one event-loop thread, like
// the session that owns it.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

namespace wiscape::net {

class byte_ring {
 public:
  /// A ring that may grow from `initial` (rounded up to a power of two,
  /// minimum 64) up to `max_bytes`. `max_bytes` below `initial` clamps the
  /// ring to its initial capacity.
  explicit byte_ring(std::size_t max_bytes, std::size_t initial = 4096)
      : max_(std::max<std::size_t>(max_bytes, 64)) {
    // Storage is always a power of two (the index mask depends on it); the
    // cap bounds *size*, so a non-power-of-two cap rounds storage up at most
    // once at full growth.
    buf_.resize(round_up(std::min(initial, max_)));
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t max_bytes() const noexcept { return max_; }
  /// Bytes that can still be appended before the cap refuses more.
  std::size_t headroom() const noexcept { return max_ - size_; }
  /// True when the ring holds its cap and cannot accept another byte.
  bool full() const noexcept { return size_ == max_; }

  /// Appends `data`, growing (doubling) as needed. Returns false -- and
  /// appends nothing -- when the result would exceed the cap.
  bool append(std::string_view data) {
    if (data.size() > headroom()) return false;
    reserve(size_ + data.size());
    const std::size_t w = mask(head_ + size_);
    const std::size_t first = std::min(data.size(), buf_.size() - w);
    std::memcpy(buf_.data() + w, data.data(), first);
    if (first < data.size()) {
      std::memcpy(buf_.data(), data.data() + first, data.size() - first);
    }
    size_ += data.size();
    return true;
  }
  bool append(char c) { return append(std::string_view(&c, 1)); }

  /// Grows towards `want` bytes of total size (clamped to the cap) and
  /// returns up to two writable slots covering all free storage. Fill them
  /// in order, then commit() what was actually written.
  std::array<std::span<char>, 2> write_spans(std::size_t want) {
    reserve(std::min(max_, std::max(size_ + want, std::size_t{1})));
    const std::size_t free_bytes = std::min(buf_.size() - size_, headroom());
    if (free_bytes == 0) return {};
    const std::size_t w = mask(head_ + size_);
    const std::size_t first = std::min(free_bytes, buf_.size() - w);
    std::array<std::span<char>, 2> out{};
    out[0] = {buf_.data() + w, first};
    if (first < free_bytes) out[1] = {buf_.data(), free_bytes - first};
    return out;
  }

  /// Declares `n` bytes of the write_spans() storage filled (n must not
  /// exceed what the spans covered).
  void commit(std::size_t n) noexcept { size_ += n; }

  /// Up to two readable slices, front of the ring first.
  std::array<std::span<const char>, 2> read_spans() const noexcept {
    if (size_ == 0) return {};
    const std::size_t first = std::min(size_, buf_.size() - head_);
    std::array<std::span<const char>, 2> out{};
    out[0] = {buf_.data() + head_, first};
    if (first < size_) out[1] = {buf_.data(), size_ - first};
    return out;
  }

  /// Drops `n` bytes from the front (n <= size()).
  void consume(std::size_t n) noexcept {
    head_ = mask(head_ + n);
    size_ -= n;
    if (size_ == 0) head_ = 0;  // free realignment: next request starts flat
  }

  /// Byte at offset `i` from the front (i < size()).
  char at(std::size_t i) const noexcept { return buf_[mask(head_ + i)]; }

  /// Finds the first `c` at offset >= `from`, or npos. Scans the (at most
  /// two) contiguous slices with memchr.
  std::size_t find(char c, std::size_t from = 0) const noexcept {
    if (from >= size_) return npos;
    const auto spans = read_spans();
    if (from < spans[0].size()) {
      const auto* p = static_cast<const char*>(std::memchr(
          spans[0].data() + from, c, spans[0].size() - from));
      if (p != nullptr) return static_cast<std::size_t>(p - spans[0].data());
      from = spans[0].size();
    }
    if (!spans[1].empty() && from < size_) {
      const auto* p = static_cast<const char*>(std::memchr(
          spans[1].data() + (from - spans[0].size()), c, size_ - from));
      if (p != nullptr) {
        return spans[0].size() + static_cast<std::size_t>(p - spans[1].data());
      }
    }
    return npos;
  }

  /// Makes the readable region contiguous (rotating in place if it wraps)
  /// and returns it as one view. O(size) only when wrapped; a request that
  /// begins at the front of a flat ring costs nothing.
  std::string_view linearize() {
    if (size_ > 0 && head_ + size_ > buf_.size()) {
      std::rotate(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
                  buf_.end());
      head_ = 0;
    }
    return {buf_.data() + head_, size_};
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static std::size_t round_up(std::size_t n) noexcept {
    std::size_t p = 64;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t mask(std::size_t i) const noexcept { return i & (buf_.size() - 1); }

  /// Grows storage to hold `need` bytes (power-of-two, <= cap), keeping the
  /// readable bytes at the front of the new storage.
  void reserve(std::size_t need) {
    if (need <= buf_.size()) return;
    const std::size_t want = std::min(max_, round_up(need));
    if (want <= buf_.size()) return;
    std::vector<char> next(want);
    const auto spans = read_spans();
    std::memcpy(next.data(), spans[0].data(), spans[0].size());
    if (!spans[1].empty()) {
      std::memcpy(next.data() + spans[0].size(), spans[1].data(),
                  spans[1].size());
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<char> buf_;
  std::size_t max_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wiscape::net

// Blocking line-protocol TCP client for tests, benches and the scenario
// engine's over-TCP mode.
//
// line_client speaks one synchronous request/reply exchange at a time over
// a persistent connection: send the request (single line or REPORTB/QUERYB
// frame) plus the terminating newline, then read exactly one reply -- the
// first line plus however many payload lines its header announces
// (proto::reply_extra_lines), with the trailing newline stripped so the
// returned string is byte-identical to what the in-process
// proto::coordinator_server::handle() would have returned. That equivalence
// is what lets the scenario engine and benches swap transports without
// changing any accounting.
//
// request() throws std::runtime_error when the connection dies mid-exchange
// (EOF or a socket error); callers that expect churn (the connection_churn
// scenario) catch it, reconnect and re-negotiate HELLO. Not thread-safe:
// one client, one thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "proto/messages.h"

namespace wiscape::net {

class line_client {
 public:
  line_client() = default;
  ~line_client() { close(); }

  line_client(const line_client&) = delete;
  line_client& operator=(const line_client&) = delete;
  line_client(line_client&& other) noexcept;
  line_client& operator=(line_client&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). Throws std::system_error
  /// when the connection fails. Reconnecting an open client closes the old
  /// connection first.
  void connect(const std::string& host, std::uint16_t port);

  /// connect() that reports refusal instead of throwing: false when the
  /// TCP connect fails (server down / kill storm), for callers that count
  /// refused connects.
  bool try_connect(const std::string& host, std::uint16_t port);

  void close() noexcept;
  bool connected() const noexcept { return fd_ >= 0; }

  /// One synchronous exchange: sends `request` + '\n' and returns the full
  /// reply (multi-line frames included) without its trailing newline.
  /// Throws std::runtime_error when the connection dies mid-exchange.
  std::string request(std::string_view req);

  /// request() without the return-value copy: the view aliases the client's
  /// receive buffer and stays valid until the next call on this client.
  /// With a warm buffer one exchange makes zero heap allocations on the
  /// client side -- the measurement-friendly flavour benches use so client
  /// allocation cost cannot masquerade as server round-trip cost.
  std::string_view request_view(std::string_view req);

  /// One synchronous binary (wire v3) exchange: sends the self-delimiting
  /// `frame` as-is -- no newline -- and returns the complete binary reply
  /// frame, header included, as a view aliasing the receive buffer (valid
  /// until the next call). The caller negotiates HELLO ver>=3 first on
  /// gated ports. Throws std::runtime_error when the connection dies or
  /// the reply is not a well-formed frame. The frame_truncate fault seam
  /// fires here: on fail only a prefix of the frame leaves before the
  /// throw, so the server observes a cut frame followed by EOF.
  std::string_view request_frame(std::string_view frame);

  /// Pipelined exchange: sends `block` -- `count` complete back-to-back
  /// requests, each either a '\n'-terminated text line (or REPORTB/QUERYB
  /// frame) or a self-delimiting binary v3 frame -- in one burst, then
  /// reads all `count` replies, auto-detecting each reply's framing by its
  /// first byte. Returns the total reply bytes (text separators and binary
  /// headers included). This is how a batching reporter drives the
  /// server's per-wake reply coalescing.
  std::size_t pipeline(std::string_view block, std::size_t count);

  /// HELLO handshake convenience; throws std::runtime_error when the server
  /// answers anything but HELLO.
  proto::hello_reply hello(std::uint32_t version = proto::wire_version);

 private:
  /// Reads up to (and including) the next '\n'; the returned line excludes
  /// it. Throws on EOF/error.
  std::string_view read_line();
  /// Reads exactly one binary v3 frame (header + declared payload); the
  /// returned view includes the header. Throws on EOF/error or a byte
  /// stream that is not a frame where one is expected.
  std::string_view read_frame();
  /// One recv appended to rx_. Throws on EOF/error.
  void fill_rx();
  /// Sends `req` + '\n' in one sendmsg (gather I/O -- no framed copy).
  void send_framed(std::string_view req);
  /// Sends every byte of `bytes` as-is. Throws on error.
  void send_all(std::string_view bytes);

  int fd_ = -1;
  std::string rx_;          ///< bytes received, not yet consumed
  std::size_t rx_pos_ = 0;  ///< consumed prefix of rx_
};

}  // namespace wiscape::net

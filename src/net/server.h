// Nonblocking epoll TCP front end for the coordinator.
//
// tcp_server turns proto::coordinator_server -- until now an in-process
// line handler -- into a real socket service (ROADMAP: "real async network
// transport"). The threading model is shared-nothing, nginx-style: each of
// `event_loops` threads owns its own epoll instance *and* its own listening
// socket bound with SO_REUSEPORT, so the kernel load-balances accepts
// across loops and an accepted session lives its whole life on the loop
// that accepted it -- no cross-thread handoff, no locks on the data path.
// With more than one loop the handler must be in concurrent (sharded) mode;
// the constructor enforces it.
//
// Per-session behaviour (framing, HELLO gating, shed policy, buffer caps)
// lives in net::session; this layer owns the sockets: accept with
// per-connection caps, level-triggered read/write readiness, drain-on-
// disconnect (buffered complete requests are still answered and flushed
// after peer EOF), and an idle sweep that disconnects sessions with no
// complete request inside `idle_timeout_s` -- even mid-frame.
//
// Backpressure: the loop samples `ingest_saturation` (typically
// core::sharded_coordinator::ingest_saturation) every
// `saturation_refresh_every` pump calls and passes the cached value to the
// sessions' shed policy, so an overloaded pipeline answers typed
// "ERR overload" instead of stalling the event loop behind a full queue.
//
// Fault seams (core::fault): `accept_fail` closes a just-accepted socket,
// `read_stall` delays or kills a readable session, `write_full` makes a
// flush behave as if the socket were unwritable -- the scenario engine's
// connection_churn scenario drives all three through real sockets.
//
// Observability: the net.server.* family (obs/names.h; reference table in
// docs/RUNBOOK.md). Operational guide: docs/RUNBOOK.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/session.h"
#include "proto/server.h"

namespace wiscape::net {

struct server_config {
  std::string bind_address = "127.0.0.1";  ///< IPv4 dotted quad
  std::uint16_t port = 0;                  ///< 0 = ephemeral; see port()
  std::size_t event_loops = 2;             ///< epoll threads (>=1)
  std::size_t max_sessions = 65536;        ///< accept cap, across all loops
  session_limits limits{};                 ///< per-session buffer caps/gates
  shed_policy policy = shed_policy::queries_first;
  double shed_start = 0.75;  ///< saturation >= start: shed the first class
  double shed_hard = 0.95;   ///< saturation >= hard: shed both classes
  /// Ingest saturation source in [0, 1] (bind
  /// core::sharded_coordinator::ingest_saturation here). Empty = never shed.
  std::function<double()> ingest_saturation{};
  /// Pump calls between saturation refreshes (the value is cached per loop
  /// so sessions never call into the coordinator on the fast path).
  std::uint32_t saturation_refresh_every = 64;
  /// Most bytes one epoll wake drains from a single socket before replies
  /// are dispatched and flushed. Reads continue past the first readv only
  /// while each one completely fills the offered buffers (the kernel queue
  /// looks deep), so a pipelining client is answered with one writev per
  /// wake instead of one per 16 KiB, and the cap keeps one firehose session
  /// from starving its loop's neighbours.
  std::size_t read_drain_budget_bytes = 256 * 1024;
  double idle_timeout_s = 300.0;  ///< <= 0 disables the idle sweep
  int listen_backlog = 1024;
};

/// The epoll TCP server. start() binds and spawns the loops; stop() (or the
/// destructor) disconnects every session and joins them. All public methods
/// are safe to call from the owning thread; port() and active_sessions()
/// from any thread.
class tcp_server {
 public:
  /// Throws std::invalid_argument when cfg asks for multiple event loops
  /// over a non-concurrent (sequential) handler.
  tcp_server(proto::coordinator_server& handler, server_config cfg);
  ~tcp_server();

  tcp_server(const tcp_server&) = delete;
  tcp_server& operator=(const tcp_server&) = delete;

  /// Binds the listeners and spawns the event-loop threads. Throws
  /// std::system_error when bind/listen fails. Idempotent once started.
  void start();

  /// Disconnects every session (best-effort final flush), closes the
  /// listeners and joins the loops. Idempotent.
  void stop();

  /// The bound TCP port (the configured one, or the kernel-assigned
  /// ephemeral port when config.port == 0). Valid after start().
  std::uint16_t port() const noexcept { return port_; }

  /// Currently open sessions across all loops.
  std::size_t active_sessions() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  const server_config& config() const noexcept { return cfg_; }

 private:
  struct event_loop;

  proto::coordinator_server* handler_;
  server_config cfg_;
  std::uint16_t port_ = 0;
  std::atomic<std::size_t> active_{0};
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<event_loop>> loops_;
  std::vector<std::thread> threads_;
};

}  // namespace wiscape::net

#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

#include "core/fault_injection.h"
#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::net {

namespace {

struct net_metrics {
  obs::counter& accepts;
  obs::counter& accept_faults;
  obs::counter& capacity_rejects;
  obs::counter& closes;
  obs::counter& idle_timeouts;
  obs::counter& oversize_disconnects;
  obs::counter& slow_reader_disconnects;
  obs::counter& hello_violations;
  obs::counter& shed_queries;
  obs::counter& shed_reports;
  obs::counter& err_overload;
  obs::counter& bytes_in;
  obs::counter& bytes_out;
  obs::counter& writev_calls;
  obs::gauge& active_sessions;
  obs::histogram& read_latency;
  obs::histogram& write_latency;
  obs::histogram& replies_per_flush;
};

net_metrics& metrics() {
  auto& reg = obs::registry::global();
  static net_metrics m{
      reg.get_counter(obs::names::kNetAccepts),
      reg.get_counter(obs::names::kNetAcceptFaults),
      reg.get_counter(obs::names::kNetCapacityRejects),
      reg.get_counter(obs::names::kNetCloses),
      reg.get_counter(obs::names::kNetIdleTimeouts),
      reg.get_counter(obs::names::kNetOversizeDisconnects),
      reg.get_counter(obs::names::kNetSlowReaderDisconnects),
      reg.get_counter(obs::names::kNetHelloViolations),
      reg.get_counter(obs::names::kNetShedQueries),
      reg.get_counter(obs::names::kNetShedReports),
      reg.get_counter(obs::names::kServerErrOverload),
      reg.get_counter(obs::names::kNetBytesIn),
      reg.get_counter(obs::names::kNetBytesOut),
      reg.get_counter(obs::names::kNetWritevCalls),
      reg.get_gauge(obs::names::kNetActiveSessions),
      reg.get_histogram(obs::names::kNetReadLatency),
      reg.get_histogram(obs::names::kNetWriteLatency),
      reg.get_histogram(obs::names::kNetRepliesPerFlush)};
  return m;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int make_listener(const std::string& address, std::uint16_t port,
                  int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  // SO_REUSEPORT gives every event loop its own queue on the same port; the
  // kernel spreads incoming connections across them.
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0 ||
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "setsockopt");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::invalid_argument("tcp_server: bad IPv4 bind address '" +
                                address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(), "bind/listen");
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

// One epoll thread: its listener, its wakeup eventfd, and every session it
// has accepted. Shared-nothing -- only `server->active_` (an atomic) and
// the obs registry are touched across loops.
struct tcp_server::event_loop {
  tcp_server* server;
  int epoll_fd = -1;
  int listen_fd = -1;
  int wake_fd = -1;

  struct connection {
    int fd;
    session sess;
    double last_activity;
    bool want_write = false;
  };
  std::unordered_map<int, std::unique_ptr<connection>> conns;

  // Cached shed state (refreshed every saturation_refresh_every pumps).
  double saturation = 0.0;
  std::uint32_t pumps_since_refresh = 0;

  event_loop(tcp_server* srv, std::uint16_t port) : server(srv) {
    const auto& cfg = srv->cfg_;
    listen_fd = make_listener(cfg.bind_address, port, cfg.listen_backlog);
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) throw_errno("epoll_create1");
    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd < 0) throw_errno("eventfd");
    add_fd(listen_fd, EPOLLIN);
    add_fd(wake_fd, EPOLLIN);
  }

  ~event_loop() {
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (listen_fd >= 0) ::close(listen_fd);
  }

  void add_fd(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw_errno("epoll_ctl(ADD)");
    }
  }

  void mod_fd(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof one);
  }

  shed_state shed() {
    const auto& cfg = server->cfg_;
    if (pumps_since_refresh++ % cfg.saturation_refresh_every == 0) {
      saturation = cfg.ingest_saturation ? cfg.ingest_saturation() : 0.0;
    }
    return {cfg.policy, saturation, cfg.shed_start, cfg.shed_hard};
  }

  void accept_all() {
    auto& m = metrics();
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (drained) or a transient accept error
      }
      m.accepts.inc();
      if (core::fault::armed() &&
          core::fault::fire(core::fault::site::accept_fail) ==
              core::fault::action::fail) {
        ::close(fd);
        m.accept_faults.inc();
        continue;
      }
      if (server->active_.load(std::memory_order_relaxed) >=
          server->cfg_.max_sessions) {
        ::close(fd);
        m.capacity_rejects.inc();
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      auto conn = std::make_unique<connection>(connection{
          fd, session(server->cfg_.limits, *server->handler_), now_s()});
      try {
        add_fd(fd, EPOLLIN);
      } catch (const std::system_error&) {
        ::close(fd);
        continue;
      }
      conns.emplace(fd, std::move(conn));
      server->active_.fetch_add(1, std::memory_order_relaxed);
      m.active_sessions.add(1);
    }
  }

  /// Writes out-ring bytes to the socket until drained or EAGAIN. Returns
  /// false on a hard write error (the connection must close).
  bool flush(connection& c) {
    auto& m = metrics();
    if (core::fault::armed()) {
      const auto a = core::fault::fire(core::fault::site::write_full);
      if (a == core::fault::action::fail) {
        // Behave exactly as an unwritable socket: keep the bytes queued and
        // wait for (the next) EPOLLOUT/flush attempt.
        c.want_write = !c.sess.out().empty();
        if (c.want_write) mod_fd(c.fd, EPOLLIN | EPOLLOUT);
        return true;
      }
      if (a == core::fault::action::stall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // All replies queued since the last flush ride this one writev (the
    // ring's two spans cover everything queued): record the coalescing
    // factor. Scaled by 1e-3 so the shared histogram edges read as reply
    // counts (0.001 bucket = 1 reply/flush, 0.1 = 100).
    const std::uint64_t queued = c.sess.take_queued_replies();
    if (queued > 0) {
      m.replies_per_flush.record(static_cast<double>(queued) * 1e-3);
    }
    const double t0 = c.sess.out().empty() ? 0.0 : now_s();
    std::size_t wrote = 0;
    while (!c.sess.out().empty()) {
      const auto spans = c.sess.out().read_spans();
      iovec iov[2];
      int iovcnt = 0;
      for (const auto& s : spans) {
        if (s.empty()) break;
        iov[iovcnt].iov_base = const_cast<char*>(s.data());
        iov[iovcnt].iov_len = s.size();
        ++iovcnt;
      }
      m.writev_calls.inc();
      const ssize_t n = ::writev(c.fd, iov, iovcnt);
      if (n > 0) {
        c.sess.out().consume(static_cast<std::size_t>(n));
        wrote += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      return false;  // peer reset / hard error
    }
    if (wrote > 0) {
      m.bytes_out.inc(wrote);
      m.write_latency.record(now_s() - t0);
    }
    const bool pending = !c.sess.out().empty();
    if (pending != c.want_write) {
      c.want_write = pending;
      mod_fd(c.fd, pending ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
    }
    return true;
  }

  void close_conn(int fd, close_reason why) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    connection& c = *it->second;
    c.sess.set_reason(why);
    // Drain-on-disconnect: one best-effort flush so a final ERR reply (or
    // replies to requests answered after peer EOF) still reaches readers.
    flush(c);
    auto& m = metrics();
    switch (c.sess.reason()) {
      case close_reason::idle_timeout:
        m.idle_timeouts.inc();
        break;
      case close_reason::oversize:
        m.oversize_disconnects.inc();
        break;
      case close_reason::slow_reader:
        m.slow_reader_disconnects.inc();
        break;
      case close_reason::hello_violation:
        m.hello_violations.inc();
        break;
      default:
        break;
    }
    m.closes.inc();
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(it);
    server->active_.fetch_sub(1, std::memory_order_relaxed);
    m.active_sessions.add(-1);
  }

  /// Runs the session state machine over whatever is buffered and flushes
  /// replies; closes the connection when the session says so.
  void pump(connection& c) {
    auto& m = metrics();
    pump_stats stats;
    const double t0 = now_s();
    const bool keep = c.sess.pump(shed(), stats);
    if (stats.dispatched > 0) m.read_latency.record(now_s() - t0);
    if (stats.shed_queries > 0) m.shed_queries.inc(stats.shed_queries);
    if (stats.shed_reports > 0) m.shed_reports.inc(stats.shed_reports);
    if (stats.shed_queries + stats.shed_reports > 0) {
      m.err_overload.inc(stats.shed_queries + stats.shed_reports);
    }
    if (!keep) {
      close_conn(c.fd, c.sess.reason());
      return;
    }
    if (!flush(c)) close_conn(c.fd, close_reason::io_error);
  }

  void on_readable(connection& c) {
    if (core::fault::armed()) {
      const auto a = core::fault::fire(core::fault::site::read_stall);
      if (a == core::fault::action::fail) {
        close_conn(c.fd, close_reason::io_error);
        return;
      }
      if (a == core::fault::action::stall) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    auto& m = metrics();
    // Adaptive drain: keep reading only while each readv completely fills
    // the offered buffers (the kernel queue looks deep) and the per-wake
    // budget holds, then dispatch every complete request buffered and flush
    // once -- one writev per wake for a pipelining client instead of one
    // per 16 KiB, while the budget keeps a firehose session from starving
    // its loop's neighbours.
    std::size_t drained = 0;
    bool eof = false;
    bool hard_error = false;
    for (;;) {
      const auto spans = c.sess.in().write_spans(16384);
      iovec iov[2];
      int iovcnt = 0;
      std::size_t offered = 0;
      for (const auto& s : spans) {
        if (s.empty()) break;
        iov[iovcnt].iov_base = s.data();
        iov[iovcnt].iov_len = s.size();
        offered += s.size();
        ++iovcnt;
      }
      if (iovcnt == 0) {
        if (drained > 0) break;  // ring filled this wake: dispatch first
        // Read ring at its cap with no complete request: pump() turns this
        // into the oversize disconnect.
        pump(c);
        return;
      }
      const ssize_t n = ::readv(c.fd, iov, iovcnt);
      if (n > 0) {
        c.sess.in().commit(static_cast<std::size_t>(n));
        m.bytes_in.inc(static_cast<std::size_t>(n));
        drained += static_cast<std::size_t>(n);
        if (static_cast<std::size_t>(n) == offered &&
            drained < server->cfg_.read_drain_budget_bytes) {
          continue;
        }
        break;  // short read: the socket is drained (level-trigger re-arms)
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      hard_error = true;
      break;
    }
    if (eof) {
      // Peer EOF: answer whatever complete requests are already buffered,
      // flush, then close (drain-on-disconnect).
      pump_stats stats;
      c.sess.pump(shed(), stats);
      if (stats.shed_queries > 0) m.shed_queries.inc(stats.shed_queries);
      if (stats.shed_reports > 0) m.shed_reports.inc(stats.shed_reports);
      if (stats.shed_queries + stats.shed_reports > 0) {
        m.err_overload.inc(stats.shed_queries + stats.shed_reports);
      }
      close_conn(c.fd, close_reason::peer_eof);
      return;
    }
    if (drained > 0) {
      c.last_activity = now_s();
      const int fd = c.fd;  // pump may close (and free) the connection
      pump(c);
      if (hard_error) close_conn(fd, close_reason::io_error);
      return;
    }
    if (hard_error) close_conn(c.fd, close_reason::io_error);
  }

  void sweep_idle(double now) {
    const double timeout = server->cfg_.idle_timeout_s;
    if (timeout <= 0) return;
    // Collect first: close_conn mutates the map.
    std::vector<int> expired;
    for (const auto& [fd, conn] : conns) {
      if (now - conn->last_activity > timeout) expired.push_back(fd);
    }
    for (const int fd : expired) close_conn(fd, close_reason::idle_timeout);
  }

  void run() {
    std::vector<epoll_event> events(256);
    const double timeout = server->cfg_.idle_timeout_s;
    const int wait_ms =
        timeout > 0
            ? std::max(1, std::min(100, static_cast<int>(timeout * 500)))
            : 250;
    double last_sweep = now_s();
    while (server->running_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd, events.data(),
                                 static_cast<int>(events.size()), wait_ms);
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        const std::uint32_t ev = events[i].events;
        if (fd == wake_fd) {
          std::uint64_t buf;
          while (::read(wake_fd, &buf, sizeof buf) > 0) {
          }
          continue;
        }
        if (fd == listen_fd) {
          accept_all();
          continue;
        }
        const auto it = conns.find(fd);
        if (it == conns.end()) continue;  // closed earlier this batch
        connection& c = *it->second;
        if (ev & (EPOLLHUP | EPOLLERR)) {
          // Half-close still delivers EPOLLIN|EPOLLHUP; let the read path
          // observe EOF and drain. A bare error closes immediately.
          if (!(ev & EPOLLIN)) {
            close_conn(fd, close_reason::io_error);
            continue;
          }
        }
        if (ev & EPOLLOUT) {
          if (!flush(c)) {
            close_conn(fd, close_reason::io_error);
            continue;
          }
        }
        if (ev & EPOLLIN) on_readable(c);
      }
      const double now = now_s();
      if (timeout > 0 && now - last_sweep >= std::min(timeout / 2, 0.1)) {
        sweep_idle(now);
        last_sweep = now;
      }
    }
    // Server stopping: best-effort flush, then drop every session.
    std::vector<int> open;
    open.reserve(conns.size());
    for (const auto& [fd, conn] : conns) open.push_back(fd);
    for (const int fd : open) close_conn(fd, close_reason::shutdown);
  }
};

tcp_server::tcp_server(proto::coordinator_server& handler, server_config cfg)
    : handler_(&handler), cfg_(std::move(cfg)) {
  if (cfg_.event_loops == 0) cfg_.event_loops = 1;
  if (cfg_.saturation_refresh_every == 0) cfg_.saturation_refresh_every = 1;
  if (cfg_.event_loops > 1 && !handler_->concurrent()) {
    throw std::invalid_argument(
        "tcp_server: multiple event loops require a concurrent (sharded) "
        "coordinator_server");
  }
}

tcp_server::~tcp_server() { stop(); }

void tcp_server::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  try {
    // Loop 0 resolves the ephemeral port; the rest bind the same one so the
    // kernel's SO_REUSEPORT balancing spreads accepts across loops.
    loops_.emplace_back(std::make_unique<event_loop>(this, cfg_.port));
    port_ = bound_port(loops_.front()->listen_fd);
    for (std::size_t i = 1; i < cfg_.event_loops; ++i) {
      loops_.emplace_back(std::make_unique<event_loop>(this, port_));
    }
  } catch (...) {
    running_.store(false, std::memory_order_release);
    loops_.clear();
    throw;
  }
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([l = loop.get()] { l->run(); });
  }
}

void tcp_server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& loop : loops_) loop->wake();
  for (auto& t : threads_) t.join();
  threads_.clear();
  loops_.clear();
}

}  // namespace wiscape::net

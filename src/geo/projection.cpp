#include "geo/projection.h"

#include <cmath>
#include <stdexcept>

namespace wiscape::geo {

double distance_m(const xy& a, const xy& b) noexcept {
  return std::hypot(a.x_m - b.x_m, a.y_m - b.y_m);
}

projection::projection(const lat_lon& origin) : origin_(origin) {
  if (!(origin.lat_deg >= -89.0 && origin.lat_deg <= 89.0)) {
    throw std::invalid_argument(
        "projection origin latitude must be within [-89, 89] degrees");
  }
  constexpr double deg = std::numbers::pi / 180.0;
  meters_per_deg_lat_ = earth_radius_m * deg;
  meters_per_deg_lon_ =
      earth_radius_m * deg * std::cos(deg_to_rad(origin.lat_deg));
}

xy projection::to_xy(const lat_lon& p) const noexcept {
  return {(p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
          (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_};
}

lat_lon projection::to_lat_lon(const xy& p) const noexcept {
  return {origin_.lat_deg + p.y_m / meters_per_deg_lat_,
          origin_.lon_deg + p.x_m / meters_per_deg_lon_};
}

}  // namespace wiscape::geo

#include "geo/zone_grid.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace wiscape::geo {

std::string to_string(const zone_id& z) {
  return std::to_string(z.ix) + ":" + std::to_string(z.iy);
}

zone_grid::zone_grid(projection proj, double radius_m)
    : proj_(proj), radius_m_(radius_m) {
  if (!(radius_m > 0.0)) {
    throw std::invalid_argument("zone_grid radius must be positive");
  }
  side_m_ = radius_m * std::sqrt(std::numbers::pi);
}

namespace {
// Saturating double -> cell cast. Wire-derived coordinates can be absurd
// (the REPORT decoder accepts any double), and casting an out-of-int32-range
// double is undefined behaviour; saturate instead so extreme fixes land on
// extreme cells (which downstream packed-range checks reject) and NaN lands
// on INT32_MIN rather than an arbitrary value.
std::int32_t cell_index(double coord_m, double side_m) noexcept {
  const double c = std::floor(coord_m / side_m);
  constexpr double lo = std::numeric_limits<std::int32_t>::min();
  constexpr double hi = std::numeric_limits<std::int32_t>::max();
  if (!(c >= lo)) return std::numeric_limits<std::int32_t>::min();  // or NaN
  if (c > hi) return std::numeric_limits<std::int32_t>::max();
  return static_cast<std::int32_t>(c);
}
}  // namespace

zone_id zone_grid::zone_of(const xy& p) const noexcept {
  return {cell_index(p.x_m, side_m_), cell_index(p.y_m, side_m_)};
}

zone_id zone_grid::zone_of(const lat_lon& p) const noexcept {
  return zone_of(proj_.to_xy(p));
}

xy zone_grid::center_xy(const zone_id& z) const noexcept {
  return {(z.ix + 0.5) * side_m_, (z.iy + 0.5) * side_m_};
}

lat_lon zone_grid::center(const zone_id& z) const noexcept {
  return proj_.to_lat_lon(center_xy(z));
}

double zone_grid::distance_to_center_m(const lat_lon& p,
                                       const zone_id& z) const noexcept {
  return distance_m(proj_.to_xy(p), center_xy(z));
}

int find_zone(const std::vector<circular_zone>& zones,
              const lat_lon& p) noexcept {
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (zones[i].contains(p)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace wiscape::geo

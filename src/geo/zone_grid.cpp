#include "geo/zone_grid.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wiscape::geo {

std::string to_string(const zone_id& z) {
  return std::to_string(z.ix) + ":" + std::to_string(z.iy);
}

zone_grid::zone_grid(projection proj, double radius_m)
    : proj_(proj), radius_m_(radius_m) {
  if (!(radius_m > 0.0)) {
    throw std::invalid_argument("zone_grid radius must be positive");
  }
  side_m_ = radius_m * std::sqrt(std::numbers::pi);
}

zone_id zone_grid::zone_of(const xy& p) const noexcept {
  return {static_cast<std::int32_t>(std::floor(p.x_m / side_m_)),
          static_cast<std::int32_t>(std::floor(p.y_m / side_m_))};
}

zone_id zone_grid::zone_of(const lat_lon& p) const noexcept {
  return zone_of(proj_.to_xy(p));
}

xy zone_grid::center_xy(const zone_id& z) const noexcept {
  return {(z.ix + 0.5) * side_m_, (z.iy + 0.5) * side_m_};
}

lat_lon zone_grid::center(const zone_id& z) const noexcept {
  return proj_.to_lat_lon(center_xy(z));
}

double zone_grid::distance_to_center_m(const lat_lon& p,
                                       const zone_id& z) const noexcept {
  return distance_m(proj_.to_xy(p), center_xy(z));
}

int find_zone(const std::vector<circular_zone>& zones,
              const lat_lon& p) noexcept {
  for (std::size_t i = 0; i < zones.size(); ++i) {
    if (zones[i].contains(p)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace wiscape::geo

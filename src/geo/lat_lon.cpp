#include "geo/lat_lon.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wiscape::geo {

double distance_m(const lat_lon& a, const lat_lon& b) noexcept {
  const double phi1 = deg_to_rad(a.lat_deg);
  const double phi2 = deg_to_rad(b.lat_deg);
  const double dphi = deg_to_rad(b.lat_deg - a.lat_deg);
  const double dlam = deg_to_rad(b.lon_deg - a.lon_deg);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlam = std::sin(dlam / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlam * sin_dlam;
  return 2.0 * earth_radius_m * std::asin(std::min(1.0, std::sqrt(h)));
}

double bearing_deg(const lat_lon& from, const lat_lon& to) noexcept {
  const double phi1 = deg_to_rad(from.lat_deg);
  const double phi2 = deg_to_rad(to.lat_deg);
  const double dlam = deg_to_rad(to.lon_deg - from.lon_deg);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  const double theta = rad_to_deg(std::atan2(y, x));
  return std::fmod(theta + 360.0, 360.0);
}

lat_lon destination(const lat_lon& origin, double bearing, double dist_m) noexcept {
  const double delta = dist_m / earth_radius_m;
  const double theta = deg_to_rad(bearing);
  const double phi1 = deg_to_rad(origin.lat_deg);
  const double lam1 = deg_to_rad(origin.lon_deg);
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lam2 = lam1 + std::atan2(y, x);
  return {rad_to_deg(phi2), rad_to_deg(lam2)};
}

lat_lon interpolate(const lat_lon& a, const lat_lon& b, double t) noexcept {
  // For the city-scale distances WiScape deals in (< a few hundred km) a
  // linear blend of coordinates differs from the true great-circle point by
  // far less than GPS noise, so we keep the cheap form.
  return {a.lat_deg + (b.lat_deg - a.lat_deg) * t,
          a.lon_deg + (b.lon_deg - a.lon_deg) * t};
}

std::string to_string(const lat_lon& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f,%.6f", p.lat_deg, p.lon_deg);
  return buf;
}

}  // namespace wiscape::geo

// Spatial aggregation into zones.
//
// WiScape partitions the world into zones -- contiguous areas with similar
// user experience (Sec 3.1 of the paper; the paper settles on circular zones
// of 250 m radius, about 0.2 sq km each). For binning arbitrary GPS fixes we
// tile the plane with square cells whose area equals the paper's circular
// zone area (side = r * sqrt(pi)), which preserves the "samples per zone"
// granularity the paper reasons about while making lookup O(1). Explicit
// circular zones around chosen centers are also supported for the Spot /
// Proximate style of collection.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "geo/projection.h"

namespace wiscape::geo {

/// Identifier of a grid zone: integer cell coordinates.
struct zone_id {
  std::int32_t ix = 0;
  std::int32_t iy = 0;

  friend bool operator==(const zone_id&, const zone_id&) = default;
  friend auto operator<=>(const zone_id&, const zone_id&) = default;
};

/// Renders "ix:iy" for logs and CSV columns.
std::string to_string(const zone_id& z);

/// Hash so zone_id can key unordered_map.
struct zone_id_hash {
  std::size_t operator()(const zone_id& z) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(z.ix)) << 32) |
        static_cast<std::uint32_t>(z.iy));
  }
};

/// Tiles a projected plane into equal-area square zones.
class zone_grid {
 public:
  /// `radius_m` is the paper's circular-zone radius; the square cell side is
  /// chosen so cell area == pi * radius^2. Throws std::invalid_argument if
  /// radius_m <= 0.
  zone_grid(projection proj, double radius_m);

  double radius_m() const noexcept { return radius_m_; }
  double cell_side_m() const noexcept { return side_m_; }
  const projection& proj() const noexcept { return proj_; }

  /// Zone containing a geographic point.
  zone_id zone_of(const lat_lon& p) const noexcept;
  /// Zone containing a projected point.
  zone_id zone_of(const xy& p) const noexcept;

  /// Center of a zone, projected / geographic.
  xy center_xy(const zone_id& z) const noexcept;
  lat_lon center(const zone_id& z) const noexcept;

  /// Distance from `p` to the center of zone `z`, meters.
  double distance_to_center_m(const lat_lon& p, const zone_id& z) const noexcept;

 private:
  projection proj_;
  double radius_m_;
  double side_m_;
};

/// An explicitly-placed circular zone (used for Spot / Proximate locations).
struct circular_zone {
  lat_lon center;
  double radius_m = 250.0;
  std::string name;

  /// True when `p` lies within `radius_m` of the center.
  bool contains(const lat_lon& p) const noexcept {
    return distance_m(center, p) <= radius_m;
  }
};

/// Index of the first zone in `zones` containing `p`, or -1 if none.
int find_zone(const std::vector<circular_zone>& zones, const lat_lon& p) noexcept;

}  // namespace wiscape::geo

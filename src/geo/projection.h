// Local planar projection.
//
// All of WiScape's spatial reasoning (zone gridding, shadowing fields,
// distance-to-tower) happens over a city-scale area, where a local
// equirectangular (ENU-style) projection around a fixed origin is accurate to
// well under a meter. The projection is a value type so different regions
// (Madison, the Madison-Chicago corridor, New Brunswick) each carry their own.
#pragma once

#include "geo/lat_lon.h"

namespace wiscape::geo {

/// A point in the local tangent plane, meters east/north of the origin.
struct xy {
  double x_m = 0.0;  ///< meters east of origin
  double y_m = 0.0;  ///< meters north of origin

  friend bool operator==(const xy&, const xy&) = default;
};

/// Euclidean distance between two projected points, meters.
double distance_m(const xy& a, const xy& b) noexcept;

/// Equirectangular projection centered at `origin`.
class projection {
 public:
  /// Creates a projection tangent at `origin`. Throws std::invalid_argument
  /// if the origin latitude is outside [-89, 89] (the projection degenerates
  /// at the poles).
  explicit projection(const lat_lon& origin);

  const lat_lon& origin() const noexcept { return origin_; }

  /// Projects a geographic point into the local plane.
  xy to_xy(const lat_lon& p) const noexcept;

  /// Inverse projection back to geographic coordinates.
  lat_lon to_lat_lon(const xy& p) const noexcept;

 private:
  lat_lon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace wiscape::geo

#include "geo/polyline.h"

#include <algorithm>
#include <stdexcept>

namespace wiscape::geo {

polyline::polyline(std::vector<lat_lon> waypoints)
    : points_(std::move(waypoints)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("polyline needs at least two waypoints");
  }
  cumulative_.reserve(points_.size());
  cumulative_.push_back(0.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    cumulative_.push_back(cumulative_.back() +
                          distance_m(points_[i - 1], points_[i]));
  }
}

std::size_t polyline::segment_at(double& dist_m) const noexcept {
  dist_m = std::clamp(dist_m, 0.0, cumulative_.back());
  // First waypoint with cumulative length >= dist; segment is the one ending
  // there.
  const auto it =
      std::lower_bound(cumulative_.begin() + 1, cumulative_.end(), dist_m);
  return static_cast<std::size_t>(it - cumulative_.begin()) - 1;
}

lat_lon polyline::point_at(double dist_m) const noexcept {
  std::size_t i = segment_at(dist_m);
  const double seg_len = cumulative_[i + 1] - cumulative_[i];
  const double t = seg_len > 0.0 ? (dist_m - cumulative_[i]) / seg_len : 0.0;
  return interpolate(points_[i], points_[i + 1], t);
}

double polyline::heading_at(double dist_m) const noexcept {
  std::size_t i = segment_at(dist_m);
  return bearing_deg(points_[i], points_[i + 1]);
}

polyline straight_route(const lat_lon& a, const lat_lon& b, int segments) {
  if (segments < 1) throw std::invalid_argument("segments must be >= 1");
  std::vector<lat_lon> pts;
  pts.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    pts.push_back(interpolate(a, b, static_cast<double>(i) / segments));
  }
  return polyline(std::move(pts));
}

}  // namespace wiscape::geo

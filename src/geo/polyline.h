// Route geometry: polylines over geographic waypoints.
//
// Bus routes (Madison transit, the Madison-Chicago intercity run, the 20 km
// "Short segment") are modelled as polylines; mobility code asks "where am I
// after traveling d meters along this route".
#pragma once

#include <vector>

#include "geo/lat_lon.h"

namespace wiscape::geo {

/// A piecewise-linear path through geographic waypoints.
///
/// Invariant: at least two waypoints; cumulative lengths are strictly
/// non-decreasing.
class polyline {
 public:
  /// Throws std::invalid_argument on fewer than two waypoints.
  explicit polyline(std::vector<lat_lon> waypoints);

  const std::vector<lat_lon>& waypoints() const noexcept { return points_; }

  /// Total route length in meters.
  double length_m() const noexcept { return cumulative_.back(); }

  /// Position after traveling `dist_m` meters from the start.
  /// Distances are clamped to [0, length_m()].
  lat_lon point_at(double dist_m) const noexcept;

  /// Heading (degrees clockwise from north) of the segment active at
  /// `dist_m` meters from the start.
  double heading_at(double dist_m) const noexcept;

 private:
  /// Index of the segment containing `dist_m` (after clamping).
  std::size_t segment_at(double& dist_m) const noexcept;

  std::vector<lat_lon> points_;
  std::vector<double> cumulative_;  // cumulative_[i] = length up to points_[i]
};

/// Builds a straight polyline from `a` to `b` subdivided into `segments`
/// equal pieces (useful for synthetic road stretches).
polyline straight_route(const lat_lon& a, const lat_lon& b, int segments = 1);

}  // namespace wiscape::geo

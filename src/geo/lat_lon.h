// Geographic coordinates and great-circle geometry.
//
// WiScape tags every measurement sample with a GPS fix; zones, routes and
// base-station placement are all defined in terms of these coordinates.
#pragma once

#include <cmath>
#include <numbers>
#include <string>

namespace wiscape::geo {

/// Mean Earth radius in meters (IUGG value), used for all great-circle math.
inline constexpr double earth_radius_m = 6371008.8;

/// Converts degrees to radians.
constexpr double deg_to_rad(double deg) noexcept {
  return deg * std::numbers::pi / 180.0;
}

/// Converts radians to degrees.
constexpr double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / std::numbers::pi;
}

/// A WGS-84-style geographic coordinate (degrees).
///
/// Invariant-free value type: any finite lat/lon pair is representable; the
/// helpers below treat latitude outside [-90, 90] as a caller error.
struct lat_lon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const lat_lon&, const lat_lon&) = default;
};

/// Great-circle (haversine) distance between two points, in meters.
double distance_m(const lat_lon& a, const lat_lon& b) noexcept;

/// Initial bearing from `from` toward `to`, in degrees clockwise from north,
/// normalized to [0, 360).
double bearing_deg(const lat_lon& from, const lat_lon& to) noexcept;

/// Point reached by traveling `dist_m` meters from `origin` along `bearing`
/// degrees (clockwise from north) on a great circle.
lat_lon destination(const lat_lon& origin, double bearing_deg,
                    double dist_m) noexcept;

/// Linear interpolation along the great circle from `a` to `b`;
/// `t` in [0, 1] (0 -> a, 1 -> b). Values outside [0,1] extrapolate.
lat_lon interpolate(const lat_lon& a, const lat_lon& b, double t) noexcept;

/// Renders "lat,lon" with 6 decimal places (about 0.1 m resolution).
std::string to_string(const lat_lon& p);

}  // namespace wiscape::geo

// SURGE-style web workload generation (Barford & Crovella, SIGMETRICS'98).
//
// The paper's application experiments download "a pool of 1000 web pages
// with sizes between 2.8 KB and 3.2 MB, generated using SURGE". SURGE's
// published size model is a lognormal body with a bounded Pareto tail; we
// generate exactly that, clamped to the paper's range. Named-site page sets
// (cnn/microsoft/youtube/amazon stand-ins for Fig 14) are fixed mixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace wiscape::apps {

struct surge_config {
  std::size_t pages = 1000;
  std::size_t min_bytes = 2'800;        // 2.8 KB
  std::size_t max_bytes = 3'200'000;    // 3.2 MB
  /// Lognormal body parameters (SURGE's empirical fit: median ~ 2-10 KB).
  double body_mu = 9.357;   // ln(11.6 KB)
  double body_sigma = 1.318;
  /// Bounded-Pareto tail (alpha ~ 1.1) mixed in for the heavy tail.
  double tail_fraction = 0.12;
  double tail_alpha = 1.1;
};

/// Page sizes for one workload pool (deterministic in seed).
std::vector<std::size_t> surge_pages(const surge_config& cfg,
                                     std::uint64_t seed);

/// A named website: depth-1 crawl stand-in as a fixed list of object sizes.
struct website {
  std::string name;
  std::vector<std::size_t> object_bytes;
  std::size_t total_bytes() const noexcept;
};

/// The four sites of Fig 14 (front page + depth-1 objects, sizes chosen to
/// mirror their 2011-era weights: cnn mid-heavy, microsoft light, youtube
/// media-heavy, amazon image-rich).
std::vector<website> well_known_websites(std::uint64_t seed);

}  // namespace wiscape::apps

// Multi-network client applications (Sec 4.2.2).
//
//   multi-sim: a phone with SIMs on several operators downloads pages
//   sequentially while driving; the interface is chosen per request.
//   Policies: WiScape zone knowledge, a fixed single network, blind
//   round-robin, or random choice.
//
//   MAR: a vehicular gateway with one active modem per operator stripes a
//   batch of requests across all interfaces in parallel. Policies: naive
//   round-robin, throughput-weighted round-robin, or WiScape-informed
//   greedy assignment (least expected finish time using zone estimates).
//
// Downloads are real TCP runs through the probe engine at the vehicle's
// current position and wall time; the vehicle advances along its route as
// time passes, so route-dependent dominance (Fig 12/13) is exactly what the
// schedulers exploit.
#pragma once

#include <span>

#include "apps/network_knowledge.h"
#include "geo/polyline.h"
#include "probe/engine.h"

namespace wiscape::apps {

enum class multisim_policy {
  wiscape,      ///< best network per zone from network_knowledge
  fixed,        ///< always the configured network
  round_robin,  ///< cycle through interfaces per request
  random_pick,  ///< uniform random interface per request
};

struct drive_config {
  double speed_mps = 15.0;      ///< vehicle speed along the route
  double start_time_s = 10.0 * 3600;
  double page_deadline_s = 60.0;  ///< per-page abort (counted at deadline)
  /// Per-request fixed overhead (DNS + HTTP request upstream).
  double request_overhead_s = 0.15;
};

struct http_run_result {
  double total_s = 0.0;
  std::size_t pages = 0;
  std::size_t failures = 0;  ///< pages that hit the deadline
  std::vector<double> page_s;  ///< per-page latency, request order
  double mean_page_s() const noexcept {
    return pages ? total_s / static_cast<double>(pages) : 0.0;
  }
};

/// Sequential page downloads while driving `route` (looping as needed).
/// `knowledge` is any network_knowledge source (offline zone_knowledge or
/// the live estimate_knowledge); required for multisim_policy::wiscape and
/// may be null otherwise. `fixed_net` selects the interface for policy
/// fixed.
http_run_result run_multisim(probe::probe_engine& engine,
                             const network_knowledge* knowledge,
                             multisim_policy policy, std::size_t fixed_net,
                             std::span<const std::size_t> page_bytes,
                             const geo::polyline& route,
                             const drive_config& drive, std::uint64_t seed);

enum class mar_policy {
  round_robin,           ///< requests cycle across interfaces
  weighted_round_robin,  ///< cycle weighted by global mean throughput
  wiscape,               ///< greedy least-expected-finish via zone knowledge
};

struct mar_result {
  double total_s = 0.0;  ///< batch completion (last interface drains)
  std::size_t failures = 0;
  std::vector<double> interface_busy_s;  ///< per-interface total busy time
};

/// Parallel batch download through all interfaces of the deployment.
/// `knowledge` is required for mar_policy::wiscape and
/// mar_policy::weighted_round_robin.
mar_result run_mar(probe::probe_engine& engine,
                   const network_knowledge* knowledge,
                   mar_policy policy, std::span<const std::size_t> page_bytes,
                   const geo::polyline& route, const drive_config& drive,
                   std::uint64_t seed);

}  // namespace wiscape::apps

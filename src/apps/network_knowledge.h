// The knowledge interface multi-network applications plan against.
//
// Sec 4.2's schedulers need exactly three answers: how many operators there
// are, what throughput to expect from operator `net` at a position, and the
// operator's global mean as the no-zone-data fallback. network_knowledge
// names that contract so the same multi-sim/MAR policies run against either
// source: an offline training set (zone_knowledge) or the coordinator's
// live serving layer (estimate_knowledge over core::estimate_view).
#pragma once

#include <cstddef>

#include "geo/zone_grid.h"

namespace wiscape::apps {

class network_knowledge {
 public:
  virtual ~network_knowledge() = default;

  /// Number of operators the knowledge covers (indices 0..count-1).
  virtual std::size_t network_count() const noexcept = 0;

  /// Expected TCP throughput of operator `net` at `pos` (bps). Falls back
  /// to the operator's global mean where zone data is missing or too thin;
  /// 0 when the operator was never observed at all. Throws
  /// std::out_of_range for a bad index.
  virtual double expected_bps(std::size_t net,
                              const geo::lat_lon& pos) const = 0;

  /// Mean throughput of operator `net` across everything observed (bps).
  virtual double global_mean_bps(std::size_t net) const = 0;

  /// Operator index with the best expected throughput at `pos` (shared
  /// greedy argmax over expected_bps; ties keep the lowest index).
  std::size_t best_network(const geo::lat_lon& pos) const {
    std::size_t best = 0;
    double best_bps = expected_bps(0, pos);
    for (std::size_t n = 1; n < network_count(); ++n) {
      const double bps = expected_bps(n, pos);
      if (bps > best_bps) {
        best_bps = bps;
        best = n;
      }
    }
    return best;
  }
};

}  // namespace wiscape::apps

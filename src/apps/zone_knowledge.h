// The WiScape product as applications consume it: a per-zone map of expected
// network performance, built from previously collected (client-sourced)
// measurements. Multi-sim and MAR query it by GPS fix; no fresh probing
// needed at decision time -- that is the whole point of Sec 4.2.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "apps/network_knowledge.h"
#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::apps {

class zone_knowledge final : public network_knowledge {
 public:
  /// Builds per-zone per-network expected TCP throughput from `training`.
  /// Zones with fewer than `min_samples` samples for a network fall back to
  /// that network's global mean.
  zone_knowledge(const trace::dataset& training, geo::zone_grid grid,
                 std::vector<std::string> networks,
                 std::size_t min_samples = 10);

  std::size_t network_count() const noexcept override {
    return networks_.size();
  }
  const std::vector<std::string>& networks() const noexcept { return networks_; }
  const geo::zone_grid& grid() const noexcept { return grid_; }

  /// Expected TCP throughput of network `net` at `pos` (bps). Falls back to
  /// the network's global mean for unknown zones; 0 when the network was
  /// never observed at all.
  double expected_bps(std::size_t net,
                      const geo::lat_lon& pos) const override;

  /// Global mean throughput of a network across the whole training set.
  double global_mean_bps(std::size_t net) const override;

 private:
  geo::zone_grid grid_;
  std::vector<std::string> networks_;
  std::vector<double> global_mean_;
  std::unordered_map<geo::zone_id, std::vector<double>, geo::zone_id_hash>
      zone_mean_;  // per-zone vector indexed by network; <=0 = unknown
};

}  // namespace wiscape::apps

#include "apps/zone_knowledge.h"

#include <stdexcept>

#include "stats/running_stats.h"

namespace wiscape::apps {

zone_knowledge::zone_knowledge(const trace::dataset& training,
                               geo::zone_grid grid,
                               std::vector<std::string> networks,
                               std::size_t min_samples)
    : grid_(std::move(grid)), networks_(std::move(networks)) {
  if (networks_.empty()) {
    throw std::invalid_argument("zone_knowledge: no networks");
  }
  std::unordered_map<geo::zone_id, std::vector<stats::running_stats>,
                     geo::zone_id_hash>
      acc;
  std::vector<stats::running_stats> global(networks_.size());

  for (const auto& r : training.records()) {
    if (!r.success || r.kind != trace::probe_kind::tcp_download) continue;
    for (std::size_t n = 0; n < networks_.size(); ++n) {
      if (r.network != networks_[n]) continue;
      auto& bucket = acc[grid_.zone_of(r.pos)];
      bucket.resize(networks_.size());
      bucket[n].add(r.throughput_bps);
      global[n].add(r.throughput_bps);
      break;
    }
  }

  global_mean_.resize(networks_.size());
  for (std::size_t n = 0; n < networks_.size(); ++n) {
    global_mean_[n] = global[n].mean();
  }
  for (auto& [zone, buckets] : acc) {
    std::vector<double> means(networks_.size(), 0.0);
    for (std::size_t n = 0; n < networks_.size(); ++n) {
      means[n] =
          buckets[n].count() >= min_samples ? buckets[n].mean() : 0.0;
    }
    zone_mean_.emplace(zone, std::move(means));
  }
}

double zone_knowledge::expected_bps(std::size_t net,
                                    const geo::lat_lon& pos) const {
  if (net >= networks_.size()) {
    throw std::out_of_range("zone_knowledge: network index");
  }
  const auto it = zone_mean_.find(grid_.zone_of(pos));
  if (it != zone_mean_.end() && it->second[net] > 0.0) {
    return it->second[net];
  }
  return global_mean_[net];
}

double zone_knowledge::global_mean_bps(std::size_t net) const {
  if (net >= networks_.size()) {
    throw std::out_of_range("zone_knowledge: network index");
  }
  return global_mean_[net];
}

}  // namespace wiscape::apps

#include "apps/surge.h"

#include <algorithm>
#include <cmath>

namespace wiscape::apps {

std::vector<std::size_t> surge_pages(const surge_config& cfg,
                                     std::uint64_t seed) {
  stats::rng_stream rng(seed);
  std::vector<std::size_t> out;
  out.reserve(cfg.pages);
  const double lo = static_cast<double>(cfg.min_bytes);
  const double hi = static_cast<double>(cfg.max_bytes);
  for (std::size_t i = 0; i < cfg.pages; ++i) {
    double size;
    if (rng.chance(cfg.tail_fraction)) {
      size = rng.bounded_pareto(cfg.tail_alpha, lo, hi);
    } else {
      size = rng.lognormal(cfg.body_mu, cfg.body_sigma);
    }
    out.push_back(static_cast<std::size_t>(std::clamp(size, lo, hi)));
  }
  return out;
}

std::size_t website::total_bytes() const noexcept {
  std::size_t total = 0;
  for (std::size_t b : object_bytes) total += b;
  return total;
}

std::vector<website> well_known_websites(std::uint64_t seed) {
  stats::rng_stream rng(seed);
  // (name, object count, mean object KB): depth-1 page mixes sized to give
  // the Fig 14 ordering cnn > youtube ~ amazon > microsoft in total bytes.
  struct spec {
    const char* name;
    int objects;
    double mean_kb;
  };
  const spec specs[] = {
      {"cnn", 90, 28.0},
      {"microsoft", 40, 18.0},
      {"youtube", 50, 52.0},
      {"amazon", 80, 30.0},
  };
  std::vector<website> out;
  for (const auto& s : specs) {
    website w;
    w.name = s.name;
    stats::rng_stream site = rng.fork(s.name);
    for (int i = 0; i < s.objects; ++i) {
      const double kb = std::max(1.0, site.lognormal(std::log(s.mean_kb), 0.8));
      w.object_bytes.push_back(static_cast<std::size_t>(kb * 1024.0));
    }
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace wiscape::apps

// network_knowledge served live from the coordinator (Sec 4.2 over Sec 3.4).
//
// Where zone_knowledge is trained once from an offline dataset,
// estimate_knowledge answers every expected_bps() from the coordinator's
// *current* published estimates through core::estimate_view -- the
// sanctioned application read path. A zone answers with its latest frozen
// TCP-throughput epoch mean when that epoch holds at least `min_samples`
// samples; thinner or missing zones fall back to the operator's global
// mean, which refresh() recomputes as the count-weighted mean over every
// published estimate (so it tracks the live state, not a training set).
//
// Decision semantics intentionally match zone_knowledge: same fallback
// rule, same best_network argmax -- a scheduler moved from the offline to
// the live source keeps its behaviour wherever the data agrees.
//
// Concurrency: expected_bps()/best_network() ride estimate_view's lock-free
// lookup and are safe from any thread while ingestion runs. refresh() is
// the one cold call (enumerates streams under shard locks); call it from
// one thread at a time, not concurrently with expected_bps().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/network_knowledge.h"
#include "core/estimate_view.h"
#include "geo/zone_grid.h"

namespace wiscape::apps {

class estimate_knowledge final : public network_knowledge {
 public:
  /// Borrows `view` (it must outlive this object). `grid` must be the
  /// coordinator's grid so positions map to the zones estimates are keyed
  /// by. `networks` fixes the operator index space (resolved against the
  /// coordinator's interner once, here). Computes the initial global means
  /// by calling refresh().
  estimate_knowledge(const core::estimate_view& view, geo::zone_grid grid,
                     std::vector<std::string> networks,
                     std::size_t min_samples = 10);

  std::size_t network_count() const noexcept override {
    return networks_.size();
  }
  const std::vector<std::string>& networks() const noexcept {
    return networks_;
  }

  double expected_bps(std::size_t net,
                      const geo::lat_lon& pos) const override;

  double global_mean_bps(std::size_t net) const override;

  /// Recomputes the per-operator global-mean fallbacks from everything the
  /// coordinator has published so far. COLD (enumerates all streams).
  void refresh();

 private:
  const core::estimate_view* view_;
  geo::zone_grid grid_;
  std::vector<std::string> networks_;
  std::vector<std::uint16_t> ids_;  // interned id per operator index
  std::size_t min_samples_;
  std::vector<double> global_mean_;
};

}  // namespace wiscape::apps

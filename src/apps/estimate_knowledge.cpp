#include "apps/estimate_knowledge.h"

#include <stdexcept>

#include "trace/record.h"

namespace wiscape::apps {

estimate_knowledge::estimate_knowledge(const core::estimate_view& view,
                                       geo::zone_grid grid,
                                       std::vector<std::string> networks,
                                       std::size_t min_samples)
    : view_(&view),
      grid_(std::move(grid)),
      networks_(std::move(networks)),
      min_samples_(min_samples) {
  if (networks_.empty()) {
    throw std::invalid_argument("estimate_knowledge: no networks");
  }
  ids_.reserve(networks_.size());
  for (const auto& name : networks_) {
    ids_.push_back(view_->network_id_of(name));
  }
  global_mean_.assign(networks_.size(), 0.0);
  refresh();
}

double estimate_knowledge::expected_bps(std::size_t net,
                                        const geo::lat_lon& pos) const {
  if (net >= networks_.size()) {
    throw std::out_of_range("estimate_knowledge: network index");
  }
  const auto est = view_->lookup(grid_.zone_of(pos), ids_[net],
                                 trace::metric::tcp_throughput_bps);
  if (est && est->count >= min_samples_ && est->mean > 0.0) {
    return est->mean;
  }
  return global_mean_[net];
}

double estimate_knowledge::global_mean_bps(std::size_t net) const {
  if (net >= networks_.size()) {
    throw std::out_of_range("estimate_knowledge: network index");
  }
  return global_mean_[net];
}

void estimate_knowledge::refresh() {
  std::vector<double> weighted_sum(networks_.size(), 0.0);
  std::vector<double> weight(networks_.size(), 0.0);
  for (const auto& key : view_->keys()) {
    if (key.metric != trace::metric::tcp_throughput_bps) continue;
    for (std::size_t n = 0; n < networks_.size(); ++n) {
      if (key.network != networks_[n]) continue;
      const auto est = view_->lookup(key.zone, ids_[n], key.metric);
      if (est && est->count > 0) {
        weighted_sum[n] += est->mean * static_cast<double>(est->count);
        weight[n] += static_cast<double>(est->count);
      }
      break;
    }
  }
  for (std::size_t n = 0; n < networks_.size(); ++n) {
    global_mean_[n] = weight[n] > 0.0 ? weighted_sum[n] / weight[n] : 0.0;
  }
}

}  // namespace wiscape::apps

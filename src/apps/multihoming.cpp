#include "apps/multihoming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mobility/schedule.h"

namespace wiscape::apps {

namespace {

/// Vehicle position after `elapsed_s` of driving (folds back and forth
/// along the route).
geo::lat_lon position_at(const geo::polyline& route, double speed_mps,
                         double elapsed_s) {
  return route.point_at(
      mobility::fold_distance(speed_mps * elapsed_s, route.length_m()));
}

/// Downloads one page at (pos, wall time) on `net`; returns latency
/// (deadline on failure) and whether it failed.
struct page_outcome {
  double latency_s;
  bool failed;
};

page_outcome download_page(probe::probe_engine& engine, std::size_t net,
                           const geo::lat_lon& pos, double time_s,
                           std::size_t bytes, const drive_config& drive) {
  probe::tcp_probe_params params;
  params.bytes = bytes;
  params.deadline_s = drive.page_deadline_s;
  mobility::gps_fix fix{pos, drive.speed_mps, time_s};
  const auto rec = engine.tcp_probe(net, fix, params);
  if (!rec.success || rec.throughput_bps <= 0.0) {
    return {drive.page_deadline_s + drive.request_overhead_s, true};
  }
  const double transfer_s =
      static_cast<double>(bytes) * 8.0 / rec.throughput_bps;
  return {transfer_s + drive.request_overhead_s, false};
}

}  // namespace

http_run_result run_multisim(probe::probe_engine& engine,
                             const network_knowledge* knowledge,
                             multisim_policy policy, std::size_t fixed_net,
                             std::span<const std::size_t> page_bytes,
                             const geo::polyline& route,
                             const drive_config& drive, std::uint64_t seed) {
  const std::size_t nets = engine.dep().size();
  if (nets == 0) throw std::invalid_argument("run_multisim: no networks");
  if (policy == multisim_policy::wiscape && knowledge == nullptr) {
    throw std::invalid_argument("run_multisim: wiscape policy needs knowledge");
  }
  if (policy == multisim_policy::fixed && fixed_net >= nets) {
    throw std::invalid_argument("run_multisim: fixed_net out of range");
  }

  stats::rng_stream rng(seed);
  http_run_result out;
  double elapsed = 0.0;
  std::size_t rr = 0;
  for (const std::size_t bytes : page_bytes) {
    const geo::lat_lon pos = position_at(route, drive.speed_mps, elapsed);
    std::size_t net = fixed_net;
    switch (policy) {
      case multisim_policy::wiscape:
        net = knowledge->best_network(pos);
        break;
      case multisim_policy::fixed:
        break;
      case multisim_policy::round_robin:
        net = rr++ % nets;
        break;
      case multisim_policy::random_pick:
        net = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(nets) - 1));
        break;
    }
    const auto o = download_page(engine, net, pos,
                                 drive.start_time_s + elapsed, bytes, drive);
    elapsed += o.latency_s;
    out.total_s += o.latency_s;
    out.page_s.push_back(o.latency_s);
    ++out.pages;
    if (o.failed) ++out.failures;
  }
  return out;
}

mar_result run_mar(probe::probe_engine& engine,
                   const network_knowledge* knowledge, mar_policy policy,
                   std::span<const std::size_t> page_bytes,
                   const geo::polyline& route, const drive_config& drive,
                   std::uint64_t seed) {
  const std::size_t nets = engine.dep().size();
  if (nets == 0) throw std::invalid_argument("run_mar: no networks");
  if ((policy == mar_policy::wiscape ||
       policy == mar_policy::weighted_round_robin) &&
      knowledge == nullptr) {
    throw std::invalid_argument("run_mar: policy needs zone knowledge");
  }
  (void)seed;

  // Each interface drains its queue sequentially; the gateway keeps moving,
  // so a page assigned to interface i starts wherever the vehicle is when i
  // frees up.
  std::vector<double> busy(nets, 0.0);  // per-interface next-free offset
  mar_result out;
  out.interface_busy_s.assign(nets, 0.0);

  // Weighted round-robin: expand a cyclic pattern proportional to global
  // mean throughputs (granularity of one page).
  std::vector<std::size_t> wrr_pattern;
  if (policy == mar_policy::weighted_round_robin) {
    double min_mean = std::numeric_limits<double>::infinity();
    for (std::size_t n = 0; n < nets; ++n) {
      min_mean = std::min(min_mean, knowledge->global_mean_bps(n));
    }
    for (std::size_t n = 0; n < nets; ++n) {
      const int reps = std::max(
          1, static_cast<int>(
                 std::round(knowledge->global_mean_bps(n) / min_mean)));
      for (int i = 0; i < reps; ++i) wrr_pattern.push_back(n);
    }
  }

  std::size_t rr = 0;
  for (const std::size_t bytes : page_bytes) {
    std::size_t net = 0;
    switch (policy) {
      case mar_policy::round_robin:
        net = rr++ % nets;
        break;
      case mar_policy::weighted_round_robin:
        net = wrr_pattern[rr++ % wrr_pattern.size()];
        break;
      case mar_policy::wiscape: {
        // Greedy: least expected finish time, using the zone estimate at the
        // position where each interface would start this page.
        double best_finish = std::numeric_limits<double>::infinity();
        for (std::size_t n = 0; n < nets; ++n) {
          const geo::lat_lon pos =
              position_at(route, drive.speed_mps, busy[n]);
          const double bps = std::max(knowledge->expected_bps(n, pos), 1.0);
          const double finish = busy[n] + static_cast<double>(bytes) * 8.0 / bps;
          if (finish < best_finish) {
            best_finish = finish;
            net = n;
          }
        }
        break;
      }
    }

    const geo::lat_lon pos = position_at(route, drive.speed_mps, busy[net]);
    const auto o = download_page(engine, net, pos,
                                 drive.start_time_s + busy[net], bytes, drive);
    busy[net] += o.latency_s;
    out.interface_busy_s[net] += o.latency_s;
    if (o.failed) ++out.failures;
  }
  out.total_s = *std::max_element(busy.begin(), busy.end());
  return out;
}

}  // namespace wiscape::apps

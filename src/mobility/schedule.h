// Vehicle motion: per-day travel schedules along a route.
//
// WiScape's wide-area data comes from vehicles -- Madison transit buses
// (random daily route assignment, 6am-midnight service), intercity buses,
// and personal cars driven over fixed loops. A day_schedule is the
// deterministic realization of one vehicle-day: piecewise-linear distance
// vs. time knots (drive segments at drawn speeds, dwell at stops), folded
// back and forth along the route's polyline.
#pragma once

#include <optional>
#include <vector>

#include "geo/polyline.h"
#include "stats/rng.h"

namespace wiscape::mobility {

/// A GPS report: where, how fast, when.
struct gps_fix {
  geo::lat_lon pos;
  double speed_mps = 0.0;
  double time_s = 0.0;
};

/// Motion style of a vehicle class.
struct motion_params {
  double min_speed_mps = 7.0;   ///< slowest per-segment cruise draw
  double max_speed_mps = 13.0;  ///< fastest per-segment cruise draw
  double stop_spacing_m = 400.0;  ///< 0 disables stops (highway/car loops)
  double stop_duration_s = 20.0;
  double service_start_s = 6.0 * 3600;   ///< within-day service window start
  double service_end_s = 24.0 * 3600;    ///< within-day service window end
};

/// City-bus defaults (Madison transit: ~25-47 km/h between stops).
motion_params transit_bus_params() noexcept;
/// Intercity-bus defaults (cruise 90-110 km/h, rare stops).
motion_params intercity_bus_params() noexcept;
/// Car driven continuously around a loop at ~55 km/h (Region datasets).
motion_params drive_loop_params() noexcept;

/// One vehicle-day of motion along a route.
class day_schedule {
 public:
  /// Realizes the day deterministically from `rng`. `day_start_s` is the
  /// absolute time of the day's midnight. Throws std::invalid_argument on
  /// non-positive speeds or an inverted service window.
  day_schedule(const geo::polyline& route, const motion_params& params,
               stats::rng_stream rng, double day_start_s);

  /// Fix at absolute time `t_s`; nullopt outside the service window.
  std::optional<gps_fix> fix_at(double t_s) const;

  double service_start_abs_s() const noexcept { return t_begin_; }
  double service_end_abs_s() const noexcept { return t_end_; }

 private:
  struct knot {
    double t_s;      // absolute time
    double dist_m;   // odometer distance (monotone, unfolded)
  };

  const geo::polyline* route_;
  std::vector<knot> knots_;
  double t_begin_ = 0.0;
  double t_end_ = 0.0;
};

/// Folds a monotone odometer distance onto a route of length `len` traversed
/// back and forth (triangle wave).
double fold_distance(double odometer_m, double len_m) noexcept;

}  // namespace wiscape::mobility

// Synthetic route generation over a region.
//
// Stand-in for the real Madison transit map: random but reproducible
// city-grid bus routes (axis-aligned zigzags, the shape of real transit
// lines) spanning the deployment extent, plus helpers for the corridor and
// short-segment roads.
#pragma once

#include <vector>

#include "geo/polyline.h"
#include "geo/projection.h"
#include "stats/rng.h"

namespace wiscape::mobility {

/// Generates `count` city bus routes across a width x height (meters) area
/// centered on the projection origin. Routes are Manhattan-style zigzags
/// with 6-10 waypoints. Throws std::invalid_argument on count == 0 or a
/// non-positive extent.
std::vector<geo::polyline> make_city_routes(const geo::projection& proj,
                                            double width_m, double height_m,
                                            std::size_t count,
                                            stats::rng_stream rng);

/// A long road between two anchor points with gentle lateral wiggle
/// (the Madison-Chicago corridor / the 20 km Short segment).
geo::polyline make_road(const geo::lat_lon& from, const geo::lat_lon& to,
                        double wiggle_m, stats::rng_stream rng,
                        int segments = 48);

/// A small rectangular drive loop of ~`radius_m` around a center (the
/// Proximate data collection: "driving around in a car within a 250 meter
/// radius" of a static location).
geo::polyline make_drive_loop(const geo::projection& proj,
                              const geo::lat_lon& center, double radius_m);

}  // namespace wiscape::mobility

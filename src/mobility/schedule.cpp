#include "mobility/schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wiscape::mobility {

motion_params transit_bus_params() noexcept {
  return {.min_speed_mps = 7.0,
          .max_speed_mps = 13.0,
          .stop_spacing_m = 400.0,
          .stop_duration_s = 20.0,
          .service_start_s = 6.0 * 3600,
          .service_end_s = 24.0 * 3600};
}

motion_params intercity_bus_params() noexcept {
  return {.min_speed_mps = 25.0,
          .max_speed_mps = 31.0,
          .stop_spacing_m = 40000.0,
          .stop_duration_s = 300.0,
          .service_start_s = 7.0 * 3600,
          .service_end_s = 22.0 * 3600};
}

motion_params drive_loop_params() noexcept {
  return {.min_speed_mps = 13.0,
          .max_speed_mps = 17.0,
          .stop_spacing_m = 0.0,
          .stop_duration_s = 0.0,
          .service_start_s = 8.0 * 3600,
          .service_end_s = 20.0 * 3600};
}

double fold_distance(double odometer_m, double len_m) noexcept {
  if (len_m <= 0.0) return 0.0;
  const double period = 2.0 * len_m;
  double d = std::fmod(odometer_m, period);
  if (d < 0.0) d += period;
  return d <= len_m ? d : period - d;
}

day_schedule::day_schedule(const geo::polyline& route,
                           const motion_params& params, stats::rng_stream rng,
                           double day_start_s)
    : route_(&route) {
  if (!(params.min_speed_mps > 0.0) ||
      !(params.max_speed_mps >= params.min_speed_mps)) {
    throw std::invalid_argument("day_schedule: bad speed range");
  }
  if (!(params.service_end_s > params.service_start_s)) {
    throw std::invalid_argument("day_schedule: inverted service window");
  }
  t_begin_ = day_start_s + params.service_start_s;
  t_end_ = day_start_s + params.service_end_s;

  // Build (time, odometer) knots: cruise a segment at a drawn speed, dwell
  // at stops. Segment lengths jitter around the stop spacing.
  double t = t_begin_;
  double dist = 0.0;
  knots_.push_back({t, dist});
  while (t < t_end_) {
    double seg_m;
    if (params.stop_spacing_m > 0.0) {
      seg_m = params.stop_spacing_m * rng.uniform(0.7, 1.3);
    } else {
      seg_m = route.length_m();  // no stops: knot per full traversal
    }
    const double v = rng.uniform(params.min_speed_mps, params.max_speed_mps);
    t += seg_m / v;
    dist += seg_m;
    knots_.push_back({t, dist});
    if (params.stop_duration_s > 0.0 && t < t_end_) {
      t += params.stop_duration_s * rng.uniform(0.5, 1.5);
      knots_.push_back({t, dist});
    }
  }
}

std::optional<gps_fix> day_schedule::fix_at(double t_s) const {
  if (t_s < t_begin_ || t_s >= t_end_ || knots_.size() < 2) return std::nullopt;
  const auto it = std::lower_bound(
      knots_.begin(), knots_.end(), t_s,
      [](const knot& k, double t) { return k.t_s < t; });
  if (it == knots_.begin()) {
    return gps_fix{route_->point_at(0.0), 0.0, t_s};
  }
  if (it == knots_.end()) {
    const double d = fold_distance(knots_.back().dist_m, route_->length_m());
    return gps_fix{route_->point_at(d), 0.0, t_s};
  }
  const knot& b = *it;
  const knot& a = *(it - 1);
  const double dt = b.t_s - a.t_s;
  const double frac = dt > 0.0 ? (t_s - a.t_s) / dt : 0.0;
  const double odo = a.dist_m + (b.dist_m - a.dist_m) * frac;
  const double speed = dt > 0.0 ? (b.dist_m - a.dist_m) / dt : 0.0;
  return gps_fix{route_->point_at(fold_distance(odo, route_->length_m())),
                 speed, t_s};
}

}  // namespace wiscape::mobility

// Vehicle fleets and static monitoring nodes.
//
// fleet reproduces the paper's collection discipline: a pool of vehicles,
// each randomly re-assigned to a route every day ("each particular bus gets
// randomly assigned to different routes each day"), so that over weeks the
// fleet sweeps a whole city. static_node models the Spot locations that
// collect continuously from one indoor position.
#pragma once

#include <optional>
#include <vector>

#include "mobility/schedule.h"

namespace wiscape::mobility {

/// A pool of vehicles with daily random route assignment.
class fleet {
 public:
  /// Throws std::invalid_argument on an empty route set or zero vehicles.
  fleet(std::vector<geo::polyline> routes, std::size_t vehicle_count,
        motion_params params, stats::rng_stream rng);

  std::size_t size() const noexcept { return vehicle_count_; }
  const std::vector<geo::polyline>& routes() const noexcept { return routes_; }

  /// Route index vehicle `v` drives on day `day` (deterministic).
  std::size_t route_of(std::size_t vehicle, std::int64_t day) const;

  /// GPS fix of vehicle `v` at absolute time `t_s`; nullopt when out of
  /// service. Non-const: caches the realized day schedule per vehicle.
  std::optional<gps_fix> fix_at(std::size_t vehicle, double t_s);

 private:
  std::vector<geo::polyline> routes_;
  std::size_t vehicle_count_;
  motion_params params_;
  stats::rng_stream rng_;

  struct cache_entry {
    std::int64_t day = -1;
    std::optional<day_schedule> schedule;
  };
  std::vector<cache_entry> cache_;
};

/// A fixed measurement location (the Spot datasets).
struct static_node {
  geo::lat_lon pos;

  gps_fix fix_at(double t_s) const noexcept { return {pos, 0.0, t_s}; }
};

}  // namespace wiscape::mobility

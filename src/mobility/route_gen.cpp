#include "mobility/route_gen.h"

#include <algorithm>
#include <stdexcept>

namespace wiscape::mobility {

std::vector<geo::polyline> make_city_routes(const geo::projection& proj,
                                            double width_m, double height_m,
                                            std::size_t count,
                                            stats::rng_stream rng) {
  if (count == 0) throw std::invalid_argument("make_city_routes: count == 0");
  if (!(width_m > 0.0) || !(height_m > 0.0)) {
    throw std::invalid_argument("make_city_routes: non-positive extent");
  }
  std::vector<geo::polyline> routes;
  routes.reserve(count);
  const double hw = width_m / 2.0;
  const double hh = height_m / 2.0;
  for (std::size_t r = 0; r < count; ++r) {
    stats::rng_stream rr = rng.fork(r);
    // Start near one edge, zigzag toward the opposite one.
    const bool horizontal = rr.chance(0.5);
    double x = horizontal ? -hw * rr.uniform(0.75, 1.0)
                          : rr.uniform(-hw * 0.9, hw * 0.9);
    double y = horizontal ? rr.uniform(-hh * 0.9, hh * 0.9)
                          : -hh * rr.uniform(0.75, 1.0);
    std::vector<geo::lat_lon> pts{proj.to_lat_lon({x, y})};
    const int legs = static_cast<int>(rr.uniform_int(6, 10));
    for (int i = 0; i < legs; ++i) {
      // Alternate between the main direction of travel and cross streets.
      const bool main_leg = (i % 2 == 0);
      const double step = rr.uniform(1200.0, 3200.0);
      if (horizontal == main_leg) {
        x = std::min(hw, x + step);
      } else {
        const double dy = rr.chance(0.5) ? step * 0.6 : -step * 0.6;
        y = std::clamp(y + dy, -hh, hh);
      }
      pts.push_back(proj.to_lat_lon({x, y}));
    }
    routes.emplace_back(std::move(pts));
  }
  return routes;
}

geo::polyline make_road(const geo::lat_lon& from, const geo::lat_lon& to,
                        double wiggle_m, stats::rng_stream rng, int segments) {
  if (segments < 2) throw std::invalid_argument("make_road: segments < 2");
  std::vector<geo::lat_lon> pts;
  pts.reserve(static_cast<std::size_t>(segments) + 1);
  const double heading = geo::bearing_deg(from, to);
  for (int i = 0; i <= segments; ++i) {
    geo::lat_lon p =
        geo::interpolate(from, to, static_cast<double>(i) / segments);
    if (i != 0 && i != segments && wiggle_m > 0.0) {
      // Lateral offset perpendicular to the direction of travel.
      p = geo::destination(p, heading + 90.0, rng.normal(0.0, wiggle_m));
    }
    pts.push_back(p);
  }
  return geo::polyline(std::move(pts));
}

geo::polyline make_drive_loop(const geo::projection& proj,
                              const geo::lat_lon& center, double radius_m) {
  if (!(radius_m > 0.0)) {
    throw std::invalid_argument("make_drive_loop: radius must be positive");
  }
  const geo::xy c = proj.to_xy(center);
  const double r = radius_m * 0.8;  // keep the whole loop inside the zone
  std::vector<geo::lat_lon> pts{
      proj.to_lat_lon({c.x_m - r, c.y_m - r}),
      proj.to_lat_lon({c.x_m + r, c.y_m - r}),
      proj.to_lat_lon({c.x_m + r, c.y_m + r}),
      proj.to_lat_lon({c.x_m - r, c.y_m + r}),
      proj.to_lat_lon({c.x_m - r, c.y_m - r}),
  };
  return geo::polyline(std::move(pts));
}

}  // namespace wiscape::mobility

#include "mobility/fleet.h"

#include <cmath>
#include <stdexcept>

namespace wiscape::mobility {

fleet::fleet(std::vector<geo::polyline> routes, std::size_t vehicle_count,
             motion_params params, stats::rng_stream rng)
    : routes_(std::move(routes)),
      vehicle_count_(vehicle_count),
      params_(params),
      rng_(rng),
      cache_(vehicle_count) {
  if (routes_.empty()) throw std::invalid_argument("fleet needs >= 1 route");
  if (vehicle_count_ == 0) throw std::invalid_argument("fleet needs >= 1 vehicle");
}

std::size_t fleet::route_of(std::size_t vehicle, std::int64_t day) const {
  const std::uint64_t h = stats::splitmix64(
      rng_.seed() ^ stats::splitmix64(vehicle * 0x1fULL + 1) ^
      stats::splitmix64(static_cast<std::uint64_t>(day) * 0x2fULL + 7));
  return static_cast<std::size_t>(h % routes_.size());
}

std::optional<gps_fix> fleet::fix_at(std::size_t vehicle, double t_s) {
  if (vehicle >= vehicle_count_) {
    throw std::out_of_range("fleet::fix_at: vehicle index out of range");
  }
  const auto day = static_cast<std::int64_t>(std::floor(t_s / 86400.0));
  cache_entry& entry = cache_[vehicle];
  if (entry.day != day) {
    const std::size_t r = route_of(vehicle, day);
    // Per (vehicle, day) substream: schedules are identical regardless of
    // query order.
    stats::rng_stream day_rng = rng_.fork(vehicle * 100003ULL +
                                          static_cast<std::uint64_t>(day));
    entry.schedule.emplace(routes_[r], params_, day_rng,
                           static_cast<double>(day) * 86400.0);
    entry.day = day;
  }
  return entry.schedule->fix_at(t_s);
}

}  // namespace wiscape::mobility

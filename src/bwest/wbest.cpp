#include "bwest/wbest.h"

#include <algorithm>
#include <vector>

#include "stats/summary.h"

namespace wiscape::bwest {

wbest_result wbest_estimate(probe::probe_engine& engine, std::size_t net,
                            const mobility::gps_fix& fix,
                            const wbest_config& cfg) {
  wbest_result out;

  // Stage 1: packet pairs. Each pair is a 2-packet train sent back-to-back;
  // the dispersion of the pair at the receiver inverts to a capacity sample.
  std::vector<double> capacity_samples;
  mobility::gps_fix f = fix;
  for (int i = 0; i < cfg.pairs; ++i) {
    const auto train =
        engine.udp_train(net, f, cfg.pair_probe_rate_bps, 2, cfg.packet_bytes);
    f.time_s += 0.25;  // pairs spaced out in wall time
    if (train.recv_s.size() < 2 || train.recv_s[0] < 0.0 ||
        train.recv_s[1] < 0.0) {
      continue;
    }
    const double disp = train.recv_s[1] - train.recv_s[0];
    if (disp <= 0.0) continue;
    capacity_samples.push_back(static_cast<double>(cfg.packet_bytes) * 8.0 /
                               disp);
  }
  if (capacity_samples.empty()) return out;
  out.capacity_bps = stats::percentile(capacity_samples, 50.0);

  // Stage 2: a train at rate Ce; its achieved dispersion rate R yields
  // A = Ce (2 - Ce / R), clamped to [0, Ce].
  const auto train = engine.udp_train(net, f, out.capacity_bps, cfg.train_len,
                                      cfg.packet_bytes);
  // First/last delivered packet bound the receive span.
  int first = -1, last = -1;
  int delivered = 0;
  for (std::size_t i = 0; i < train.recv_s.size(); ++i) {
    if (train.recv_s[i] < 0.0) continue;
    if (first < 0) first = static_cast<int>(i);
    last = static_cast<int>(i);
    ++delivered;
  }
  if (delivered < 2 || train.recv_s[static_cast<std::size_t>(last)] <=
                           train.recv_s[static_cast<std::size_t>(first)]) {
    return out;
  }
  const double span = train.recv_s[static_cast<std::size_t>(last)] -
                      train.recv_s[static_cast<std::size_t>(first)];
  const double dispersion_rate =
      static_cast<double>(delivered - 1) *
      static_cast<double>(cfg.packet_bytes) * 8.0 / span;

  out.valid = true;
  if (dispersion_rate <= out.capacity_bps / 2.0) {
    out.available_bps = 0.0;  // WBest's saturation cutoff
  } else {
    out.available_bps = std::clamp(
        out.capacity_bps * (2.0 - out.capacity_bps / dispersion_rate), 0.0,
        out.capacity_bps);
  }
  return out;
}

}  // namespace wiscape::bwest

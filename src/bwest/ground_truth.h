// Ground-truth available-bandwidth measurement (Sec 3.3.1's yardstick):
// "the average of UDP throughput measured over 100 seconds for 10
// iterations". Used to score Pathload/WBest and WiScape's simple-download
// approach on the same footing.
#pragma once

#include "probe/engine.h"

namespace wiscape::bwest {

struct ground_truth_config {
  int iterations = 10;
  double duration_s = 100.0;
  std::size_t packet_bytes = 1200;
  /// Offered rate well above any plausible capacity so the link saturates.
  double offered_rate_bps = 20e6;
};

/// Mean delivered UDP rate over the configured iterations.
double ground_truth_udp_bps(probe::probe_engine& engine, std::size_t net,
                            const mobility::gps_fix& fix,
                            const ground_truth_config& cfg = {});

/// Relative error of an estimate vs ground truth, as the paper defines it:
/// E = (X - G) / G  (signed; negative = under-estimate).
double relative_error(double estimate_bps, double ground_truth_bps);

}  // namespace wiscape::bwest

#include "bwest/pathload.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wiscape::bwest {

owd_trend classify_trend(const std::vector<double>& delays,
                         double pct_threshold, double pdt_threshold) {
  if (delays.size() < 6) return owd_trend::inconclusive;

  // Median-of-buckets smoothing (Pathload splits the stream into sqrt(n)
  // groups and tests group medians).
  const auto k = static_cast<std::size_t>(std::sqrt(delays.size()));
  std::vector<double> medians;
  for (std::size_t g = 0; g + 1 <= k; ++g) {
    const std::size_t lo = g * delays.size() / k;
    const std::size_t hi = (g + 1) * delays.size() / k;
    std::vector<double> bucket(delays.begin() + static_cast<std::ptrdiff_t>(lo),
                               delays.begin() + static_cast<std::ptrdiff_t>(hi));
    std::sort(bucket.begin(), bucket.end());
    if (!bucket.empty()) medians.push_back(bucket[bucket.size() / 2]);
  }
  if (medians.size() < 3) return owd_trend::inconclusive;

  // PCT: fraction of consecutive increases.
  int increases = 0;
  double abs_diff = 0.0;
  for (std::size_t i = 1; i < medians.size(); ++i) {
    if (medians[i] > medians[i - 1]) ++increases;
    abs_diff += std::abs(medians[i] - medians[i - 1]);
  }
  const double pct = static_cast<double>(increases) /
                     static_cast<double>(medians.size() - 1);
  // PDT: net growth normalized by total variation.
  const double pdt =
      abs_diff > 0.0 ? (medians.back() - medians.front()) / abs_diff : 0.0;

  const bool pct_up = pct > pct_threshold;
  const bool pdt_up = pdt > pdt_threshold;
  // Require directional confirmation from the PDT even when the PCT fires:
  // pure comparison counts flip "increasing" too easily on flat-but-noisy
  // streams (a handful of group medians).
  if (pdt_up || (pct_up && pdt > 0.25)) return owd_trend::increasing;
  // "Not increasing" demands a genuinely quiet stream. Anything in between
  // is grey -- and on a slotted cellular downlink the service sawtooth puts
  // *most* streams in the grey region, which is exactly why Pathload
  // misjudges these links (Sec 3.3.1 / Koutsonikolas & Hu).
  if (pct < 0.45 && pdt < 0.15) return owd_trend::not_increasing;
  return owd_trend::inconclusive;
}

pathload_result pathload_estimate(probe::probe_engine& engine, std::size_t net,
                                  const mobility::gps_fix& fix,
                                  const pathload_config& cfg) {
  pathload_result out;
  double lo = cfg.rate_min_bps;
  double hi = cfg.rate_max_bps;
  mobility::gps_fix f = fix;

  bool any_delivered = false;
  for (int it = 0; it < cfg.max_iterations; ++it) {
    ++out.iterations;
    const double rate = (lo + hi) / 2.0;
    const auto train =
        engine.udp_train(net, f, rate, cfg.train_len, cfg.packet_bytes);
    f.time_s += 2.0;  // streams are spaced out (Pathload idles between them)

    std::vector<double> owds;
    for (std::size_t i = 0; i < train.recv_s.size(); ++i) {
      if (train.recv_s[i] >= 0.0 && train.send_s[i] >= 0.0) {
        owds.push_back(train.recv_s[i] - train.send_s[i]);
      }
    }
    const double loss =
        1.0 - static_cast<double>(owds.size()) /
                  static_cast<double>(std::max<std::uint32_t>(1, train.sent));
    if (owds.size() >= 2) any_delivered = true;

    // Heavy loss means the stream overran the link: treat as increasing.
    const owd_trend trend =
        loss > 0.2 ? owd_trend::increasing
                   : classify_trend(owds, cfg.pct_threshold, cfg.pdt_threshold);
    switch (trend) {
      case owd_trend::increasing:
        hi = rate;
        break;
      case owd_trend::not_increasing:
        lo = rate;
        break;
      case owd_trend::inconclusive:
        // Pathload discards grey streams and, under repeated ambiguity,
        // settles pessimistically: treat the probed rate as not available.
        // On cellular links most streams are grey, so the bracket walks
        // down -- the systematic *under*-estimation the paper reports.
        hi = rate;
        break;
    }
    if ((hi - lo) / hi < cfg.resolution) break;
  }

  out.valid = any_delivered;
  out.low_bps = lo;
  out.high_bps = hi;
  out.estimate_bps = (lo + hi) / 2.0;
  return out;
}

}  // namespace wiscape::bwest

#include "bwest/ground_truth.h"

#include <stdexcept>

namespace wiscape::bwest {

double ground_truth_udp_bps(probe::probe_engine& engine, std::size_t net,
                            const mobility::gps_fix& fix,
                            const ground_truth_config& cfg) {
  if (cfg.iterations < 1 || !(cfg.duration_s > 0.0)) {
    throw std::invalid_argument("ground_truth: bad config");
  }
  double total = 0.0;
  int valid = 0;
  mobility::gps_fix f = fix;
  for (int it = 0; it < cfg.iterations; ++it) {
    const auto packets = static_cast<std::uint32_t>(
        cfg.offered_rate_bps * cfg.duration_s /
        (static_cast<double>(cfg.packet_bytes) * 8.0));
    const auto train = engine.udp_train(net, f, cfg.offered_rate_bps,
                                        packets, cfg.packet_bytes);
    f.time_s += cfg.duration_s + 5.0;

    int first = -1, last = -1, delivered = 0;
    for (std::size_t i = 0; i < train.recv_s.size(); ++i) {
      if (train.recv_s[i] < 0.0) continue;
      if (first < 0) first = static_cast<int>(i);
      last = static_cast<int>(i);
      ++delivered;
    }
    if (delivered < 2) continue;
    const double span = train.recv_s[static_cast<std::size_t>(last)] -
                        train.recv_s[static_cast<std::size_t>(first)];
    if (span <= 0.0) continue;
    total += static_cast<double>(delivered) *
             static_cast<double>(cfg.packet_bytes) * 8.0 / span;
    ++valid;
  }
  return valid > 0 ? total / valid : 0.0;
}

double relative_error(double estimate_bps, double ground_truth_bps) {
  if (ground_truth_bps == 0.0) {
    throw std::invalid_argument("relative_error: zero ground truth");
  }
  return (estimate_bps - ground_truth_bps) / ground_truth_bps;
}

}  // namespace wiscape::bwest

// WBest (Li, Claypool, Kinicki, LCN'08) reimplemented over the simulator.
//
// Two-stage algorithm: (1) packet pairs estimate effective capacity Ce from
// median dispersion; (2) a packet train sent at Ce measures the achieved
// dispersion rate R, giving available bandwidth A = Ce * (2 - Ce / R).
// The paper (Sec 3.3.1) found WBest underestimates cellular available
// bandwidth by up to 70% -- the per-packet scheduling and fading churn of a
// 3G link violates its FIFO fluid assumptions. Our reimplementation exists
// to reproduce that baseline failure mode.
#pragma once

#include "probe/engine.h"

namespace wiscape::bwest {

struct wbest_config {
  int pairs = 30;              ///< packet pairs in stage 1
  std::uint32_t train_len = 30;  ///< packets in the stage-2 train
  std::size_t packet_bytes = 1200;
  double pair_probe_rate_bps = 50e6;  ///< "back-to-back" sending rate
};

struct wbest_result {
  bool valid = false;
  double capacity_bps = 0.0;   ///< stage-1 effective capacity estimate
  double available_bps = 0.0;  ///< stage-2 available bandwidth estimate
};

/// Runs WBest for operator `net` from a client at `fix`.
wbest_result wbest_estimate(probe::probe_engine& engine, std::size_t net,
                            const mobility::gps_fix& fix,
                            const wbest_config& cfg = {});

}  // namespace wiscape::bwest

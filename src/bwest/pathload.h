// Pathload (Jain & Dovrolis, PAM'02) reimplemented over the simulator.
//
// Self-Loading Periodic Streams: send a train at rate R and test whether the
// one-way delays trend upward (the stream exceeds available bandwidth and
// queues build). Binary-search R between rmin and rmax until the bracket is
// tight. On cellular links the bursty per-client scheduler produces delay
// trends well below the true available rate, so Pathload underestimates
// (up to ~40% in the paper's Sec 3.3.1) -- the baseline behaviour this
// implementation reproduces.
#pragma once

#include "probe/engine.h"

namespace wiscape::bwest {

struct pathload_config {
  std::uint32_t train_len = 120;
  std::size_t packet_bytes = 400;
  double rate_min_bps = 50e3;
  double rate_max_bps = 8e6;
  int max_iterations = 12;
  /// Bracket convergence: stop when (hi - lo) / hi falls below this.
  double resolution = 0.08;
  /// Pairwise Comparison Test threshold: a train with a larger fraction of
  /// increasing consecutive delays is ruled "increasing" (Pathload uses 0.66).
  double pct_threshold = 0.66;
  /// Pairwise Difference Test threshold (normalized end-to-start delay
  /// growth; Pathload's published threshold is 0.55 -- we run slightly more
  /// sensitive, which matches its conservative behaviour on noisy cellular
  /// links).
  double pdt_threshold = 0.45;
};

struct pathload_result {
  bool valid = false;
  double low_bps = 0.0;     ///< final bracket low end
  double high_bps = 0.0;    ///< final bracket high end
  double estimate_bps = 0.0;  ///< bracket midpoint
  int iterations = 0;
};

/// Runs Pathload for operator `net` from a client at `fix`.
pathload_result pathload_estimate(probe::probe_engine& engine, std::size_t net,
                                  const mobility::gps_fix& fix,
                                  const pathload_config& cfg = {});

/// The trend verdict of one stream: exposed for tests.
enum class owd_trend { increasing, not_increasing, inconclusive };
owd_trend classify_trend(const std::vector<double>& one_way_delays,
                         double pct_threshold, double pdt_threshold);

}  // namespace wiscape::bwest

// A multi-operator deployment over one geographic region.
//
// WiScape always reasons about several commercial networks covering the same
// space (NetA/NetB/NetC); deployment bundles the per-operator networks with
// the shared projection so clients can ask "conditions on network X at my
// GPS fix".
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cellnet/cellular_network.h"
#include "geo/projection.h"

namespace wiscape::cellnet {

class deployment {
 public:
  /// Throws std::invalid_argument on duplicate operator names.
  deployment(geo::projection proj, extent area,
             std::vector<operator_config> operators);

  const geo::projection& proj() const noexcept { return proj_; }
  const extent& area() const noexcept { return area_; }

  std::size_t size() const noexcept { return networks_.size(); }

  /// Operator names in construction order.
  std::vector<std::string> names() const;

  /// Network by index (construction order). Throws std::out_of_range.
  const cellular_network& network(std::size_t i) const;
  cellular_network& network(std::size_t i);

  /// Network by operator name. Throws std::invalid_argument when unknown.
  const cellular_network& network(std::string_view name) const;
  cellular_network& network(std::string_view name);

  /// Index of an operator name, or -1 when unknown.
  int index_of(std::string_view name) const noexcept;

  /// Convenience: conditions for operator `i` at a geographic fix.
  link_conditions conditions_at(std::size_t i, const geo::lat_lon& p,
                                double time_s) const;

 private:
  geo::projection proj_;
  extent area_;
  // unique_ptr keeps cellular_network addresses stable; the class itself is
  // move-only-unfriendly because of internal rng state.
  std::vector<std::unique_ptr<cellular_network>> networks_;
};

}  // namespace wiscape::cellnet

// Region presets mirroring the paper's measurement geography (Table 2).
//
//   madison   - 155 sq km city-wide area, three operators, slow load drift
//               (Allan minimum near ~75 min)
//   new_jersey- New Brunswick / Princeton spots, two operators (NetB, NetC),
//               faster-churning and more variable (Allan minimum ~15 min,
//               higher throughput but higher stddev, Table 3/4)
//   corridor  - the 240 km Madison-Chicago road stretch (narrow strip)
//   segment   - the 20 km "Short segment" with pronounced per-zone operator
//               dominance (Figs 12-13)
//
// Every preset is parameterized only by a master seed; operator fields are
// derived substreams so the three networks are independent.
#pragma once

#include <cstdint>

#include "cellnet/deployment.h"

namespace wiscape::cellnet {

/// Geographic anchors used by the presets.
namespace anchors {
inline constexpr geo::lat_lon madison{43.0731, -89.4012};
inline constexpr geo::lat_lon chicago{41.8781, -87.6298};
inline constexpr geo::lat_lon new_brunswick{40.4862, -74.4518};
/// Camp Randall stadium (the Fig 10 football-game hotspot), ~1.6 km
/// southwest of the Madison capitol anchor.
inline constexpr geo::lat_lon camp_randall{43.0699, -89.4124};
}  // namespace anchors

enum class region_preset { madison, new_jersey, corridor, segment };

/// Operators deployed in a preset (paper Table 2: NJ lacks NetA).
int operator_count(region_preset r) noexcept;

/// Builds the deployment for a preset. The same (preset, seed) pair always
/// yields an identical world.
deployment make_deployment(region_preset r, std::uint64_t seed);

/// Default operator configs for one region, exposed so tests and ablations
/// can perturb a single knob before constructing a deployment.
std::vector<operator_config> preset_operators(region_preset r,
                                              std::uint64_t seed);

/// Projection and extent for a preset (also used by mobility generators).
geo::projection preset_projection(region_preset r);
extent preset_extent(region_preset r) noexcept;

/// A WiFi-mesh-style operator over the Madison extent, for the paper's
/// Sec 3.1 contrast: unlicensed-band random access makes throughput churn
/// hard at *every* timescale (GoogleWiFi / RoofNet / MadCity Broadband),
/// so Allan-deviation epochs never stabilize the way cellular ones do.
/// Modelled as a dense, low-power deployment with violent load churn.
operator_config wifi_mesh_config(std::uint64_t seed);

/// Deployment with one cellular operator (NetB) and one WiFi mesh over the
/// same Madison extent, for side-by-side stability comparisons.
deployment make_wifi_comparison_deployment(std::uint64_t seed);

}  // namespace wiscape::cellnet

#include "cellnet/cellular_network.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wiscape::cellnet {

namespace {
constexpr double seconds_per_day = 86400.0;
constexpr double busy_hour_s = 18.0 * 3600.0;  // evening demand peak

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) noexcept { return 10.0 * std::log10(mw); }
}  // namespace

cellular_network::cellular_network(operator_config config, extent area)
    : config_(std::move(config)),
      area_(area),
      shadowing_(stats::rng_stream(config_.seed).fork("shadow"),
                 config_.macro_shadow_sigma_db, config_.macro_shadow_corr_m,
                 config_.micro_shadow_sigma_db, config_.micro_shadow_corr_m),
      burst_seed_(stats::rng_stream(config_.seed).fork("burst")) {
  if (!(area.width_m > 0.0) || !(area.height_m > 0.0)) {
    throw std::invalid_argument("cellular_network extent must be positive");
  }
  if (!(config_.tower_spacing_m > 0.0)) {
    throw std::invalid_argument("tower spacing must be positive");
  }

  stats::rng_stream placement = stats::rng_stream(config_.seed).fork("towers");
  stats::rng_stream drift_root = stats::rng_stream(config_.seed).fork("drift");
  stats::rng_stream util_root =
      stats::rng_stream(config_.seed).fork("tower_util");
  stats::rng_stream backhaul_root =
      stats::rng_stream(config_.seed).fork("backhaul");

  // Hexagonal-ish lattice with jitter, padded one ring beyond the extent so
  // clients near the edge still have a serving cell.
  const double dx = config_.tower_spacing_m;
  const double dy = config_.tower_spacing_m * std::sqrt(3.0) / 2.0;
  const double half_w = area.width_m / 2.0 + dx;
  const double half_h = area.height_m / 2.0 + dy;
  int id = 0;
  int row = 0;
  for (double y = -half_h; y <= half_h; y += dy, ++row) {
    const double offset = (row % 2 == 0) ? 0.0 : dx / 2.0;
    for (double x = -half_w; x <= half_w; x += dx) {
      geo::xy pos{x + offset + placement.normal(0.0, config_.placement_jitter_m),
                  y + placement.normal(0.0, config_.placement_jitter_m)};
      towers_.push_back(tower_state{
          base_station{id, pos},
          temporal_field(drift_root.fork(static_cast<std::uint64_t>(id)),
                         config_.load.drift_sigma, config_.load.drift_tau_s),
          std::clamp(util_root.fork(static_cast<std::uint64_t>(id))
                         .normal(0.0, config_.load.tower_spread),
                     -2.0 * config_.load.tower_spread,
                     2.0 * config_.load.tower_spread),
          backhaul_offset(pos, id, backhaul_root)});
      ++id;
    }
  }
  stations_.reserve(towers_.size());
  for (const auto& t : towers_) stations_.push_back(t.station);
}

double cellular_network::backhaul_offset(const geo::xy& pos, int tower_id,
                                          stats::rng_stream& root) const {
  double offset;
  if (config_.backhaul_hub_m > 0.0) {
    // Hub component shared by all towers homing to the same aggregation
    // point, plus a small per-tower residual.
    const auto hx = static_cast<std::int64_t>(
        std::floor(pos.x_m / config_.backhaul_hub_m));
    const auto hy = static_cast<std::int64_t>(
        std::floor(pos.y_m / config_.backhaul_hub_m));
    const std::uint64_t hub_seed = stats::splitmix64(
        config_.seed ^ stats::splitmix64(static_cast<std::uint64_t>(hx) * 0x1f123ULL +
                                         static_cast<std::uint64_t>(hy) + 7));
    offset = stats::rng_stream(hub_seed).normal(0.0, config_.backhaul_spread_s) +
             root.fork(static_cast<std::uint64_t>(tower_id))
                 .normal(0.0, config_.backhaul_spread_s * 0.10);
  } else {
    offset = root.fork(static_cast<std::uint64_t>(tower_id))
                 .normal(0.0, config_.backhaul_spread_s);
  }
  return std::max(offset, -0.035);
}

std::optional<cellular_network::selection> cellular_network::select_station(
    const geo::xy& p) const {
  // Consider towers within a generous radius; beyond that path loss makes
  // them irrelevant to both signal and interference.
  const double horizon_m = 4.0 * config_.tower_spacing_m;
  int best = -1;
  double best_rx = -1e9;
  double interference_mw = dbm_to_mw(config_.noise_floor_dbm);
  double total_signal_mw = 0.0;
  // The shadowing field is a property of the client position, not of the
  // tower; evaluate it once (it is the expensive term: a sum of hundreds of
  // cosines).
  const double shadow_db = shadowing_.at(p);
  for (const auto& t : towers_) {
    const double d = geo::distance_m(p, t.station.pos);
    if (d > horizon_m) continue;
    const double rx = radio::received_power_dbm(
        config_.tx_power_dbm, config_.pathloss.loss_db(d), shadow_db);
    total_signal_mw += dbm_to_mw(rx);
    if (rx > best_rx) {
      best_rx = rx;
      best = t.station.id;
    }
  }
  if (best < 0) return std::nullopt;
  // Other cells transmit ~half the time on average (activity factor 0.5).
  constexpr double activity_factor = 0.5;
  interference_mw += activity_factor * (total_signal_mw - dbm_to_mw(best_rx));
  return selection{best, best_rx, mw_to_dbm(interference_mw)};
}

double cellular_network::diurnal(double time_s) const noexcept {
  const double t = std::fmod(time_s, seconds_per_day);
  return std::cos(2.0 * std::numbers::pi * (t - busy_hour_s) / seconds_per_day);
}

double cellular_network::event_boost(const geo::xy& p,
                                     double time_s) const noexcept {
  double boost = 0.0;
  for (const auto& e : events_) {
    if (time_s < e.start_s || time_s > e.end_s) continue;
    const double d = geo::distance_m(p, e.center);
    if (d <= e.radius_m) {
      boost += e.extra_utilization;
    } else if (d <= 2.0 * e.radius_m) {
      // Linear taper in the surrounding ring: nearby cells absorb overflow.
      boost += e.extra_utilization * (2.0 - d / e.radius_m);
    }
  }
  return boost;
}

double cellular_network::utilization_at(const geo::xy& p,
                                        double time_s) const {
  const auto sel = select_station(p);
  if (!sel) return 1.0;
  const auto& tower = towers_[static_cast<std::size_t>(sel->index)];

  double burst_sigma = config_.load.burst_sigma;
  for (const auto& ts : troubles_) {
    if (geo::distance_m(p, ts.center) <= ts.radius_m) {
      burst_sigma += ts.extra_burst_sigma;
    }
  }
  // Fast cross-traffic churn: deterministic hash of (tower, 1-second slot)
  // mapped through a normal quantile-ish transform (sum of uniforms).
  const auto slot = static_cast<std::uint64_t>(std::floor(time_s));
  std::uint64_t h = stats::splitmix64(
      burst_seed_.seed() ^
      stats::splitmix64(static_cast<std::uint64_t>(sel->index) * 0x9e37ULL + slot));
  double acc = 0.0;
  for (int i = 0; i < 4; ++i) {
    h = stats::splitmix64(h);
    acc += static_cast<double>(h >> 11) / 9007199254740992.0;  // [0,1)
  }
  const double burst = (acc - 2.0) * std::sqrt(3.0) * burst_sigma;  // ~N(0,sigma)

  const double u = config_.load.base_utilization + tower.util_offset +
                   config_.load.diurnal_amplitude * diurnal(time_s) +
                   tower.drift.at(time_s) + burst + event_boost(p, time_s);
  return std::clamp(u, 0.02, 0.97);
}

bool cellular_network::in_outage(const geo::xy& p, double time_s) const {
  constexpr double window_s = 600.0;  // outages last O(10 minutes)
  const auto w = static_cast<std::uint64_t>(std::floor(time_s / window_s));
  for (std::size_t i = 0; i < troubles_.size(); ++i) {
    const auto& ts = troubles_[i];
    if (geo::distance_m(p, ts.center) > ts.radius_m) continue;
    const std::uint64_t h =
        stats::splitmix64(config_.seed ^ stats::splitmix64((i + 1) * 0x51eULL + w));
    const double u = static_cast<double>(h >> 11) / 9007199254740992.0;
    if (u < ts.outage_prob) return true;
  }
  return false;
}

link_conditions cellular_network::conditions_at(const geo::xy& p,
                                                double time_s,
                                                double sinr_penalty_db) const {
  link_conditions lc;
  const auto sel = select_station(p);
  if (!sel) return lc;  // out of range entirely

  lc.serving_station = sel->index;
  lc.rx_dbm = sel->rx_dbm - sinr_penalty_db;
  lc.sinr_db = radio::sinr_db(sel->rx_dbm, sel->interference_noise_dbm) -
               sinr_penalty_db;
  if (lc.sinr_db < config_.coverage_sinr_db || in_outage(p, time_s)) {
    return lc;  // in_coverage stays false; probes will fail here
  }
  lc.in_coverage = true;
  lc.utilization = utilization_at(p, time_s);

  const auto& tech = radio::profile_for(config_.tech);
  const double se = radio::spectral_efficiency(lc.sinr_db, tech.efficiency);
  // Equal-grade-of-service fairness: the sector scheduler grants weak users
  // extra slots, so per-user throughput follows a strongly compressed
  // function of spectral efficiency, anchored at the reference efficiency:
  //     eff_se = se_ref * (se / se_ref)^alpha
  // Below `fairness_floor_se` the compensation runs out of slots and the
  // rate falls off linearly toward the coverage edge.
  constexpr double fairness_floor_se = 0.30;
  const double se_safe = std::max(se, 1e-3);
  double eff_se = config_.fairness_se_ref *
                  std::pow(se_safe / config_.fairness_se_ref,
                           config_.fairness_alpha);
  eff_se *= std::min(1.0, se_safe / fairness_floor_se);
  const double peak =
      config_.capacity_scale *
      std::min(tech.downlink_cap_bps, tech.bandwidth_hz * eff_se);
  // The sector share left for this client shrinks with utilization.
  lc.capacity_bps = std::max(peak * (1.0 - 0.85 * lc.utilization), 16e3);
  // Uplink: lower UE transmit power makes the link budget tighter, but the
  // uplink is also less contended (most traffic is downlink, Sec 2); model
  // it as the technology's uplink cap scaled by the same quality compression
  // and a milder load factor.
  const double up_peak =
      config_.capacity_scale *
      std::min(tech.uplink_cap_bps, tech.uplink_cap_bps * eff_se / 1.4);
  lc.uplink_capacity_bps =
      std::max(up_peak * (1.0 - 0.6 * lc.utilization), 8e3);

  // Queueing at the busy sector inflates the base RTT (M/M/1-flavored);
  // each tower adds its own persistent backhaul latency.
  const double base_rtt =
      tech.base_rtt_s +
      towers_[static_cast<std::size_t>(sel->index)].rtt_offset_s;
  lc.rtt_s = base_rtt * (1.0 + config_.latency_load_gain * lc.utilization /
                                   (1.0 - lc.utilization));

  // Residual loss: small floor, rising only in the last couple of dB before
  // the coverage edge (RLC retransmission hides radio loss until the link
  // is nearly gone), plus trouble spots.
  double loss = config_.base_loss_prob;
  const double margin_db = lc.sinr_db - config_.coverage_sinr_db;
  if (margin_db < 2.0) loss += 0.04 * (2.0 - margin_db) / 2.0;
  for (const auto& ts : troubles_) {
    if (geo::distance_m(p, ts.center) <= ts.radius_m) loss += 0.01;
  }
  lc.loss_prob = std::min(loss, 0.5);
  return lc;
}

}  // namespace wiscape::cellnet

#include "cellnet/temporal_field.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wiscape::cellnet {

temporal_field::temporal_field(stats::rng_stream rng, double sigma,
                               double tau_s, int components)
    : sigma_(sigma), tau_s_(tau_s) {
  if (!(sigma >= 0.0) || !(tau_s > 0.0) || components < 1) {
    throw std::invalid_argument(
        "temporal_field requires sigma>=0, tau>0, components>=1");
  }
  waves_.reserve(static_cast<std::size_t>(components));
  for (int i = 0; i < components; ++i) {
    // Rayleigh-distributed angular frequency with scale 1/tau: most energy
    // near the decorrelation scale, a tail of faster wiggles.
    const double r = std::sqrt(-2.0 * std::log(1.0 - rng.uniform()));
    waves_.push_back(
        {r / tau_s, rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  amplitude_ = sigma * std::sqrt(2.0 / static_cast<double>(components));
}

double temporal_field::at(double t_s) const noexcept {
  double sum = 0.0;
  for (const auto& w : waves_) sum += std::cos(w.omega * t_s + w.phase);
  return amplitude_ * sum;
}

}  // namespace wiscape::cellnet

// Configuration of one cellular operator's deployment over a region.
//
// Each of the paper's three operators (NetA/NetB/NetC) is an independent
// instance: its own tower grid, its own shadowing field, its own load
// process -- which is precisely why per-zone dominance (Figs 11-13) emerges.
#pragma once

#include <cstdint>
#include <string>

#include "radio/propagation.h"
#include "radio/technology.h"

namespace wiscape::cellnet {

/// Parameters of the sector load (utilization) process.
struct load_params {
  double base_utilization = 0.30;  ///< long-run average busy fraction
  double diurnal_amplitude = 0.12; ///< peak swing of the daily cycle
  double drift_sigma = 0.05;       ///< stddev of the slow random drift
  double drift_tau_s = 4.0 * 3600; ///< decorrelation time of the drift
  double burst_sigma = 0.08;       ///< per-query fast cross-traffic noise
  /// Per-tower persistent utilization offset (stddev). Towers differ in
  /// subscriber density, so each sector has its own long-run load level --
  /// flat *within* a cell but varying *between* cells. This is what makes
  /// per-zone operator orderings flip and persistent dominance emerge
  /// (Figs 11-13) without inflating intra-zone variance (Fig 4).
  /// Offsets are clamped at +-2 sigma (subscriber density has no fat tail
  /// at 2011 macro-cell scale).
  double tower_spread = 0.05;
};

/// Full static description of one operator.
struct operator_config {
  std::string name = "NetB";
  radio::technology tech = radio::technology::evdo_rev_a;
  std::uint64_t seed = 1;

  // Deployment geometry.
  double tower_spacing_m = 1800.0;  ///< hex-ish grid pitch
  double placement_jitter_m = 300.0;

  // Link budget.
  double tx_power_dbm = 43.0;          ///< sector EIRP
  double noise_floor_dbm = -100.0;     ///< thermal noise + rx noise figure
  radio::pathloss_model pathloss{};

  // Shadowing (macro gives zones identity; micro adds street texture).
  double macro_shadow_sigma_db = 5.0;
  double macro_shadow_corr_m = 1500.0;
  double micro_shadow_sigma_db = 0.5;
  double micro_shadow_corr_m = 120.0;

  // Coverage edge: below this SINR the link is unusable (pings fail).
  double coverage_sinr_db = -6.0;

  // Load process.
  load_params load{};

  // Latency model: rtt = (base_rtt + tower backhaul offset) *
  //                      (1 + latency_load_gain * u / (1 - u)).
  double latency_load_gain = 0.36;
  /// Per-tower backhaul latency offset (stddev, seconds). Each cell site
  /// reaches the core over its own chain of microwave/leased-line hops, so
  /// base RTT differs persistently from tower to tower -- much more so on
  /// rural stretches. This is what gives zones a persistently *better*
  /// latency network (Fig 11's 85% dominance).
  double backhaul_spread_s = 0.010;
  /// Backhaul aggregation-hub size (meters). When > 0, most of the backhaul
  /// offset is shared by all towers within a hub (sites homing to the same
  /// aggregation point share its latency), with only a small per-tower
  /// residual -- so latency differences form contiguous stretches rather
  /// than flipping at every cell edge. 0 = fully per-tower.
  double backhaul_hub_m = 0.0;
  double latency_jitter_sigma_s = 0.003;  ///< per-packet latency noise (IPDV scale)

  // Residual random loss at good SINR. 3G RLC acknowledged mode
  // retransmits radio losses below TCP, so the residual end-to-end loss is
  // tiny -- which is why the paper's TCP rates are stable and its UDP loss
  // is ~0 (Fig 5d/h).
  double base_loss_prob = 0.0001;

  // Scheduler/backhaul efficiency: multiplies the radio-derived peak rate.
  // The calibration knob that sets each operator's absolute throughput level.
  double capacity_scale = 0.6;

  // Equal-grade-of-service scheduling: sector schedulers grant weak users
  // extra slots, compressing the per-user throughput spread across a cell.
  // Throughput scales as (se / fairness_se_ref)^fairness_alpha instead of
  // linearly in spectral efficiency (alpha = 1 disables the compression).
  // This is what makes 250 m zones near-uniform (paper Fig 4) while zones
  // kilometres apart still differ.
  double fairness_alpha = 0.10;
  double fairness_se_ref = 1.2;

  // Per-client fast fading handed to the probe engine (radio::fading_process).
  double fading_sigma = 0.10;
  double fading_tau_s = 2.0;
};

}  // namespace wiscape::cellnet

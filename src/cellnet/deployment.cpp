#include "cellnet/deployment.h"

#include <stdexcept>

namespace wiscape::cellnet {

deployment::deployment(geo::projection proj, extent area,
                       std::vector<operator_config> operators)
    : proj_(proj), area_(area) {
  networks_.reserve(operators.size());
  for (auto& cfg : operators) {
    if (index_of(cfg.name) >= 0) {
      throw std::invalid_argument("duplicate operator name: " + cfg.name);
    }
    networks_.push_back(
        std::make_unique<cellular_network>(std::move(cfg), area));
  }
}

std::vector<std::string> deployment::names() const {
  std::vector<std::string> out;
  out.reserve(networks_.size());
  for (const auto& n : networks_) out.push_back(n->config().name);
  return out;
}

const cellular_network& deployment::network(std::size_t i) const {
  return *networks_.at(i);
}

cellular_network& deployment::network(std::size_t i) {
  return *networks_.at(i);
}

int deployment::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < networks_.size(); ++i) {
    if (networks_[i]->config().name == name) return static_cast<int>(i);
  }
  return -1;
}

const cellular_network& deployment::network(std::string_view name) const {
  const int i = index_of(name);
  if (i < 0) throw std::invalid_argument("unknown operator: " + std::string(name));
  return *networks_[static_cast<std::size_t>(i)];
}

cellular_network& deployment::network(std::string_view name) {
  const int i = index_of(name);
  if (i < 0) throw std::invalid_argument("unknown operator: " + std::string(name));
  return *networks_[static_cast<std::size_t>(i)];
}

link_conditions deployment::conditions_at(std::size_t i, const geo::lat_lon& p,
                                          double time_s) const {
  return network(i).conditions_at(proj_.to_xy(p), time_s);
}

}  // namespace wiscape::cellnet

// One operator's network over a rectangular region: towers, propagation,
// load, and the link-conditions query used by every probe.
#pragma once

#include <optional>
#include <vector>

#include "cellnet/operator_config.h"
#include "cellnet/temporal_field.h"
#include "geo/projection.h"
#include "radio/propagation.h"

namespace wiscape::cellnet {

/// One cell site (modelled omni: one sector per site).
struct base_station {
  int id = 0;
  geo::xy pos;
};

/// A transient localized demand surge (e.g. 80,000 people filling the
/// UW-Madison football stadium for ~3 hours, Fig 10).
struct hotspot_event {
  geo::xy center;
  double radius_m = 800.0;
  double start_s = 0.0;
  double end_s = 0.0;
  double extra_utilization = 0.55;  ///< added inside the radius, tapering out
};

/// A persistently misbehaving area (backhaul trouble, interference): extra
/// outage probability and extra load churn. These are the zones Fig 9's
/// failed-ping triage is designed to catch.
struct trouble_spot {
  geo::xy center;
  double radius_m = 400.0;
  double outage_prob = 0.06;        ///< chance a probe window hits an outage
  double extra_burst_sigma = 0.25;  ///< extra fast churn inside the spot
};

/// Slow-field link state for one client position & time. Fast fading is
/// layered on top by the probe engine (it is per-client, not per-network).
struct link_conditions {
  bool in_coverage = false;
  double capacity_bps = 0.0;  ///< achievable downlink rate for this client
  double uplink_capacity_bps = 0.0;  ///< achievable uplink rate
  double rtt_s = 0.0;         ///< base round-trip (no queueing by the probe itself)
  double loss_prob = 0.0;     ///< residual random packet loss
  double sinr_db = 0.0;
  double rx_dbm = -120.0;     ///< serving-cell received power (RSSI basis)
  double utilization = 0.0;   ///< serving sector load in [0, 1)
  int serving_station = -1;
};

/// Rectangular region extent in projected meters, centered on the origin.
struct extent {
  double width_m = 12000.0;
  double height_m = 12000.0;
};

/// One operator's radio access network.
///
/// Deterministic: all randomness derives from config.seed, and
/// conditions_at(p, t) is a pure function of (p, t) *except* for the
/// random-loss/outage draws made by the caller from the returned
/// probabilities.
class cellular_network {
 public:
  /// Builds the tower grid and random fields. Throws std::invalid_argument
  /// on a non-positive extent or tower spacing.
  cellular_network(operator_config config, extent area);

  const operator_config& config() const noexcept { return config_; }
  const std::vector<base_station>& stations() const noexcept { return stations_; }
  const extent& area() const noexcept { return area_; }

  void add_event(const hotspot_event& e) { events_.push_back(e); }
  void add_trouble_spot(const trouble_spot& t) { troubles_.push_back(t); }
  const std::vector<hotspot_event>& events() const noexcept { return events_; }
  const std::vector<trouble_spot>& trouble_spots() const noexcept {
    return troubles_;
  }

  /// Slow-field link conditions at a projected position and absolute time.
  /// `sinr_penalty_db` models a constrained client RF front-end (phones vs
  /// laptop modems, paper Sec 3.3): it is subtracted from the SINR before
  /// coverage and rate are derived.
  link_conditions conditions_at(const geo::xy& p, double time_s,
                                double sinr_penalty_db = 0.0) const;

  /// Serving-sector utilization in [0.02, 0.97] at (p, t) -- exposed for
  /// tests and the stadium bench.
  double utilization_at(const geo::xy& p, double time_s) const;

  /// True when (p, t) falls inside an active trouble-spot outage window.
  /// Outages are deterministic pseudo-random windows so that repeated pings
  /// in the same window all fail (the paper's "failed ping" days).
  bool in_outage(const geo::xy& p, double time_s) const;

 private:
  struct tower_state {
    base_station station;
    temporal_field drift;
    double util_offset = 0.0;   ///< persistent per-tower load level
    double rtt_offset_s = 0.0;  ///< persistent per-tower backhaul latency
  };

  /// Index of the strongest station and its rx power; also accumulates the
  /// interference sum. Returns nullopt when no station is in range.
  struct selection {
    int index;
    double rx_dbm;
    double interference_noise_dbm;
  };
  std::optional<selection> select_station(const geo::xy& p) const;

  double diurnal(double time_s) const noexcept;
  double event_boost(const geo::xy& p, double time_s) const noexcept;
  /// Persistent backhaul latency of a tower (hub component + residual).
  double backhaul_offset(const geo::xy& pos, int tower_id,
                         stats::rng_stream& root) const;

  operator_config config_;
  extent area_;
  std::vector<tower_state> towers_;
  std::vector<base_station> stations_;  // flat copy exposed to callers
  std::vector<hotspot_event> events_;
  std::vector<trouble_spot> troubles_;
  radio::composite_shadowing shadowing_;
  stats::rng_stream burst_seed_;
};

}  // namespace wiscape::cellnet

#include "cellnet/presets.h"

#include <stdexcept>

namespace wiscape::cellnet {

namespace {

std::uint64_t op_seed(std::uint64_t master, std::string_view op,
                      std::string_view region) {
  return stats::rng_stream(master).fork(region).fork(op).seed();
}

/// Baseline common to all operators; per-operator deltas layered on top.
operator_config base_config() {
  operator_config c;
  c.pathloss = radio::pathloss_model{.pl0_db = 38.0, .exponent = 3.3, .d0_m = 1.0};
  return c;
}

// ---- Madison (WI): three operators, slow drift, moderate load. --------
// Calibrated toward Table 3 (NetA ~1.24 Mbps, NetB ~0.85, NetC ~1.07),
// Table 4 (NetA noisiest at 10 s), Fig 5 (jitter ~7 ms NetA, ~3 ms B/C),
// and Fig 6 (Allan minimum near 75 min).
std::vector<operator_config> madison_ops(std::uint64_t seed) {
  std::vector<operator_config> ops;

  operator_config a = base_config();
  a.name = "NetA";
  a.tech = radio::technology::hspa;
  a.seed = op_seed(seed, "NetA", "madison");
  a.capacity_scale = 0.37;
  a.load = {.base_utilization = 0.34,
            .diurnal_amplitude = 0.030,
            .drift_sigma = 0.050,
            .drift_tau_s = 8.0 * 3600,
            .burst_sigma = 0.04,
            .tower_spread = 0.05};
  a.backhaul_spread_s = 0.012;
  a.latency_jitter_sigma_s = 0.0074;
  a.fading_sigma = 0.06;
  ops.push_back(a);

  operator_config b = base_config();
  b.name = "NetB";
  b.tech = radio::technology::evdo_rev_a;
  b.seed = op_seed(seed, "NetB", "madison");
  b.capacity_scale = 0.95;
  b.load = {.base_utilization = 0.42,
            .diurnal_amplitude = 0.025,
            .drift_sigma = 0.015,
            .drift_tau_s = 8.0 * 3600,
            .burst_sigma = 0.015,
            .tower_spread = 0.05};
  b.backhaul_spread_s = 0.012;
  b.latency_jitter_sigma_s = 0.0030;
  b.fading_sigma = 0.04;
  ops.push_back(b);

  operator_config c = base_config();
  c.name = "NetC";
  c.tech = radio::technology::evdo_rev_a;
  c.seed = op_seed(seed, "NetC", "madison");
  c.capacity_scale = 1.20;
  c.load = {.base_utilization = 0.38,
            .diurnal_amplitude = 0.025,
            .drift_sigma = 0.015,
            .drift_tau_s = 8.0 * 3600,
            .burst_sigma = 0.015,
            .tower_spread = 0.05};
  c.backhaul_spread_s = 0.012;
  c.latency_jitter_sigma_s = 0.0034;
  c.fading_sigma = 0.04;
  ops.push_back(c);

  return ops;
}

// ---- New Jersey: two operators, faster drift, higher rates & variance. --
// Calibrated toward Table 3 (NetB ~1.5-1.7 Mbps, NetC ~1.85-2.2 Mbps,
// stddev 3-4x Madison's), Fig 6 (Allan minimum near 15 min).
std::vector<operator_config> nj_ops(std::uint64_t seed) {
  std::vector<operator_config> ops;

  operator_config b = base_config();
  b.name = "NetB";
  b.tech = radio::technology::evdo_rev_a;
  b.seed = op_seed(seed, "NetB", "nj");
  b.capacity_scale = 1.57;
  b.load = {.base_utilization = 0.30,
            .diurnal_amplitude = 0.080,
            .drift_sigma = 0.085,
            .drift_tau_s = 2400.0,
            .burst_sigma = 0.14,
            .tower_spread = 0.06};
  b.latency_jitter_sigma_s = 0.0028;
  b.fading_sigma = 0.14;
  ops.push_back(b);

  operator_config c = base_config();
  c.name = "NetC";
  c.tech = radio::technology::evdo_rev_a;
  c.seed = op_seed(seed, "NetC", "nj");
  c.capacity_scale = 1.81;
  c.load = {.base_utilization = 0.26,
            .diurnal_amplitude = 0.080,
            .drift_sigma = 0.080,
            .drift_tau_s = 2400.0,
            .burst_sigma = 0.13,
            .tower_spread = 0.06};
  c.latency_jitter_sigma_s = 0.0016;
  c.fading_sigma = 0.13;
  ops.push_back(c);

  return ops;
}

// ---- Madison-Chicago corridor: the WiRover strip (NetB, NetC). ---------
// Sparser rural towers; coverage gets patchier, which feeds Fig 2 (speed vs
// latency over a long drive) and Fig 11 (dominance across many zones).
std::vector<operator_config> corridor_ops(std::uint64_t seed) {
  std::vector<operator_config> ops;
  for (const char* name : {"NetB", "NetC"}) {
    operator_config o = base_config();
    o.name = name;
    o.tech = radio::technology::evdo_rev_a;
    o.seed = op_seed(seed, name, "corridor");
    o.tower_spacing_m = 3200.0;
    o.placement_jitter_m = 600.0;
    o.capacity_scale = o.name == "NetB" ? 0.95 : 1.12;
    o.load = {.base_utilization = 0.30,
              .diurnal_amplitude = 0.030,
              .drift_sigma = 0.040,
              .drift_tau_s = 4.0 * 3600,
              .burst_sigma = 0.06,
              .tower_spread = 0.09};
    o.latency_jitter_sigma_s = o.name == "NetB" ? 0.0030 : 0.0034;
    o.fading_sigma = 0.045;
    // Rural backhaul chains differ wildly hub to hub (sites home to the
    // same aggregation point in ~12 km stretches).
    o.backhaul_spread_s = 0.075;
    o.backhaul_hub_m = 12000.0;
    // Macro shadowing decorrelates faster along a drive than within a city
    // core (terrain changes), giving different operators different winners
    // zone by zone.
    o.macro_shadow_sigma_db = 6.0;
    o.macro_shadow_corr_m = 1200.0;
    ops.push_back(o);
  }
  return ops;
}

// ---- Short segment: 20 km stretch, all three operators. ----------------
// Stronger shadowing contrast so roughly half the zones have a persistently
// dominant operator (Fig 12's 26/13/13/48 split, Fig 13's per-zone winners).
std::vector<operator_config> segment_ops(std::uint64_t seed) {
  std::vector<operator_config> ops = madison_ops(seed);
  for (auto& o : ops) {
    o.seed = op_seed(seed, o.name, "segment");
    o.tower_spacing_m = 2400.0;
    o.macro_shadow_sigma_db = 6.5;
    o.macro_shadow_corr_m = 1800.0;
    // Sparser rural towers shuffle subscriber density harder: per-cell load
    // levels spread wide, so per-zone operator orderings flip (Fig 12/13).
    o.load.tower_spread = 0.19;
    o.backhaul_spread_s = 0.030;
    // On the open road all three radios behave similarly at short
    // timescales; dominance comes from the persistent per-cell structure,
    // not from one network being noisier.
    o.fading_sigma = 0.03;
    o.load.burst_sigma = 0.02;
    // Slow drift folds into each zone's multi-day sample spread; keep it
    // small so the persistent per-cell gaps stay visible through it.
    o.load.drift_sigma = 0.02;
  }
  // On this stretch the three networks run closer to each other than in the
  // city core (paper Fig 13: interleaved winners, NetA ahead most often).
  ops[0].capacity_scale = 0.40;  // NetA
  ops[1].capacity_scale = 1.10;  // NetB
  ops[2].capacity_scale = 1.18;  // NetC
  return ops;
}

}  // namespace

int operator_count(region_preset r) noexcept {
  switch (r) {
    case region_preset::madison:
    case region_preset::segment:
      return 3;
    case region_preset::new_jersey:
    case region_preset::corridor:
      return 2;
  }
  return 0;
}

geo::projection preset_projection(region_preset r) {
  switch (r) {
    case region_preset::madison:
    case region_preset::segment:
      return geo::projection(anchors::madison);
    case region_preset::new_jersey:
      return geo::projection(anchors::new_brunswick);
    case region_preset::corridor:
      // Projection centered midway down the Madison-Chicago run.
      return geo::projection(
          geo::interpolate(anchors::madison, anchors::chicago, 0.5));
  }
  throw std::invalid_argument("unknown region preset");
}

extent preset_extent(region_preset r) noexcept {
  switch (r) {
    case region_preset::madison:
      return {12500.0, 12500.0};  // ~155 sq km
    case region_preset::new_jersey:
      return {6000.0, 6000.0};
    case region_preset::corridor:
      return {250000.0, 3000.0};  // 240+ km strip
    case region_preset::segment:
      return {22000.0, 3000.0};  // 20 km stretch with margin
  }
  return {};
}

std::vector<operator_config> preset_operators(region_preset r,
                                              std::uint64_t seed) {
  switch (r) {
    case region_preset::madison:
      return madison_ops(seed);
    case region_preset::new_jersey:
      return nj_ops(seed);
    case region_preset::corridor:
      return corridor_ops(seed);
    case region_preset::segment:
      return segment_ops(seed);
  }
  throw std::invalid_argument("unknown region preset");
}

deployment make_deployment(region_preset r, std::uint64_t seed) {
  return deployment(preset_projection(r), preset_extent(r),
                    preset_operators(r, seed));
}

operator_config wifi_mesh_config(std::uint64_t seed) {
  operator_config w = base_config();
  w.name = "WiFiMesh";
  // Reuse the EV-DO rate envelope as a stand-in 802.11b/g mesh backhaul cap;
  // what matters for the Sec 3.1 contrast is the *churn*, not the cap.
  w.tech = radio::technology::evdo_rev_a;
  w.seed = op_seed(seed, "WiFiMesh", "madison");
  // Dense rooftop nodes, low power, heavy shadowing at street scale.
  w.tower_spacing_m = 450.0;
  w.placement_jitter_m = 120.0;
  w.tx_power_dbm = 23.0;
  w.pathloss = radio::pathloss_model{.pl0_db = 40.0, .exponent = 3.5, .d0_m = 1.0};
  w.macro_shadow_sigma_db = 7.0;
  w.macro_shadow_corr_m = 300.0;
  w.micro_shadow_sigma_db = 3.0;
  w.micro_shadow_corr_m = 40.0;
  w.capacity_scale = 0.8;
  // Unlicensed-band contention: violent load churn at *all* timescales --
  // fast bursts AND fast drift, so averaging never finds a quiet plateau
  // (the reason WiFi epochs are hard to define).
  w.load = {.base_utilization = 0.45,
            .diurnal_amplitude = 0.05,
            .drift_sigma = 0.22,
            .drift_tau_s = 400.0,
            .burst_sigma = 0.20};
  // Random access: no EGoS scheduler flattening rates across the mesh.
  w.fairness_alpha = 0.8;
  w.fading_sigma = 0.30;
  w.fading_tau_s = 0.5;
  w.latency_jitter_sigma_s = 0.012;
  w.base_loss_prob = 0.01;
  return w;
}

deployment make_wifi_comparison_deployment(std::uint64_t seed) {
  auto ops = madison_ops(seed);
  std::vector<operator_config> pair;
  pair.push_back(ops[1]);  // NetB
  pair.push_back(wifi_mesh_config(seed));
  return deployment(preset_projection(region_preset::madison),
                    preset_extent(region_preset::madison), std::move(pair));
}

}  // namespace wiscape::cellnet

// Deterministic 1-D Gaussian process in time.
//
// Sector utilization must be queryable at arbitrary absolute times by many
// concurrent clients (conditions_at is const), so the slow random component
// of load is a *function of t*, not a stateful filter: a sum of random
// sinusoids whose frequency spread sets the decorrelation time. This is the
// temporal twin of radio::shadowing_field.
//
// The decorrelation time of this process is what positions each region's
// Allan-deviation minimum (Fig 6): Madison's load drifts slowly (minimum
// near 75 min), New Brunswick's faster (near 15 min).
#pragma once

#include <vector>

#include "stats/rng.h"

namespace wiscape::cellnet {

/// Zero-mean stationary Gaussian process x(t) with stddev `sigma` and
/// decorrelation time `tau_s`.
class temporal_field {
 public:
  /// Throws std::invalid_argument unless sigma >= 0, tau_s > 0, components>=1.
  temporal_field(stats::rng_stream rng, double sigma, double tau_s,
                 int components = 48);

  /// Value at absolute time t (seconds).
  double at(double t_s) const noexcept;

  double sigma() const noexcept { return sigma_; }
  double tau_s() const noexcept { return tau_s_; }

 private:
  struct wave {
    double omega, phase;
  };
  std::vector<wave> waves_;
  double sigma_;
  double tau_s_;
  double amplitude_;
};

}  // namespace wiscape::cellnet

#include "transport/tcp.h"

#include <algorithm>
#include <cmath>

namespace wiscape::transport {

tcp_flow::tcp_flow(netsim::simulation& sim, netsim::duplex_path& path,
                   tcp_config config, std::uint64_t flow_id,
                   tcp_callback on_done)
    : sim_(sim),
      path_(path),
      cfg_(config),
      flow_id_(flow_id),
      on_done_(std::move(on_done)),
      cwnd_(config.initial_cwnd_pkts),
      ssthresh_(config.initial_ssthresh_pkts),
      rto_s_(1.0) {
  total_pkts_ = static_cast<std::uint32_t>(
      (cfg_.transfer_bytes + cfg_.mss_bytes - 1) / cfg_.mss_bytes);
  total_pkts_ = std::max<std::uint32_t>(total_pkts_, 1);
  recv_ok_.assign(total_pkts_, false);
  sent_time_.assign(total_pkts_, 0.0);
  send_count_.assign(total_pkts_, 0);
}

void tcp_flow::start() {
  start_time_ = sim_.now();
  send_window();
}

void tcp_flow::abort() {
  if (done_) return;
  complete();
}

void tcp_flow::transmit(std::uint32_t seq) {
  netsim::packet p;
  p.flow_id = flow_id_;
  p.seq = seq;
  p.size_bytes = cfg_.mss_bytes;
  p.sent_at = sim_.now();
  sent_time_[seq] = sim_.now();
  if (send_count_[seq] < 255) ++send_count_[seq];

  auto self = shared_from_this();
  path_.down().send(p, [self](const netsim::packet& pkt) {
    self->on_data_at_receiver(pkt);
  });
}

void tcp_flow::on_data_at_receiver(const netsim::packet& p) {
  if (done_) return;
  if (p.seq < recv_ok_.size()) recv_ok_[p.seq] = true;
  while (recv_next_ < total_pkts_ && recv_ok_[recv_next_]) ++recv_next_;

  netsim::packet ack;
  ack.flow_id = flow_id_;
  ack.seq = recv_next_;  // cumulative: next expected sequence
  ack.size_bytes = cfg_.ack_bytes;
  ack.sent_at = sim_.now();
  ack.is_ack = true;

  auto self = shared_from_this();
  path_.up().send(ack, [self](const netsim::packet& a) {
    self->on_ack(a.seq);
  });
}

void tcp_flow::on_ack(std::uint32_t ack_seq) {
  if (done_) return;
  if (ack_seq > highest_acked_) {
    // New data acknowledged.
    const std::uint32_t newly = ack_seq - highest_acked_;
    // Karn's rule: only sample RTT from segments transmitted exactly once.
    const std::uint32_t probe_seq = ack_seq - 1;
    if (send_count_[probe_seq] == 1) {
      const double sample = sim_.now() - sent_time_[probe_seq];
      if (!have_rtt_) {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
        have_rtt_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
      }
      rto_s_ = std::clamp(srtt_s_ + 4.0 * rttvar_s_, cfg_.min_rto_s,
                          cfg_.max_rto_s);
    }

    highest_acked_ = ack_seq;
    dup_acks_ = 0;
    if (in_recovery_ && ack_seq >= recovery_point_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    }
    if (!in_recovery_) {
      for (std::uint32_t i = 0; i < newly; ++i) {
        if (cwnd_ < ssthresh_) {
          cwnd_ += 1.0;  // slow start
        } else {
          cwnd_ += 1.0 / cwnd_;  // congestion avoidance
        }
      }
      cwnd_ = std::min(cwnd_, cfg_.rwnd_pkts);
    }

    if (highest_acked_ >= total_pkts_) {
      complete();
      return;
    }
    arm_rto();
    send_window();
  } else if (ack_seq == highest_acked_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + (simplified) fast recovery.
      const double flight = static_cast<double>(next_seq_ - highest_acked_);
      ssthresh_ = std::max(flight / 2.0, 2.0);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recovery_point_ = next_seq_;
      ++retransmits_;
      transmit(highest_acked_);
      arm_rto();
    }
  }
}

void tcp_flow::send_window() {
  const double window = std::min(cwnd_, cfg_.rwnd_pkts);
  while (next_seq_ < total_pkts_ &&
         static_cast<double>(next_seq_ - highest_acked_) < window) {
    transmit(next_seq_++);
  }
  if (next_seq_ > highest_acked_ && rto_generation_ == 0) arm_rto();
}

void tcp_flow::arm_rto() {
  const std::uint64_t gen = ++rto_generation_;
  auto self = shared_from_this();
  sim_.schedule_in(rto_s_, [self, gen]() { self->on_rto(gen); });
}

void tcp_flow::on_rto(std::uint64_t generation) {
  if (done_ || generation != rto_generation_) return;
  ++timeouts_;
  const double flight = static_cast<double>(next_seq_ - highest_acked_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  rto_s_ = std::min(rto_s_ * 2.0, cfg_.max_rto_s);
  // Go-back-N: resume from the first unacknowledged segment.
  retransmits_ += next_seq_ - highest_acked_ > 0 ? 1 : 0;
  next_seq_ = highest_acked_;
  send_window();
  arm_rto();
}

void tcp_flow::complete() {
  if (done_) return;
  done_ = true;
  ++rto_generation_;  // cancel any armed timer

  tcp_result r;
  r.completed = highest_acked_ >= total_pkts_;
  r.bytes = static_cast<std::size_t>(highest_acked_) * cfg_.mss_bytes;
  r.bytes = std::min(r.bytes, cfg_.transfer_bytes);
  r.duration_s = sim_.now() - start_time_;
  r.throughput_bps = r.duration_s > 0.0
                         ? static_cast<double>(r.bytes) * 8.0 / r.duration_s
                         : 0.0;
  r.retransmits = retransmits_;
  r.timeouts = timeouts_;
  r.srtt_s = srtt_s_;
  if (on_done_) on_done_(r);
}

std::shared_ptr<tcp_flow> start_tcp_download(netsim::simulation& sim,
                                             netsim::duplex_path& path,
                                             const tcp_config& config,
                                             std::uint64_t flow_id,
                                             tcp_callback on_done) {
  auto flow = std::make_shared<tcp_flow>(sim, path, config, flow_id,
                                         std::move(on_done));
  flow->start();
  return flow;
}

}  // namespace wiscape::transport

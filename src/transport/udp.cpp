#include "transport/udp.h"

#include <cmath>

namespace wiscape::transport {

udp_flow::udp_flow(netsim::simulation& sim, netsim::duplex_path& path,
                   udp_config config, std::uint64_t flow_id,
                   udp_callback on_done)
    : sim_(sim),
      path_(path),
      cfg_(config),
      flow_id_(flow_id),
      on_done_(std::move(on_done)) {}

void udp_flow::start() {
  first_send_ = sim_.now();
  send_next();
}

void udp_flow::send_next() {
  if (done_) return;
  if (next_seq_ >= cfg_.packet_count) {
    // All sent; give stragglers time to drain, then report.
    auto self = shared_from_this();
    sim_.schedule_in(cfg_.drain_timeout_s, [self]() { self->finish(); });
    return;
  }
  netsim::packet p;
  p.flow_id = flow_id_;
  p.seq = next_seq_++;
  p.size_bytes = cfg_.packet_bytes;
  p.sent_at = sim_.now();

  auto self = shared_from_this();
  auto& data_link = cfg_.use_uplink ? path_.up() : path_.down();
  data_link.send(p, [self](const netsim::packet& pkt) {
    self->on_receive(pkt);
  });
  sim_.schedule_in(cfg_.interval_s, [self]() { self->send_next(); });
}

void udp_flow::on_receive(const netsim::packet& p) {
  if (done_) return;
  if (received_ == 0) {
    first_arrival_ = sim_.now();
    first_bytes_ = p.size_bytes;
  }
  ++received_;
  received_bytes_ += p.size_bytes;
  last_arrival_ = sim_.now();
  const double delay = sim_.now() - p.sent_at;
  delay_sum_ += delay;
  delays_.push_back(delay);
  if (have_prev_delay_) {
    ipdv_sum_ += std::abs(delay - prev_delay_);
    ++ipdv_count_;
  }
  prev_delay_ = delay;
  have_prev_delay_ = true;
}

void udp_flow::finish() {
  if (done_) return;
  done_ = true;
  udp_result r;
  r.sent = cfg_.packet_count;
  r.received = received_;
  r.loss_rate =
      r.sent > 0
          ? 1.0 - static_cast<double>(received_) / static_cast<double>(r.sent)
          : 0.0;
  // Receiver-side rate over the arrival span (first packet anchors the
  // window, so its bytes are excluded); excludes the one-way delay that
  // would otherwise bias short bursts low.
  const double span = last_arrival_ - first_arrival_;
  r.throughput_bps =
      (received_ >= 2 && span > 0.0)
          ? static_cast<double>(received_bytes_ - first_bytes_) * 8.0 / span
          : 0.0;
  r.mean_delay_s =
      received_ > 0 ? delay_sum_ / static_cast<double>(received_) : 0.0;
  r.jitter_s = ipdv_count_ > 0 ? ipdv_sum_ / static_cast<double>(ipdv_count_) : 0.0;
  r.delays_s = std::move(delays_);
  if (on_done_) on_done_(r);
}

std::shared_ptr<udp_flow> start_udp_flow(netsim::simulation& sim,
                                         netsim::duplex_path& path,
                                         const udp_config& config,
                                         std::uint64_t flow_id,
                                         udp_callback on_done) {
  auto flow =
      std::make_shared<udp_flow>(sim, path, config, flow_id, std::move(on_done));
  flow->start();
  return flow;
}

}  // namespace wiscape::transport

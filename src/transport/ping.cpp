#include "transport/ping.h"

#include <algorithm>

namespace wiscape::transport {

ping_train::ping_train(netsim::simulation& sim, netsim::duplex_path& path,
                       ping_config config, std::uint64_t flow_id,
                       ping_callback on_done)
    : sim_(sim),
      path_(path),
      cfg_(config),
      flow_id_(flow_id),
      on_done_(std::move(on_done)) {
  send_times_.assign(cfg_.count, 0.0);
  answered_.assign(cfg_.count, false);
}

void ping_train::start() { send_next(); }

void ping_train::send_next() {
  if (done_ || next_seq_ >= cfg_.count) return;
  const std::uint32_t seq = next_seq_++;
  send_times_[seq] = sim_.now();

  netsim::packet req;
  req.flow_id = flow_id_;
  req.seq = seq;
  req.size_bytes = cfg_.request_bytes;
  req.sent_at = sim_.now();

  auto self = shared_from_this();
  // Request up; the echo server turns it around instantly onto the downlink.
  path_.up().send(req, [self](const netsim::packet& r) {
    netsim::packet reply;
    reply.flow_id = r.flow_id;
    reply.seq = r.seq;
    reply.size_bytes = self->cfg_.reply_bytes;
    reply.sent_at = r.sent_at;  // carry the original send stamp for RTT
    self->path_.down().send(reply, [self](const netsim::packet& rp) {
      self->on_reply(rp.seq);
    });
  });

  sim_.schedule_in(cfg_.timeout_s, [self, seq]() { self->on_timeout(seq); });
  if (next_seq_ < cfg_.count) {
    sim_.schedule_in(cfg_.interval_s, [self]() { self->send_next(); });
  }
}

void ping_train::on_reply(std::uint32_t seq) {
  if (done_ || answered_[seq]) return;
  answered_[seq] = true;
  ++resolved_;
  result_.rtts_s.push_back(sim_.now() - send_times_[seq]);
  ++result_.replies;
  maybe_finish();
}

void ping_train::on_timeout(std::uint32_t seq) {
  if (done_ || answered_[seq]) return;
  answered_[seq] = true;
  ++resolved_;
  ++result_.failures;
  maybe_finish();
}

void ping_train::maybe_finish() {
  if (resolved_ < cfg_.count) return;
  done_ = true;
  result_.sent = cfg_.count;
  if (!result_.rtts_s.empty()) {
    double sum = 0.0;
    double mn = result_.rtts_s.front();
    double mx = result_.rtts_s.front();
    for (double r : result_.rtts_s) {
      sum += r;
      mn = std::min(mn, r);
      mx = std::max(mx, r);
    }
    result_.mean_rtt_s = sum / static_cast<double>(result_.rtts_s.size());
    result_.min_rtt_s = mn;
    result_.max_rtt_s = mx;
  }
  if (on_done_) on_done_(result_);
}

std::shared_ptr<ping_train> start_ping_train(netsim::simulation& sim,
                                             netsim::duplex_path& path,
                                             const ping_config& config,
                                             std::uint64_t flow_id,
                                             ping_callback on_done) {
  auto train = std::make_shared<ping_train>(sim, path, config, flow_id,
                                            std::move(on_done));
  train->start();
  return train;
}

}  // namespace wiscape::transport

// UDP constant-bit-rate probe flow with per-packet delay accounting.
//
// WiScape's UDP probes (Table 1: 200/1200-byte packets, 1-100 ms spacing)
// yield throughput, loss rate, one-way delay, and application-level jitter
// measured as Instantaneous Packet Delay Variation (RFC 3393): the
// difference between the one-way delays of consecutive packets.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netsim/path.h"

namespace wiscape::transport {

struct udp_config {
  std::uint32_t packet_count = 100;
  std::size_t packet_bytes = 1200;
  double interval_s = 0.010;  ///< inter-packet send spacing
  double drain_timeout_s = 2.0;  ///< wait after last send before reporting
  /// Send client->server through the uplink instead of the downlink.
  bool use_uplink = false;
};

struct udp_result {
  std::uint32_t sent = 0;
  std::uint32_t received = 0;
  double loss_rate = 0.0;
  /// Goodput: received bytes / (last arrival - first send).
  double throughput_bps = 0.0;
  /// Mean one-way delay of delivered packets, seconds.
  double mean_delay_s = 0.0;
  /// Mean |IPDV| over consecutive delivered packets, seconds (RFC 3393).
  double jitter_s = 0.0;
  /// Per-packet one-way delays in arrival order (diagnostics / tests).
  std::vector<double> delays_s;
};

using udp_callback = std::function<void(const udp_result&)>;

/// One server->client UDP burst. Construct via start_udp_flow.
class udp_flow : public std::enable_shared_from_this<udp_flow> {
 public:
  udp_flow(netsim::simulation& sim, netsim::duplex_path& path,
           udp_config config, std::uint64_t flow_id, udp_callback on_done);

  void start();

 private:
  void send_next();
  void on_receive(const netsim::packet& p);
  void finish();

  netsim::simulation& sim_;
  netsim::duplex_path& path_;
  udp_config cfg_;
  std::uint64_t flow_id_;
  udp_callback on_done_;

  std::uint32_t next_seq_ = 0;
  double first_send_ = 0.0;
  double first_arrival_ = 0.0;
  std::size_t first_bytes_ = 0;
  double last_arrival_ = 0.0;
  std::uint32_t received_ = 0;
  std::size_t received_bytes_ = 0;
  double delay_sum_ = 0.0;
  double ipdv_sum_ = 0.0;
  std::uint32_t ipdv_count_ = 0;
  double prev_delay_ = 0.0;
  bool have_prev_delay_ = false;
  std::vector<double> delays_;
  bool done_ = false;
};

std::shared_ptr<udp_flow> start_udp_flow(netsim::simulation& sim,
                                         netsim::duplex_path& path,
                                         const udp_config& config,
                                         std::uint64_t flow_id,
                                         udp_callback on_done);

}  // namespace wiscape::transport

// Ping trains: round-trip latency probes with per-ping timeout.
//
// The WiRover dataset collects ~12 UDP pings a minute; the Standalone
// dataset uses ICMP pings. Failed pings (timeouts) are themselves a signal:
// Fig 9 shows zones with persistent ping failures are exactly the
// high-variability zones operators should investigate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netsim/path.h"

namespace wiscape::transport {

struct ping_config {
  std::uint32_t count = 10;
  double interval_s = 5.0;
  std::size_t request_bytes = 64;
  std::size_t reply_bytes = 64;
  double timeout_s = 2.0;
};

struct ping_result {
  std::uint32_t sent = 0;
  std::uint32_t replies = 0;
  std::uint32_t failures = 0;
  double mean_rtt_s = 0.0;
  double min_rtt_s = 0.0;
  double max_rtt_s = 0.0;
  std::vector<double> rtts_s;  ///< RTTs of successful pings, in order
};

using ping_callback = std::function<void(const ping_result&)>;

/// One client->server->client ping train. Construct via start_ping_train.
class ping_train : public std::enable_shared_from_this<ping_train> {
 public:
  ping_train(netsim::simulation& sim, netsim::duplex_path& path,
             ping_config config, std::uint64_t flow_id, ping_callback on_done);

  void start();

 private:
  void send_next();
  void on_reply(std::uint32_t seq);
  void on_timeout(std::uint32_t seq);
  void maybe_finish();

  netsim::simulation& sim_;
  netsim::duplex_path& path_;
  ping_config cfg_;
  std::uint64_t flow_id_;
  ping_callback on_done_;

  std::uint32_t next_seq_ = 0;
  std::uint32_t resolved_ = 0;  // replies + failures
  std::vector<double> send_times_;
  std::vector<bool> answered_;
  ping_result result_;
  bool done_ = false;
};

std::shared_ptr<ping_train> start_ping_train(netsim::simulation& sim,
                                             netsim::duplex_path& path,
                                             const ping_config& config,
                                             std::uint64_t flow_id,
                                             ping_callback on_done);

}  // namespace wiscape::transport

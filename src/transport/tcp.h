// Reno-style TCP download over a duplex path.
//
// WiScape's headline metric is TCP throughput of ~1 MB downloads (Fig 1,
// Fig 4, Fig 13). Short transfers spend much of their life in slow start, so
// measured throughput sits visibly below link capacity -- a behaviour the
// framework (and the Pathload/WBest comparison of Sec 3.3.1) depends on.
// This is a deliberately compact Reno: slow start, congestion avoidance,
// fast retransmit/recovery, and a coarse retransmission timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netsim/path.h"

namespace wiscape::transport {

struct tcp_config {
  std::size_t transfer_bytes = 1'000'000;
  std::size_t mss_bytes = 1400;
  std::size_t ack_bytes = 40;
  double initial_cwnd_pkts = 2.0;
  double initial_ssthresh_pkts = 64.0;
  double min_rto_s = 0.25;
  double max_rto_s = 8.0;
  /// Receiver window, packets (caps cwnd).
  double rwnd_pkts = 128.0;
};

struct tcp_result {
  bool completed = false;
  std::size_t bytes = 0;
  double duration_s = 0.0;
  double throughput_bps = 0.0;
  std::uint32_t retransmits = 0;
  std::uint32_t timeouts = 0;
  double srtt_s = 0.0;  ///< smoothed RTT at completion
};

using tcp_callback = std::function<void(const tcp_result&)>;

/// A single server->client TCP transfer. Construct via start_tcp_download;
/// the returned handle keeps the flow alive and exposes progress.
class tcp_flow : public std::enable_shared_from_this<tcp_flow> {
 public:
  /// Not for direct use; see start_tcp_download.
  tcp_flow(netsim::simulation& sim, netsim::duplex_path& path,
           tcp_config config, std::uint64_t flow_id, tcp_callback on_done);

  void start();

  /// Aborts the flow: reports a non-completed result immediately and ignores
  /// all in-flight events. Used when a probe deadline expires.
  void abort();

  bool finished() const noexcept { return done_; }
  std::uint32_t packets_acked() const noexcept { return highest_acked_; }

 private:
  void send_window();
  void transmit(std::uint32_t seq);
  void on_data_at_receiver(const netsim::packet& p);
  void on_ack(std::uint32_t ack_seq);
  void arm_rto();
  void on_rto(std::uint64_t generation);
  void complete();

  netsim::simulation& sim_;
  netsim::duplex_path& path_;
  tcp_config cfg_;
  std::uint64_t flow_id_;
  tcp_callback on_done_;

  std::uint32_t total_pkts_ = 0;
  std::uint32_t next_seq_ = 0;       // next never-sent packet
  std::uint32_t highest_acked_ = 0;  // cumulative: all < this are acked
  std::uint32_t recv_next_ = 0;      // receiver's next expected seq
  std::vector<bool> recv_ok_;        // out-of-order reassembly buffer
  std::vector<double> sent_time_;    // last transmission time per segment
  std::vector<std::uint8_t> send_count_;  // transmissions per segment (Karn)
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;

  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  double rto_s_;
  std::uint64_t rto_generation_ = 0;

  double start_time_ = 0.0;
  std::uint32_t retransmits_ = 0;
  std::uint32_t timeouts_ = 0;
  bool done_ = false;
};

/// Launches a download; completion (or abort) invokes `on_done` exactly once.
std::shared_ptr<tcp_flow> start_tcp_download(netsim::simulation& sim,
                                             netsim::duplex_path& path,
                                             const tcp_config& config,
                                             std::uint64_t flow_id,
                                             tcp_callback on_done);

}  // namespace wiscape::transport

// Periodic JSON-lines metric snapshots (`obs::snapshot_writer`).
//
// A background thread samples a registry every `interval` and appends one
// JSON object per line to a file:
//
//   {"seq":3,"uptime_s":1.502,"metrics":{"core.coordinator.checkins":42,...}}
//
// One line per snapshot keeps the file greppable and stream-parseable (the
// same reasoning as the CSV trace format); keys inside "metrics" are sorted
// by name so consecutive lines diff cleanly. A final snapshot is written on
// stop()/destruction, so short-lived processes (benches, examples) always
// leave at least one complete line. The writer never blocks instrumented
// code: it only *reads* relaxed atomics.
#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace wiscape::obs {

/// Writes one snapshot of `reg` to `os` as a single JSON line (no trailing
/// newline flush semantics beyond '\n'). `seq` and `uptime_s` become the
/// line's header fields. Thread-safe w.r.t. metric writers; serialise
/// concurrent calls on the same stream yourself.
void write_snapshot_json(std::ostream& os, const registry& reg,
                         std::uint64_t seq, double uptime_s);

/// Background periodic snapshot writer. Construction opens (appends to) the
/// file and starts the thread; stop() (idempotent, called by the destructor)
/// writes a final snapshot and joins. Throws std::runtime_error if the file
/// cannot be opened.
class snapshot_writer {
 public:
  snapshot_writer(const std::string& path, std::chrono::milliseconds interval,
                  registry& reg = registry::global());
  ~snapshot_writer();

  snapshot_writer(const snapshot_writer&) = delete;
  snapshot_writer& operator=(const snapshot_writer&) = delete;

  /// Stops the thread after writing one last snapshot. Idempotent.
  void stop();

  /// Snapshot lines written so far (including the final one after stop()).
  std::uint64_t snapshots_written() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void write_one();

  registry& reg_;
  std::ofstream out_;
  std::chrono::milliseconds interval_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> seq_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace wiscape::obs

// Process-wide metrics registry: counters, gauges and fixed-bucket latency
// histograms with lock-free hot paths.
//
// Design (DESIGN.md § Observability):
//  * Instruments are owned by a `registry` and live for its lifetime at a
//    stable address (node-based storage), so components look an instrument
//    up ONCE (mutex-protected, cold) and afterwards increment through a
//    plain reference -- the hot path is a single relaxed atomic fetch-add,
//    no locks, no lookups.
//  * `registry::global()` is the process-wide instance every instrumented
//    component uses; tests build private `registry` objects for isolated,
//    deterministic snapshots.
//  * `set_enabled(false)` turns every increment into a relaxed load + a
//    predicted-not-taken branch, giving benches an "uninstrumented" baseline
//    to price the telemetry against (bench_ingest_scaling records both).
//  * `snapshot()` returns name-sorted (name, value) samples; histograms
//    expand Prometheus-style into cumulative `le_*` buckets plus `count`
//    and `sum_s`. Snapshots are wait-free for writers: readers may see a
//    mid-update histogram (count vs sum off by an in-flight record), which
//    is acceptable for telemetry and exact once writers are quiescent.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wiscape::obs {

/// Global instrumentation switch (default on). Relaxed-atomic; flipping it
/// mid-run affects subsequent increments only. Thread-safe.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonic event counter. inc() is one relaxed fetch-add; thread-safe.
class counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, high-water mark). All ops relaxed;
/// thread-safe. record_max() keeps the largest value ever seen (CAS loop).
class gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
  }
  void record_max(std::int64_t v) noexcept {
    if (!enabled()) return;
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram. Buckets are decades from 1 us to 10 s
/// plus an overflow bucket; record() is two relaxed fetch-adds plus a
/// branch-free-ish edge scan over 8 doubles. Thread-safe. Values are
/// seconds; the running sum is kept in integer nanoseconds so concurrent
/// adds stay exact (no floating-point atomics).
class histogram {
 public:
  /// Upper bucket edges in seconds; values above the last edge land in the
  /// +inf overflow bucket.
  static constexpr std::array<double, 8> edges = {1e-6, 1e-5, 1e-4, 1e-3,
                                                  1e-2, 1e-1, 1.0,  10.0};
  static constexpr std::size_t num_buckets = edges.size() + 1;

  /// Records one observation of `seconds` (negative values clamp to 0).
  void record(double seconds) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  /// Sum of recorded values in seconds (nanosecond resolution).
  double sum_s() const noexcept {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Non-cumulative count of bucket `i` (i == num_buckets-1 is overflow).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, num_buckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// One (name, value) pair of a registry snapshot. `integral` marks counter /
/// gauge / bucket-count samples so formatters can print them without a
/// decimal point. `monotone` marks samples that never decrease over the
/// process lifetime (counters, histogram buckets/count/sum) -- gauges move
/// both ways and are excluded -- so consistency checkers (the scenario
/// engine's tick invariants) can assert monotonicity across consecutive
/// snapshots without a hand-maintained name list.
struct metric_sample {
  std::string name;
  double value = 0.0;
  bool integral = true;
  bool monotone = false;
};

/// Named-instrument registry. Lookup/creation takes a mutex (cold path, do
/// it once at component construction); returned references stay valid for
/// the registry's lifetime. All methods are thread-safe.
class registry {
 public:
  registry() = default;
  registry(const registry&) = delete;
  registry& operator=(const registry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. A name identifies one kind of instrument: re-requesting it as a
  /// different kind throws std::invalid_argument.
  counter& get_counter(std::string_view name);
  gauge& get_gauge(std::string_view name);
  histogram& get_histogram(std::string_view name);

  /// All instruments flattened to (name, value) samples, sorted by name.
  /// Histograms expand to `<name>.le_<edge>` cumulative bucket counts (edge
  /// formatted as in histogram::edges, plus `le_inf`), `<name>.count` and
  /// `<name>.sum_s`.
  std::vector<metric_sample> snapshot() const;

  /// The process-wide registry used by all instrumented components.
  static registry& global();

 private:
  enum class kind { counter, gauge, histogram };
  struct entry {
    std::string name;
    kind k;
    std::size_t index;  // into the per-kind deque
  };

  entry& find_or_create(std::string_view name, kind k);

  mutable std::mutex mu_;  // guards the maps below, never held by increments
  std::deque<entry> entries_;
  std::deque<counter> counters_;
  std::deque<gauge> gauges_;
  std::deque<histogram> histograms_;
};

/// Formats one sample value the way STATS and the snapshot writer print it:
/// integral samples without a decimal point, others with %.9g.
std::string format_value(const metric_sample& s);

/// Appends exactly format_value(s) to `out` without a temporary string --
/// the allocation-free flavour for preallocated-buffer encoders (STATS).
void append_value(std::string& out, const metric_sample& s);

}  // namespace wiscape::obs

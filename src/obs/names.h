// Canonical metric names for the observability layer (`obs::`).
//
// Every metric the system registers is named here, in one place, so that
// (a) call sites cannot drift apart on spelling, and (b) tools/check_docs.sh
// can mechanically verify that docs/RUNBOOK.md's metric reference table
// documents every name. Naming convention: `<layer>.<component>.<what>`,
// lower_snake_case, with the unit as a suffix where one applies (`_s` for
// seconds). Per-shard counters are the one dynamic family: they are built
// from `kShardPrefix` as `core.sharded.shard<i>.<what>` and documented as a
// pattern rather than enumerated.
#pragma once

namespace wiscape::obs::names {

// ---- core::report_queue ---------------------------------------------------
/// Records successfully enqueued (push / try_push returned true). [reports]
inline constexpr char kQueueEnqueued[] = "core.report_queue.enqueued";
/// Records handed to consumers by pop_batch. [reports]
inline constexpr char kQueueDequeued[] = "core.report_queue.dequeued";
/// Pushes refused because the queue was closed (or try_push found it
/// full). [reports]
inline constexpr char kQueueRejected[] = "core.report_queue.rejected";
/// push() calls that had to block on a full queue (backpressure events).
inline constexpr char kQueueBlockedProducers[] =
    "core.report_queue.producer_blocked";
/// Highest queue depth ever observed at enqueue time. [reports]
inline constexpr char kQueueHighWater[] = "core.report_queue.depth_high_water";

// ---- core::zone_table -----------------------------------------------------
/// Estimate streams (distinct (zone, network, metric) keys) created.
inline constexpr char kZoneTableStreams[] = "core.zone_table.streams";
/// Epoch rollovers that published a frozen estimate.
inline constexpr char kZoneTableRollovers[] = "core.zone_table.rollovers";
/// O(1) epoch fast-forwards taken over a gap of empty epochs (the fused
/// jump replacing the per-epoch boundary walk).
inline constexpr char kZoneTableGapFastForwards[] =
    "core.zone_table.gap_fast_forwards";

// ---- core::coordinator ----------------------------------------------------
/// Client check-ins processed (any outcome).
inline constexpr char kCoordCheckins[] = "core.coordinator.checkins";
/// Measurement tasks handed out to clients.
inline constexpr char kCoordTasksIssued[] = "core.coordinator.tasks_issued";
/// Check-ins denied because the client's daily byte budget was exhausted.
inline constexpr char kCoordBudgetExhausted[] =
    "core.coordinator.budget_exhausted";
/// Successful measurement reports folded into the zone table. [reports]
inline constexpr char kCoordReportsAccepted[] =
    "core.coordinator.reports_accepted";
/// Reports carrying a failed probe (success=false): counted, not folded.
inline constexpr char kCoordReportsRejected[] =
    "core.coordinator.reports_rejected";
/// >2-sigma change alerts raised by the zone table's epoch rollovers.
inline constexpr char kCoordAlertsRaised[] = "core.coordinator.alerts_raised";

// ---- core::sharded_coordinator --------------------------------------------
/// Reports accepted into the sharded pipeline (enqueued or applied inline).
inline constexpr char kShardedRoutedTotal[] = "core.sharded.reports_routed";
/// Reports dropped because the pipeline was stopped.
inline constexpr char kShardedDropped[] = "core.sharded.reports_dropped";
/// Records whose apply threw inside the pipeline (counted and dropped --
/// a throw escaping a drain worker would terminate the process). Boundary
/// validation keeps this at zero; nonzero means an apply-path bug.
inline constexpr char kShardedApplyErrors[] = "core.sharded.apply_errors";
/// Lock-amortised drain rounds executed by shard workers.
inline constexpr char kShardedDrainBatches[] = "core.sharded.drain_batches";
/// Wall time of one drain batch (lock + apply). [seconds]
inline constexpr char kShardedDrainLatency[] = "core.sharded.drain_latency_s";
/// Per-shard dynamic family: "core.sharded.shard<i>." + {routed, drained}.
inline constexpr char kShardPrefix[] = "core.sharded.shard";
/// Suffix under kShardPrefix: reports routed to shard i. [reports]
inline constexpr char kShardRoutedSuffix[] = "routed";
/// Suffix under kShardPrefix: reports applied by shard i's worker. [reports]
inline constexpr char kShardDrainedSuffix[] = "drained";

// ---- core::estimate_view / estimate_mirror --------------------------------
/// Serving-layer estimate lookups (any outcome).
inline constexpr char kEstimateViewLookups[] = "core.estimate_view.lookups";
/// Lookups answered "no estimate published" (stream unknown or pre-rollover).
inline constexpr char kEstimateViewMisses[] = "core.estimate_view.misses";
/// Seqlock read retries: a lookup raced an epoch publish and re-read. The
/// read path is lock-free; this counts the (bounded, publish-width) spins.
inline constexpr char kEstimateViewSeqlockRetries[] =
    "core.estimate_view.seqlock_retries";
/// Change alerts handed to clients by alerts_since drains.
inline constexpr char kEstimateViewAlertsServed[] =
    "core.estimate_view.alerts_served";
/// Change alerts reported dropped (evicted by ring wraparound before a
/// lagging client drained them).
inline constexpr char kEstimateViewAlertsDropped[] =
    "core.estimate_view.alerts_dropped";

// ---- proto::coordinator_server --------------------------------------------
/// Request lines handled (any outcome, STATS included).
inline constexpr char kServerLines[] = "proto.server.lines";
/// CHECKIN lines answered with TASK or IDLE.
inline constexpr char kServerCheckins[] = "proto.server.checkins";
/// REPORT lines answered with ACK.
inline constexpr char kServerReports[] = "proto.server.reports";
/// STATS lines answered with a metrics dump.
inline constexpr char kServerStats[] = "proto.server.stats_requests";
/// ERR replies: request line failed to decode.
inline constexpr char kServerErrParse[] = "proto.server.err_parse";
/// ERR replies: syntactically valid line of an unsupported type.
inline constexpr char kServerErrUnsupported[] = "proto.server.err_unsupported";
/// ERR replies: REPORT refused because the ingestion pipeline was stopped.
inline constexpr char kServerErrStopped[] = "proto.server.err_stopped";
/// ERR replies: an unexpected std::exception escaped request handling
/// (defense in depth -- the line protocol promises a reply per request).
inline constexpr char kServerErrInternal[] = "proto.server.err_internal";
/// Wall time to answer one CHECKIN (decode + shard lock + encode). [seconds]
inline constexpr char kServerCheckinLatency[] =
    "proto.server.checkin_latency_s";
/// Wall time to answer one REPORT (decode + enqueue/apply). [seconds]
inline constexpr char kServerReportLatency[] = "proto.server.report_latency_s";
/// REPORTB frames answered with ACK (records inside count into
/// proto.server.reports).
inline constexpr char kServerReportBatches[] = "proto.server.report_batches";
/// Wall time to answer one REPORTB frame (decode all + batch enqueue).
/// [seconds]
inline constexpr char kServerBatchLatency[] =
    "proto.server.report_batch_latency_s";
/// QUERY lines answered with EST or NONE.
inline constexpr char kServerQueries[] = "proto.server.queries";
/// QUERYB frames answered with an ESTB frame (lookups inside count into
/// proto.server.queries).
inline constexpr char kServerQueryBatches[] = "proto.server.query_batches";
/// ALERTS requests answered with an alert frame.
inline constexpr char kServerAlertsRequests[] = "proto.server.alerts_requests";
/// HELLO lines answered with a negotiated version.
inline constexpr char kServerHellos[] = "proto.server.hellos";
/// ERR replies: HELLO version below the supported minimum.
inline constexpr char kServerErrVersion[] = "proto.server.err_version";
/// Wall time to answer one QUERY (decode + mirror read + encode). [seconds]
inline constexpr char kServerQueryLatency[] = "proto.server.query_latency_s";
/// Wall time to answer one QUERYB frame (decode all + lookups + encode).
/// [seconds]
inline constexpr char kServerQueryBatchLatency[] =
    "proto.server.query_batch_latency_s";
/// Wall time to answer one ALERTS request (ring drain + encode). [seconds]
inline constexpr char kServerAlertsLatency[] = "proto.server.alerts_latency_s";
/// Requests refused by an injected fault (scenario engine's server_handle
/// seam). Zero outside scenario runs; each refusal also counts into
/// proto.server.err_internal (the reply is "ERR internal").
inline constexpr char kServerFaultsInjected[] = "proto.server.faults_injected";
/// ERR replies: request shed by the TCP front end's backpressure policy
/// before dispatch (the line handler itself never sheds).
inline constexpr char kServerErrOverload[] = "proto.server.err_overload";
/// Reply payload bytes rendered by the line handler (newline separators in
/// grouped replies excluded, so transports agree on the total). [bytes]
inline constexpr char kServerReplyBytes[] = "proto.server.reply_bytes";
/// Binary v3 frames handled (any opcode, any outcome; the frame's command
/// also counts into its per-command counter above). [frames]
inline constexpr char kServerBinaryFrames[] = "proto.server.binary_frames";

// ---- net::tcp_server ------------------------------------------------------
/// Connections accepted (sessions created). [connections]
inline constexpr char kNetAccepts[] = "net.server.accepts";
/// Accepted connections closed immediately by an injected accept_fail fault
/// (scenario engine). Zero outside scenario runs. [connections]
inline constexpr char kNetAcceptFaults[] = "net.server.accept_faults";
/// Currently open sessions, across all event loops. [gauge, sessions]
inline constexpr char kNetActiveSessions[] = "net.server.active_sessions";
/// Sessions closed for any reason (peer EOF, error, timeout, policy).
/// [sessions]
inline constexpr char kNetCloses[] = "net.server.closes";
/// Sessions closed because no complete request arrived within the idle
/// timeout. [sessions]
inline constexpr char kNetIdleTimeouts[] = "net.server.idle_timeouts";
/// Sessions disconnected because a request exceeded the read-buffer cap
/// without completing (oversized line or frame). [sessions]
inline constexpr char kNetOversizeDisconnects[] =
    "net.server.oversize_disconnects";
/// Sessions disconnected because replies overflowed the write-buffer cap
/// (the peer reads slower than it asks). [sessions]
inline constexpr char kNetSlowReaderDisconnects[] =
    "net.server.slow_reader_disconnects";
/// Sessions disconnected for sending a command before HELLO while the
/// server requires negotiation-first. [sessions]
inline constexpr char kNetHelloViolations[] = "net.server.hello_violations";
/// Connections refused at accept because max_sessions was reached.
/// [connections]
inline constexpr char kNetCapacityRejects[] = "net.server.capacity_rejects";
/// QUERY/QUERYB/ALERTS requests answered "ERR overload" by the shed policy
/// instead of being dispatched. [requests]
inline constexpr char kNetShedQueries[] = "net.server.shed_queries";
/// REPORT/REPORTB requests answered "ERR overload" by the shed policy
/// instead of being dispatched. [requests]
inline constexpr char kNetShedReports[] = "net.server.shed_reports";
/// Bytes read off client sockets. [bytes]
inline constexpr char kNetBytesIn[] = "net.server.bytes_in";
/// Bytes written to client sockets. [bytes]
inline constexpr char kNetBytesOut[] = "net.server.bytes_out";
/// Wall time from a complete request in the read buffer to its reply being
/// queued for write (dispatch latency as the session sees it). [seconds]
inline constexpr char kNetReadLatency[] = "net.server.read_latency_s";
/// Wall time one flush spends in writev/send for a session (kernel
/// send-buffer pressure as the session sees it). [seconds]
inline constexpr char kNetWriteLatency[] = "net.server.write_latency_s";
/// writev/sendmsg syscalls issued by session flushes. Compare against
/// net.server.bytes_out and proto.server.reply_bytes to judge coalescing:
/// fewer calls per reply means the wake-batched flush is working. [calls]
inline constexpr char kNetWritevCalls[] = "net.server.writev_calls";
/// Replies coalesced into one session flush, recorded scaled by 1e-3 so the
/// shared latency-style histogram edges read as reply counts: the 0.001
/// bucket is 1 reply/flush, 0.01 is 10, 0.1 is 100, 1.0 is 1000. [replies,
/// x1e-3]
inline constexpr char kNetRepliesPerFlush[] = "net.server.replies_per_flush";

// ---- core::durable_log (WAL/snapshot pair, ISSUE 10) ----------------------
/// Epoch records appended to the write-ahead log. [records]
inline constexpr char kPersistWalAppends[] = "core.persist.wal_appends";
/// WAL appends refused by an injected wal_append fault (full disk model);
/// the record is not written. Zero outside scenario runs. [records]
inline constexpr char kPersistWalAppendFailures[] =
    "core.persist.wal_append_failures";
/// Torn or corrupt WAL tails detected during replay: recovery stopped at
/// the last complete, checksum-valid record. [tails]
inline constexpr char kPersistWalTruncated[] = "core.persist.wal_truncated";
/// Epoch records replayed from the WAL into a coordinator. [records]
inline constexpr char kPersistWalReplayed[] = "core.persist.wal_replayed";
/// Snapshot checkpoints completed (written to the temp file and renamed
/// into place; the WAL is reset afterwards). [snapshots]
inline constexpr char kPersistSnapshots[] = "core.persist.snapshots";
/// Snapshot checkpoints that failed before the rename (injected
/// snapshot_torn fault or I/O error); the previous snapshot survives.
/// [snapshots]
inline constexpr char kPersistSnapshotFailures[] =
    "core.persist.snapshot_failures";

// ---- repl (epoch-stream replication, ISSUE 10) ----------------------------
/// Epoch rollovers captured into the leader's replication log. [records]
inline constexpr char kReplEpochsLogged[] = "repl.epochs_logged";
/// Log entries evicted by the bounded replication ring before any follower
/// pulled them; a joiner below the log base needs a snapshot. [records]
inline constexpr char kReplLogEvicted[] = "repl.log_evicted";
/// EPOCH pull requests served by this node. [requests]
inline constexpr char kReplPulls[] = "repl.pulls";
/// Epoch records shipped in EPOCHB replies to pulls. [records]
inline constexpr char kReplPullRecords[] = "repl.pull_records";
/// SNAPSHOT_CHUNK replies served to catching-up joiners. [chunks]
inline constexpr char kReplSnapshotChunks[] = "repl.snapshot_chunks";
/// PROMOTE requests honoured: this node became the leader. [promotions]
inline constexpr char kReplPromotions[] = "repl.promotions";
/// Epoch records applied by a follower (fresh appends via the zone_table
/// fast-forward path). [records]
inline constexpr char kReplEpochsApplied[] = "repl.epochs_applied";
/// Epoch records merged into an existing (zone, network, epoch) entry --
/// feeds from disjoint client populations converging. [records]
inline constexpr char kReplEpochsMerged[] = "repl.epochs_merged";
/// Replicated records skipped as already applied (sequence number at or
/// below the follower's high-water mark). [records]
inline constexpr char kReplDuplicates[] = "repl.duplicates";
/// Replication rounds skipped by an injected replica_lag fault. Zero
/// outside scenario runs. [rounds]
inline constexpr char kReplLagSkips[] = "repl.lag_skips";

}  // namespace wiscape::obs::names

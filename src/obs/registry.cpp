#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wiscape::obs {

namespace {
std::atomic<bool> g_enabled{true};

std::string edge_label(std::size_t i) {
  if (i >= histogram::edges.size()) return "le_inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "le_%g", histogram::edges[i]);
  return buf;
}
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void histogram::record(double seconds) noexcept {
  if (!enabled()) return;
  if (seconds < 0.0) seconds = 0.0;
  std::size_t i = 0;
  while (i < edges.size() && seconds > edges[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                    std::memory_order_relaxed);
}

registry::entry& registry::find_or_create(std::string_view name, kind k) {
  std::lock_guard lock(mu_);
  for (auto& e : entries_) {
    if (e.name == name) {
      if (e.k != k) {
        throw std::invalid_argument("obs metric '" + std::string(name) +
                                    "' already registered as another kind");
      }
      return e;
    }
  }
  std::size_t index = 0;
  switch (k) {
    case kind::counter:
      index = counters_.size();
      counters_.emplace_back();
      break;
    case kind::gauge:
      index = gauges_.size();
      gauges_.emplace_back();
      break;
    case kind::histogram:
      index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  entries_.push_back(entry{std::string(name), k, index});
  return entries_.back();
}

counter& registry::get_counter(std::string_view name) {
  return counters_[find_or_create(name, kind::counter).index];
}

gauge& registry::get_gauge(std::string_view name) {
  return gauges_[find_or_create(name, kind::gauge).index];
}

histogram& registry::get_histogram(std::string_view name) {
  return histograms_[find_or_create(name, kind::histogram).index];
}

std::vector<metric_sample> registry::snapshot() const {
  std::vector<metric_sample> out;
  {
    std::lock_guard lock(mu_);
    for (const auto& e : entries_) {
      switch (e.k) {
        case kind::counter:
          out.push_back({e.name,
                         static_cast<double>(counters_[e.index].value()), true,
                         true});
          break;
        case kind::gauge:
          // Gauges move both ways (queue depth); not monotone.
          out.push_back({e.name, static_cast<double>(gauges_[e.index].value()),
                         true, false});
          break;
        case kind::histogram: {
          // Cumulative buckets, count and sum are all append-only.
          const histogram& h = histograms_[e.index];
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < histogram::num_buckets; ++i) {
            cumulative += h.bucket(i);
            out.push_back({e.name + "." + edge_label(i),
                           static_cast<double>(cumulative), true, true});
          }
          out.push_back(
              {e.name + ".count", static_cast<double>(h.count()), true, true});
          out.push_back({e.name + ".sum_s", h.sum_s(), false, true});
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const metric_sample& a, const metric_sample& b) {
              return a.name < b.name;
            });
  return out;
}

registry& registry::global() {
  static registry g;
  return g;
}

void append_value(std::string& out, const metric_sample& s) {
  char buf[64];
  int n;
  if (s.integral && std::abs(s.value) < 9.007199254740992e15) {
    n = std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(std::llround(s.value)));
  } else {
    n = std::snprintf(buf, sizeof buf, "%.9g", s.value);
  }
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

std::string format_value(const metric_sample& s) {
  std::string out;
  append_value(out, s);
  return out;
}

}  // namespace wiscape::obs

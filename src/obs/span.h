// RAII tracing spans: time a critical section into a latency histogram.
//
// A `span` stamps steady_clock at construction and records the elapsed
// seconds into its histogram at destruction, so instrumenting a scope is
// one line and early returns / exceptions are covered for free:
//
//   void coordinator_server::handle(...) {
//     obs::span timed(metrics().report_latency);
//     ... // every exit path records
//   }
//
// Cost model: two steady_clock reads plus the histogram's two relaxed
// fetch-adds per scope -- cheap enough for per-request use, not for
// per-sample inner loops. When obs::set_enabled(false), construction skips
// the clock read entirely and destruction is a null check. Spans are
// thread-compatible (confine one span to one thread; the histogram it
// records into is thread-safe). Under the sharded drain workers each worker
// opens its own span per batch, so concurrent batches time independently
// and the shared histogram merges them without locks.
#pragma once

#include <chrono>

#include "obs/registry.h"

namespace wiscape::obs {

/// Times its own lifetime into a histogram (seconds). Move/copy are
/// disabled: a span is bound to one scope on one thread.
class span {
 public:
  explicit span(histogram& h) noexcept : h_(enabled() ? &h : nullptr) {
    if (h_ != nullptr) t0_ = std::chrono::steady_clock::now();
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;
  ~span() {
    if (h_ != nullptr) {
      h_->record(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0_)
                     .count());
    }
  }

  /// Seconds elapsed since construction (0 when spans are disabled).
  double elapsed_s() const noexcept {
    if (h_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }

 private:
  histogram* h_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace wiscape::obs

#include "obs/snapshot_writer.h"

#include <stdexcept>

namespace wiscape::obs {

void write_snapshot_json(std::ostream& os, const registry& reg,
                         std::uint64_t seq, double uptime_s) {
  const auto samples = reg.snapshot();
  os << "{\"seq\":" << seq << ",\"uptime_s\":";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", uptime_s);
  os << buf << ",\"metrics\":{";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) os << ',';
    first = false;
    os << '"' << s.name << "\":" << format_value(s);
  }
  os << "}}\n";
}

snapshot_writer::snapshot_writer(const std::string& path,
                                 std::chrono::milliseconds interval,
                                 registry& reg)
    : reg_(reg),
      out_(path, std::ios::app),
      interval_(interval),
      start_(std::chrono::steady_clock::now()) {
  if (!out_) {
    throw std::runtime_error("snapshot_writer: cannot open '" + path + "'");
  }
  thread_ = std::thread([this] { run(); });
}

snapshot_writer::~snapshot_writer() { stop(); }

void snapshot_writer::run() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) return;
    write_one();
  }
}

void snapshot_writer::write_one() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  write_snapshot_json(out_, reg_, seq_.fetch_add(1, std::memory_order_relaxed),
                      uptime);
  out_.flush();
}

void snapshot_writer::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  if (!stopped_) {
    write_one();  // final snapshot: short-lived runs still record something
    stopped_ = true;
  }
}

}  // namespace wiscape::obs

#include "repl/epoch_log.h"

#include <algorithm>
#include <exception>

#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::repl {

namespace {
struct log_metrics {
  obs::counter& logged;
  obs::counter& evicted;
  obs::counter& pulls;
  obs::counter& pull_records;
};

log_metrics& metrics() {
  auto& reg = obs::registry::global();
  static log_metrics m{reg.get_counter(obs::names::kReplEpochsLogged),
                       reg.get_counter(obs::names::kReplLogEvicted),
                       reg.get_counter(obs::names::kReplPulls),
                       reg.get_counter(obs::names::kReplPullRecords)};
  return m;
}
}  // namespace

epoch_log::epoch_log(std::size_t capacity, core::durable_log* wal)
    : cap_(std::max<std::size_t>(capacity, 1)), wal_(wal) {}

void epoch_log::on_epoch(const core::estimate_key& key,
                         const core::epoch_estimate& e) {
  proto::epoch_update u;
  u.zone = key.zone;
  u.network = key.network;
  u.metric = key.metric;
  u.epoch_start_s = e.epoch_start_s;
  u.mean = e.mean;
  u.stddev = e.stddev;
  u.samples = e.samples;
  std::lock_guard lock(mu_);
  u.seq = next_seq_++;
  if (wal_ != nullptr) {
    // Durability is best-effort from the tap: the failure (including the
    // wal_append fault site) is already counted by the WAL layer, and a
    // rollover must never throw back into the ingest path.
    try {
      wal_->append(u.seq, key, e);
    } catch (const std::exception&) {
    }
  }
  ring_.push_back(std::move(u));
  metrics().logged.inc();
  if (ring_.size() > cap_) {
    ring_.pop_front();
    metrics().evicted.inc();
  }
}

bool epoch_log::pull(std::uint64_t since_seq, std::uint32_t max,
                     std::vector<proto::epoch_update>& out) const {
  std::lock_guard lock(mu_);
  metrics().pulls.inc();
  const std::uint64_t base = ring_.empty() ? next_seq_ : ring_.front().seq;
  // Everything the puller needs (seq > since_seq) must still be retained:
  // a cursor below base-1 means evicted records would be skipped silently.
  if (since_seq + 1 < base) return false;
  std::size_t added = 0;
  // The ring is seq-ordered and dense; index straight to the first record
  // past the cursor instead of scanning.
  const std::uint64_t first =
      since_seq + 1 >= base ? since_seq + 1 - base : 0;
  for (std::size_t i = first; i < ring_.size() && added < max; ++i, ++added) {
    out.push_back(ring_[i]);
  }
  metrics().pull_records.inc(added);
  return true;
}

void epoch_log::reset(std::uint64_t next_seq) {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_seq_ = std::max<std::uint64_t>(next_seq, 1);
}

std::uint64_t epoch_log::last_seq() const {
  std::lock_guard lock(mu_);
  return next_seq_ - 1;
}

std::uint64_t epoch_log::base_seq() const {
  std::lock_guard lock(mu_);
  return ring_.empty() ? next_seq_ : ring_.front().seq;
}

}  // namespace wiscape::repl

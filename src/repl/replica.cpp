#include "repl/replica.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/fault_injection.h"
#include "core/persist.h"
#include "obs/names.h"
#include "obs/registry.h"
#include "proto/wire_v3.h"

namespace wiscape::repl {

namespace v3 = proto::v3;

namespace {
struct repl_metrics {
  obs::counter& snapshot_chunks;
  obs::counter& promotions;
  obs::counter& applied;
  obs::counter& merged;
  obs::counter& duplicates;
  obs::counter& lag_skips;
};

repl_metrics& metrics() {
  auto& reg = obs::registry::global();
  static repl_metrics m{reg.get_counter(obs::names::kReplSnapshotChunks),
                        reg.get_counter(obs::names::kReplPromotions),
                        reg.get_counter(obs::names::kReplEpochsApplied),
                        reg.get_counter(obs::names::kReplEpochsMerged),
                        reg.get_counter(obs::names::kReplDuplicates),
                        reg.get_counter(obs::names::kReplLagSkips)};
  return m;
}

/// Captures the catch-up snapshot: "REPLSEQ <seq>\n" + the persist state
/// rendering. `seq` is read *before* the state walk -- every record at or
/// below it rolled over before the walk started, so it is covered by the
/// snapshot; records that land mid-walk may appear in both the snapshot
/// and the pull that follows, which the idempotent re-apply absorbs.
void capture_snapshot(const core::sharded_coordinator& coord,
                      std::uint64_t seq, std::string& cache) {
  std::ostringstream os;
  os << "REPLSEQ " << seq << "\n";
  core::save_state(os, coord);
  cache = os.str();
}

/// Serves one bounded slice of the captured snapshot.
bool serve_chunk(const std::string& cache, std::uint64_t offset,
                 std::string& data, std::uint64_t& total, bool& last) {
  total = cache.size();
  if (offset > total) return false;
  const std::size_t len = std::min<std::uint64_t>(
      v3::max_snapshot_chunk, total - offset);
  data.assign(cache, static_cast<std::size_t>(offset), len);
  last = offset + len == total;
  metrics().snapshot_chunks.inc();
  return true;
}
}  // namespace

leader::leader(core::sharded_coordinator& coord, std::size_t log_capacity,
               core::durable_log* wal)
    : coord_(&coord), log_(log_capacity, wal) {
  coord_->set_epoch_tap(&log_);
}

leader::~leader() { coord_->set_epoch_tap(nullptr); }

bool leader::pull(std::uint64_t since_seq, std::uint32_t max_records,
                  std::vector<proto::epoch_update>& out) {
  return log_.pull(since_seq, max_records, out);
}

bool leader::snapshot(std::uint64_t offset, std::string& data,
                      std::uint64_t& total, bool& last) {
  std::lock_guard lock(snap_mu_);
  if (offset == 0) capture_snapshot(*coord_, log_.last_seq(), snap_cache_);
  return serve_chunk(snap_cache_, offset, data, total, last);
}

std::uint64_t leader::apply(std::span<const proto::epoch_update> updates) {
  (void)updates;
  return 0;
}

follower::follower(core::sharded_coordinator& coord, std::size_t log_capacity,
                   core::durable_log* wal)
    : coord_(&coord), log_(log_capacity, wal) {}

follower::~follower() {
  if (promoted_.load(std::memory_order_acquire)) {
    coord_->set_epoch_tap(nullptr);
  }
}

bool follower::pull(std::uint64_t since_seq, std::uint32_t max_records,
                    std::vector<proto::epoch_update>& out) {
  return log_.pull(since_seq, max_records, out);
}

bool follower::snapshot(std::uint64_t offset, std::string& data,
                        std::uint64_t& total, bool& last) {
  std::lock_guard lock(apply_mu_);
  if (offset == 0) {
    capture_snapshot(
        *coord_,
        std::max(applied_seq_.load(std::memory_order_acquire), log_.last_seq()),
        snap_cache_);
  }
  return serve_chunk(snap_cache_, offset, data, total, last);
}

std::uint64_t follower::apply(std::span<const proto::epoch_update> updates) {
  std::lock_guard lock(apply_mu_);
  auto& m = metrics();
  std::uint64_t applied = 0;
  std::uint64_t cursor = applied_seq_.load(std::memory_order_relaxed);
  for (const auto& u : updates) {
    // The cursor is the dedup key: a retried or replayed batch re-sends
    // records the replica has already applied, and applying a frozen
    // epoch twice would double-count its samples.
    if (u.seq != 0 && u.seq <= cursor) {
      m.duplicates.inc();
      continue;
    }
    core::estimate_key key;
    key.zone = u.zone;
    key.network = u.network;
    key.metric = u.metric;
    core::epoch_estimate est;
    est.epoch_start_s = u.epoch_start_s;
    est.mean = u.mean;
    est.stddev = u.stddev;
    est.samples = static_cast<std::size_t>(u.samples);
    const bool was_merge = coord_->apply_epoch(key, est);
    m.applied.inc();
    if (was_merge) m.merged.inc();
    ++applied;
    if (u.seq > cursor) cursor = u.seq;
  }
  applied_seq_.store(cursor, std::memory_order_release);
  return applied;
}

bool follower::promote() {
  std::lock_guard lock(apply_mu_);
  if (promoted_.load(std::memory_order_relaxed)) return false;
  // Continue the leader's sequencing: a peer whose pull cursor is the old
  // leader's seq N keeps pulling from N here without a gap or an overlap.
  log_.reset(applied_seq_.load(std::memory_order_relaxed) + 1);
  coord_->set_epoch_tap(&log_);
  promoted_.store(true, std::memory_order_release);
  metrics().promotions.inc();
  return true;
}

std::optional<std::uint64_t> follower::poll(const transport& send) {
  // The scenario's stalled-replica-link model: skip this round entirely;
  // the next poll's cursor pulls everything missed (staleness grows,
  // nothing is lost).
  if (core::fault::fire(core::fault::site::replica_lag) ==
      core::fault::action::fail) {
    metrics().lag_skips.inc();
    return 0;
  }
  std::uint64_t applied = 0;
  for (;;) {
    v3::epoch_pull p;
    p.since_seq = applied_seq();
    p.max_records = static_cast<std::uint32_t>(v3::max_epoch_batch);
    const std::string reply = send(v3::encode_epoch_pull_frame(p));
    const auto hdr = v3::peek_header(reply);
    if (!hdr) {
      throw std::runtime_error("replication pull: malformed reply frame");
    }
    if (hdr->op == v3::opcode::err) {
      const auto err = v3::decode_error_frame(reply);
      if (err.code == proto::err_code::stopped) return std::nullopt;
      throw std::runtime_error("replication pull failed: " + err.detail);
    }
    const auto updates = v3::decode_epoch_batch_frame(reply);
    applied += apply(updates);
    // A short batch means the stream is drained through the leader's
    // current tail; a full one may have more behind it.
    if (updates.size() < v3::max_epoch_batch) return applied;
  }
}

void follower::catch_up(const transport& send) {
  std::string snap;
  std::uint64_t offset = 0;
  for (;;) {
    const std::string reply = send(v3::encode_snapshot_req_frame(offset));
    const auto hdr = v3::peek_header(reply);
    if (!hdr) {
      throw std::runtime_error("replication catch-up: malformed reply frame");
    }
    if (hdr->op == v3::opcode::err) {
      const auto err = v3::decode_error_frame(reply);
      throw std::runtime_error("replication catch-up failed: " + err.detail);
    }
    const auto chunk = v3::decode_snapshot_chunk_frame(reply);
    if (chunk.offset != offset) {
      throw std::runtime_error("replication catch-up: offset mismatch");
    }
    snap.append(chunk.data);
    offset += chunk.data.size();
    if (chunk.last) break;
    if (chunk.data.empty()) {
      throw std::runtime_error("replication catch-up: empty non-final chunk");
    }
  }
  const std::size_t nl = snap.find('\n');
  if (nl == std::string::npos || snap.compare(0, 8, "REPLSEQ ") != 0) {
    throw std::runtime_error("replication catch-up: missing REPLSEQ header");
  }
  const std::uint64_t seq = std::stoull(snap.substr(8, nl - 8));
  std::istringstream is(snap.substr(nl + 1));
  std::lock_guard lock(apply_mu_);
  core::load_state(is, *coord_);
  applied_seq_.store(seq, std::memory_order_release);
}

}  // namespace wiscape::repl

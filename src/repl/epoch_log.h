// The leader-side replication log: a bounded in-memory ring of frozen
// epochs, fed by core::zone_table's epoch tap (ISSUE 10).
//
// Every rollover on the serving coordinator lands here as one
// proto::epoch_update with a monotonically increasing sequence number --
// the unit of replication and the follower's dedup cursor. Followers pull
// suffixes of this log (EPOCH -> EPOCHB over wire v3); a follower whose
// cursor has fallen below the ring's retained base is told to snapshot
// catch-up instead (pull() returns false).
//
// Optionally tees every record into a core::durable_log WAL, so the
// replication stream and crash recovery share one record stream: what a
// follower replays over the wire is exactly what recovery replays from
// disk. Thread-safe: the tap fires from sharded drain workers while
// pulls arrive from transport threads.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "core/durable_log.h"
#include "core/zone_table.h"
#include "proto/messages.h"

namespace wiscape::repl {

/// Default retained-record capacity: enough for a follower that polls
/// every scenario tick to never fall off the log under the fleet storms.
inline constexpr std::size_t default_log_capacity = 65536;

class epoch_log : public core::epoch_tap {
 public:
  /// `wal` (borrowed, may be null) receives every logged record as a
  /// durable append; it must outlive the log.
  explicit epoch_log(std::size_t capacity = default_log_capacity,
                     core::durable_log* wal = nullptr);

  /// The tap: assigns the next sequence number, retains the record
  /// (evicting the oldest past capacity, counted in repl.log_evicted),
  /// and tees it into the WAL when one is attached. A WAL append failure
  /// (including the wal_append fault) is counted and swallowed -- the
  /// in-memory log stays authoritative for replication; durability
  /// degrades, ingest does not.
  void on_epoch(const core::estimate_key& key,
                const core::epoch_estimate& e) override;

  /// Appends up to `max` records with seq > since_seq, in sequence order.
  /// Returns false when since_seq is below the retained base (records the
  /// puller needs were evicted): the puller must snapshot catch-up.
  bool pull(std::uint64_t since_seq, std::uint32_t max,
            std::vector<proto::epoch_update>& out) const;

  /// Restarts sequencing at `next_seq`, dropping retained records. Used
  /// after recovery (continue after the highest WAL seq) and on follower
  /// promotion (continue after the applied cursor, so a peer's pull
  /// cursor stays valid across the failover).
  void reset(std::uint64_t next_seq);

  /// Highest sequence assigned (0 = none yet).
  std::uint64_t last_seq() const;
  /// Lowest sequence still retained (next_seq when empty: pulls from
  /// base-1 or later succeed with an empty batch).
  std::uint64_t base_seq() const;

 private:
  mutable std::mutex mu_;
  std::deque<proto::epoch_update> ring_;
  std::uint64_t next_seq_ = 1;
  std::size_t cap_;
  core::durable_log* wal_;
};

}  // namespace wiscape::repl

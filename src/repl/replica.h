// Replicated-coordinator roles: the leader that streams epoch rollovers
// and the follower that applies them and can take over (ISSUE 10).
//
// Both roles implement proto::replication_endpoint, so a
// coordinator_server with one attached serves the v3 replication opcodes
// (EPOCH/EPOCHB/SNAPSHOT_REQ/PROMOTE) with no repl-specific wire code --
// the server owns all encode/decode, the roles exchange typed records.
//
//  * leader -- wires an epoch_log into the serving sharded coordinator's
//    epoch tap; every rollover becomes one sequenced epoch_update that
//    followers pull. Serves snapshot catch-up for joiners: offset 0
//    captures "REPLSEQ <seq>\n" + the core::persist state rendering, so
//    the joiner knows exactly which log suffix the snapshot covers.
//  * follower -- applies pulled batches through the coordinator's
//    zone_table fast-forward path (restore semantics: no alerts, no
//    ingest counters), deduplicating by sequence cursor, so leader and
//    follower state are bit-equal after catch-up. apply() also accepts
//    feeds from disjoint client populations: per-(zone, network, epoch)
//    estimates merge commutatively (core::zone_table::merge_estimate).
//    promote() flips the role: the follower's own epoch_log takes over
//    the tap, sequencing continues from the applied cursor, and peers'
//    pull cursors stay valid across the failover.
//
// The pull/catch-up client half (poll(), catch_up()) drives any
// request->reply transport that ships complete v3 frames -- the TCP
// line_client, an in-process server, a test lambda.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/durable_log.h"
#include "core/sharded_coordinator.h"
#include "proto/server.h"
#include "repl/epoch_log.h"

namespace wiscape::repl {

/// Delivers one complete v3 request frame and returns the complete reply
/// frame (the shape line_client::request_frame and an in-process
/// coordinator_server::handle both satisfy).
using transport = std::function<std::string(std::string_view)>;

/// The serving side of the replication stream. Borrows the coordinator
/// (and the optional WAL); both must outlive the leader. Construction
/// attaches the epoch tap -- rollovers stream from that point on.
class leader : public proto::replication_endpoint {
 public:
  explicit leader(core::sharded_coordinator& coord,
                  std::size_t log_capacity = default_log_capacity,
                  core::durable_log* wal = nullptr);
  /// Detaches the tap, so rollovers after destruction touch no freed log.
  ~leader() override;

  leader(const leader&) = delete;
  leader& operator=(const leader&) = delete;

  /// The replication log (e.g. to reset() sequencing after WAL recovery).
  epoch_log& log() noexcept { return log_; }

  bool pull(std::uint64_t since_seq, std::uint32_t max_records,
            std::vector<proto::epoch_update>& out) override;
  /// Offset 0 captures a fresh snapshot (quiesced capture is consistent;
  /// under live ingest the seq fence plus idempotent re-apply keeps the
  /// overlap with subsequent pulls harmless); later offsets read the
  /// captured bytes.
  bool snapshot(std::uint64_t offset, std::string& data, std::uint64_t& total,
                bool& last) override;
  /// A leader never applies a replicated batch; answers 0 applied.
  std::uint64_t apply(std::span<const proto::epoch_update> updates) override;
  /// Already the leader: promotion is refused.
  bool promote() override { return false; }

 private:
  core::sharded_coordinator* coord_;
  epoch_log log_;
  std::mutex snap_mu_;      // guards the catch-up snapshot capture
  std::string snap_cache_;  // "REPLSEQ <n>\n" + persist state rendering
};

/// The applying side. Borrows the (initially empty, non-ingesting)
/// coordinator it mirrors the leader's state into; after promote() the
/// same coordinator starts ingesting as the new leader. Thread-safe: the
/// server may dispatch apply()/promote() from many transport threads.
class follower : public proto::replication_endpoint {
 public:
  explicit follower(core::sharded_coordinator& coord,
                    std::size_t log_capacity = default_log_capacity,
                    core::durable_log* wal = nullptr);
  ~follower() override;

  follower(const follower&) = delete;
  follower& operator=(const follower&) = delete;

  /// Serves a peer's pull from this replica's own log -- empty before
  /// promotion (applied records are not re-logged), live after it.
  bool pull(std::uint64_t since_seq, std::uint32_t max_records,
            std::vector<proto::epoch_update>& out) override;
  bool snapshot(std::uint64_t offset, std::string& data, std::uint64_t& total,
                bool& last) override;
  /// Applies one replicated batch in order: records at or below the
  /// cursor are duplicates (counted, skipped); fresh ones fast-forward
  /// the zone table (repl.epochs_applied; same-epoch merges of disjoint
  /// feeds additionally count repl.epochs_merged). Returns applied count.
  std::uint64_t apply(std::span<const proto::epoch_update> updates) override;
  /// Takes over: wires this replica's epoch_log into the coordinator's
  /// tap and continues sequencing from the applied cursor. Idempotent
  /// calls after the first are refused (false), matching the leader.
  bool promote() override;

  /// Last applied log sequence (the pull cursor).
  std::uint64_t applied_seq() const noexcept {
    return applied_seq_.load(std::memory_order_acquire);
  }
  bool promoted() const noexcept {
    return promoted_.load(std::memory_order_acquire);
  }

  /// One pull round against the leader: EPOCH frames until a short batch
  /// drains the stream, applying each reply. Returns records applied;
  /// nullopt when the leader's log no longer reaches the cursor (ERR
  /// stopped -- run catch_up()). The replica_lag fault site skips the
  /// round entirely (repl.lag_skips), modelling a stalled replica link.
  /// Throws std::runtime_error on any other ERR or a malformed reply.
  std::optional<std::uint64_t> poll(const transport& send);

  /// Full snapshot catch-up: streams SNAPSHOT_REQ/SNAPSHOT_CHUNK, loads
  /// the state into the coordinator, and advances the cursor to the
  /// snapshot's covering sequence. Valid on a fresh follower only (the
  /// persist loader restores, it does not merge).
  void catch_up(const transport& send);

 private:
  core::sharded_coordinator* coord_;
  epoch_log log_;
  std::mutex apply_mu_;     // orders apply()/promote() across server threads
  std::string snap_cache_;  // catch-up snapshot capture (post-promotion)
  std::atomic<std::uint64_t> applied_seq_{0};
  std::atomic<bool> promoted_{false};
};

}  // namespace wiscape::repl

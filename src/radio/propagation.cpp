#include "radio/propagation.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wiscape::radio {

double pathloss_model::loss_db(double dist_m) const noexcept {
  const double d = std::max(dist_m, d0_m);
  return pl0_db + 10.0 * exponent * std::log10(d / d0_m);
}

shadowing_field::shadowing_field(stats::rng_stream rng, double sigma_db,
                                 double corr_m, int components)
    : sigma_db_(sigma_db), corr_m_(corr_m) {
  if (!(sigma_db >= 0.0) || !(corr_m > 0.0) || components < 1) {
    throw std::invalid_argument(
        "shadowing_field requires sigma>=0, corr>0, components>=1");
  }
  waves_.reserve(static_cast<std::size_t>(components));
  // Spectral method: wave numbers drawn so the field's autocorrelation decays
  // on the scale of corr_m. Rayleigh-distributed |k| with mode ~ 1/corr_m
  // gives an approximately exponential-looking correlogram, which is the
  // Gudmundson shape used for cellular shadowing.
  for (int i = 0; i < components; ++i) {
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double r = std::sqrt(-2.0 * std::log(1.0 - rng.uniform()));
    const double k = r / corr_m;
    waves_.push_back({k * std::cos(theta), k * std::sin(theta),
                      rng.uniform(0.0, 2.0 * std::numbers::pi)});
  }
  amplitude_ = sigma_db * std::sqrt(2.0 / static_cast<double>(components));
}

double shadowing_field::at(const geo::xy& p) const noexcept {
  double sum = 0.0;
  for (const auto& w : waves_) {
    sum += std::cos(w.kx * p.x_m + w.ky * p.y_m + w.phase);
  }
  return amplitude_ * sum;
}

composite_shadowing::composite_shadowing(stats::rng_stream rng,
                                         double macro_sigma_db,
                                         double macro_corr_m,
                                         double micro_sigma_db,
                                         double micro_corr_m)
    : macro_(rng.fork("macro"), macro_sigma_db, macro_corr_m),
      micro_(rng.fork("micro"), micro_sigma_db, micro_corr_m) {}

double received_power_dbm(double tx_power_dbm, double pathloss_db,
                          double shadowing_db) noexcept {
  return tx_power_dbm - pathloss_db + shadowing_db;
}

double sinr_db(double rx_dbm, double interference_noise_dbm) noexcept {
  return rx_dbm - interference_noise_dbm;
}

double spectral_efficiency(double sinr, double efficiency,
                           double max_bps_per_hz) noexcept {
  const double linear = std::pow(10.0, sinr / 10.0);
  const double shannon = std::log2(1.0 + linear);
  return std::min(efficiency * shannon, max_bps_per_hz);
}

}  // namespace wiscape::radio

// RF propagation: log-distance path loss, spatially-correlated shadowing,
// and SINR-to-rate mapping.
//
// This is the physical layer of the substitute substrate (see DESIGN.md):
// the paper's spatial findings (smooth performance inside 250 m zones,
// operator-specific coverage fields, dominance patterns) are emergent
// properties of exactly these standard models.
#pragma once

#include <vector>

#include "geo/projection.h"
#include "stats/rng.h"

namespace wiscape::radio {

/// Log-distance path loss: PL(d) = pl0_db + 10 * exponent * log10(d / d0).
/// Distances below d0 clamp to d0 (near-field guard).
struct pathloss_model {
  double pl0_db = 38.0;    ///< loss at reference distance d0
  double exponent = 3.3;   ///< urban macro-cell decay exponent
  double d0_m = 1.0;       ///< reference distance

  double loss_db(double dist_m) const noexcept;
};

/// A smooth, deterministic Gaussian random field over the plane,
/// approximating Gudmundson-correlated log-normal shadowing.
///
/// Implemented as a sum of K random plane waves (spectral / "random
/// cosines" method): continuous everywhere, no grid storage, and fully
/// reproducible from the rng seed. The effective decorrelation distance is
/// set by corr_m.
class shadowing_field {
 public:
  /// Throws std::invalid_argument unless sigma_db >= 0, corr_m > 0 and
  /// components >= 1.
  shadowing_field(stats::rng_stream rng, double sigma_db, double corr_m,
                  int components = 96);

  /// Shadowing value (dB, zero-mean, stddev ~= sigma_db) at a point.
  double at(const geo::xy& p) const noexcept;

  double sigma_db() const noexcept { return sigma_db_; }
  double correlation_m() const noexcept { return corr_m_; }

 private:
  struct wave {
    double kx, ky, phase;
  };
  std::vector<wave> waves_;
  double sigma_db_;
  double corr_m_;
  double amplitude_;
};

/// Two-scale shadowing: a macro field (large decorrelation distance, gives
/// zones their identity) plus a micro field (street-level texture). The
/// macro/micro split is what makes intra-zone relative stddev small while
/// zones still differ from each other -- the central premise of Fig 4.
class composite_shadowing {
 public:
  composite_shadowing(stats::rng_stream rng, double macro_sigma_db,
                      double macro_corr_m, double micro_sigma_db,
                      double micro_corr_m);

  double at(const geo::xy& p) const noexcept {
    return macro_.at(p) + micro_.at(p);
  }

  const shadowing_field& macro() const noexcept { return macro_; }
  const shadowing_field& micro() const noexcept { return micro_; }

 private:
  shadowing_field macro_;
  shadowing_field micro_;
};

/// Received power in dBm given transmit power and losses.
double received_power_dbm(double tx_power_dbm, double pathloss_db,
                          double shadowing_db) noexcept;

/// SINR in dB from received signal power and a combined
/// interference-plus-noise floor.
double sinr_db(double rx_dbm, double interference_noise_dbm) noexcept;

/// Shannon-bounded spectral efficiency (bps/Hz) scaled by an implementation
/// efficiency factor; capped at `max_bps_per_hz`.
double spectral_efficiency(double sinr_db, double efficiency,
                           double max_bps_per_hz = 4.8) noexcept;

}  // namespace wiscape::radio

// Fast fading and short-timescale channel churn.
//
// Table 4 of the paper shows 10-second bins are several times noisier than
// 30-minute bins. That short-timescale variance comes from fast fading and
// scheduler churn; we model it as a mean-one multiplicative AR(1) process
// per client link, so consecutive probe packets see correlated -- but
// rapidly decorrelating -- channel quality.
#pragma once

#include "stats/rng.h"

namespace wiscape::radio {

/// Mean-one lognormal AR(1) channel-gain process, advanced in continuous
/// time. gain(t) multiplies the slow-field link rate.
class fading_process {
 public:
  /// `sigma` is the stddev of the underlying log-gain; `tau_s` the
  /// decorrelation time constant. Throws std::invalid_argument unless
  /// sigma >= 0 and tau_s > 0.
  fading_process(stats::rng_stream rng, double sigma = 0.25,
                 double tau_s = 2.0);

  /// Gain at absolute time `t_s`. Calls must be non-decreasing in time;
  /// earlier times return the current state without advancing.
  double gain_at(double t_s);

  double sigma() const noexcept { return sigma_; }
  double tau_s() const noexcept { return tau_s_; }

 private:
  stats::rng_stream rng_;
  double sigma_;
  double tau_s_;
  double log_state_ = 0.0;
  double last_t_s_ = 0.0;
  bool started_ = false;
};

}  // namespace wiscape::radio

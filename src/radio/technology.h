// Cellular air-interface technology profiles.
//
// The paper's three operators run two technologies (Table 1):
//   NetA  - GSM HSPA, downlink <= 7.2 Mbps, uplink <= 1.2 Mbps
//   NetB/C- CDMA2000 1xEV-DO Rev.A, downlink <= 3.1 Mbps, uplink <= 1.8 Mbps
// Profiles carry the rate caps and nominal air-interface parameters the
// propagation model needs.
#pragma once

#include <string_view>

namespace wiscape::radio {

enum class technology {
  hspa,        ///< GSM/UMTS High-Speed Packet Access
  evdo_rev_a,  ///< CDMA2000 1xEV-DO Revision A
};

/// Static description of one air-interface technology.
struct tech_profile {
  std::string_view name;
  double downlink_cap_bps;   ///< peak advertised downlink rate
  double uplink_cap_bps;     ///< peak advertised uplink rate
  double bandwidth_hz;       ///< carrier bandwidth
  double base_rtt_s;         ///< floor RTT through the core network
  double efficiency;         ///< implementation loss vs Shannon (0..1)
};

/// Profile lookup; total over the enum.
const tech_profile& profile_for(technology t) noexcept;

/// Parses "hspa" / "evdo_rev_a"; throws std::invalid_argument otherwise.
technology technology_from_string(std::string_view s);

}  // namespace wiscape::radio

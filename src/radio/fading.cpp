#include "radio/fading.h"

#include <cmath>
#include <stdexcept>

namespace wiscape::radio {

fading_process::fading_process(stats::rng_stream rng, double sigma,
                               double tau_s)
    : rng_(rng), sigma_(sigma), tau_s_(tau_s) {
  if (!(sigma >= 0.0) || !(tau_s > 0.0)) {
    throw std::invalid_argument("fading_process requires sigma>=0, tau>0");
  }
}

double fading_process::gain_at(double t_s) {
  if (!started_) {
    log_state_ = rng_.normal(0.0, sigma_);
    last_t_s_ = t_s;
    started_ = true;
  } else if (t_s > last_t_s_) {
    // Exact discretization of an Ornstein-Uhlenbeck step of length dt.
    const double dt = t_s - last_t_s_;
    const double rho = std::exp(-dt / tau_s_);
    const double innovation_sd = sigma_ * std::sqrt(1.0 - rho * rho);
    log_state_ = rho * log_state_ + rng_.normal(0.0, innovation_sd);
    last_t_s_ = t_s;
  }
  // exp(X - sigma^2/2) has mean one when X ~ N(0, sigma^2): fading reshapes
  // short-term samples without biasing the long-term mean rate.
  return std::exp(log_state_ - 0.5 * sigma_ * sigma_);
}

}  // namespace wiscape::radio

#include "radio/technology.h"

#include <stdexcept>
#include <string>

namespace wiscape::radio {

namespace {
// Rate caps follow Table 1 of the paper; RTT floors reflect the ~100-120 ms
// idle-state latencies its Fig 2/Fig 10 report for 3G core networks.
constexpr tech_profile hspa_profile{
    .name = "HSPA",
    .downlink_cap_bps = 7.2e6,
    .uplink_cap_bps = 1.2e6,
    .bandwidth_hz = 5.0e6,
    .base_rtt_s = 0.090,
    .efficiency = 0.55,
};

constexpr tech_profile evdo_profile{
    .name = "EV-DO Rev.A",
    .downlink_cap_bps = 3.1e6,
    .uplink_cap_bps = 1.8e6,
    .bandwidth_hz = 1.25e6,
    .base_rtt_s = 0.100,
    .efficiency = 0.60,
};
}  // namespace

const tech_profile& profile_for(technology t) noexcept {
  switch (t) {
    case technology::hspa:
      return hspa_profile;
    case technology::evdo_rev_a:
      return evdo_profile;
  }
  return evdo_profile;  // unreachable for valid enum values
}

technology technology_from_string(std::string_view s) {
  if (s == "hspa") return technology::hspa;
  if (s == "evdo_rev_a") return technology::evdo_rev_a;
  throw std::invalid_argument("unknown technology: " + std::string(s));
}

}  // namespace wiscape::radio

#include "core/report_queue.h"

#include <stdexcept>
#include <utility>

namespace wiscape::core {

report_queue::report_queue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("report_queue capacity must be > 0");
  }
}

bool report_queue::push(trace::measurement_record rec) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
  if (closed_) return false;
  items_.push_back(std::move(rec));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool report_queue::try_push(trace::measurement_record rec) {
  std::unique_lock lock(mu_);
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(rec));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t report_queue::pop_batch(std::vector<trace::measurement_record>& out,
                                    std::size_t max_batch) {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
  std::size_t n = 0;
  while (n < max_batch && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++n;
  }
  const bool emptied = items_.empty();
  lock.unlock();
  if (n > 0) not_full_.notify_all();
  if (emptied) emptied_.notify_all();
  return n;
}

void report_queue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  emptied_.notify_all();
}

void report_queue::wait_empty() const {
  std::unique_lock lock(mu_);
  emptied_.wait(lock, [this] { return items_.empty() || closed_; });
}

bool report_queue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t report_queue::size() const {
  std::lock_guard lock(mu_);
  return items_.size();
}

}  // namespace wiscape::core

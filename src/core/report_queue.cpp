#include "core/report_queue.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/fault_injection.h"
#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {

/// Scenario seam at the producer edge (core::fault site queue_push).
/// Returns true when an injected fault should make this push take its
/// natural failure path -- exactly the path a full/closed queue takes, so
/// callers' drop accounting is exercised for real. A stall sleeps briefly
/// (timing-only) and then proceeds. Un-hooked cost: one relaxed load.
bool push_fault_fails() {
  switch (fault::fire(fault::site::queue_push)) {
    case fault::action::fail:
      return true;
    case fault::action::stall:
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return false;
    case fault::action::proceed:
      break;
  }
  return false;
}
// Process-wide queue metrics, shared by every report_queue instance (the
// registry aggregates; per-shard detail lives in sharded_coordinator's
// per-shard counters). Looked up once. The enqueue-side totals are staged
// as plain fields under the queue mutex and published here in batches --
// see publish_metrics_locked() -- so a push performs no atomic RMW beyond
// the lock it already takes.
struct queue_metrics {
  obs::counter& enqueued;
  obs::counter& dequeued;
  obs::counter& rejected;
  obs::counter& blocked;
  obs::gauge& high_water;
};

queue_metrics& metrics() {
  auto& reg = obs::registry::global();
  static queue_metrics m{reg.get_counter(obs::names::kQueueEnqueued),
                         reg.get_counter(obs::names::kQueueDequeued),
                         reg.get_counter(obs::names::kQueueRejected),
                         reg.get_counter(obs::names::kQueueBlockedProducers),
                         reg.get_gauge(obs::names::kQueueHighWater)};
  return m;
}
}  // namespace

report_queue::report_queue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("report_queue capacity must be > 0");
  }
  (void)metrics();  // force registration before any concurrent use
}

void report_queue::publish_metrics_locked() {
  if (enq_count_ > enq_published_) {
    metrics().enqueued.inc(enq_count_ - enq_published_);
    enq_published_ = enq_count_;
    metrics().high_water.record_max(high_water_);
  }
}

bool report_queue::push(trace::measurement_record rec) {
  if (push_fault_fails()) {
    metrics().rejected.inc();
    return false;
  }
  std::unique_lock lock(mu_);
  if (items_.size() >= capacity_ && !closed_) {
    metrics().blocked.inc();  // backpressure: producer is about to wait
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
  }
  if (closed_) {
    lock.unlock();
    metrics().rejected.inc();
    return false;
  }
  items_.push_back(std::move(rec));
  // Hot path: stage the metric updates as plain writes under the lock we
  // already hold; pop_batch/close publish them to the registry in batches.
  ++enq_count_;
  high_water_ = std::max(high_water_, static_cast<std::int64_t>(items_.size()));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool report_queue::try_push(trace::measurement_record rec) {
  if (push_fault_fails()) {
    metrics().rejected.inc();
    return false;
  }
  std::unique_lock lock(mu_);
  if (closed_ || items_.size() >= capacity_) {
    lock.unlock();
    metrics().rejected.inc();
    return false;
  }
  items_.push_back(std::move(rec));
  ++enq_count_;
  high_water_ = std::max(high_water_, static_cast<std::int64_t>(items_.size()));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::size_t report_queue::push_batch(
    std::span<const trace::measurement_record> recs) {
  if (recs.empty()) return 0;
  // The fault fires once per batch, before anything is enqueued: a refused
  // batch is all-or-nothing, so wire-level accounting (one ERR covers the
  // whole REPORTB frame) never half-ingests a frame.
  if (push_fault_fails()) {
    metrics().rejected.inc(recs.size());
    return 0;
  }
  std::unique_lock lock(mu_);
  std::size_t i = 0;
  for (;;) {
    while (!closed_ && i < recs.size() && items_.size() < capacity_) {
      items_.push_back(recs[i]);
      ++i;
      ++enq_count_;
    }
    high_water_ =
        std::max(high_water_, static_cast<std::int64_t>(items_.size()));
    if (closed_ || i == recs.size()) break;
    // Queue full mid-batch: wake consumers so they can make room, then wait
    // like push() does (backpressure).
    metrics().blocked.inc();
    not_empty_.notify_all();
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
  }
  const std::size_t pushed = i;
  const std::size_t dropped = recs.size() - i;
  lock.unlock();
  if (pushed > 0) not_empty_.notify_all();
  if (dropped > 0) metrics().rejected.inc(dropped);
  return pushed;
}

std::size_t report_queue::pop_batch(std::vector<trace::measurement_record>& out,
                                    std::size_t max_batch) {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
  std::size_t n = 0;
  while (n < max_batch && !items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
    ++n;
  }
  publish_metrics_locked();
  const bool emptied = items_.empty();
  lock.unlock();
  if (n > 0) {
    not_full_.notify_all();
    metrics().dequeued.inc(n);
  }
  if (emptied) emptied_.notify_all();
  return n;
}

void report_queue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    publish_metrics_locked();
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  emptied_.notify_all();
}

void report_queue::wait_empty() const {
  std::unique_lock lock(mu_);
  emptied_.wait(lock, [this] { return items_.empty() || closed_; });
}

bool report_queue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t report_queue::size() const {
  std::lock_guard lock(mu_);
  return items_.size();
}

}  // namespace wiscape::core

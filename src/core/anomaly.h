// Operator-facing triage (Sec 4.1).
//
// High-variability zones are hard to see directly from sparse client
// samples, but cheap side-signals give them away: zones whose ping tests
// keep failing day after day are overwhelmingly the zones whose TCP
// throughput is wildly variable (Fig 9). analyze_failed_pings reproduces
// that cross-check over any dataset.
#pragma once

#include <string_view>
#include <vector>

#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::core {

struct failed_ping_config {
  /// A zone is flagged when it has at least one failed ping per day for this
  /// many consecutive days (paper: 20).
  int min_consecutive_days = 20;
  /// Zones need this many TCP samples for a meaningful rel-stddev (paper: 200).
  std::size_t min_tcp_samples = 200;
  /// "Highly variable" threshold on relative stddev (paper: 20%).
  double high_variability = 0.20;
};

struct failed_ping_report {
  /// TCP-throughput relative stddev for every qualifying zone.
  std::vector<double> all_rel_stddev;
  /// Same, restricted to flagged (persistent-ping-failure) zones.
  std::vector<double> flagged_rel_stddev;
  std::size_t zones_total = 0;
  std::size_t zones_flagged = 0;
  /// Of zones above the high-variability threshold, the fraction that the
  /// failed-ping rule catches (paper: 97%).
  double high_variability_caught = 0.0;
};

/// Cross-references ping failures against TCP variability per zone.
/// `network` selects one operator (empty = all records).
failed_ping_report analyze_failed_pings(const trace::dataset& ds,
                                        const geo::zone_grid& grid,
                                        std::string_view network,
                                        const failed_ping_config& cfg = {});

/// A sustained latency surge detected in a zone's binned series (Fig 10:
/// the football game shows up as a ~3.7x RTT increase for ~3 hours).
struct surge {
  double start_s = 0.0;
  double end_s = 0.0;
  double baseline = 0.0;
  double peak = 0.0;
  double factor = 0.0;  ///< peak / baseline
};

/// Finds contiguous runs of `bin_s`-binned means exceeding
/// `factor_threshold` x the median bin value, lasting at least
/// `min_duration_s`. Returns runs in time order.
std::vector<surge> detect_surges(const stats::time_series& series,
                                 double bin_s = 600.0,
                                 double factor_threshold = 2.0,
                                 double min_duration_s = 1800.0);

}  // namespace wiscape::core

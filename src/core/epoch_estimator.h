// Zone-specific epoch selection via the Allan-deviation minimum (Sec 3.2.2).
//
// "We pick the minimum value of the Allan deviation as the epoch duration
// for the corresponding zone" -- ~75 minutes for the Madison zone, ~15 for
// New Brunswick. The estimator scans a log-spaced tau grid over a zone's
// metric series and clamps the result to a sane operational range.
#pragma once

#include <vector>

#include "stats/allan.h"
#include "stats/time_series.h"

namespace wiscape::core {

struct epoch_config {
  double min_epoch_s = 5.0 * 60;
  double max_epoch_s = 6.0 * 3600;
  /// Tau scan range and resolution (log-spaced).
  double scan_lo_s = 60.0;
  double scan_hi_s = 16.0 * 3600;
  int scan_points = 40;
  /// Fallback epoch when the series is too short to estimate.
  double default_epoch_s = 30.0 * 60;
};

class epoch_estimator {
 public:
  explicit epoch_estimator(epoch_config cfg = {});

  /// Epoch duration (seconds) for a zone given its metric series. Returns
  /// the clamped Allan-minimum tau, or the default when fewer than
  /// 2 windows exist at every candidate tau.
  double epoch_for(const stats::time_series& series) const;

  /// The full Allan curve over the scan grid (for Fig 6 and diagnostics).
  std::vector<stats::allan_point> curve_for(const stats::time_series& series) const;

  const epoch_config& config() const noexcept { return cfg_; }

 private:
  epoch_config cfg_;
  std::vector<double> taus_;
};

}  // namespace wiscape::core

// The narrow persistence surface of a coordinator (ISSUE 10).
//
// core::persist used to reach into coordinator internals (the raw zone
// table via table_for_test(), plus a per-flavour overload set of free
// functions). durable_state is the replacement boundary: everything a
// snapshot writer, WAL replayer or replication catch-up needs to read or
// rebuild coordinator estimate state, and nothing else. Both the
// sequential core::coordinator and the sharded core::sharded_coordinator
// implement it, so standalone and replicated modes persist through the
// same four verbs:
//
//   * enumerate      -- keys() / history() / open_state()
//   * replay frozen  -- restore_estimate() (appends + republishes, no alert)
//   * replay open    -- restore_open() (Welford accumulator, verbatim)
//   * resume alerts  -- alert_seq() / resume_alert_seq() (sequence
//                       numbering survives a restart; cursors never rewind)
//
// Restore calls replay saved state: they must not raise alerts or move
// ingestion counters, and resume_alert_seq is only legal before any report
// is ingested (alert_ring::resume_from refuses otherwise).
//
// Thread safety follows the implementing class: sharded_coordinator takes
// each shard's lock per call; the sequential coordinator is single-threaded
// by contract. Callers wanting a consistent snapshot quiesce producers (or
// flush()) first, as before.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/zone_table.h"

namespace wiscape::core {

class durable_state {
 public:
  virtual ~durable_state() = default;

  /// All estimate-stream keys seen so far (order unspecified; persistence
  /// sorts deterministically before writing).
  virtual std::vector<estimate_key> keys() const = 0;
  /// Full frozen history of one stream, oldest first.
  virtual std::vector<epoch_estimate> history(const estimate_key& key) const = 0;
  /// Open-epoch Welford accumulator (nullopt when absent or empty).
  virtual std::optional<open_epoch_state> open_state(
      const estimate_key& key) const = 0;

  /// Appends a frozen estimate to a stream's history, publishing it to the
  /// serving mirror. No alert is raised.
  virtual void restore_estimate(const estimate_key& key,
                                const epoch_estimate& e) = 0;
  /// Restores a stream's open-epoch accumulator verbatim.
  virtual void restore_open(const estimate_key& key,
                            const open_epoch_state& st) = 0;

  /// High-water alert sequence number pushed so far.
  virtual std::uint64_t alert_seq() const = 0;
  /// Resumes alert numbering after `last_seq` (call before any ingest).
  virtual void resume_alert_seq(std::uint64_t last_seq) = 0;
};

}  // namespace wiscape::core

#include "core/zone_table.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/alert_ring.h"
#include "core/estimate_mirror.h"
#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {

// Cold-path store metrics (stream creation, epoch rollover, gap jumps);
// the per-sample apply path touches no registry counter.
struct store_metrics {
  obs::counter& streams;
  obs::counter& rollovers;
  obs::counter& gap_fast_forwards;
};

store_metrics& metrics() {
  auto& reg = obs::registry::global();
  static store_metrics m{reg.get_counter(obs::names::kZoneTableStreams),
                         reg.get_counter(obs::names::kZoneTableRollovers),
                         reg.get_counter(obs::names::kZoneTableGapFastForwards)};
  return m;
}

}  // namespace

std::size_t estimate_key_hash::operator()(const estimate_key& k) const noexcept {
  std::size_t h = geo::zone_id_hash{}(k.zone);
  h ^= std::hash<std::string>{}(k.network) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= static_cast<std::size_t>(k.metric) + 0x9e3779b9 + (h << 6) + (h >> 2);
  return h;
}

void zone_table::throw_zone_range(const geo::zone_id& zone) {
  throw std::invalid_argument("zone " + geo::to_string(zone) +
                              " outside the packed +/-2^23 cell range");
}

void zone_table::throw_network_range(std::uint16_t network_id) {
  throw std::invalid_argument("network id " + std::to_string(network_id) +
                              " outside the packed 12-bit interner range");
}

void zone_table::grow_slots() {
  const std::size_t cap = slot_mask_ == 0 ? 64 : (slot_mask_ + 1) * 2;
  std::vector<gslot> old = std::move(slots_);
  slots_.assign(cap, gslot{});
  slot_mask_ = cap - 1;
  memo_key_ = 0;  // memoized slot index is stale after the rehash
  for (const gslot& g : old) {
    if (g.key == 0) continue;
    std::size_t slot = static_cast<std::size_t>(mix64(g.key)) & slot_mask_;
    while (slots_[slot].key != 0) slot = (slot + 1) & slot_mask_;
    slots_[slot] = g;
  }
}

std::size_t zone_table::create_group(std::uint64_t gkey) {
  // Keep the directory under 1/2 load: linear probing degrades sharply past
  // that, and at 32 bytes/slot the headroom costs little memory.
  if (slot_mask_ == 0 || (group_count_ + 1) * 2 > (slot_mask_ + 1)) {
    grow_slots();
  }
  std::size_t slot = static_cast<std::size_t>(mix64(gkey)) & slot_mask_;
  while (slots_[slot].key != 0) slot = (slot + 1) & slot_mask_;
  slots_[slot].key = gkey;
  ++group_count_;
  memo_key_ = gkey;
  memo_slot_ = slot;
  return slot;
}

std::size_t zone_table::materialize_stream(std::size_t slot,
                                           const geo::zone_id& zone,
                                           std::uint16_t network_id,
                                           trace::metric metric) {
  // cold_ first (its string copy can throw), then hot_ with a rollback, so
  // the parallel vectors stay in lockstep on any throw -- a desync would
  // make later rollover()/keys() index out of bounds.
  cold_.push_back(cold_state{
      {},
      estimate_key{zone, std::string(interner_.name_of(network_id)), metric},
      pack_stream(zone, network_id, metric)});
  try {
    hot_.push_back(hot_state{});
  } catch (...) {
    cold_.pop_back();
    throw;
  }
  const auto val = static_cast<std::uint32_t>(hot_.size());
  slots_[slot].streams[static_cast<std::size_t>(metric)] = val;
  metrics().streams.inc();
  return val - 1;
}

std::size_t zone_table::find_stream(const geo::zone_id& zone,
                                    std::uint16_t network_id,
                                    trace::metric metric) const noexcept {
  if (!zone_in_range(zone) ||
      network_id >= network_interner::max_networks) {
    return npos_index;  // out-of-range keys can never have been stored
  }
  const std::size_t slot = find_group(pack_group(zone, network_id));
  if (slot == npos_index) return npos_index;
  const std::uint32_t val =
      slots_[slot].streams[static_cast<std::size_t>(metric)];
  return val == 0 ? npos_index : val - 1;
}

void zone_table::cross_epochs(std::size_t index, double time_s,
                              double epoch_duration_s) {
  hot_state& s = hot_[index];
  // One rollover publishes the open epoch (if it collected anything)...
  rollover(index);
  s.open_start_s += epoch_duration_s;
  // ...and every further elapsed epoch is empty and publishes nothing, so
  // the seed's one-iteration-per-epoch walk reduces to repeatedly adding
  // the duration. Jump all but the last two steps in one fused
  // multiply-add -- bit-identical to the iterated walk whenever fp
  // addition of the duration is exact (integral-second durations in
  // particular) -- and let the bounded loop below absorb any fp residue
  // without ever overshooting past time_s.
  const double elapsed = time_s - s.open_start_s;
  if (elapsed >= 2.0 * epoch_duration_s) {
    const double skip = std::floor(elapsed / epoch_duration_s) - 2.0;
    if (skip > 0.0) {
      s.open_start_s += skip * epoch_duration_s;
      metrics().gap_fast_forwards.inc();
    }
  }
  while (time_s >= s.open_start_s + epoch_duration_s) {
    const double next = s.open_start_s + epoch_duration_s;
    // fp saturation guard: past ~2^52 * duration (or at +-inf, where
    // elapsed above is NaN and the fast-forward never ran), adding the
    // duration no longer changes the boundary. Stop instead of spinning
    // forever -- a hostile timestamp must never hang the apply path.
    if (!(next > s.open_start_s)) break;
    s.open_start_s = next;
  }
}

void zone_table::add_sample(const estimate_key& key, double time_s,
                            double value, double epoch_duration_s) {
  add_sample(key.zone, interner_.id_of(key.network), key.metric, time_s,
             value, epoch_duration_s);
}

void zone_table::rollover(std::size_t index) {
  hot_state& s = hot_[index];
  if (s.open.empty()) return;  // nothing collected: publish nothing
  cold_state& c = cold_[index];
  epoch_estimate e;
  e.epoch_start_s = s.open_start_s;
  e.mean = s.open.mean;
  e.stddev = s.open.stddev();
  e.samples = s.open.n;

  if (!c.frozen.empty()) {
    const epoch_estimate& prev = c.frozen.back();
    const double threshold = sigma_factor_ * prev.stddev;
    if (threshold > 0.0 && std::abs(e.mean - prev.mean) > threshold) {
      alerts_.push_back(
          {c.key, e.epoch_start_s, prev.mean, e.mean, prev.stddev});
      if (alert_sink_ != nullptr) alert_sink_->push(alerts_.back());
    }
  }
  c.frozen.push_back(e);
  if (mirror_ != nullptr) {
    mirror_->publish(c.skey, e, c.frozen.size() - 1);
  }
  if (epoch_tap_ != nullptr) epoch_tap_->on_epoch(c.key, e);
  s.open.reset();
  metrics().rollovers.inc();
}

std::optional<epoch_estimate> zone_table::latest(const estimate_key& key) const {
  const auto view = history_view(key);
  if (view.empty()) return std::nullopt;
  return view.back();
}

std::size_t zone_table::open_epoch_samples(const geo::zone_id& zone,
                                           std::uint16_t network_id,
                                           trace::metric metric) const {
  if (network_id == network_interner::npos) return 0;
  const std::size_t idx = find_stream(zone, network_id, metric);
  return idx == npos_index ? 0 : hot_[idx].open.n;
}

std::size_t zone_table::open_epoch_samples(const estimate_key& key) const {
  return open_epoch_samples(key.zone, interner_.try_id(key.network),
                            key.metric);
}

std::span<const epoch_estimate> zone_table::history_view(
    const geo::zone_id& zone, std::uint16_t network_id,
    trace::metric metric) const {
  if (network_id == network_interner::npos) return {};
  const std::size_t idx = find_stream(zone, network_id, metric);
  if (idx == npos_index) return {};
  return cold_[idx].frozen;
}

std::span<const epoch_estimate> zone_table::history_view(
    const estimate_key& key) const {
  return history_view(key.zone, interner_.try_id(key.network), key.metric);
}

std::vector<epoch_estimate> zone_table::history(const estimate_key& key) const {
  const auto view = history_view(key);
  return {view.begin(), view.end()};
}

void zone_table::restore(const estimate_key& key,
                         const epoch_estimate& estimate) {
  const std::uint16_t nid = interner_.id_of(key.network);
  const std::uint64_t gkey = pack_group(key.zone, nid);
  std::size_t slot = find_group(gkey);
  if (slot == npos_index) slot = create_group(gkey);
  const std::uint32_t val =
      slots_[slot].streams[static_cast<std::size_t>(key.metric)];
  const std::size_t idx =
      val != 0 ? val - 1 : materialize_stream(slot, key.zone, nid, key.metric);
  cold_[idx].frozen.push_back(estimate);
  // Restored estimates serve like published ones (no alert: restore replays
  // persisted state, it does not observe a change).
  if (mirror_ != nullptr) {
    mirror_->publish(cold_[idx].skey, estimate, cold_[idx].frozen.size() - 1);
  }
}

namespace {

// Chan et al. pairwise Welford combine for two frozen summaries of the
// same epoch. The operands are put in a canonical order first -- by
// (mean, stddev, samples) -- so combine(a, b) and combine(b, a) execute
// the identical fp instruction sequence: the commutativity the
// replication merge advertises is bitwise, not merely mathematical.
epoch_estimate combine_estimates(const epoch_estimate& x,
                                 const epoch_estimate& y) {
  const epoch_estimate* a = &x;
  const epoch_estimate* b = &y;
  const auto before = [](const epoch_estimate& p, const epoch_estimate& q) {
    if (p.mean != q.mean) return p.mean < q.mean;
    if (p.stddev != q.stddev) return p.stddev < q.stddev;
    return p.samples < q.samples;
  };
  if (before(*b, *a)) std::swap(a, b);
  const double n1 = static_cast<double>(a->samples);
  const double n2 = static_cast<double>(b->samples);
  const double n = n1 + n2;
  // Recover each side's M2 from the published stddev (variance uses the
  // n-1 denominator; a single-sample epoch carries M2 = 0).
  const double m2a =
      a->samples > 1 ? a->stddev * a->stddev * (n1 - 1.0) : 0.0;
  const double m2b =
      b->samples > 1 ? b->stddev * b->stddev * (n2 - 1.0) : 0.0;
  const double delta = b->mean - a->mean;
  epoch_estimate out;
  out.epoch_start_s = a->epoch_start_s;
  out.samples = a->samples + b->samples;
  out.mean = a->mean + delta * (n2 / n);
  const double m2 = m2a + m2b + delta * delta * (n1 * n2 / n);
  out.stddev = out.samples > 1 ? std::sqrt(m2 / (n - 1.0)) : 0.0;
  return out;
}

}  // namespace

bool zone_table::merge_estimate(const estimate_key& key,
                                const epoch_estimate& estimate) {
  const std::uint16_t nid = interner_.id_of(key.network);
  const std::uint64_t gkey = pack_group(key.zone, nid);
  std::size_t slot = find_group(gkey);
  if (slot == npos_index) slot = create_group(gkey);
  const std::uint32_t val =
      slots_[slot].streams[static_cast<std::size_t>(key.metric)];
  const std::size_t idx =
      val != 0 ? val - 1 : materialize_stream(slot, key.zone, nid, key.metric);
  auto& frozen = cold_[idx].frozen;
  // Scan for the slot from the tail: replicated feeds arrive in epoch
  // order, so the match (or the append point) is almost always last.
  std::size_t pos = frozen.size();
  while (pos > 0 && frozen[pos - 1].epoch_start_s > estimate.epoch_start_s) {
    --pos;
  }
  bool merged = false;
  if (pos > 0 && frozen[pos - 1].epoch_start_s == estimate.epoch_start_s) {
    epoch_estimate& cur = frozen[pos - 1];
    // Bitwise-identical re-apply is a no-op, so the operation is
    // idempotent: a record delivered both inside a snapshot and by the
    // pull that follows it (they may overlap under live ingest) cannot
    // double-count. Genuinely disjoint populations differ in value and
    // still combine below.
    if (cur.mean == estimate.mean && cur.stddev == estimate.stddev &&
        cur.samples == estimate.samples) {
      return true;
    }
    cur = combine_estimates(cur, estimate);
    merged = true;
  } else {
    frozen.insert(frozen.begin() + static_cast<std::ptrdiff_t>(pos), estimate);
  }
  if (mirror_ != nullptr) {
    mirror_->publish(cold_[idx].skey, frozen.back(), frozen.size() - 1);
  }
  return merged;
}

std::optional<open_epoch_state> zone_table::open_state(
    const estimate_key& key) const {
  const std::size_t idx =
      find_stream(key.zone, interner_.try_id(key.network), key.metric);
  if (idx == npos_index) return std::nullopt;
  const hot_state& s = hot_[idx];
  if (s.open.empty()) return std::nullopt;
  return open_epoch_state{s.open_start_s, s.open.n, s.open.mean, s.open.m2};
}

void zone_table::restore_open(const estimate_key& key,
                              const open_epoch_state& state) {
  const std::uint16_t nid = interner_.id_of(key.network);
  const std::uint64_t gkey = pack_group(key.zone, nid);
  std::size_t slot = find_group(gkey);
  if (slot == npos_index) slot = create_group(gkey);
  const std::uint32_t val =
      slots_[slot].streams[static_cast<std::size_t>(key.metric)];
  const std::size_t idx =
      val != 0 ? val - 1 : materialize_stream(slot, key.zone, nid, key.metric);
  hot_state& s = hot_[idx];
  s.open_start_s = state.open_start_s;
  s.open.n = static_cast<std::size_t>(state.n);
  s.open.mean = state.mean;
  s.open.m2 = state.m2;
}

std::vector<estimate_key> zone_table::keys() const {
  std::vector<estimate_key> out;
  out.reserve(cold_.size());
  for (const auto& c : cold_) out.push_back(c.key);
  return out;
}

}  // namespace wiscape::core

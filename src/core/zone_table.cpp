#include "core/zone_table.h"

#include <cmath>
#include <stdexcept>

namespace wiscape::core {

std::size_t estimate_key_hash::operator()(const estimate_key& k) const noexcept {
  std::size_t h = geo::zone_id_hash{}(k.zone);
  h ^= std::hash<std::string>{}(k.network) + 0x9e3779b9 + (h << 6) + (h >> 2);
  h ^= static_cast<std::size_t>(k.metric) + 0x9e3779b9 + (h << 6) + (h >> 2);
  return h;
}

void zone_table::add_sample(const estimate_key& key, double time_s,
                            double value, double epoch_duration_s) {
  if (!(epoch_duration_s > 0.0)) {
    throw std::invalid_argument("epoch duration must be positive");
  }
  stream& s = streams_[key];
  if (s.open_start_s < 0.0) {
    // Align the first epoch boundary to a multiple of the duration so
    // different clients agree on epoch edges.
    s.open_start_s =
        std::floor(time_s / epoch_duration_s) * epoch_duration_s;
  }
  while (time_s >= s.open_start_s + epoch_duration_s) {
    rollover(key, s);
    s.open_start_s += epoch_duration_s;
  }
  s.open.add(value);
}

void zone_table::rollover(const estimate_key& key, stream& s) {
  if (s.open.empty()) return;  // nothing collected: publish nothing
  epoch_estimate e;
  e.epoch_start_s = s.open_start_s;
  e.mean = s.open.mean();
  e.stddev = s.open.stddev();
  e.samples = s.open.count();

  if (!s.frozen.empty()) {
    const epoch_estimate& prev = s.frozen.back();
    const double threshold = sigma_factor_ * prev.stddev;
    if (threshold > 0.0 && std::abs(e.mean - prev.mean) > threshold) {
      alerts_.push_back(
          {key, e.epoch_start_s, prev.mean, e.mean, prev.stddev});
    }
  }
  s.frozen.push_back(e);
  s.open.reset();
}

std::optional<epoch_estimate> zone_table::latest(const estimate_key& key) const {
  const auto it = streams_.find(key);
  if (it == streams_.end() || it->second.frozen.empty()) return std::nullopt;
  return it->second.frozen.back();
}

std::size_t zone_table::open_epoch_samples(const estimate_key& key) const {
  const auto it = streams_.find(key);
  return it == streams_.end() ? 0 : it->second.open.count();
}

std::vector<epoch_estimate> zone_table::history(const estimate_key& key) const {
  const auto it = streams_.find(key);
  return it == streams_.end() ? std::vector<epoch_estimate>{}
                              : it->second.frozen;
}

void zone_table::restore(const estimate_key& key,
                         const epoch_estimate& estimate) {
  streams_[key].frozen.push_back(estimate);
}

std::vector<estimate_key> zone_table::keys() const {
  std::vector<estimate_key> out;
  out.reserve(streams_.size());
  for (const auto& [k, _] : streams_) out.push_back(k);
  return out;
}

}  // namespace wiscape::core

// The WiScape measurement coordinator (Sec 3.4, "Putting it all together").
//
// Clients periodically report their coarse zone; the coordinator hands back
// measurement tasks with a probability tuned so each zone-epoch accumulates
// just enough samples (the sample_planner's count), no more. Reported
// measurements flow into the zone_table, whose epoch rollovers publish
// estimates and raise >2-sigma change alerts. Epoch durations are
// re-estimated per zone from accumulated history via the Allan minimum.
//
// Thread safety: NOT thread-safe, by design -- a coordinator is a
// deterministic sequential state machine (same seed + same call sequence =>
// bit-for-bit the same estimates, tasks and alerts). Callers serialise
// access; `sharded_coordinator` is the concurrent wrapper that does so at
// scale, one coordinator per shard behind the shard's mutex.
//
// Observability: checkin() and report() count into the process-wide
// `core.coordinator.*` metrics (src/obs/names.h; reference table in
// DESIGN.md §5) -- check-ins, tasks issued, budget denials, reports
// accepted/rejected, and change alerts raised. One relaxed atomic
// fetch-add per event; observation only, never behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "core/alert_ring.h"
#include "core/durable_state.h"
#include "core/epoch_estimator.h"
#include "core/estimate_mirror.h"
#include "core/sample_planner.h"
#include "core/zone_table.h"
#include "stats/time_series.h"
#include "trace/record.h"

namespace wiscape::core {

struct coordinator_config {
  double zone_radius_m = 250.0;  ///< the paper's chosen zone scale
  /// Samples wanted per zone-epoch before planner-refined counts exist
  /// ("around 100 measurement samples", Sec 1).
  std::size_t default_samples_per_epoch = 100;
  double change_sigma_factor = 2.0;
  epoch_config epochs{};
  planner_config planner{};
  /// History length (samples) per (zone, network) kept for epoch
  /// re-estimation; bounded so a long-running coordinator stays small.
  std::size_t history_cap = 4096;
  /// Per-client measurement budget, MB per day (0 = unlimited). The
  /// coordinator stops tasking a client whose day's probes already cost
  /// this much -- the Sec 3.4 bandwidth/energy-cost knob made explicit.
  double client_daily_budget_mb = 0.0;
  /// Estimated cost charged per issued task, by probe kind (MB). Defaults
  /// price a 1 MB TCP download, a 100x1200 B UDP burst and a ping train.
  double tcp_task_mb = 1.02;
  double udp_task_mb = 0.12;
  double ping_task_mb = 0.002;
  /// Change alerts retained for incremental draining via
  /// estimate_view::alerts_since (older ones are evicted and accounted as
  /// dropped). In sharded mode the sharded_coordinator's shared ring uses
  /// this capacity.
  std::size_t alert_ring_capacity = 1024;
};

/// A measurement instruction handed to a client.
struct measurement_task {
  trace::probe_kind kind = trace::probe_kind::udp_burst;
  std::size_t network_index = 0;
};

/// Per-zone coordination state, exposed read-only for tools/benches.
struct zone_status {
  double epoch_duration_s = 0.0;
  std::size_t samples_target = 0;
  std::size_t open_epoch_samples = 0;
};

class coordinator : public durable_state {
 public:
  coordinator(geo::zone_grid grid, std::vector<std::string> networks,
              coordinator_config cfg, std::uint64_t seed);

  // The serving-layer sinks are members the zone table points into, so a
  // coordinator is pinned to its address once constructed.
  coordinator(const coordinator&) = delete;
  coordinator& operator=(const coordinator&) = delete;

  const geo::zone_grid& grid() const noexcept { return grid_; }
  const coordinator_config& config() const noexcept { return cfg_; }

  /// Raw zone-table access for tests, benches and persistence tooling.
  /// Application reads go through core::estimate_view (the sanctioned read
  /// path; see DESIGN.md "Read-side serving") -- this accessor is named to
  /// keep that boundary visible at call sites.
  const zone_table& table_for_test() const noexcept { return table_; }

  /// The serving-layer mirror every epoch rollover publishes into
  /// (consumed by core::estimate_view; lock-free reads).
  const estimate_mirror& published() const noexcept { return mirror_; }

  /// The alert ring this coordinator's change alerts are sequenced into.
  /// By default the coordinator's own ring; sharded_coordinator re-points
  /// it at a ring shared across shards.
  const alert_ring& alert_sink() const noexcept { return *alert_sink_; }

  /// Redirects alert publication (and alert_sink()) to `ring`, which must
  /// outlive this coordinator. Call before any report is ingested.
  void redirect_alert_sink(alert_ring& ring) noexcept {
    alert_sink_ = &ring;
    table_.set_alert_sink(&ring);
  }

  /// All estimate-stream keys seen so far (stream-creation order).
  std::vector<estimate_key> keys() const override { return table_.keys(); }

  /// Full frozen history of one stream, oldest first (copied).
  std::vector<epoch_estimate> history(const estimate_key& key) const override {
    return table_.history(key);
  }

  /// Client check-in: "I am at `pos` at time `t`, able to probe network
  /// `network_index`; about `active_clients_in_zone` peers are here too."
  /// Returns a task with probability (remaining samples needed this epoch) /
  /// (active clients), so the fleet collectively lands near the target.
  /// `client_id` identifies the device for per-client budget accounting
  /// (0 = anonymous, never budget-limited).
  std::optional<measurement_task> checkin(const geo::lat_lon& pos,
                                          double time_s,
                                          std::size_t network_index,
                                          std::size_t active_clients_in_zone,
                                          std::uint64_t client_id = 0);

  /// MB charged against a client's budget today (diagnostics / tests).
  double client_spend_mb(std::uint64_t client_id, double time_s) const;

  /// Ingests a completed measurement. Updates the zone table (all metrics
  /// the record carries) and the zone's epoch-estimation history. Never
  /// throws on wire-reachable input: failed probes, zones outside the
  /// store's packed cell range, and records arriving after the network
  /// interner is exhausted are counted into
  /// `core.coordinator.reports_rejected` and dropped.
  void report(const trace::measurement_record& rec);

  /// Ingests a batch of completed measurements in order. Equivalent to
  /// calling report() per record; exists so the batched wire path (REPORTB)
  /// has one entry point in sequential mode too.
  void report_batch(std::span<const trace::measurement_record> recs);

  /// Re-estimates the epoch duration of every zone with enough history
  /// (Allan minimum). Cheap enough to call periodically.
  void recompute_epochs();

  /// Refines a zone's sample target from collected history via the NKLD
  /// planner. No-op (returns current target) when history is too small.
  std::size_t refine_sample_target(const geo::zone_id& zone,
                                   std::string_view network,
                                   trace::metric metric);

  zone_status status_of(const geo::zone_id& zone) const;
  const std::vector<change_alert>& alerts() const noexcept {
    return table_.alerts();
  }

  /// Interned id a record's network would resolve to here, or
  /// trace::no_network_id if never seen. Read-only (does not intern).
  std::uint16_t network_id_of(std::string_view network) const noexcept {
    return table_.interner().try_id(network);
  }

  // ---- persistence surface (core::durable_state) --------------------------
  // Restore replays saved state, it does not observe new measurements: no
  // alerts are raised, no reports_accepted counters move.

  /// Appends a frozen estimate to a stream's history (publishing it to the
  /// serving mirror so reads resume immediately).
  void restore_estimate(const estimate_key& key,
                        const epoch_estimate& e) override {
    table_.restore(key, e);
  }
  /// Restores a stream's open-epoch accumulator (see zone_table).
  void restore_open(const estimate_key& key,
                    const open_epoch_state& st) override {
    table_.restore_open(key, st);
  }
  /// Open-epoch accumulator of a stream (nullopt when absent or empty).
  std::optional<open_epoch_state> open_state(
      const estimate_key& key) const override {
    return table_.open_state(key);
  }
  /// High-water alert sequence number of the current alert sink.
  std::uint64_t alert_seq() const override { return alert_sink_->pushed(); }
  /// Resumes alert numbering after a restart (untouched ring only).
  void resume_alert_seq(std::uint64_t last_seq) override {
    alert_sink_->resume_from(last_seq);
  }

  // ---- replication surface (src/repl, ISSUE 10) ---------------------------

  /// Attaches the epoch-rollover tap (see zone_table::set_epoch_tap).
  /// Install before ingesting; the tap must outlive the coordinator.
  void set_epoch_tap(epoch_tap* tap) noexcept { table_.set_epoch_tap(tap); }
  /// Folds a replicated frozen estimate into a stream (commutative
  /// per-(zone, network, epoch) merge; see zone_table::merge_estimate).
  bool merge_estimate(const estimate_key& key, const epoch_estimate& e) {
    return table_.merge_estimate(key, e);
  }

 private:
  friend class sharded_coordinator;  // internal table reads under shard lock

  struct zone_state {
    double epoch_s;
    std::size_t samples_target;
    // Metric history used for epoch/NKLD estimation, indexed by the table's
    // interned network id (dense: most zones see every operator).
    std::vector<stats::time_series> history;
  };

  /// Internal-only raw table access (sharded_coordinator's read-side
  /// aggregation under the shard lock).
  const zone_table& table() const noexcept { return table_; }

  zone_state& state_of(const geo::zone_id& z);
  /// The primary metric driving sampling decisions for a probe kind.
  static trace::metric planning_metric(trace::probe_kind k) noexcept;
  /// The record's interned network id: the wire-cached id when it checks
  /// out against our interner, else a (possibly interning) name lookup.
  /// Returns network_interner::npos -- never throws -- when the interner
  /// is full and the name is new.
  std::uint16_t resolve_network(const trace::measurement_record& rec);

  geo::zone_grid grid_;
  std::vector<std::string> networks_;
  coordinator_config cfg_;
  // Serving-layer sinks; constructed before table_ so set_sinks in the ctor
  // hands the table valid addresses for the coordinator's whole lifetime.
  estimate_mirror mirror_;
  alert_ring ring_;
  alert_ring* alert_sink_ = &ring_;
  zone_table table_;
  // networks_[i] -> interned id (duplicate names collapse to the first id).
  std::vector<std::uint16_t> net_ids_;
  epoch_estimator epochs_;
  sample_planner planner_;
  stats::rng_stream rng_;
  std::unordered_map<geo::zone_id, zone_state, geo::zone_id_hash> zones_;
  // Round-robin over probe kinds so every metric family gets samples.
  std::uint64_t task_counter_ = 0;

  struct budget_state {
    std::int64_t day = -1;
    double spent_mb = 0.0;
  };
  std::unordered_map<std::uint64_t, budget_state> budgets_;
};

}  // namespace wiscape::core

#include "core/estimate_view.h"

#include <algorithm>

#include "obs/names.h"
#include "obs/registry.h"

namespace wiscape::core {

namespace {
// Process-wide serving metrics (all estimate_view instances share them).
struct view_metrics {
  obs::counter& lookups;
  obs::counter& misses;
  obs::counter& alerts_served;
  obs::counter& alerts_dropped;
};

view_metrics& metrics() {
  auto& reg = obs::registry::global();
  static view_metrics m{
      reg.get_counter(obs::names::kEstimateViewLookups),
      reg.get_counter(obs::names::kEstimateViewMisses),
      reg.get_counter(obs::names::kEstimateViewAlertsServed),
      reg.get_counter(obs::names::kEstimateViewAlertsDropped)};
  return m;
}
}  // namespace

std::optional<served_estimate> estimate_view::lookup(const geo::zone_id& zone,
                                                     std::uint16_t network_id,
                                                     trace::metric metric,
                                                     double now_s) const {
  metrics().lookups.inc();
  const std::uint64_t skey = zone_table::pack_stream(zone, network_id, metric);
  const estimate_mirror& mirror =
      seq_ != nullptr ? seq_->published()
                      : sharded_->published_of(sharded_->shard_of(zone));
  published_estimate p;
  if (!mirror.read(skey, p)) {
    metrics().misses.inc();
    return std::nullopt;
  }
  served_estimate out;
  out.count = p.count;
  out.mean = p.mean;
  out.stddev = p.stddev;
  out.epoch_index = p.epoch_index;
  out.epoch_start_s = p.epoch_start_s;
  if (now_s >= 0.0) {
    out.staleness_s = std::max(0.0, now_s - p.epoch_start_s);
  }
  const double target = cfg_.target_samples > 0.0 ? cfg_.target_samples : 1.0;
  out.confidence = std::min(1.0, static_cast<double>(p.count) / target);
  return out;
}

std::optional<served_estimate> estimate_view::lookup(const geo::zone_id& zone,
                                                     std::string_view network,
                                                     trace::metric metric,
                                                     double now_s) const {
  const std::uint16_t nid = network_id_of(network);
  if (nid == network_interner::npos) {
    metrics().lookups.inc();
    metrics().misses.inc();
    return std::nullopt;
  }
  return lookup(zone, nid, metric, now_s);
}

alert_drain estimate_view::alerts_since(std::uint64_t since,
                                        std::size_t max) const {
  const alert_ring& ring =
      seq_ != nullptr ? seq_->alert_sink() : sharded_->alert_sink();
  alert_drain out = ring.drain_since(since, max);
  if (!out.alerts.empty()) metrics().alerts_served.inc(out.alerts.size());
  if (out.dropped != 0) metrics().alerts_dropped.inc(out.dropped);
  return out;
}

}  // namespace wiscape::core

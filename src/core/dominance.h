// Persistent network dominance (Sec 4.2.1).
//
// "When the lower 5 percentile of the best network's metric is better than
// the upper 95 percentile of other networks in a given zone, we say the zone
// is persistently dominated by the best network." Such dominance is stable
// over time, hence observable by WiScape's infrequent sampling, and it is
// what makes multi-network applications (multi-sim, MAR) profitable.
#pragma once

#include <string>
#include <vector>

#include "geo/zone_grid.h"
#include "trace/dataset.h"

namespace wiscape::core {

/// Which direction wins for a metric.
enum class preference {
  higher_is_better,  ///< throughput
  lower_is_better,   ///< latency, loss, jitter
};

preference preference_for(trace::metric m) noexcept;

struct dominance_config {
  double low_pct = 5.0;
  double high_pct = 95.0;
  std::size_t min_samples_per_network = 20;
};

/// Index of the persistently dominant network given per-network sample sets,
/// or -1 when no network dominates (or any network lacks samples).
int dominant_network(const std::vector<std::vector<double>>& per_network,
                     preference pref, const dominance_config& cfg = {});

/// Zone-by-zone dominance over a dataset.
struct zone_dominance {
  geo::zone_id zone;
  int winner = -1;  ///< index into `networks`, -1 = none
  std::vector<double> means;  ///< per-network mean of the metric
};

struct dominance_summary {
  std::vector<zone_dominance> zones;
  std::vector<std::size_t> wins;  ///< per network
  std::size_t none = 0;
  /// Fraction of zones with some dominant network.
  double dominated_fraction = 0.0;
};

/// Evaluates dominance of `metric` per grid zone across `networks`.
/// Only zones where every network has >= cfg.min_samples_per_network
/// successful samples participate.
dominance_summary analyze_dominance(const trace::dataset& ds,
                                    const geo::zone_grid& grid,
                                    trace::metric metric,
                                    const std::vector<std::string>& networks,
                                    const dominance_config& cfg = {});

}  // namespace wiscape::core

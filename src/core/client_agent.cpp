#include "core/client_agent.h"

namespace wiscape::core {

std::optional<trace::measurement_record> client_agent::step(
    const mobility::gps_fix& fix, std::size_t active_clients_in_zone) {
  const auto task = coord_->checkin(fix.pos, fix.time_s, network_index_,
                                    active_clients_in_zone, client_id_);
  if (!task) return std::nullopt;

  trace::measurement_record rec;
  switch (task->kind) {
    case trace::probe_kind::tcp_download:
      rec = engine_->tcp_probe(task->network_index, fix);
      break;
    case trace::probe_kind::udp_burst:
      rec = engine_->udp_probe(task->network_index, fix);
      break;
    case trace::probe_kind::ping:
      rec = engine_->ping_probe(task->network_index, fix);
      break;
    case trace::probe_kind::udp_uplink:
      rec = engine_->udp_uplink_probe(task->network_index, fix);
      break;
  }
  ++executed_;
  coord_->report(rec);
  return rec;
}

}  // namespace wiscape::core

#include "core/validation.h"

#include <algorithm>
#include <cmath>

#include "stats/sampling.h"
#include "stats/summary.h"

namespace wiscape::core {

double validation_report::fraction_within(double rel_error_threshold) const {
  if (errors.empty()) return 0.0;
  return stats::fraction_at_most(errors, rel_error_threshold);
}

double validation_report::max_error() const {
  if (errors.empty()) return 0.0;
  return *std::max_element(errors.begin(), errors.end());
}

validation_report validate_estimation(const trace::dataset& ds,
                                      const geo::zone_grid& grid,
                                      trace::metric metric,
                                      std::string_view network,
                                      const validation_config& cfg,
                                      std::uint64_t seed) {
  validation_report out;
  stats::rng_stream rng(seed);
  auto zones =
      ds.zone_metric_values(grid, metric, network, cfg.min_zone_samples);

  // Deterministic iteration order: sort zone ids.
  std::vector<geo::zone_id> ids;
  ids.reserve(zones.size());
  for (const auto& [z, _] : zones) ids.push_back(z);
  std::sort(ids.begin(), ids.end());

  for (const auto& z : ids) {
    const auto& samples = zones[z];
    stats::rng_stream zrng = rng.fork(geo::to_string(z));
    const auto split =
        stats::random_split(samples.size(), cfg.client_fraction, zrng);

    std::vector<double> client, truth;
    client.reserve(split.first.size());
    truth.reserve(split.second.size());
    for (std::size_t i : split.first) client.push_back(samples[i]);
    for (std::size_t i : split.second) truth.push_back(samples[i]);

    // WiScape draws only its per-epoch budget from the client pool.
    const std::size_t take = std::min(cfg.wiscape_samples, client.size());
    const auto estimate_samples =
        stats::sample_without_replacement(client, take, zrng);

    const double truth_mean = stats::mean(truth);
    const double est_mean = stats::mean(estimate_samples);
    if (truth_mean == 0.0) continue;

    zone_error ze;
    ze.zone = z;
    ze.truth_mean = truth_mean;
    ze.estimate_mean = est_mean;
    ze.rel_error = std::abs(est_mean - truth_mean) / std::abs(truth_mean);
    out.errors.push_back(ze.rel_error);
    out.zones.push_back(ze);
  }
  return out;
}

}  // namespace wiscape::core

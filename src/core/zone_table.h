// The zone table: WiScape's per-(zone, network, metric) estimate store.
//
// For each key the table accumulates the current epoch's samples, and on
// epoch rollover freezes them into the zone's published estimate. A new
// estimate that moved by more than `change_sigma_factor` standard deviations
// from the previous one raises a change alert ("the server checks if the
// measured statistic has changed substantially from its previous update,
// say by more than twice the standard deviation", Sec 3.4).
//
// Storage is a dense interned layout (ISSUE 4): network names are interned
// to u16 ids (core::network_interner) and each (zone, network) pair packs
// into one u64 group key -- zone ix:24 | zone iy:24 | network id:12 -- that
// indexes an open-addressing directory. One 32-byte directory slot holds
// the group key AND the six per-metric stream indices, so a record's whole
// metric fold (1-3 applies) costs a single integer-hash probe touching one
// cache line; per-stream state lives in insertion-ordered parallel vectors
// split hot (open-epoch accumulator) / cold (frozen history + unpacked
// key). The apply path (the id-based add_sample overload) hashes one
// integer, allocates nothing, and a one-entry last-group memo
// short-circuits the probe for consecutive samples from the same zone and
// operator. The string-keyed API is preserved for readers and persistence;
// its lookups go through the interner's transparent hash, so they are
// allocation-free too.
//
// Epoch fast-forward invariant: when a sample lands k >= 1 epochs past the
// open epoch, exactly one rollover publishes (the open epoch, if it has
// samples) and the k-1 intervening *empty* epochs publish nothing, so the
// boundary is advanced in O(1) with one fused multiply-add instead of one
// loop iteration per elapsed epoch. The jump is bit-identical to the seed's
// iterated `open_start += duration` walk whenever fp addition of the
// duration is exact -- integral-second durations in particular, which is
// every duration this system produces -- and a bounded tail loop absorbs
// any fp residue so the boundary never overshoots the sample's time
// (tests/apply_path_test.cpp pins this against the frozen seed loop).
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/network_interner.h"
#include "geo/zone_grid.h"
#include "trace/record.h"

namespace wiscape::core {

class estimate_mirror;
class alert_ring;

/// Key of one estimate stream (the boundary/reader form; the hot path works
/// on the packed form below).
struct estimate_key {
  geo::zone_id zone;
  std::string network;
  trace::metric metric;

  friend bool operator==(const estimate_key&, const estimate_key&) = default;
};

struct estimate_key_hash {
  std::size_t operator()(const estimate_key& k) const noexcept;
};

/// A published (frozen) per-epoch estimate.
struct epoch_estimate {
  double epoch_start_s = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t samples = 0;
};

/// The open (not yet frozen) epoch of one stream, in the exact Welford form
/// the accumulator carries -- persisted verbatim so a restored coordinator's
/// next rollover publishes bit-for-bit what the uninterrupted one would
///// (core::persist round-trips these at full %.17g precision).
struct open_epoch_state {
  double open_start_s = 0.0;
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;
};

/// Observer of epoch rollovers (the replication tap, ISSUE 10). Fired once
/// per frozen estimate, right after it is appended to the stream's history
/// and published to the mirror -- the exact replication unit the epoch
/// stream ships to followers. restore()/merge_estimate() do NOT fire it:
/// replayed or replicated state is not a new rollover (a follower must not
/// re-log epochs it merely applied). Invoked inside the table's own
/// mutations -- drain-worker threads in sharded mode -- so an
/// implementation shared across shards must be thread-safe.
class epoch_tap {
 public:
  virtual ~epoch_tap() = default;
  virtual void on_epoch(const estimate_key& key, const epoch_estimate& est) = 0;
};

/// Raised when an epoch's estimate moved substantially vs the previous one.
struct change_alert {
  estimate_key key;
  double epoch_start_s = 0.0;
  double previous_mean = 0.0;
  double new_mean = 0.0;
  double previous_stddev = 0.0;
};

class zone_table {
 public:
  /// `change_sigma_factor`: alert threshold in units of the previous epoch's
  /// stddev (paper suggests 2). `networks` pre-interns the coordinator's
  /// operator list so ids 0..n-1 match the vector order on every shard;
  /// networks first seen in reports are interned on the cold path.
  explicit zone_table(double change_sigma_factor = 2.0,
                      const std::vector<std::string>& networks = {})
      : sigma_factor_(change_sigma_factor), interner_(networks) {}

  /// True when `zone` fits the packed +/-2^23 cell range. Callers feeding
  /// wire-derived coordinates must reject out-of-range zones up front:
  /// add_sample throws on them, and a throw escaping an async drain worker
  /// would terminate the process.
  static bool zone_in_range(const geo::zone_id& zone) noexcept {
    return zone.ix >= -kCoordLimit && zone.ix < kCoordLimit &&
           zone.iy >= -kCoordLimit && zone.iy < kCoordLimit;
  }

  /// Packed serving-layer stream key: the directory's group key (tag bit 63
  /// | ix:24 | iy:24 | network id:12) with the metric folded into the free
  /// bits 60..62. Returns 0 (never a valid key -- the tag bit is always
  /// set) when the zone or network id is out of packed range, so read paths
  /// can treat out-of-range lookups as plain not-found instead of throwing.
  static std::uint64_t pack_stream(const geo::zone_id& zone,
                                   std::uint16_t network_id,
                                   trace::metric metric) noexcept {
    if (!zone_in_range(zone) || network_id >= network_interner::max_networks) {
      return 0;
    }
    const auto bx = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(zone.ix) & 0xFFFFFFu);
    const auto by = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(zone.iy) & 0xFFFFFFu);
    return (1ull << 63) | (static_cast<std::uint64_t>(metric) << 60) |
           (bx << 36) | (by << 12) | static_cast<std::uint64_t>(network_id);
  }

  /// Attaches the serving-layer sinks: every epoch rollover (and restore)
  /// publishes the frozen estimate into `mirror`, and every change alert is
  /// additionally pushed into `alerts` with a sequence number. Either may
  /// be null (not published). The sinks must outlive the table; writes into
  /// them happen inside the table's own mutations, so they inherit whatever
  /// serialisation the caller provides for those (the shard mutex).
  void set_sinks(estimate_mirror* mirror, alert_ring* alerts) noexcept {
    mirror_ = mirror;
    alert_sink_ = alerts;
  }
  /// Re-points just the alert sink (sharded mode shares one global ring
  /// across shards so alert sequence numbers are totally ordered).
  void set_alert_sink(alert_ring* alerts) noexcept { alert_sink_ = alerts; }

  /// Attaches the epoch-rollover tap (nullptr = none). Same lifetime and
  /// serialisation rules as set_sinks; install before ingesting.
  void set_epoch_tap(epoch_tap* tap) noexcept { epoch_tap_ = tap; }

  /// Adds one sample to the current epoch of `key`. `epoch_duration_s` is
  /// the zone's current epoch length (rollover happens when a sample lands
  /// past the epoch end). Throws std::invalid_argument if
  /// epoch_duration_s <= 0 or the zone exceeds the packed +/-2^23 cell
  /// range. Interns the key's network on first sight (std::length_error
  /// past the interner cap).
  void add_sample(const estimate_key& key, double time_s, double value,
                  double epoch_duration_s);

  /// The allocation-free apply path: same contract, keyed by an interned
  /// network id (see interner()). Defined inline below -- the happy path
  /// (existing stream, open epoch) folds into the caller's loop.
  void add_sample(const geo::zone_id& zone, std::uint16_t network_id,
                  trace::metric metric, double time_s, double value,
                  double epoch_duration_s);

  /// Latest frozen estimate for a key (nullopt before the first rollover).
  std::optional<epoch_estimate> latest(const estimate_key& key) const;

  /// Samples accumulated in the currently-open epoch of `key`.
  std::size_t open_epoch_samples(const estimate_key& key) const;
  /// Id-keyed flavour for allocation-free callers (coordinator::checkin).
  std::size_t open_epoch_samples(const geo::zone_id& zone,
                                 std::uint16_t network_id,
                                 trace::metric metric) const;

  /// Full history of frozen estimates for a key (time order), copied.
  /// Prefer history_view() unless the result must outlive the table (or the
  /// lock protecting it).
  std::vector<epoch_estimate> history(const estimate_key& key) const;

  /// Non-copying view of a key's frozen history. Invalidated by the next
  /// mutating call (add_sample/restore) -- use only while the table is
  /// stable (e.g. under the owning shard's lock, or in single-threaded
  /// tools/benches).
  std::span<const epoch_estimate> history_view(const estimate_key& key) const;
  std::span<const epoch_estimate> history_view(const geo::zone_id& zone,
                                               std::uint16_t network_id,
                                               trace::metric metric) const;

  /// All change alerts raised so far (time order).
  const std::vector<change_alert>& alerts() const noexcept { return alerts_; }

  /// All keys ever seen (stream-creation order).
  std::vector<estimate_key> keys() const;

  /// Appends a frozen estimate to a key's history without touching the open
  /// epoch or raising alerts (used when restoring persisted state).
  void restore(const estimate_key& key, const epoch_estimate& estimate);

  /// Folds a replicated frozen estimate into a key's history (ISSUE 10).
  /// When an epoch with the same epoch_start_s already exists -- two feeds
  /// covering disjoint client populations froze the same (zone, network,
  /// epoch) -- the two Welford summaries are combined with canonically
  /// ordered operands, so the merge is bitwise commutative across feed
  /// arrival orders; otherwise the estimate is inserted in epoch order
  /// (the common case appends at the tail). Like restore(): no alert, no
  /// open-epoch touch, mirror republished so reads serve the merged tail.
  /// Returns true when an existing epoch was merged, false on fresh insert.
  bool merge_estimate(const estimate_key& key, const epoch_estimate& estimate);

  /// Open-epoch accumulator of a key, or nullopt when the stream is absent
  /// or its open epoch is empty (an empty open epoch carries no state worth
  /// persisting: rollover publishes nothing from it, and the boundary
  /// re-aligns identically from the next sample's timestamp).
  std::optional<open_epoch_state> open_state(const estimate_key& key) const;

  /// Restores a persisted open-epoch accumulator (creating the stream if
  /// needed). No alert, no mirror publish -- open epochs are unpublished by
  /// definition; the state feeds the stream's next rollover.
  void restore_open(const estimate_key& key, const open_epoch_state& state);

  /// The table's network id assignment. Mutating it (id_of) outside the
  /// table's own apply path is allowed -- ids are append-only -- but must
  /// be serialised with every other table call.
  const network_interner& interner() const noexcept { return interner_; }
  network_interner& interner() noexcept { return interner_; }

 private:
  static constexpr std::size_t kMetricCount = 6;  // trace::metric cardinality
  static constexpr std::int32_t kCoordLimit = 1 << 23;  // packed cell range

  // Inline open-epoch accumulator: 24 bytes, replicating
  // stats::running_stats' Welford update bit-for-bit for the three moments
  // an epoch_estimate publishes (count/mean/stddev). min/max are dropped --
  // no published estimate consumes them -- and the add inlines into the
  // apply loop instead of the out-of-line running_stats::add call.
  struct epoch_accum {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;

    void add(double x) noexcept {
      ++n;
      const double delta = x - mean;
      mean += delta / static_cast<double>(n);
      m2 += delta * (x - mean);
    }
    double variance() const noexcept {
      return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    }
    double stddev() const noexcept { return std::sqrt(variance()); }
    bool empty() const noexcept { return n == 0; }
    void reset() noexcept { *this = epoch_accum{}; }
  };

  // Per-stream state is split hot/cold so the per-sample apply touches as
  // few cache lines as possible: `hot_state` (32 bytes) is everything the
  // happy path reads and writes; the frozen history and the unpacked key
  // live in a parallel cold vector only rollovers and readers visit.
  struct hot_state {
    epoch_accum open;                 // accumulating epoch
    double open_start_s = -1.0;       // <0: no epoch started yet
  };
  struct cold_state {
    std::vector<epoch_estimate> frozen;
    estimate_key key;                 // unpacked, for keys()/alerts
    std::uint64_t skey = 0;           // pack_stream key, for mirror publish
  };
  // One directory slot covers a whole (zone, network) group: the packed
  // group key plus stream index+1 per metric (0 = not materialized). 32
  // bytes -- two per cache line -- so a record's full metric fold resolves
  // every stream it touches with a single probe.
  struct gslot {
    std::uint64_t key = 0;  // 0 = empty slot (group keys always set bit 63)
    std::uint32_t streams[kMetricCount] = {};
  };
  static_assert(sizeof(gslot) == 32);

  /// Packs (zone, network id) into the directory key: tag bit 63 (so no
  /// valid group packs to 0, the empty-slot marker) | ix:24 | iy:24 | id:12.
  /// Throws std::invalid_argument past the +/-2^23 cell range or when
  /// network_id exceeds the interner cap (masking would silently alias
  /// npos onto id 4095's streams).
  static std::uint64_t pack_group(const geo::zone_id& zone,
                                  std::uint16_t network_id);
  [[noreturn]] static void throw_zone_range(const geo::zone_id& zone);
  [[noreturn]] static void throw_network_range(std::uint16_t network_id);

  /// splitmix64 finalizer: full-avalanche mix of the packed key, so linear
  /// probing sees well-scattered slots even for clustered zone coordinates.
  static std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Directory slot of a group key, or npos when absent. Warms the memo.
  std::size_t find_group(std::uint64_t gkey) const noexcept;
  /// Directory slot of a group key, inserted on first sight (cold path;
  /// may grow the directory, invalidating previously returned slots).
  std::size_t create_group(std::uint64_t gkey);
  /// Rare path of add_sample: the sample landed past the open epoch --
  /// publish the open epoch and fast-forward the boundary.
  void cross_epochs(std::size_t index, double time_s, double epoch_duration_s);
  /// Stream index for (group slot, metric), creating hot/cold state on
  /// first sight of this metric within the group.
  std::size_t materialize_stream(std::size_t slot, const geo::zone_id& zone,
                                 std::uint16_t network_id,
                                 trace::metric metric);
  /// Reader-path stream lookup: npos when the group or metric is absent.
  std::size_t find_stream(const geo::zone_id& zone, std::uint16_t network_id,
                          trace::metric metric) const noexcept;
  void grow_slots();
  void rollover(std::size_t index);

  static constexpr std::size_t npos_index = static_cast<std::size_t>(-1);

  double sigma_factor_;
  network_interner interner_;
  std::vector<hot_state> hot_;         // dense, stream-creation-ordered
  std::vector<cold_state> cold_;       // parallel to hot_
  std::vector<gslot> slots_;           // open-addressing directory, pow2
  std::size_t slot_mask_ = 0;          // capacity-1; 0 = no slots yet
  std::size_t group_count_ = 0;        // occupied directory slots
  // One-entry group memo: consecutive reports overwhelmingly come from the
  // same (zone, network), so the last directory hit short-circuits the probe.
  mutable std::uint64_t memo_key_ = 0;  // 0 = invalid
  mutable std::size_t memo_slot_ = 0;
  std::vector<change_alert> alerts_;
  estimate_mirror* mirror_ = nullptr;  // serving-layer estimate sink
  alert_ring* alert_sink_ = nullptr;   // serving-layer alert sink
  epoch_tap* epoch_tap_ = nullptr;     // replication tap (rollovers only)

};

// ---- inline apply path ------------------------------------------------------

inline std::uint64_t zone_table::pack_group(const geo::zone_id& zone,
                                            std::uint16_t network_id) {
  if (!zone_in_range(zone)) throw_zone_range(zone);
  if (network_id >= network_interner::max_networks) {
    throw_network_range(network_id);
  }
  // tag:1 | ix:24 | iy:24 | network:12. The interner caps ids at 4096 (12
  // bits, checked above so npos can never alias a valid id); the tag bit
  // keeps the all-zero group distinct from the empty slot marker.
  const auto bx = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(zone.ix) & 0xFFFFFFu);
  const auto by = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(zone.iy) & 0xFFFFFFu);
  return (1ull << 63) | (bx << 36) | (by << 12) |
         static_cast<std::uint64_t>(network_id);
}

inline std::size_t zone_table::find_group(std::uint64_t gkey) const noexcept {
  if (memo_key_ == gkey) return memo_slot_;
  if (slot_mask_ == 0) return npos_index;
  std::size_t slot = static_cast<std::size_t>(mix64(gkey)) & slot_mask_;
  while (slots_[slot].key != 0) {
    if (slots_[slot].key == gkey) {
      memo_key_ = gkey;
      memo_slot_ = slot;
      return slot;
    }
    slot = (slot + 1) & slot_mask_;
  }
  return npos_index;
}

inline void zone_table::add_sample(const geo::zone_id& zone,
                                   std::uint16_t network_id,
                                   trace::metric metric, double time_s,
                                   double value, double epoch_duration_s) {
  if (!(epoch_duration_s > 0.0)) {
    throw std::invalid_argument("epoch duration must be positive");
  }
  const std::uint64_t gkey = pack_group(zone, network_id);
  std::size_t slot = find_group(gkey);
  if (slot == npos_index) slot = create_group(gkey);
  const std::uint32_t val =
      slots_[slot].streams[static_cast<std::size_t>(metric)];
  const std::size_t idx =
      val != 0 ? val - 1 : materialize_stream(slot, zone, network_id, metric);
  hot_state& s = hot_[idx];
  if (s.open_start_s < 0.0) {
    // Align the first epoch boundary to a multiple of the duration so
    // different clients agree on epoch edges.
    s.open_start_s = std::floor(time_s / epoch_duration_s) * epoch_duration_s;
  }
  if (time_s >= s.open_start_s + epoch_duration_s) {
    cross_epochs(idx, time_s, epoch_duration_s);
  }
  s.open.add(value);
}

}  // namespace wiscape::core

// The zone table: WiScape's per-(zone, network, metric) estimate store.
//
// For each key the table accumulates the current epoch's samples, and on
// epoch rollover freezes them into the zone's published estimate. A new
// estimate that moved by more than `change_sigma_factor` standard deviations
// from the previous one raises a change alert ("the server checks if the
// measured statistic has changed substantially from its previous update,
// say by more than twice the standard deviation", Sec 3.4).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/zone_grid.h"
#include "stats/running_stats.h"
#include "trace/record.h"

namespace wiscape::core {

/// Key of one estimate stream.
struct estimate_key {
  geo::zone_id zone;
  std::string network;
  trace::metric metric;

  friend bool operator==(const estimate_key&, const estimate_key&) = default;
};

struct estimate_key_hash {
  std::size_t operator()(const estimate_key& k) const noexcept;
};

/// A published (frozen) per-epoch estimate.
struct epoch_estimate {
  double epoch_start_s = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t samples = 0;
};

/// Raised when an epoch's estimate moved substantially vs the previous one.
struct change_alert {
  estimate_key key;
  double epoch_start_s = 0.0;
  double previous_mean = 0.0;
  double new_mean = 0.0;
  double previous_stddev = 0.0;
};

class zone_table {
 public:
  /// `change_sigma_factor`: alert threshold in units of the previous epoch's
  /// stddev (paper suggests 2).
  explicit zone_table(double change_sigma_factor = 2.0)
      : sigma_factor_(change_sigma_factor) {}

  /// Adds one sample to the current epoch of `key`. `epoch_duration_s` is
  /// the zone's current epoch length (rollover happens when a sample lands
  /// past the epoch end). Throws std::invalid_argument if
  /// epoch_duration_s <= 0.
  void add_sample(const estimate_key& key, double time_s, double value,
                  double epoch_duration_s);

  /// Latest frozen estimate for a key (nullopt before the first rollover).
  std::optional<epoch_estimate> latest(const estimate_key& key) const;

  /// Samples accumulated in the currently-open epoch of `key`.
  std::size_t open_epoch_samples(const estimate_key& key) const;

  /// Full history of frozen estimates for a key (time order).
  std::vector<epoch_estimate> history(const estimate_key& key) const;

  /// All change alerts raised so far (time order).
  const std::vector<change_alert>& alerts() const noexcept { return alerts_; }

  /// All keys ever seen.
  std::vector<estimate_key> keys() const;

  /// Appends a frozen estimate to a key's history without touching the open
  /// epoch or raising alerts (used when restoring persisted state).
  void restore(const estimate_key& key, const epoch_estimate& estimate);

 private:
  struct stream {
    stats::running_stats open;        // accumulating epoch
    double open_start_s = -1.0;       // <0: no epoch started yet
    std::vector<epoch_estimate> frozen;
  };

  void rollover(const estimate_key& key, stream& s);

  double sigma_factor_;
  std::unordered_map<estimate_key, stream, estimate_key_hash> streams_;
  std::vector<change_alert> alerts_;
};

}  // namespace wiscape::core

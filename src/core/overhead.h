// Client overhead accounting.
//
// WiScape's whole reason to exist is that its measurement budget is tiny
// ("limiting the bandwidth and energy overheads at client devices", Sec 1).
// This module prices a measurement campaign in bytes, airtime and energy per
// client, so the coarse-sampling design can be compared quantitatively
// against continuous monitoring (the ablation bench sweeps the budget).
#pragma once

#include <cstddef>

#include "trace/dataset.h"

namespace wiscape::core {

/// Price model for one client radio. Defaults approximate a 2011-era 3G
/// USB modem: ~1.2 W while the radio is active, plus a tail-energy window
/// after each transfer (the notorious 3G "tail").
struct cost_model {
  double active_power_w = 1.2;
  double tail_time_s = 5.0;      ///< radio stays high-power after a probe
  double tail_power_w = 0.6;
  std::size_t tcp_overhead_bytes = 1200;  ///< handshake + acks + headers
  std::size_t udp_probe_bytes = 1200;     ///< per probe-packet payload
  std::size_t ping_bytes = 64;
};

/// Cost of one probe record.
struct probe_cost {
  std::size_t bytes_down = 0;
  std::size_t bytes_up = 0;
  double airtime_s = 0.0;  ///< time the radio was actively transferring
  double energy_j = 0.0;   ///< active + tail energy
};

/// Prices one measurement record. For TCP the transfer size must be
/// supplied (records carry throughput, not bytes); UDP/ping sizes come from
/// the model and the record's counters.
probe_cost cost_of(const trace::measurement_record& rec,
                   std::size_t tcp_transfer_bytes,
                   const cost_model& model = {});

/// Campaign-level roll-up.
struct overhead_summary {
  std::size_t probes = 0;
  double total_mbytes = 0.0;
  double total_energy_kj = 0.0;
  double total_airtime_s = 0.0;
  /// Per client-day averages, given the campaign's client count and span.
  double mbytes_per_client_day = 0.0;
  double energy_j_per_client_day = 0.0;
  double airtime_s_per_client_day = 0.0;
};

/// Prices a whole dataset. `clients` and `days` normalize the per-client-day
/// figures; throws std::invalid_argument when either is zero.
overhead_summary summarize_overhead(const trace::dataset& ds,
                                    std::size_t tcp_transfer_bytes,
                                    std::size_t clients, double days,
                                    const cost_model& model = {});

/// The continuous-monitoring strawman: a client measuring back-to-back all
/// day moves `rate_bps * hours` of traffic. Returns MB per client-day, for
/// contrast with WiScape's budgeted figure.
double continuous_monitoring_mbytes_per_day(double rate_bps,
                                            double active_hours = 18.0);

}  // namespace wiscape::core

#include "core/fault_injection.h"

namespace wiscape::core::fault {

const char* site_name(site s) noexcept {
  switch (s) {
    case site::queue_push:
      return "queue_push";
    case site::drain_stall:
      return "drain_stall";
    case site::server_handle:
      return "server_handle";
    case site::persist_save:
      return "persist_save";
    case site::accept_fail:
      return "accept_fail";
    case site::read_stall:
      return "read_stall";
    case site::write_full:
      return "write_full";
    case site::frame_truncate:
      return "frame_truncate";
    case site::wal_append:
      return "wal_append";
    case site::replica_lag:
      return "replica_lag";
    case site::snapshot_torn:
      return "snapshot_torn";
  }
  return "unknown";
}

namespace detail {
std::atomic<hook*>& slot() noexcept {
  static std::atomic<hook*> g{nullptr};
  return g;
}
}  // namespace detail

hook* install(hook* h) noexcept {
  return detail::slot().exchange(h, std::memory_order_acq_rel);
}

}  // namespace wiscape::core::fault
